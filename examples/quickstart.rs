//! Quickstart: train with the optimizer state offloaded through MLP-Offload
//! and verify the result is bit-identical to never offloading at all.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! This exercises the *functional* engine: real FP32 master state moves
//! through two in-memory storage tiers (a fast "NVMe" and a slower "PFS")
//! via the asynchronous I/O layer, gradients stay in FP16 host buffers and
//! are upscaled lazily during the update — the paper's delayed in-place
//! mixed-precision conversion.

use std::sync::Arc;

use mlp_offload_suite::mlp_offload::func::{MlpFuncEngine, SharedTier};
use mlp_offload_suite::mlp_offload::EngineConfig;
use mlp_offload_suite::mlp_optim::{AdamConfig, SubgroupState};
use mlp_offload_suite::mlp_storage::{Backend, MemBackend};
use mlp_offload_suite::mlp_tensor::F16;

fn main() {
    // A model shard of 8 subgroups x 1000 parameters.
    let subgroups = 8;
    let len = 1000;
    let init = || -> Vec<SubgroupState> {
        (0..subgroups)
            .map(|s| {
                SubgroupState::new(
                    (0..len)
                        .map(|i| ((s * len + i) as f32 * 0.01).sin())
                        .collect(),
                )
            })
            .collect()
    };

    // Two storage tiers with a 2:1 bandwidth ratio, as in the paper's
    // example configuration (§3.5).
    let tiers = vec![
        SharedTier::new(Arc::new(MemBackend::new("nvme")) as Arc<dyn Backend>, 2.0),
        SharedTier::new(Arc::new(MemBackend::new("pfs")) as Arc<dyn Backend>, 1.0),
    ];

    let adam = AdamConfig::default();
    let cfg = EngineConfig::mlp_offload().with_host_frames(5); // 3 pipeline + 2 cache
    let mut engine =
        MlpFuncEngine::new(cfg, adam, &tiers, /* worker */ 0, init()).expect("engine init");

    // Reference: the same training with everything in memory.
    let mut reference = init();

    for iter in 0..5 {
        // Synthetic FP16 gradients (a real trainer would produce these in
        // the backward pass).
        let grads: Vec<Vec<u16>> = (0..subgroups)
            .map(|s| {
                (0..len)
                    .map(|i| {
                        F16::from_f32(((s * len + i + iter) as f32 * 0.13).cos() * 0.05).to_bits()
                    })
                    .collect()
            })
            .collect();

        for (st, g) in reference.iter_mut().zip(&grads) {
            st.apply_update_fp16(&adam, g, 1.0);
        }

        engine.accumulate_gradients(&grads);
        let outcome = engine.update().expect("update");
        println!(
            "iter {iter}: {} fetches, {} cache hits, {} flushes",
            outcome.fetches, outcome.cache_hits, outcome.flushes
        );
    }

    let offloaded = engine.master_params().expect("gather");
    let matches = offloaded
        .iter()
        .zip(&reference)
        .all(|(a, b)| a == &b.params);
    let dist = engine.tier_distribution();
    println!(
        "\nstate distribution: host {:.0}%, nvme {:.0}%, pfs {:.0}%",
        dist.fractions()[0] * 100.0,
        dist.fractions()[1] * 100.0,
        dist.fractions()[2] * 100.0
    );
    assert!(
        matches,
        "offloaded training diverged from the in-memory reference"
    );
    println!("offloaded training is bit-identical to the in-memory reference ✓");
}
