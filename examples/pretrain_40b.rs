//! The paper's headline scenario: pre-training a 40B-parameter model on a
//! single 4×H100 node whose GPU + host memory cannot hold the 487 GB
//! optimizer state — DeepSpeed ZeRO-3 NVMe offloading vs MLP-Offload.
//!
//! ```text
//! cargo run --release --example pretrain_40b
//! ```
//!
//! Runs the virtual-time simulation and prints the per-phase breakdown the
//! paper reports in §3.1/§4.2 (fwd 0.6 s / bwd 28 s / update 213 s for the
//! baseline; ~2.5× faster iterations for MLP-Offload).

use mlp_offload_suite::mlp_model::zoo;
use mlp_offload_suite::mlp_offload::EngineConfig;
use mlp_offload_suite::mlp_train::driver::{run, summarize, TrainSetup};
use mlp_offload_suite::mlp_train::testbed1;

fn main() {
    let tb = testbed1();
    let model = zoo::model_40b();
    println!("model: {model}");
    println!(
        "optimizer state: {:.0} GB (FP32 params + momentum + variance)",
        model.optimizer_state_bytes() as f64 / 1e9
    );
    println!("testbed: {}\n", tb.name);

    let mut results = Vec::new();
    for (label, cfg, tiers) in [
        (
            "DeepSpeed ZeRO-3 (NVMe only)",
            EngineConfig::deepspeed_zero3(),
            vec![tb.nvme.clone()],
        ),
        (
            "MLP-Offload (NVMe + PFS)",
            EngineConfig::mlp_offload(),
            vec![tb.nvme.clone(), tb.pfs.clone()],
        ),
    ] {
        let mut setup = TrainSetup::new(tb.clone(), model.clone(), cfg, tiers);
        setup.iterations = 4;
        let iters = run(&setup);
        let s = summarize(&setup, &iters, 2);
        println!("{label}");
        println!("  forward   {:>8.2} s", s.forward_s);
        println!("  backward  {:>8.2} s", s.backward_s);
        println!("  update    {:>8.2} s", s.update_s);
        println!("  iteration {:>8.2} s", s.total_s);
        println!(
            "  update throughput {:.0} Mparam/s, effective I/O {:.1} GB/s, cache hits {:.0}%\n",
            s.update_params_per_s / 1e6,
            s.effective_io_bps / 1e9,
            s.cache_hit_rate * 100.0
        );
        results.push(s.total_s);
    }
    println!(
        "MLP-Offload speedup: {:.2}x (paper: ~2.5-2.7x)",
        results[0] / results[1]
    );
}
