//! A guided tour of the Fig. 14/15 ablation ladder: activate MLP-Offload's
//! design principles one at a time on the 70B/Testbed-1 configuration and
//! watch each one buy its share of the 2.5× speedup.
//!
//! ```text
//! cargo run --release --example ablation_tour
//! ```

use mlp_offload_suite::mlp_model::zoo;
use mlp_offload_suite::mlp_offload::config::AblationStage;
use mlp_offload_suite::mlp_train::driver::{run, summarize, TrainSetup};
use mlp_offload_suite::mlp_train::testbed1;

fn main() {
    let tb = testbed1();
    let model = zoo::model_70b();
    println!("ablation tour: {model} on {}\n", tb.name);

    let explanations = [
        "Sequential subgroup order, eager FP32 gradient offload, \
         uncoordinated tier access: the DeepSpeed ZeRO-3 + DeepNVMe baseline.",
        "Alternate the subgroup order each iteration so the host-cached \
         tail of one pass is the head of the next; LRU recycling stops \
         thrashing and starts hitting.",
        "Keep FP16 gradients in host memory and upscale during the update \
         (65 GB/s on the CPU) instead of pushing FP32 gradients through \
         storage: fetches shrink from 16 to 12 bytes/parameter and the \
         backward pass stops waiting on the NVMe.",
        "Node-level tier-exclusive locking: one worker per storage at a \
         time gets the full sequential bandwidth instead of everyone \
         sharing a mixed-I/O-degraded channel.",
    ];

    for multipath in [false, true] {
        println!(
            "--- {} ---",
            if multipath {
                "with the PFS as a second path (Fig. 15)"
            } else {
                "node-local NVMe only (Fig. 14)"
            }
        );
        let mut baseline = None;
        for (stage, why) in AblationStage::ladder().into_iter().zip(&explanations) {
            let tiers = if multipath && stage != AblationStage::Baseline {
                vec![tb.nvme.clone(), tb.pfs.clone()]
            } else {
                vec![tb.nvme.clone()]
            };
            let mut setup = TrainSetup::new(tb.clone(), model.clone(), stage.config(), tiers);
            setup.iterations = 4;
            let s = summarize(&setup, &run(&setup), 2);
            let base = *baseline.get_or_insert(s.total_s);
            println!(
                "{:<22} {:>7.1} s/iter  ({:.2}x)\n    {}\n",
                stage.label(),
                s.total_s,
                base / s.total_s,
                why
            );
        }
    }
}
