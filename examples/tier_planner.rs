//! Tier planner: measure the storage actually attached to this machine and
//! compute the Eq. 1 subgroup distribution for it — the workflow a real
//! deployment runs before training (§3.3: "initially, B_i for each
//! alternative storage is measured using microbenchmarks").
//!
//! ```text
//! cargo run --release --example tier_planner [DIR1 DIR2 ...]
//! ```
//!
//! With directories given, each becomes a real filesystem tier and its
//! bandwidth is measured with actual I/O. Without arguments, two throttled
//! in-memory tiers stand in (a 2 GB/s "NVMe" and a 1 GB/s "PFS").

use std::sync::Arc;

use mlp_offload_suite::mlp_model::shard::{ShardLayout, DEFAULT_SUBGROUP_PARAMS};
use mlp_offload_suite::mlp_model::zoo;
use mlp_offload_suite::mlp_offload::policy::allocation::allocate_counts;
use mlp_offload_suite::mlp_storage::microbench::measure_backend;
use mlp_offload_suite::mlp_storage::{Backend, DirBackend, MemBackend};

fn main() {
    let dirs: Vec<String> = std::env::args().skip(1).collect();

    let backends: Vec<(String, Arc<dyn Backend>)> = if dirs.is_empty() {
        println!("no directories given; using throttled in-memory stand-ins\n");
        vec![
            (
                "mem-nvme (2 GB/s)".into(),
                Arc::new(MemBackend::throttled("mem-nvme", 2e9, 2e9)) as Arc<dyn Backend>,
            ),
            (
                "mem-pfs (1 GB/s)".into(),
                Arc::new(MemBackend::throttled("mem-pfs", 1e9, 1e9)) as Arc<dyn Backend>,
            ),
        ]
    } else {
        dirs.iter()
            .map(|d| {
                let b = DirBackend::new(d.clone(), d).unwrap_or_else(|e| {
                    eprintln!("cannot use {d}: {e}");
                    std::process::exit(1);
                });
                (d.clone(), Arc::new(b) as Arc<dyn Backend>)
            })
            .collect()
    };

    // Microbenchmark each tier (16 MiB blocks, 8 blocks).
    println!("measuring tiers (16 MiB blocks x 8)...");
    let mut weights = Vec::new();
    for (name, backend) in &backends {
        let sample = measure_backend(backend.as_ref(), 16 << 20, 8);
        println!(
            "  {name}: read {:.2} GB/s, write {:.2} GB/s -> B_i = {:.2} GB/s",
            sample.read_bps / 1e9,
            sample.write_bps / 1e9,
            sample.model_bandwidth_bps() / 1e9
        );
        weights.push(sample.model_bandwidth_bps());
    }

    // Plan the 40B model on 4 GPUs: how many subgroups go where (Eq. 1).
    let model = zoo::model_40b();
    let shard = ShardLayout::new(&model, 4);
    let subgroups = shard.subgroups_for_rank(0, DEFAULT_SUBGROUP_PARAMS);
    let counts = allocate_counts(subgroups.len(), &weights);

    println!(
        "\nplan for {} ({} subgroups of {} Mparam per rank):",
        model,
        subgroups.len(),
        DEFAULT_SUBGROUP_PARAMS / 1_000_000
    );
    for ((name, _), count) in backends.iter().zip(&counts) {
        println!(
            "  {name}: {count} subgroups ({:.0}%)",
            *count as f64 / subgroups.len() as f64 * 100.0
        );
    }

    // Emit the DeepSpeed-style JSON snippet (§3.5).
    let tiers: Vec<String> = backends.iter().map(|(n, _)| n.clone()).collect();
    let total: f64 = weights.iter().sum();
    let ratio = weights
        .iter()
        .map(|w| format!("{:.0}", w / total * 100.0))
        .collect::<Vec<_>>()
        .join(":");
    println!(
        "\nDeepSpeed runtime config snippet:\n{}",
        serde_json_snippet(&tiers, &ratio)
    );
}

fn serde_json_snippet(tiers: &[String], ratio: &str) -> String {
    format!(
        "{{ \"mlp_offload\": {{ \"tiers\": [{}], \"ratio\": \"{ratio}\" }} }}",
        tiers
            .iter()
            .map(|t| format!("{t:?}"))
            .collect::<Vec<_>>()
            .join(", ")
    )
}
