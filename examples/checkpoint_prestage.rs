//! Checkpoint pre-staging (§3.3): after each MLP-Offload iteration a large
//! fraction of the optimizer state already sits on persistent tiers, so an
//! asynchronous checkpointing engine (the paper cites DataStates-LLM) only
//! flushes the host-resident remainder.
//!
//! ```text
//! cargo run --release --example checkpoint_prestage
//! ```

use mlp_offload_suite::mlp_model::zoo;
use mlp_offload_suite::mlp_offload::checkpoint::PrestageReport;
use mlp_offload_suite::mlp_offload::EngineConfig;
use mlp_offload_suite::mlp_train::driver::{run, TrainSetup};
use mlp_offload_suite::mlp_train::testbed1;

fn main() {
    let tb = testbed1();
    let model = zoo::model_70b();
    let specs = vec![tb.nvme.clone(), tb.pfs.clone()];
    let mut setup = TrainSetup::new(
        tb.clone(),
        model.clone(),
        EngineConfig::mlp_offload(),
        specs.clone(),
    );
    setup.iterations = 3;
    let results = run(&setup);

    println!("checkpoint pre-staging for {model} on {}\n", tb.name);
    for (i, r) in results.iter().enumerate() {
        let report = PrestageReport::from_distribution(&r.distribution, &specs);
        // Checkpoint flush of the remainder goes to the PFS.
        let flush_s = report.checkpoint_flush_secs(tb.pfs.write_bps);
        println!(
            "after iteration {i}: {:.0}% of the optimizer state pre-staged on persistent \
             tiers; checkpointing the remaining {:.0} GB takes {:.1} s at PFS speed",
            report.prestaged_fraction() * 100.0,
            report.remaining_bytes as f64 / 1e9,
            flush_s
        );
    }

    // Contrast: a host-offloaded configuration pre-stages nothing, so the
    // full state must be flushed.
    let full_state = model.optimizer_state_bytes() as f64;
    println!(
        "\nwithout tier offloading the checkpoint engine would flush the full \
         {:.0} GB ({:.0} s at PFS speed)",
        full_state / 1e9,
        full_state / tb.pfs.write_bps
    );
}
