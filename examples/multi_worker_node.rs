//! A full node in functional mode: four worker processes (one per "GPU")
//! train disjoint ZeRO-3 shards concurrently from separate threads,
//! sharing two checksummed storage tiers and the node-level
//! process-exclusive tier locks — the deployment shape of Fig. 2/6.
//!
//! ```text
//! cargo run --release --example multi_worker_node
//! ```

use std::sync::Arc;

use mlp_offload_suite::mlp_offload::func::{MlpFuncEngine, SharedTier};
use mlp_offload_suite::mlp_offload::EngineConfig;
use mlp_offload_suite::mlp_optim::{AdamConfig, SubgroupState};
use mlp_offload_suite::mlp_storage::{Backend, ChecksummedBackend, MemBackend};
use mlp_offload_suite::mlp_tensor::F16;

const WORKERS: usize = 4;
const SUBGROUPS: usize = 8;
const LEN: usize = 512;

fn main() {
    // Shared node tiers: every object framed with a CRC-32 so corruption
    // of offloaded state surfaces as an I/O error, never as bad math.
    let tiers = vec![
        SharedTier::new(
            Arc::new(ChecksummedBackend::new(Arc::new(MemBackend::new("nvme"))))
                as Arc<dyn Backend>,
            2.0,
        ),
        SharedTier::new(
            Arc::new(ChecksummedBackend::new(Arc::new(MemBackend::new("pfs")))) as Arc<dyn Backend>,
            1.0,
        ),
    ];

    let handles: Vec<_> = (0..WORKERS)
        .map(|worker| {
            let tiers = tiers.clone();
            std::thread::spawn(move || {
                let init: Vec<SubgroupState> = (0..SUBGROUPS)
                    .map(|s| {
                        SubgroupState::new(
                            (0..LEN)
                                .map(|i| ((worker * 1000 + s * LEN + i) as f32 * 0.01).sin())
                                .collect(),
                        )
                    })
                    .collect();
                let mut engine = MlpFuncEngine::new(
                    EngineConfig::mlp_offload().with_host_frames(5),
                    AdamConfig::default(),
                    &tiers,
                    worker,
                    init,
                )
                .expect("engine init");
                engine.set_grad_clip(Some(1.0));

                let mut hits = 0;
                for iter in 0..8 {
                    let grads: Vec<Vec<u16>> = (0..SUBGROUPS)
                        .map(|s| {
                            (0..LEN)
                                .map(|i| {
                                    F16::from_f32(
                                        ((worker + s * LEN + i + iter) as f32 * 0.03).cos() * 0.05,
                                    )
                                    .to_bits()
                                })
                                .collect()
                        })
                        .collect();
                    engine.accumulate_gradients(&grads);
                    let o = engine.update().expect("update");
                    hits += o.cache_hits;
                }
                let dist = engine.tier_distribution();
                (worker, hits, dist.fractions())
            })
        })
        .collect();

    println!("4 workers × 8 iterations over shared checksummed tiers:\n");
    for h in handles {
        let (worker, hits, fractions) = h.join().expect("worker thread");
        println!(
            "worker {worker}: {hits} cache hits; state split host {:.0}% / nvme {:.0}% / pfs {:.0}%",
            fractions[0] * 100.0,
            fractions[1] * 100.0,
            fractions[2] * 100.0
        );
    }
    println!("\nall workers completed without lock conflicts or checksum errors ✓");
}
