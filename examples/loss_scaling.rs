//! Mixed-precision dynamic loss scaling through the offloaded training
//! loop: start with an absurdly large loss scale, watch the scaler back
//! off past the FP16 overflows, and training recover — with the optimizer
//! state living on two storage tiers throughout.
//!
//! ```text
//! cargo run --release --example loss_scaling
//! ```

use std::sync::Arc;

use mlp_offload_suite::mlp_offload::func::SharedTier;
use mlp_offload_suite::mlp_optim::adam::AdamConfig;
use mlp_offload_suite::mlp_optim::optimizer::OptimizerConfig;
use mlp_offload_suite::mlp_storage::{Backend, MemBackend};
use mlp_offload_suite::mlp_train::func_trainer::{train, FuncTrainConfig, RegressionTask};

fn main() {
    let tiers = vec![
        SharedTier::new(Arc::new(MemBackend::new("nvme")) as Arc<dyn Backend>, 2.0),
        SharedTier::new(Arc::new(MemBackend::new("pfs")) as Arc<dyn Backend>, 1.0),
    ];
    let task = RegressionTask::new(128, 64, 2026);

    for (label, scale) in [
        ("sane initial scale (1024)", 1024.0f32),
        ("absurd initial scale (1e8)", 1e8),
    ] {
        let cfg = FuncTrainConfig {
            initial_loss_scale: scale,
            optimizer: OptimizerConfig::Adam(AdamConfig {
                lr: 0.05,
                ..AdamConfig::default()
            }),
            ..FuncTrainConfig::default()
        };
        let report = train(&task, &tiers, cfg, 80).expect("training");
        println!("{label}:");
        println!(
            "  loss {:.3} -> {:.5} over {} applied iterations",
            report.losses.first().unwrap(),
            report.losses.last().unwrap(),
            report.losses.len() - report.skipped_steps
        );
        println!(
            "  {} overflow steps skipped, final loss scale {:.0}, {} cache hits\n",
            report.skipped_steps, report.final_loss_scale, report.cache_hits
        );
    }
}
