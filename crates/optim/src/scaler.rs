//! Dynamic loss scaling for mixed-precision training.
//!
//! FP16 gradients underflow easily; standard practice (Micikevicius et al.,
//! cited in §2) multiplies the loss by a scale before the backward pass and
//! divides gradients by it before the update, growing the scale while
//! training is stable and backing off on overflow.

use serde::{Deserialize, Serialize};

/// Dynamic loss scaler with multiplicative growth and backoff.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct DynamicLossScaler {
    scale: f32,
    growth_factor: f32,
    backoff_factor: f32,
    growth_interval: u32,
    stable_steps: u32,
}

impl Default for DynamicLossScaler {
    fn default() -> Self {
        DynamicLossScaler {
            scale: 65536.0,
            growth_factor: 2.0,
            backoff_factor: 0.5,
            growth_interval: 2000,
            stable_steps: 0,
        }
    }
}

impl DynamicLossScaler {
    /// Creates a scaler with an explicit initial scale.
    pub fn with_scale(scale: f32) -> Self {
        assert!(scale > 0.0, "scale must be positive");
        DynamicLossScaler {
            scale,
            ..Default::default()
        }
    }

    /// The current loss scale.
    pub fn scale(&self) -> f32 {
        self.scale
    }

    /// Multiplier to apply to gradients before the optimizer (1/scale).
    pub fn inv_scale(&self) -> f32 {
        1.0 / self.scale
    }

    /// Reports the outcome of one step. `overflowed` means a non-finite
    /// gradient was observed: the step must be skipped and the scale backs
    /// off. Returns whether the step should be applied.
    pub fn update(&mut self, overflowed: bool) -> bool {
        if overflowed {
            self.scale = (self.scale * self.backoff_factor).max(1.0);
            self.stable_steps = 0;
            false
        } else {
            self.stable_steps += 1;
            if self.stable_steps >= self.growth_interval {
                self.scale *= self.growth_factor;
                self.stable_steps = 0;
            }
            true
        }
    }

    /// Checks a gradient slice for Inf/NaN after unscaling would be applied
    /// (i.e. checks the raw scaled values).
    pub fn has_overflow(grads: &[f32]) -> bool {
        grads.iter().any(|g| !g.is_finite())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_halves_scale_and_skips() {
        let mut s = DynamicLossScaler::with_scale(1024.0);
        assert!(!s.update(true));
        assert_eq!(s.scale(), 512.0);
    }

    #[test]
    fn growth_after_interval() {
        let mut s = DynamicLossScaler::with_scale(8.0);
        let interval = 2000;
        for _ in 0..interval {
            assert!(s.update(false));
        }
        assert_eq!(s.scale(), 16.0);
    }

    #[test]
    fn scale_never_drops_below_one() {
        let mut s = DynamicLossScaler::with_scale(1.0);
        for _ in 0..10 {
            s.update(true);
        }
        assert_eq!(s.scale(), 1.0);
    }

    #[test]
    fn overflow_detection() {
        assert!(DynamicLossScaler::has_overflow(&[0.0, f32::INFINITY]));
        assert!(DynamicLossScaler::has_overflow(&[f32::NAN]));
        assert!(!DynamicLossScaler::has_overflow(&[1.0, -2.0]));
    }

    #[test]
    fn overflow_resets_growth_progress() {
        let mut s = DynamicLossScaler::with_scale(8.0);
        for _ in 0..1999 {
            s.update(false);
        }
        s.update(true); // backoff at the brink of growth
        assert_eq!(s.scale(), 4.0);
        s.update(false);
        assert_eq!(s.scale(), 4.0, "growth counter must restart");
    }
}
