//! Host-resident FP16 gradient accumulation.
//!
//! During gradient accumulation (§4.5), several backward passes run before
//! each update phase; their per-subgroup FP16 gradients are summed into a
//! host buffer. MLP-Offload keeps these buffers in FP16 on the host and
//! upscales lazily during the update (delayed conversion, §3.2) — the
//! baseline upscales to FP32 eagerly and flushes them through storage.
//!
//! Accumulation is performed in FP32 and rounded back to FP16 per
//! micro-step, matching the precision behaviour of an FP16 accumulation
//! buffer updated with widened arithmetic.

use mlp_tensor::f16::{f16_bits_to_f32, f32_to_f16_bits};

/// FP16 gradient accumulation buffers for one rank's subgroups.
#[derive(Clone, Debug)]
pub struct GradAccumulator {
    buffers: Vec<Vec<u16>>,
    accumulated: usize,
}

impl GradAccumulator {
    /// Creates zeroed buffers sized from `subgroup_lens` (parameters per
    /// subgroup).
    pub fn new(subgroup_lens: &[usize]) -> Self {
        GradAccumulator {
            buffers: subgroup_lens.iter().map(|&n| vec![0u16; n]).collect(),
            accumulated: 0,
        }
    }

    /// Number of subgroups.
    pub fn num_subgroups(&self) -> usize {
        self.buffers.len()
    }

    /// Micro-steps accumulated since the last [`GradAccumulator::reset`].
    pub fn accumulated_steps(&self) -> usize {
        self.accumulated
    }

    /// Adds `grads` (FP16 bits) into subgroup `id`'s buffer.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range or lengths mismatch.
    pub fn accumulate(&mut self, id: usize, grads: &[u16]) {
        let buf = &mut self.buffers[id];
        assert_eq!(buf.len(), grads.len(), "gradient length mismatch");
        for (b, &g) in buf.iter_mut().zip(grads) {
            let sum = f16_bits_to_f32(*b) + f16_bits_to_f32(g);
            *b = f32_to_f16_bits(sum);
        }
    }

    /// Marks one full backward pass as accumulated (call once per
    /// micro-step after all subgroups were added).
    pub fn end_micro_step(&mut self) {
        self.accumulated += 1;
    }

    /// The accumulated FP16 gradients of subgroup `id`.
    pub fn grads(&self, id: usize) -> &[u16] {
        &self.buffers[id]
    }

    /// Total bytes held by the accumulator (what the host must reserve).
    pub fn total_bytes(&self) -> usize {
        self.buffers.iter().map(|b| b.len() * 2).sum()
    }

    /// Zeroes all buffers and the micro-step counter (after an update).
    pub fn reset(&mut self) {
        for b in &mut self.buffers {
            b.fill(0);
        }
        self.accumulated = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlp_tensor::F16;

    fn bits(v: f32) -> u16 {
        F16::from_f32(v).to_bits()
    }

    #[test]
    fn accumulates_sums() {
        let mut acc = GradAccumulator::new(&[4]);
        acc.accumulate(0, &[bits(1.0), bits(2.0), bits(-1.0), bits(0.0)]);
        acc.end_micro_step();
        acc.accumulate(0, &[bits(0.5), bits(0.5), bits(0.5), bits(0.5)]);
        acc.end_micro_step();
        let got: Vec<f32> = acc
            .grads(0)
            .iter()
            .map(|&b| F16::from_bits(b).to_f32())
            .collect();
        assert_eq!(got, vec![1.5, 2.5, -0.5, 0.5]);
        assert_eq!(acc.accumulated_steps(), 2);
    }

    #[test]
    fn reset_zeroes_everything() {
        let mut acc = GradAccumulator::new(&[2, 3]);
        acc.accumulate(0, &[bits(1.0); 2]);
        acc.accumulate(1, &[bits(1.0); 3]);
        acc.end_micro_step();
        acc.reset();
        assert!(acc.grads(0).iter().all(|&b| b == 0));
        assert!(acc.grads(1).iter().all(|&b| b == 0));
        assert_eq!(acc.accumulated_steps(), 0);
    }

    #[test]
    fn total_bytes_counts_fp16() {
        let acc = GradAccumulator::new(&[10, 20]);
        assert_eq!(acc.total_bytes(), 60);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn wrong_length_panics() {
        let mut acc = GradAccumulator::new(&[4]);
        acc.accumulate(0, &[0; 3]);
    }
}
