//! Fused single-pass mixed-precision update kernels.
//!
//! The paper's delayed-conversion argument (§3.2) only holds if the host
//! side of the update phase keeps up with the storage tiers: FP16→FP32
//! conversion and the optimizer step must together sustain tens of GB/s.
//! The multi-pass composition (`upscale_scaled` → `step_par` →
//! `downscale_par`) sweeps the subgroup state 4–6 times through DRAM and
//! materializes an FP32 gradient buffer per subgroup. The kernels here do
//! what ZeRO-Offload's fused CPU-Adam does — unscale, moment update,
//! parameter step, and FP16 parameter emission in a single rayon-chunked
//! pass — via *strip-mined fusion*: each chunk is processed in small
//! L1-resident tiles, and within a tile the three sweeps run back to back
//! over a stack scratch buffer. Each inner sweep keeps the exact loop
//! shape of its multi-pass counterpart (so it vectorizes identically; a
//! single interleaved per-element loop defeats the autovectorizer on the
//! branchy FP16 conversions), while the subgroup-sized arrays are still
//! loaded and stored exactly once and no FP32 gradient buffer is ever
//! allocated — the scratch is `TILE` (512) elements on the stack.
//!
//! Bit-exactness: a tile *is* the multi-pass composition
//! ([`mlp_tensor::convert::upscale_scaled`] → [`OptimizerConfig::step`] →
//! [`mlp_tensor::convert::downscale`]) applied to a sub-range, and every
//! element's update is independent of the others, so the fused results are
//! bitwise identical (property-tested below) and engines can switch
//! between the paths per config flag without changing trajectories.

use mlp_tensor::{convert, PAR_CHUNK};
use rayon::prelude::*;

use crate::optimizer::OptimizerConfig;

/// Elements per L1-resident tile (2 KiB of f32 scratch on the stack).
const TILE: usize = 512;

/// Fused kernel over one rayon chunk: FP16-bits gradients, strip-mined
/// into [`TILE`]-element sub-ranges.
// lint:allow(transitive-panic): tile ranges are min-clamped to
// params.len() and all slice lengths are asserted equal by check_lens
// at the public entry
fn fused_chunk_fp16(
    opt: &OptimizerConfig,
    step: u64,
    params: &mut [f32],
    slot1: &mut [f32],
    slot2: &mut [f32],
    grads_fp16: &[u16],
    inv_scale: f32,
    fp16_out: &mut [u16],
) {
    let mut scratch = [0.0f32; TILE];
    let mut lo = 0;
    while lo < params.len() {
        let hi = (lo + TILE).min(params.len());
        let g = &mut scratch[..hi - lo];
        convert::upscale_scaled(&grads_fp16[lo..hi], g, inv_scale);
        opt.step(
            step,
            &mut params[lo..hi],
            &mut slot1[lo..hi],
            &mut slot2[lo..hi],
            g,
        );
        convert::downscale(&params[lo..hi], &mut fp16_out[lo..hi]);
        lo = hi;
    }
}

/// Fused kernel over one rayon chunk: FP32 gradients (the ZeRO-3
/// baseline's eager-conversion data path), strip-mined like
/// [`fused_chunk_fp16`].
// lint:allow(transitive-panic): tile ranges are min-clamped to
// params.len() and all slice lengths are asserted equal by check_lens
// at the public entry
fn fused_chunk_f32(
    opt: &OptimizerConfig,
    step: u64,
    params: &mut [f32],
    slot1: &mut [f32],
    slot2: &mut [f32],
    grads: &[f32],
    inv_scale: f32,
    fp16_out: &mut [u16],
) {
    let mut scratch = [0.0f32; TILE];
    let mut lo = 0;
    while lo < params.len() {
        let hi = (lo + TILE).min(params.len());
        let g = &mut scratch[..hi - lo];
        for (d, &s) in g.iter_mut().zip(&grads[lo..hi]) {
            *d = s * inv_scale;
        }
        opt.step(
            step,
            &mut params[lo..hi],
            &mut slot1[lo..hi],
            &mut slot2[lo..hi],
            g,
        );
        convert::downscale(&params[lo..hi], &mut fp16_out[lo..hi]);
        lo = hi;
    }
}

fn check_lens(params: usize, slot1: usize, slot2: usize, grads: usize, out: usize) {
    assert_eq!(params, grads, "params/grads length mismatch");
    assert_eq!(params, slot1, "params/slot1 length mismatch");
    assert_eq!(params, slot2, "params/slot2 length mismatch");
    assert_eq!(params, out, "params/fp16_out length mismatch");
}

/// Fused, rayon-chunked update from FP16 gradient bits: unscale + moment
/// update + parameter step + FP16 parameter emission in one pass over the
/// state. `step` is 1-based. Bitwise identical to
/// `upscale_scaled` → [`OptimizerConfig::step_par`] → `downscale`
/// for every optimizer in the zoo.
///
/// # Panics
///
/// Panics on any length mismatch or `step == 0`.
// lint:hot-root — fused optimizer kernel, per-subgroup update sweep
pub fn fused_update_fp16(
    opt: &OptimizerConfig,
    step: u64,
    params: &mut [f32],
    slot1: &mut [f32],
    slot2: &mut [f32],
    grads_fp16: &[u16],
    inv_scale: f32,
    fp16_out: &mut [u16],
) {
    assert!(step >= 1, "optimizer step is 1-based");
    check_lens(
        params.len(),
        slot1.len(),
        slot2.len(),
        grads_fp16.len(),
        fp16_out.len(),
    );
    if params.len() < PAR_CHUNK {
        return fused_chunk_fp16(
            opt, step, params, slot1, slot2, grads_fp16, inv_scale, fp16_out,
        );
    }
    params
        .par_chunks_mut(PAR_CHUNK)
        .zip(slot1.par_chunks_mut(PAR_CHUNK))
        .zip(slot2.par_chunks_mut(PAR_CHUNK))
        .zip(grads_fp16.par_chunks(PAR_CHUNK))
        .zip(fp16_out.par_chunks_mut(PAR_CHUNK))
        .for_each(|((((p, s1), s2), g), out)| {
            fused_chunk_fp16(opt, step, p, s1, s2, g, inv_scale, out)
        });
}

/// [`fused_update_fp16`] for FP32 gradients (used by the functional
/// ZeRO-3 baseline, whose gradients arrive eagerly upscaled from
/// storage). Bitwise identical to scale → step → downscale.
///
/// # Panics
///
/// Panics on any length mismatch or `step == 0`.
// lint:hot-root — fused optimizer kernel, per-subgroup update sweep
pub fn fused_update_f32(
    opt: &OptimizerConfig,
    step: u64,
    params: &mut [f32],
    slot1: &mut [f32],
    slot2: &mut [f32],
    grads: &[f32],
    inv_scale: f32,
    fp16_out: &mut [u16],
) {
    assert!(step >= 1, "optimizer step is 1-based");
    check_lens(
        params.len(),
        slot1.len(),
        slot2.len(),
        grads.len(),
        fp16_out.len(),
    );
    if params.len() < PAR_CHUNK {
        return fused_chunk_f32(opt, step, params, slot1, slot2, grads, inv_scale, fp16_out);
    }
    params
        .par_chunks_mut(PAR_CHUNK)
        .zip(slot1.par_chunks_mut(PAR_CHUNK))
        .zip(slot2.par_chunks_mut(PAR_CHUNK))
        .zip(grads.par_chunks(PAR_CHUNK))
        .zip(fp16_out.par_chunks_mut(PAR_CHUNK))
        .for_each(|((((p, s1), s2), g), out)| {
            fused_chunk_f32(opt, step, p, s1, s2, g, inv_scale, out)
        });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adam::AdamConfig;
    use crate::optimizer::{AdagradConfig, LionConfig, SgdConfig};
    use mlp_tensor::convert;
    use proptest::prelude::*;

    /// The multi-pass composition the fused kernel replaces: materialize
    /// an FP32 gradient buffer (upscale × inverse loss scale), run the
    /// optimizer pass, then downscale the parameters in a separate pass.
    fn multi_pass_fp16(
        opt: &OptimizerConfig,
        step: u64,
        params: &mut [f32],
        slot1: &mut [f32],
        slot2: &mut [f32],
        grads_fp16: &[u16],
        inv_scale: f32,
    ) -> Vec<u16> {
        let mut grads = vec![0.0f32; grads_fp16.len()];
        convert::upscale_scaled_par(grads_fp16, &mut grads, inv_scale);
        opt.step_par(step, params, slot1, slot2, &grads);
        let mut out = vec![0u16; params.len()];
        convert::downscale_par(params, &mut out);
        out
    }

    fn optimizer_zoo() -> Vec<OptimizerConfig> {
        vec![
            OptimizerConfig::Adam(AdamConfig::default()),
            OptimizerConfig::Adam(AdamConfig {
                weight_decay: 0.01,
                ..AdamConfig::default()
            }),
            OptimizerConfig::Sgd(SgdConfig::default()),
            OptimizerConfig::Sgd(SgdConfig {
                weight_decay: 0.05,
                ..SgdConfig::default()
            }),
            OptimizerConfig::Adagrad(AdagradConfig::default()),
            OptimizerConfig::Lion(LionConfig::default()),
            OptimizerConfig::Lion(LionConfig {
                weight_decay: 0.1,
                ..LionConfig::default()
            }),
        ]
    }

    fn assert_bits_eq(a: &[f32], b: &[f32], what: &str) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "{what}[{i}]: {x} vs {y}");
        }
    }

    #[test]
    fn fused_equals_multi_pass_across_the_zoo() {
        let n = 1000;
        let grads: Vec<u16> = (0..n as u32).map(|i| (i * 131) as u16 % 0x7C00).collect();
        for opt in optimizer_zoo() {
            for inv_scale in [1.0f32, 0.125, 3.7] {
                let mut a = (
                    (0..n).map(|i| (i as f32).sin()).collect::<Vec<f32>>(),
                    vec![0.01f32; n],
                    vec![0.02f32; n],
                );
                let mut b = a.clone();
                for step in 1..=3u64 {
                    let expect_h = multi_pass_fp16(
                        &opt, step, &mut a.0, &mut a.1, &mut a.2, &grads, inv_scale,
                    );
                    let mut got_h = vec![0u16; n];
                    fused_update_fp16(
                        &opt, step, &mut b.0, &mut b.1, &mut b.2, &grads, inv_scale, &mut got_h,
                    );
                    assert_bits_eq(&a.0, &b.0, opt.name());
                    assert_bits_eq(&a.1, &b.1, opt.name());
                    assert_bits_eq(&a.2, &b.2, opt.name());
                    assert_eq!(expect_h, got_h, "{} fp16 emission", opt.name());
                }
            }
        }
    }

    #[test]
    fn fused_parallel_path_matches_scalar_above_chunk_threshold() {
        let n = PAR_CHUNK + 1717; // forces the rayon path with a ragged tail
        let grads: Vec<u16> = (0..n as u32).map(|i| (i * 197) as u16 % 0x7C00).collect();
        for opt in optimizer_zoo() {
            let mut a = (vec![0.5f32; n], vec![0.0f32; n], vec![0.0f32; n]);
            let mut b = a.clone();
            let mut ha = vec![0u16; n];
            let mut hb = vec![0u16; n];
            // Scalar reference via the chunk kernel directly.
            fused_chunk_fp16(
                &opt, 1, &mut a.0, &mut a.1, &mut a.2, &grads, 0.5, &mut ha,
            );
            fused_update_fp16(&opt, 1, &mut b.0, &mut b.1, &mut b.2, &grads, 0.5, &mut hb);
            assert_bits_eq(&a.0, &b.0, opt.name());
            assert_eq!(ha, hb, "{}", opt.name());
        }
    }

    #[test]
    fn fused_f32_equals_scale_then_step_then_downscale() {
        let n = 777;
        let grads: Vec<f32> = (0..n).map(|i| ((i % 83) as f32 - 41.0) * 1e-3).collect();
        for opt in optimizer_zoo() {
            for inv_scale in [1.0f32, 0.25] {
                let mut a = (vec![0.3f32; n], vec![0.1f32; n], vec![0.2f32; n]);
                let mut b = a.clone();

                let mut scaled = grads.clone();
                for g in &mut scaled {
                    *g *= inv_scale;
                }
                opt.step_par(1, &mut a.0, &mut a.1, &mut a.2, &scaled);
                let mut expect_h = vec![0u16; n];
                convert::downscale(&a.0, &mut expect_h);

                let mut got_h = vec![0u16; n];
                fused_update_f32(
                    &opt, 1, &mut b.0, &mut b.1, &mut b.2, &grads, inv_scale, &mut got_h,
                );
                assert_bits_eq(&a.0, &b.0, opt.name());
                assert_eq!(expect_h, got_h, "{}", opt.name());
            }
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_out_panics() {
        let opt = OptimizerConfig::default();
        fused_update_fp16(
            &opt,
            1,
            &mut [0.0; 4],
            &mut [0.0; 4],
            &mut [0.0; 4],
            &[0; 4],
            1.0,
            &mut [0; 3],
        );
    }

    /// FP16 bit patterns biased toward the hard cases: subnormals, zero,
    /// and ordinary finite values (both signs). Infinities/NaNs excluded —
    /// the loss scaler skips those steps before any kernel runs.
    fn grad_bits() -> impl Strategy<Value = u16> {
        prop_oneof![
            // subnormal magnitude (exponent 0, nonzero mantissa) ± sign
            (1u16..0x0400).prop_flat_map(|m| prop_oneof![Just(m), Just(m | 0x8000)]),
            // any finite value
            (0u16..0x7C00).prop_flat_map(|m| prop_oneof![Just(m), Just(m | 0x8000)]),
            Just(0u16),
            Just(0x8000u16), // -0.0
        ]
    }

    fn optimizer_strategy() -> impl Strategy<Value = OptimizerConfig> {
        let wd = prop_oneof![Just(0.0f32), 0.001f32..0.2];
        let wd2 = prop_oneof![Just(0.0f32), 0.001f32..0.2];
        let wd3 = prop_oneof![Just(0.0f32), 0.001f32..0.2];
        prop_oneof![
            wd.prop_map(|weight_decay| {
                OptimizerConfig::Adam(AdamConfig {
                    weight_decay,
                    ..AdamConfig::default()
                })
            }),
            wd2.prop_map(|weight_decay| {
                OptimizerConfig::Sgd(SgdConfig {
                    weight_decay,
                    ..SgdConfig::default()
                })
            }),
            Just(OptimizerConfig::Adagrad(AdagradConfig::default())),
            wd3.prop_map(|weight_decay| {
                OptimizerConfig::Lion(LionConfig {
                    weight_decay,
                    ..LionConfig::default()
                })
            }),
        ]
    }

    proptest! {
        /// The acceptance property: for every optimizer, any finite FP16
        /// gradients (subnormals included), any inverse loss scale, and
        /// weight-decay-enabled configs, the fused kernel is bit-identical
        /// to the existing upscale → step → downscale composition.
        #[test]
        fn fused_is_bit_identical_to_multi_pass(
            opt in optimizer_strategy(),
            grads in proptest::collection::vec(grad_bits(), 1..300),
            inv_scale in prop_oneof![Just(1.0f32), 1e-4f32..16.0],
            step in 1u64..50,
        ) {
            let n = grads.len();
            let mut a = (
                (0..n).map(|i| ((i * 7) as f32 * 0.03).cos()).collect::<Vec<f32>>(),
                (0..n).map(|i| (i as f32) * 1e-3).collect::<Vec<f32>>(),
                (0..n).map(|i| (i as f32) * 2e-3).collect::<Vec<f32>>(),
            );
            let mut b = a.clone();
            let expect_h = multi_pass_fp16(
                &opt, step, &mut a.0, &mut a.1, &mut a.2, &grads, inv_scale,
            );
            let mut got_h = vec![0u16; n];
            fused_update_fp16(
                &opt, step, &mut b.0, &mut b.1, &mut b.2, &grads, inv_scale, &mut got_h,
            );
            prop_assert_eq!(
                a.0.iter().map(|f| f.to_bits()).collect::<Vec<_>>(),
                b.0.iter().map(|f| f.to_bits()).collect::<Vec<_>>()
            );
            prop_assert_eq!(
                a.1.iter().map(|f| f.to_bits()).collect::<Vec<_>>(),
                b.1.iter().map(|f| f.to_bits()).collect::<Vec<_>>()
            );
            prop_assert_eq!(
                a.2.iter().map(|f| f.to_bits()).collect::<Vec<_>>(),
                b.2.iter().map(|f| f.to_bits()).collect::<Vec<_>>()
            );
            prop_assert_eq!(expect_h, got_h);
        }
    }
}
