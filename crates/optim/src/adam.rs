//! Adam/AdamW update kernels over FP32 master state.

use mlp_tensor::PAR_CHUNK;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Adam hyper-parameters (defaults match the common LLM pre-training
/// recipe: lr 1e-4, β₁ 0.9, β₂ 0.95, ε 1e-8, no decoupled weight decay).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct AdamConfig {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Denominator fuzz.
    pub eps: f32,
    /// Decoupled (AdamW) weight decay; 0 disables it.
    pub weight_decay: f32,
}

impl Default for AdamConfig {
    fn default() -> Self {
        AdamConfig {
            lr: 1e-4,
            beta1: 0.9,
            beta2: 0.95,
            eps: 1e-8,
            weight_decay: 0.0,
        }
    }
}

/// Bias-correction terms `1 - βᵏ` for step `k`, hoisted out of the
/// per-element kernel (computed once per slice pass).
#[inline]
pub(crate) fn adam_bias(cfg: &AdamConfig, step: u64) -> (f32, f32) {
    (
        1.0 - cfg.beta1.powi(step as i32),
        1.0 - cfg.beta2.powi(step as i32),
    )
}

/// One parameter's Adam update. Shared by the multi-pass kernel below and
/// the fused single-pass kernel in [`crate::fused`], so the two paths are
/// bitwise identical by construction.
#[inline(always)]
pub(crate) fn adam_elem(
    cfg: &AdamConfig,
    bias1: f32,
    bias2: f32,
    p: &mut f32,
    momentum: &mut f32,
    variance: &mut f32,
    g: f32,
) {
    let m = cfg.beta1 * *momentum + (1.0 - cfg.beta1) * g;
    let v = cfg.beta2 * *variance + (1.0 - cfg.beta2) * g * g;
    *momentum = m;
    *variance = v;
    let m_hat = m / bias1;
    let v_hat = v / bias2;
    let old = *p;
    let mut new = old;
    new -= cfg.lr * m_hat / (v_hat.sqrt() + cfg.eps);
    if cfg.weight_decay != 0.0 {
        new -= cfg.lr * cfg.weight_decay * old;
    }
    *p = new;
}

/// One Adam step over a parameter slice. `step` is 1-based (used for bias
/// correction). All slices must be the same length.
///
/// # Panics
///
/// Panics on length mismatch or `step == 0`.
// lint:allow(transitive-panic): element loop bounded by params.len();
// equal slice lengths asserted on entry (the documented contract)
pub fn adam_step(
    cfg: &AdamConfig,
    step: u64,
    params: &mut [f32],
    momentum: &mut [f32],
    variance: &mut [f32],
    grads: &[f32],
) {
    assert!(step >= 1, "Adam step is 1-based");
    assert_eq!(params.len(), grads.len(), "params/grads length mismatch");
    assert_eq!(
        params.len(),
        momentum.len(),
        "params/momentum length mismatch"
    );
    assert_eq!(
        params.len(),
        variance.len(),
        "params/variance length mismatch"
    );

    let (bias1, bias2) = adam_bias(cfg, step);
    for i in 0..params.len() {
        adam_elem(
            cfg,
            bias1,
            bias2,
            &mut params[i],
            &mut momentum[i],
            &mut variance[i],
            grads[i],
        );
    }
}

/// Rayon-parallel [`adam_step`]; bitwise identical to the scalar kernel
/// (each element's update is independent).
pub fn adam_step_par(
    cfg: &AdamConfig,
    step: u64,
    params: &mut [f32],
    momentum: &mut [f32],
    variance: &mut [f32],
    grads: &[f32],
) {
    assert!(step >= 1, "Adam step is 1-based");
    assert_eq!(params.len(), grads.len(), "params/grads length mismatch");
    if params.len() < PAR_CHUNK {
        return adam_step(cfg, step, params, momentum, variance, grads);
    }
    params
        .par_chunks_mut(PAR_CHUNK)
        .zip(momentum.par_chunks_mut(PAR_CHUNK))
        .zip(variance.par_chunks_mut(PAR_CHUNK))
        .zip(grads.par_chunks(PAR_CHUNK))
        .for_each(|(((p, m), v), g)| adam_step(cfg, step, p, m, v, g));
}

/// Measures sustained CPU update throughput in parameters/second for the
/// parallel kernel (the paper's reference is ~8 000 Mparam/s with state in
/// host memory).
pub fn measure_update_throughput(elements: usize, repeats: usize) -> f64 {
    let cfg = AdamConfig::default();
    let mut p = vec![0.1f32; elements];
    let mut m = vec![0.0f32; elements];
    let mut v = vec![0.0f32; elements];
    let g = vec![0.01f32; elements];
    let start = std::time::Instant::now();
    for step in 1..=repeats as u64 {
        adam_step_par(&cfg, step, &mut p, &mut m, &mut v, &g);
        std::hint::black_box(&p);
    }
    (elements * repeats) as f64 / start.elapsed().as_secs_f64()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f32, b: f32, tol: f32) {
        assert!((a - b).abs() <= tol, "expected {b} ± {tol}, got {a}");
    }

    #[test]
    fn first_step_matches_hand_computation() {
        let cfg = AdamConfig {
            lr: 0.1,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
        };
        let mut p = [1.0f32];
        let mut m = [0.0f32];
        let mut v = [0.0f32];
        let g = [0.5f32];
        adam_step(&cfg, 1, &mut p, &mut m, &mut v, &g);
        // m = 0.05, v = 0.00025; m̂ = 0.5, v̂ = 0.25 → Δ = 0.1·0.5/0.5 = 0.1.
        close(m[0], 0.05, 1e-7);
        close(v[0], 0.00025, 1e-7);
        close(p[0], 0.9, 1e-6);
    }

    #[test]
    fn converges_on_quadratic() {
        // Minimize f(x) = (x - 3)², gradient 2(x - 3).
        let cfg = AdamConfig {
            lr: 0.05,
            ..AdamConfig::default()
        };
        let mut p = [0.0f32];
        let mut m = [0.0f32];
        let mut v = [0.0f32];
        for step in 1..=2000 {
            let g = [2.0 * (p[0] - 3.0)];
            adam_step(&cfg, step, &mut p, &mut m, &mut v, &g);
        }
        close(p[0], 3.0, 0.01);
    }

    #[test]
    fn parallel_matches_scalar_bitwise() {
        let n = 200_000;
        let cfg = AdamConfig::default();
        let grads: Vec<f32> = (0..n).map(|i| ((i % 97) as f32 - 48.0) * 1e-3).collect();
        let mut ps = vec![0.5f32; n];
        let mut ms = vec![0.0f32; n];
        let mut vs = vec![0.0f32; n];
        let (mut pp, mut mp, mut vp) = (ps.clone(), ms.clone(), vs.clone());
        for step in 1..=3 {
            adam_step(&cfg, step, &mut ps, &mut ms, &mut vs, &grads);
            adam_step_par(&cfg, step, &mut pp, &mut mp, &mut vp, &grads);
        }
        assert!(ps.iter().zip(&pp).all(|(a, b)| a.to_bits() == b.to_bits()));
        assert!(ms.iter().zip(&mp).all(|(a, b)| a.to_bits() == b.to_bits()));
        assert!(vs.iter().zip(&vp).all(|(a, b)| a.to_bits() == b.to_bits()));
    }

    #[test]
    fn weight_decay_shrinks_params_without_gradient() {
        let cfg = AdamConfig {
            lr: 0.1,
            weight_decay: 0.1,
            ..AdamConfig::default()
        };
        let mut p = [1.0f32];
        let mut m = [0.0f32];
        let mut v = [0.0f32];
        adam_step(&cfg, 1, &mut p, &mut m, &mut v, &[0.0]);
        close(p[0], 0.99, 1e-6);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let cfg = AdamConfig::default();
        adam_step(
            &cfg,
            1,
            &mut [0.0; 2],
            &mut [0.0; 2],
            &mut [0.0; 2],
            &[0.0; 3],
        );
    }

    #[test]
    #[should_panic(expected = "1-based")]
    fn step_zero_panics() {
        let cfg = AdamConfig::default();
        adam_step(&cfg, 0, &mut [0.0], &mut [0.0], &mut [0.0], &[0.0]);
    }
}
