//! [`Phase::UpdateKernel`] span recording around the fused optimizer
//! kernels.
//!
//! The kernels in [`crate::fused`] stay pure functions; these wrappers
//! add the observability envelope — one timeline span per kernel sweep
//! (subgroup-attributed, byte-weighted) plus a duration sample on the
//! `optim.fused_update_ns` histogram — and compile down to the bare
//! kernel call when the sink is disabled.

use mlp_trace::{Attrs, Phase, TraceSink};

use crate::fused::{fused_update_f32, fused_update_fp16};
use crate::optimizer::OptimizerConfig;

/// Bytes swept by one fused update over `n` parameters: three FP32 state
/// arrays (params + two moment slots) read and written, the FP16
/// gradient bits read, and the FP16 working copy written.
pub fn fused_sweep_bytes(n: usize) -> u64 {
    (n * (12 + 2 + 2)) as u64
}

/// [`fused_update_fp16`] wrapped in an [`Phase::UpdateKernel`] span.
/// `subgroup` labels the span; with a disabled sink this is exactly the
/// bare kernel call.
#[allow(clippy::too_many_arguments)]
pub fn fused_update_fp16_traced(
    trace: &TraceSink,
    subgroup: i64,
    opt: &OptimizerConfig,
    step: u64,
    params: &mut [f32],
    slot1: &mut [f32],
    slot2: &mut [f32],
    grads_fp16: &[u16],
    inv_scale: f32,
    fp16_out: &mut [u16],
) {
    if !trace.is_enabled() {
        return fused_update_fp16(
            opt, step, params, slot1, slot2, grads_fp16, inv_scale, fp16_out,
        );
    }
    let start = trace.now_ns();
    fused_update_fp16(
        opt, step, params, slot1, slot2, grads_fp16, inv_scale, fp16_out,
    );
    finish(trace, subgroup, params.len(), start);
}

/// [`fused_update_f32`] wrapped in an [`Phase::UpdateKernel`] span (the
/// functional ZeRO-3 baseline's kernel, whose gradients arrive already
/// upscaled).
#[allow(clippy::too_many_arguments)]
pub fn fused_update_f32_traced(
    trace: &TraceSink,
    subgroup: i64,
    opt: &OptimizerConfig,
    step: u64,
    params: &mut [f32],
    slot1: &mut [f32],
    slot2: &mut [f32],
    grads: &[f32],
    inv_scale: f32,
    fp16_out: &mut [u16],
) {
    if !trace.is_enabled() {
        return fused_update_f32(opt, step, params, slot1, slot2, grads, inv_scale, fp16_out);
    }
    let start = trace.now_ns();
    fused_update_f32(opt, step, params, slot1, slot2, grads, inv_scale, fp16_out);
    finish(trace, subgroup, params.len(), start);
}

fn finish(trace: &TraceSink, subgroup: i64, n: usize, start_ns: u64) {
    let end = trace.now_ns();
    let attrs = Attrs {
        subgroup,
        bytes: fused_sweep_bytes(n),
        ..Attrs::NONE
    };
    trace.complete_span(Phase::UpdateKernel, attrs, start_ns, end);
    trace
        .histogram("optim.fused_update_ns")
        .record(end.saturating_sub(start_ns));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizer::OptimizerConfig;
    use mlp_tensor::convert;

    fn state(n: usize) -> (Vec<f32>, Vec<f32>, Vec<f32>) {
        (
            (0..n).map(|i| i as f32 * 0.5).collect(),
            vec![0.1; n],
            vec![0.2; n],
        )
    }

    /// The traced wrapper must be bitwise identical to the bare kernel
    /// whether or not the sink is enabled.
    #[test]
    fn traced_wrapper_matches_bare_kernel() {
        let n = 100;
        let opt = OptimizerConfig::default();
        let mut grads = vec![0u16; n];
        convert::downscale(&vec![0.01f32; n], &mut grads);

        let (mut p1, mut m1, mut v1) = state(n);
        let mut out1 = vec![0u16; n];
        fused_update_fp16(&opt, 1, &mut p1, &mut m1, &mut v1, &grads, 1.0, &mut out1);

        for sink in [TraceSink::disabled(), TraceSink::enabled()] {
            let (mut p2, mut m2, mut v2) = state(n);
            let mut out2 = vec![0u16; n];
            fused_update_fp16_traced(
                &sink, 7, &opt, 1, &mut p2, &mut m2, &mut v2, &grads, 1.0, &mut out2,
            );
            assert_eq!(p1, p2);
            assert_eq!(m1, m2);
            assert_eq!(v1, v2);
            assert_eq!(out1, out2);
        }
    }

    #[test]
    fn enabled_sink_records_a_kernel_span() {
        let n = 64;
        let sink = TraceSink::enabled();
        let opt = OptimizerConfig::default();
        let (mut p, mut m, mut v) = state(n);
        let grads = vec![0.01f32; n];
        let mut out = vec![0u16; n];
        fused_update_f32_traced(&sink, 3, &opt, 1, &mut p, &mut m, &mut v, &grads, 1.0, &mut out);

        let events = sink.events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].phase, Phase::UpdateKernel);
        assert_eq!(events[0].subgroup, 3);
        assert_eq!(events[0].bytes, fused_sweep_bytes(n));

        let snap = sink.metrics_snapshot();
        let (_, hist) = snap
            .histograms
            .iter()
            .find(|(name, _)| name == "optim.fused_update_ns")
            .expect("kernel duration histogram");
        assert_eq!(hist.count, 1);
    }
}
