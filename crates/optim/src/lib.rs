#![warn(missing_docs)]
#![deny(unsafe_code)]

//! Mixed-precision Adam optimizer substrate.
//!
//! The paper's update phase runs Adam on the CPU over FP32 master state
//! (parameters, momentum, variance) fetched subgroup-by-subgroup from the
//! storage hierarchy, consuming gradients produced in FP16 by the backward
//! pass (§2). The computation is embarrassingly parallel across subgroups —
//! the property the cache-friendly reordering optimization exploits (§3.2).
//!
//! * [`adam`] — the update kernels (scalar and rayon-parallel) and
//!   [`adam::AdamConfig`].
//! * [`fused`] — single-pass fused mixed-precision update kernels
//!   (unscale + moment update + step + FP16 emission in one sweep), the
//!   hot path of the functional engines.
//! * [`state::SubgroupState`] — one subgroup's FP32 master state with
//!   byte-level (de)serialization, the payload moved through storage
//!   tiers — and [`state::SubgroupStateMut`], its zero-copy borrowed view
//!   over a contiguous staging buffer.
//! * [`accum::GradAccumulator`] — the host-resident FP16 gradient
//!   accumulation buffer (§4.5).
//! * [`scaler::DynamicLossScaler`] — standard mixed-precision loss scaling.
//! * [`optimizer::OptimizerConfig`] — the optimizer zoo (Adam, SGD,
//!   Adagrad, Lion) over one serializable two-slot state layout, plus
//!   global gradient-norm clipping helpers.

pub mod accum;
pub mod adam;
pub mod fused;
pub mod optimizer;
pub mod scaler;
pub mod state;
pub mod traced;

pub use adam::AdamConfig;
pub use optimizer::OptimizerConfig;
pub use state::{SubgroupState, SubgroupStateMut};
