//! Optimizer zoo behind one state layout.
//!
//! §3.2 exploits that adaptive optimizers update each parameter from its
//! own slot state, making subgroup processing order-free. Every optimizer
//! here uses the same two per-parameter FP32 slots the storage layout
//! serializes (`momentum`, `variance`), so engines and checkpoints are
//! optimizer-agnostic:
//!
//! | optimizer | slot 1 (`momentum`) | slot 2 (`variance`) |
//! |---|---|---|
//! | Adam/AdamW | first moment | second moment |
//! | SGD        | momentum            | unused |
//! | Adagrad    | unused              | squared-gradient accumulator |
//! | Lion       | EMA of updates      | unused |

use mlp_tensor::PAR_CHUNK;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use crate::adam::{adam_step, AdamConfig};

/// SGD with (optional) momentum and dampening.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct SgdConfig {
    /// Learning rate.
    pub lr: f32,
    /// Momentum factor (0 = plain SGD).
    pub momentum: f32,
    /// L2 weight decay.
    pub weight_decay: f32,
}

impl Default for SgdConfig {
    fn default() -> Self {
        SgdConfig {
            lr: 1e-2,
            momentum: 0.9,
            weight_decay: 0.0,
        }
    }
}

/// Adagrad.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct AdagradConfig {
    /// Learning rate.
    pub lr: f32,
    /// Denominator fuzz.
    pub eps: f32,
}

impl Default for AdagradConfig {
    fn default() -> Self {
        AdagradConfig {
            lr: 1e-2,
            eps: 1e-10,
        }
    }
}

/// Lion (evolved sign momentum; Chen et al. 2023).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct LionConfig {
    /// Learning rate (typically 3–10× smaller than Adam's).
    pub lr: f32,
    /// Interpolation factor for the update direction.
    pub beta1: f32,
    /// EMA factor for the stored momentum.
    pub beta2: f32,
    /// Decoupled weight decay.
    pub weight_decay: f32,
}

impl Default for LionConfig {
    fn default() -> Self {
        LionConfig {
            lr: 1e-4,
            beta1: 0.9,
            beta2: 0.99,
            weight_decay: 0.0,
        }
    }
}

/// Any supported optimizer with its hyper-parameters.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum OptimizerConfig {
    /// Adam / AdamW.
    Adam(AdamConfig),
    /// SGD with momentum.
    Sgd(SgdConfig),
    /// Adagrad.
    Adagrad(AdagradConfig),
    /// Lion.
    Lion(LionConfig),
}

impl Default for OptimizerConfig {
    fn default() -> Self {
        OptimizerConfig::Adam(AdamConfig::default())
    }
}

impl From<AdamConfig> for OptimizerConfig {
    fn from(cfg: AdamConfig) -> Self {
        OptimizerConfig::Adam(cfg)
    }
}

impl From<SgdConfig> for OptimizerConfig {
    fn from(cfg: SgdConfig) -> Self {
        OptimizerConfig::Sgd(cfg)
    }
}

impl From<AdagradConfig> for OptimizerConfig {
    fn from(cfg: AdagradConfig) -> Self {
        OptimizerConfig::Adagrad(cfg)
    }
}

impl From<LionConfig> for OptimizerConfig {
    fn from(cfg: LionConfig) -> Self {
        OptimizerConfig::Lion(cfg)
    }
}

/// One parameter's SGD-with-momentum update. Shared with the fused
/// single-pass kernel in [`crate::fused`] so both paths are bitwise
/// identical by construction.
#[inline(always)]
pub(crate) fn sgd_elem(cfg: &SgdConfig, p: &mut f32, slot1: &mut f32, mut g: f32) {
    if cfg.weight_decay != 0.0 {
        g += cfg.weight_decay * *p;
    }
    let v = cfg.momentum * *slot1 + g;
    *slot1 = v;
    *p -= cfg.lr * v;
}

/// One parameter's Adagrad update (shared with [`crate::fused`]).
#[inline(always)]
pub(crate) fn adagrad_elem(cfg: &AdagradConfig, p: &mut f32, slot2: &mut f32, g: f32) {
    *slot2 += g * g;
    *p -= cfg.lr * g / (slot2.sqrt() + cfg.eps);
}

/// One parameter's Lion update (shared with [`crate::fused`]).
#[inline(always)]
pub(crate) fn lion_elem(cfg: &LionConfig, p: &mut f32, slot1: &mut f32, g: f32) {
    let update = cfg.beta1 * *slot1 + (1.0 - cfg.beta1) * g;
    let old = *p;
    let mut new = old;
    new -= cfg.lr * update.signum();
    if cfg.weight_decay != 0.0 {
        new -= cfg.lr * cfg.weight_decay * old;
    }
    *p = new;
    *slot1 = cfg.beta2 * *slot1 + (1.0 - cfg.beta2) * g;
}

impl OptimizerConfig {
    /// Applies one step over a parameter slice (scalar kernel). `step` is
    /// 1-based; `slot1`/`slot2` are the persistent per-parameter state.
    // lint:allow(transitive-panic): element loops bounded by params.len();
    // equal slice lengths asserted on entry (the documented contract)
    pub fn step(
        &self,
        step: u64,
        params: &mut [f32],
        slot1: &mut [f32],
        slot2: &mut [f32],
        grads: &[f32],
    ) {
        assert!(step >= 1, "optimizer step is 1-based");
        assert_eq!(params.len(), grads.len(), "params/grads length mismatch");
        assert_eq!(params.len(), slot1.len(), "params/slot1 length mismatch");
        assert_eq!(params.len(), slot2.len(), "params/slot2 length mismatch");
        match self {
            OptimizerConfig::Adam(cfg) => adam_step(cfg, step, params, slot1, slot2, grads),
            OptimizerConfig::Sgd(cfg) => {
                for i in 0..params.len() {
                    sgd_elem(cfg, &mut params[i], &mut slot1[i], grads[i]);
                }
            }
            OptimizerConfig::Adagrad(cfg) => {
                for i in 0..params.len() {
                    adagrad_elem(cfg, &mut params[i], &mut slot2[i], grads[i]);
                }
            }
            OptimizerConfig::Lion(cfg) => {
                for i in 0..params.len() {
                    lion_elem(cfg, &mut params[i], &mut slot1[i], grads[i]);
                }
            }
        }
    }

    /// Rayon-parallel [`OptimizerConfig::step`] (bitwise identical: every
    /// element's update is independent).
    pub fn step_par(
        &self,
        step: u64,
        params: &mut [f32],
        slot1: &mut [f32],
        slot2: &mut [f32],
        grads: &[f32],
    ) {
        assert_eq!(params.len(), grads.len(), "params/grads length mismatch");
        if params.len() < PAR_CHUNK {
            return self.step(step, params, slot1, slot2, grads);
        }
        params
            .par_chunks_mut(PAR_CHUNK)
            .zip(slot1.par_chunks_mut(PAR_CHUNK))
            .zip(slot2.par_chunks_mut(PAR_CHUNK))
            .zip(grads.par_chunks(PAR_CHUNK))
            .for_each(|(((p, s1), s2), g)| self.step(step, p, s1, s2, g));
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            OptimizerConfig::Adam(_) => "adam",
            OptimizerConfig::Sgd(_) => "sgd",
            OptimizerConfig::Adagrad(_) => "adagrad",
            OptimizerConfig::Lion(_) => "lion",
        }
    }
}

/// Global gradient-norm clipping: returns the factor to multiply
/// gradients by so their global L2 norm does not exceed `max_norm`.
///
/// The norm spans *all* subgroups, which is the one cross-subgroup
/// coupling in the update phase; engines therefore compute it from the
/// host-resident FP16 accumulation buffers before the per-subgroup
/// pipeline starts, preserving order independence.
pub fn grad_clip_factor(global_sq_norm: f64, max_norm: f64) -> f32 {
    assert!(max_norm > 0.0, "max_norm must be positive");
    let norm = global_sq_norm.sqrt();
    if norm <= max_norm || norm == 0.0 {
        1.0
    } else {
        (max_norm / norm) as f32
    }
}

/// Squared L2 norm of a gradient slice given in FP16 bits (scaled by
/// `inv_scale` first, matching what the optimizer will consume).
pub fn fp16_grad_sq_norm(grads: &[u16], inv_scale: f32) -> f64 {
    grads
        .iter()
        .map(|&h| {
            let g = mlp_tensor::f16::f16_bits_to_f32(h) as f64 * inv_scale as f64;
            g * g
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f32, b: f32, tol: f32) {
        assert!((a - b).abs() <= tol, "expected {b} ± {tol}, got {a}");
    }

    #[test]
    fn sgd_with_momentum_matches_hand_computation() {
        let cfg = OptimizerConfig::Sgd(SgdConfig {
            lr: 0.1,
            momentum: 0.9,
            weight_decay: 0.0,
        });
        let mut p = [1.0f32];
        let mut s1 = [0.0f32];
        let mut s2 = [0.0f32];
        cfg.step(1, &mut p, &mut s1, &mut s2, &[0.5]);
        close(p[0], 0.95, 1e-7); // v = 0.5 → p -= 0.05
        cfg.step(2, &mut p, &mut s1, &mut s2, &[0.5]);
        close(s1[0], 0.95, 1e-7); // v = 0.45 + 0.5
        close(p[0], 0.95 - 0.095, 1e-6);
    }

    #[test]
    fn adagrad_decays_effective_rate() {
        let cfg = OptimizerConfig::Adagrad(AdagradConfig { lr: 0.1, eps: 0.0 });
        let mut p = [0.0f32];
        let mut s1 = [0.0f32];
        let mut s2 = [0.0f32];
        cfg.step(1, &mut p, &mut s1, &mut s2, &[1.0]);
        close(p[0], -0.1, 1e-7); // g/√(g²) = 1
        cfg.step(2, &mut p, &mut s1, &mut s2, &[1.0]);
        close(p[0], -0.1 - 0.1 / 2.0f32.sqrt(), 1e-6);
    }

    #[test]
    fn lion_takes_sign_steps() {
        let cfg = OptimizerConfig::Lion(LionConfig {
            lr: 0.01,
            beta1: 0.9,
            beta2: 0.99,
            weight_decay: 0.0,
        });
        let mut p = [0.0f32];
        let mut s1 = [0.0f32];
        let mut s2 = [0.0f32];
        cfg.step(1, &mut p, &mut s1, &mut s2, &[42.0]);
        close(p[0], -0.01, 1e-7); // magnitude-independent step
        cfg.step(2, &mut p, &mut s1, &mut s2, &[-1e-3]);
        // update = 0.9·EMA + 0.1·g is still positive → step down again.
        close(p[0], -0.02, 1e-7);
    }

    #[test]
    fn all_optimizers_converge_on_quadratic() {
        for cfg in [
            OptimizerConfig::Adam(AdamConfig {
                lr: 0.05,
                ..AdamConfig::default()
            }),
            OptimizerConfig::Sgd(SgdConfig {
                lr: 0.05,
                momentum: 0.5,
                weight_decay: 0.0,
            }),
            OptimizerConfig::Adagrad(AdagradConfig {
                lr: 0.5,
                eps: 1e-10,
            }),
            OptimizerConfig::Lion(LionConfig {
                lr: 0.01,
                ..LionConfig::default()
            }),
        ] {
            let mut p = [0.0f32];
            let mut s1 = [0.0f32];
            let mut s2 = [0.0f32];
            for step in 1..=3000 {
                let g = [2.0 * (p[0] - 3.0)];
                cfg.step(step, &mut p, &mut s1, &mut s2, &g);
            }
            assert!(
                (p[0] - 3.0).abs() < 0.05,
                "{} ended at {}",
                cfg.name(),
                p[0]
            );
        }
    }

    #[test]
    fn parallel_matches_scalar_for_all() {
        let n = 150_000;
        let grads: Vec<f32> = (0..n).map(|i| ((i % 89) as f32 - 44.0) * 1e-3).collect();
        for cfg in [
            OptimizerConfig::Adam(AdamConfig::default()),
            OptimizerConfig::Sgd(SgdConfig::default()),
            OptimizerConfig::Adagrad(AdagradConfig::default()),
            OptimizerConfig::Lion(LionConfig::default()),
        ] {
            let mut a = (vec![0.5f32; n], vec![0.0f32; n], vec![0.0f32; n]);
            let mut b = a.clone();
            cfg.step(1, &mut a.0, &mut a.1, &mut a.2, &grads);
            cfg.step_par(1, &mut b.0, &mut b.1, &mut b.2, &grads);
            assert!(
                a.0.iter()
                    .zip(&b.0)
                    .all(|(x, y)| x.to_bits() == y.to_bits()),
                "{} parallel mismatch",
                cfg.name()
            );
        }
    }

    #[test]
    fn clip_factor_behaviour() {
        assert_eq!(grad_clip_factor(4.0, 10.0), 1.0); // norm 2 ≤ 10
        close(grad_clip_factor(100.0, 5.0), 0.5, 1e-7); // norm 10 → ×0.5
        assert_eq!(grad_clip_factor(0.0, 1.0), 1.0);
    }

    #[test]
    fn fp16_norm_matches_f32_norm() {
        let vals = [1.0f32, -2.0, 0.5];
        let bits: Vec<u16> = vals
            .iter()
            .map(|&v| mlp_tensor::f16::f32_to_f16_bits(v))
            .collect();
        let sq = fp16_grad_sq_norm(&bits, 1.0);
        close(sq as f32, 1.0 + 4.0 + 0.25, 1e-6);
        let sq_scaled = fp16_grad_sq_norm(&bits, 0.5);
        close(sq_scaled as f32, (1.0 + 4.0 + 0.25) * 0.25, 1e-6);
    }
}
