//! One subgroup's FP32 master state: the payload that moves between the
//! host and the storage tiers.
//!
//! Serialized layout (little endian), matching the paper's subgroup
//! composition "FP32 parameters, momentum, variance" (§3.4):
//!
//! ```text
//! [ params: n×f32 | momentum: n×f32 | variance: n×f32 ]
//! ```
//!
//! Gradients are *not* part of the serialized state — the baseline engine
//! additionally moves FP32 gradients through storage, the MLP-Offload
//! engine deliberately does not (delayed in-place conversion, §3.2).

use mlp_tensor::convert;
use mlp_tensor::HostBuffer;

use crate::adam::{adam_step_par, AdamConfig};
use crate::fused::fused_update_fp16;
use crate::optimizer::OptimizerConfig;

/// Borrowed, mutable view of one subgroup's FP32 master state laid out
/// contiguously in a single staging buffer (`[params | momentum |
/// variance]`, the serialized layout). This is the zero-copy half of the
/// fused update pipeline: the bytes fetched by the AIO engine are viewed
/// in place, mutated by the fused kernel, and flushed back from the same
/// buffer — no `from_bytes`/`to_buffer` allocation or copy on the hot
/// path. The owned [`SubgroupState`] remains the API for checkpoints and
/// tests.
pub struct SubgroupStateMut<'a> {
    /// Master parameters.
    pub params: &'a mut [f32],
    /// Optimizer slot 1 (Adam first moment; see [`crate::optimizer`]).
    pub momentum: &'a mut [f32],
    /// Optimizer slot 2 (Adam second moment).
    pub variance: &'a mut [f32],
}

impl<'a> SubgroupStateMut<'a> {
    /// Views the first `12 * n` bytes of `buf` as one subgroup's state.
    ///
    /// # Panics
    ///
    /// Panics if `buf` is shorter than `12 * n` bytes.
    pub fn from_buffer(buf: &'a mut HostBuffer, n: usize) -> Self {
        let all = buf.as_f32_mut(n * 3);
        let (params, rest) = all.split_at_mut(n);
        let (momentum, variance) = rest.split_at_mut(n);
        SubgroupStateMut {
            params,
            momentum,
            variance,
        }
    }

    /// Number of parameters.
    pub fn len(&self) -> usize {
        self.params.len()
    }

    /// Whether the subgroup is empty.
    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// Applies one fused optimizer step from FP16 gradient bits (`step`
    /// is the 1-based step being applied), emitting the new FP16 working
    /// copy into `fp16_out`. Single pass, no gradient materialization;
    /// bitwise identical to [`SubgroupState::apply_update_fp16_opt`]
    /// followed by [`SubgroupState::fp16_params`].
    pub fn apply_update_fused(
        &mut self,
        opt: &OptimizerConfig,
        step: u64,
        grads_fp16: &[u16],
        inv_scale: f32,
        fp16_out: &mut [u16],
    ) {
        fused_update_fp16(
            opt,
            step,
            self.params,
            self.momentum,
            self.variance,
            grads_fp16,
            inv_scale,
            fp16_out,
        );
    }

    /// [`SubgroupStateMut::apply_update_fused`] wrapped in a
    /// [`mlp_trace::Phase::UpdateKernel`] span (see [`crate::traced`]);
    /// identical to the untraced call when `trace` is disabled.
    #[allow(clippy::too_many_arguments)]
    pub fn apply_update_fused_traced(
        &mut self,
        trace: &mlp_trace::TraceSink,
        subgroup: i64,
        opt: &OptimizerConfig,
        step: u64,
        grads_fp16: &[u16],
        inv_scale: f32,
        fp16_out: &mut [u16],
    ) {
        crate::traced::fused_update_fp16_traced(
            trace,
            subgroup,
            opt,
            step,
            self.params,
            self.momentum,
            self.variance,
            grads_fp16,
            inv_scale,
            fp16_out,
        );
    }

    /// Copies the view into an owned [`SubgroupState`] (checkpoints,
    /// tests).
    pub fn to_owned_state(&self, step: u64) -> SubgroupState {
        SubgroupState {
            params: self.params.to_vec(),
            momentum: self.momentum.to_vec(),
            variance: self.variance.to_vec(),
            step,
        }
    }
}

/// FP32 master state of one subgroup.
#[derive(Clone, Debug, PartialEq)]
pub struct SubgroupState {
    /// Master parameters.
    pub params: Vec<f32>,
    /// Adam first moment.
    pub momentum: Vec<f32>,
    /// Adam second moment.
    pub variance: Vec<f32>,
    /// Completed optimizer steps (1-based at the next update).
    pub step: u64,
}

impl SubgroupState {
    /// Fresh state with the given initial master parameters and zeroed
    /// moments.
    pub fn new(params: Vec<f32>) -> Self {
        let n = params.len();
        SubgroupState {
            params,
            momentum: vec![0.0; n],
            variance: vec![0.0; n],
            step: 0,
        }
    }

    /// Number of parameters.
    pub fn len(&self) -> usize {
        self.params.len()
    }

    /// Whether the subgroup is empty.
    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// Serialized size in bytes.
    pub fn byte_len(&self) -> usize {
        self.params.len() * 12
    }

    /// Applies one Adam step using FP32 gradients.
    pub fn apply_update(&mut self, cfg: &AdamConfig, grads: &[f32]) {
        self.step += 1;
        adam_step_par(
            cfg,
            self.step,
            &mut self.params,
            &mut self.momentum,
            &mut self.variance,
            grads,
        );
    }

    /// Applies one step of any [`OptimizerConfig`] using FP32 gradients
    /// (the two state slots are reinterpreted per optimizer; see
    /// [`crate::optimizer`]).
    pub fn apply_update_opt(&mut self, opt: &OptimizerConfig, grads: &[f32]) {
        self.step += 1;
        opt.step_par(
            self.step,
            &mut self.params,
            &mut self.momentum,
            &mut self.variance,
            grads,
        );
    }

    /// [`SubgroupState::apply_update_opt`] from FP16 gradient bits with
    /// on-the-fly upscaling (delayed conversion) and inverse loss scaling.
    pub fn apply_update_fp16_opt(
        &mut self,
        opt: &OptimizerConfig,
        grads_fp16: &[u16],
        inv_scale: f32,
    ) {
        assert_eq!(
            grads_fp16.len(),
            self.params.len(),
            "gradient length mismatch"
        );
        let mut grads = vec![0.0f32; grads_fp16.len()];
        // Fused upscale × inverse-loss-scale: one pass over the buffer.
        convert::upscale_scaled_par(grads_fp16, &mut grads, inv_scale);
        self.apply_update_opt(opt, &grads);
    }

    /// Applies one Adam step from FP16 gradient bits, upscaling on the fly
    /// (the delayed-conversion path). `scale` divides the gradients first
    /// (inverse loss scale).
    pub fn apply_update_fp16(&mut self, cfg: &AdamConfig, grads_fp16: &[u16], inv_scale: f32) {
        assert_eq!(
            grads_fp16.len(),
            self.params.len(),
            "gradient length mismatch"
        );
        let mut grads = vec![0.0f32; grads_fp16.len()];
        convert::upscale_par(grads_fp16, &mut grads);
        if inv_scale != 1.0 {
            for g in &mut grads {
                *g *= inv_scale;
            }
        }
        self.apply_update(cfg, &grads);
    }

    /// Serializes into a [`HostBuffer`] (`params | momentum | variance`).
    pub fn to_buffer(&self) -> HostBuffer {
        let n = self.params.len();
        let mut buf = HostBuffer::zeroed(n * 12);
        buf.write_f32(0, &self.params);
        buf.write_f32(n * 4, &self.momentum);
        buf.write_f32(n * 8, &self.variance);
        buf
    }

    /// Deserializes from bytes produced by [`SubgroupState::to_buffer`].
    /// `step` is tracked host-side (it is rank-global), so the caller
    /// supplies it.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is not a multiple of 12.
    pub fn from_bytes(bytes: &[u8], step: u64) -> Self {
        assert!(
            bytes.len().is_multiple_of(12),
            "state bytes must be a multiple of 12"
        );
        let n = bytes.len() / 12;
        let buf = HostBuffer::from_bytes(bytes.to_vec());
        SubgroupState {
            params: buf.read_f32(0, n),
            momentum: buf.read_f32(n * 4, n),
            variance: buf.read_f32(n * 8, n),
            step,
        }
    }

    /// The FP16 working copy of the parameters (what is pushed back to the
    /// GPU after an update).
    pub fn fp16_params(&self) -> Vec<u16> {
        let mut out = vec![0u16; self.params.len()];
        convert::downscale_par(&self.params, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlp_tensor::F16;
    use proptest::prelude::*;

    #[test]
    fn mut_view_aliases_serialized_layout() {
        let mut st = SubgroupState::new((0..40).map(|i| i as f32 * 0.25).collect());
        st.momentum[7] = -1.5;
        st.variance[39] = 9.0;
        let mut buf = st.to_buffer();
        {
            let view = SubgroupStateMut::from_buffer(&mut buf, 40);
            assert_eq!(view.len(), 40);
            assert_eq!(view.params, &st.params[..]);
            assert_eq!(view.momentum, &st.momentum[..]);
            assert_eq!(view.variance, &st.variance[..]);
            assert_eq!(view.to_owned_state(3), {
                let mut s = st.clone();
                s.step = 3;
                s
            });
        }
        {
            let view = SubgroupStateMut::from_buffer(&mut buf, 40);
            view.params[0] = 123.0;
            view.variance[0] = 7.0;
        }
        let back = SubgroupState::from_bytes(buf.as_bytes(), 0);
        assert_eq!(back.params[0], 123.0);
        assert_eq!(back.variance[0], 7.0);
        assert_eq!(back.momentum[7], -1.5);
    }

    #[test]
    fn fused_view_update_matches_owned_multi_pass() {
        let opt = OptimizerConfig::default();
        let grads: Vec<u16> = (0..64u32)
            .map(|i| F16::from_f32((i as f32 - 32.0) * 0.125).to_bits())
            .collect();
        let mut owned = SubgroupState::new((0..64).map(|i| (i as f32).cos()).collect());
        let mut buf = owned.to_buffer();
        for step in 1..=3 {
            owned.apply_update_fp16_opt(&opt, &grads, 0.5);
            let expect_h = owned.fp16_params();

            let mut view = SubgroupStateMut::from_buffer(&mut buf, 64);
            let mut got_h = vec![0u16; 64];
            view.apply_update_fused(&opt, step, &grads, 0.5, &mut got_h);
            assert_eq!(expect_h, got_h, "step {step}");
        }
        assert_eq!(SubgroupState::from_bytes(buf.as_bytes(), 3), {
            let mut s = owned.clone();
            s.step = 3;
            s
        });
    }

    #[test]
    fn buffer_round_trip_is_exact() {
        let mut st = SubgroupState::new((0..100).map(|i| i as f32 * 0.13).collect());
        st.momentum[3] = -7.5;
        st.variance[99] = 42.0;
        st.step = 11;
        let buf = st.to_buffer();
        assert_eq!(buf.len(), st.byte_len());
        let back = SubgroupState::from_bytes(buf.as_bytes(), 11);
        assert_eq!(back, st);
    }

    #[test]
    fn fp16_update_equals_fp32_update_on_representable_grads() {
        let cfg = AdamConfig::default();
        let grads_f32: Vec<f32> = (0..64).map(|i| (i as f32 - 32.0) * 0.25).collect();
        let grads_f16: Vec<u16> = grads_f32
            .iter()
            .map(|&g| F16::from_f32(g).to_bits())
            .collect();

        let mut a = SubgroupState::new(vec![1.0; 64]);
        let mut b = a.clone();
        a.apply_update(&cfg, &grads_f32);
        b.apply_update_fp16(&cfg, &grads_f16, 1.0);
        assert_eq!(a, b);
    }

    #[test]
    fn inv_scale_divides_gradients() {
        let cfg = AdamConfig::default();
        let mut a = SubgroupState::new(vec![1.0; 8]);
        let mut b = a.clone();
        let g = [2.0f32; 8];
        let g16: Vec<u16> = g
            .iter()
            .map(|&x| F16::from_f32(x * 4.0).to_bits())
            .collect();
        a.apply_update(&cfg, &g);
        b.apply_update_fp16(&cfg, &g16, 0.25);
        assert_eq!(a.params, b.params);
    }

    #[test]
    fn step_counter_advances() {
        let cfg = AdamConfig::default();
        let mut st = SubgroupState::new(vec![0.0; 4]);
        st.apply_update(&cfg, &[0.1; 4]);
        st.apply_update(&cfg, &[0.1; 4]);
        assert_eq!(st.step, 2);
    }

    #[test]
    fn fp16_params_round_half_precision() {
        let st = SubgroupState::new(vec![1.0, 0.5, 65504.0, 1e-9]);
        let h = st.fp16_params();
        assert_eq!(F16::from_bits(h[0]).to_f32(), 1.0);
        assert_eq!(F16::from_bits(h[1]).to_f32(), 0.5);
        assert_eq!(F16::from_bits(h[2]).to_f32(), 65504.0);
        assert_eq!(F16::from_bits(h[3]).to_f32(), 0.0); // underflow
    }

    proptest! {
        #[test]
        fn serialization_round_trip(
            params in proptest::collection::vec(-1e3f32..1e3, 1..128),
            step in 0u64..1000,
        ) {
            let n = params.len();
            let mut st = SubgroupState::new(params);
            st.momentum = (0..n).map(|i| i as f32 * 0.01).collect();
            st.variance = (0..n).map(|i| i as f32 * 0.02).collect();
            st.step = step;
            let back = SubgroupState::from_bytes(st.to_buffer().as_bytes(), step);
            prop_assert_eq!(back, st);
        }
    }
}
