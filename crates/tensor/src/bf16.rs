//! bfloat16: the top 16 bits of an IEEE 754 binary32, with round to
//! nearest even on narrowing.
//!
//! The paper trains in FP16 *or BF16* (§2); BF16 shares the f32 exponent
//! range, so it never overflows where f32 doesn't, at the cost of a 7-bit
//! mantissa.

/// A bfloat16 value, stored as its bit pattern.
#[derive(Clone, Copy, PartialEq, Eq, Default)]
#[repr(transparent)]
pub struct BF16(pub u16);

impl BF16 {
    /// Positive zero.
    pub const ZERO: BF16 = BF16(0);
    /// One.
    pub const ONE: BF16 = BF16(0x3F80);
    /// Positive infinity.
    pub const INFINITY: BF16 = BF16(0x7F80);
    /// A canonical quiet NaN.
    pub const NAN: BF16 = BF16(0x7FC0);

    /// Narrows an `f32` with round-to-nearest-even.
    #[inline]
    pub fn from_f32(x: f32) -> BF16 {
        let bits = x.to_bits();
        if x.is_nan() {
            // Keep a quiet NaN; preserve sign and top payload bits.
            return BF16(((bits >> 16) as u16) | 0x0040);
        }
        let round_bit = 0x8000u32;
        let rem = bits & 0xFFFF;
        let mut hi = (bits >> 16) as u16;
        if rem > round_bit || (rem == round_bit && (hi & 1) == 1) {
            hi = hi.wrapping_add(1); // may carry into exponent/infinity: correct in IEEE encoding
        }
        BF16(hi)
    }

    /// Widens to `f32` exactly.
    #[inline]
    pub fn to_f32(self) -> f32 {
        f32::from_bits((self.0 as u32) << 16)
    }

    /// Raw bit pattern.
    #[inline]
    pub fn to_bits(self) -> u16 {
        self.0
    }

    /// Constructs from a raw bit pattern.
    #[inline]
    pub fn from_bits(bits: u16) -> BF16 {
        BF16(bits)
    }

    /// Whether the value is NaN.
    #[inline]
    pub fn is_nan(self) -> bool {
        (self.0 & 0x7F80) == 0x7F80 && (self.0 & 0x007F) != 0
    }

    /// Whether the value is finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        (self.0 & 0x7F80) != 0x7F80
    }
}

impl std::fmt::Debug for BF16 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BF16({} = {:#06x})", self.to_f32(), self.0)
    }
}

impl From<f32> for BF16 {
    fn from(x: f32) -> Self {
        BF16::from_f32(x)
    }
}

impl From<BF16> for f32 {
    fn from(h: BF16) -> Self {
        h.to_f32()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn known_constants() {
        assert_eq!(BF16::from_f32(0.0).to_bits(), 0x0000);
        assert_eq!(BF16::from_f32(1.0), BF16::ONE);
        assert_eq!(BF16::from_f32(-2.0).to_bits(), 0xC000);
        assert_eq!(BF16::from_f32(f32::INFINITY), BF16::INFINITY);
        assert!(BF16::from_f32(f32::NAN).is_nan());
    }

    #[test]
    fn exhaustive_round_trip() {
        for bits in 0..=u16::MAX {
            let b = BF16::from_bits(bits);
            let back = BF16::from_f32(b.to_f32());
            if b.is_nan() {
                assert!(back.is_nan());
            } else {
                assert_eq!(back.to_bits(), bits, "round trip failed at {bits:#06x}");
            }
        }
    }

    #[test]
    fn rounding_ties_to_even() {
        // 1.0 + 2⁻⁸ is halfway between BF16(1.0) and the next value; the
        // even mantissa (1.0) wins.
        let tie = f32::from_bits(0x3F80_8000);
        assert_eq!(BF16::from_f32(tie), BF16::ONE);
        // Odd mantissa ties round up.
        let tie_up = f32::from_bits(0x3F81_8000);
        assert_eq!(BF16::from_f32(tie_up).to_bits(), 0x3F82);
    }

    #[test]
    fn overflow_carries_to_infinity() {
        // Largest finite BF16 plus more than half a ULP.
        let max_bf16 = f32::from_bits(0x7F7F_0000);
        let above = f32::from_bits(0x7F7F_C000);
        assert_eq!(BF16::from_f32(max_bf16).to_bits(), 0x7F7F);
        assert_eq!(BF16::from_f32(above), BF16::INFINITY);
    }

    proptest! {
        #[test]
        fn exponent_range_matches_f32(x in proptest::num::f32::NORMAL) {
            // BF16 never overflows a finite normal f32.
            let b = BF16::from_f32(x);
            prop_assert!(b.is_finite() || x.abs() > 3.3e38);
        }

        #[test]
        fn relative_error_bounded(x in -1e30f32..1e30) {
            let b = BF16::from_f32(x).to_f32();
            if x != 0.0 && x.abs() > f32::MIN_POSITIVE {
                // 7 mantissa bits → relative error ≤ 2⁻⁸.
                prop_assert!(((b - x) / x).abs() <= 2.0f32.powi(-8));
            }
        }
    }
}
