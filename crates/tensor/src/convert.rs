//! Bulk mixed-precision conversion kernels.
//!
//! These implement the numeric half of the paper's *delayed in-place
//! mixed-precision gradient conversion* (§3.2): FP16 gradients parked in the
//! host accumulation buffer are upscaled to FP32 on the fly during the
//! update phase, instead of being eagerly upscaled and flushed through the
//! storage tiers during the backward pass. On a modern CPU this conversion
//! sustains tens of GB/s — an order of magnitude above tertiary-storage
//! fetch bandwidth — which is exactly why the delayed strategy wins.

use rayon::prelude::*;

use crate::f16::{f16_bits_to_f32, f32_to_f16_bits};
use crate::PAR_CHUNK;

/// Upscales FP16 (raw bits) to FP32, element by element.
///
/// # Panics
///
/// Panics if `src` and `dst` differ in length.
pub fn upscale(src: &[u16], dst: &mut [f32]) {
    assert_eq!(src.len(), dst.len(), "upscale length mismatch");
    for (d, &s) in dst.iter_mut().zip(src) {
        *d = f16_bits_to_f32(s);
    }
}

/// Parallel [`upscale`] (rayon), chunked to amortize scheduling.
pub fn upscale_par(src: &[u16], dst: &mut [f32]) {
    assert_eq!(src.len(), dst.len(), "upscale length mismatch");
    if src.len() < PAR_CHUNK {
        return upscale(src, dst);
    }
    dst.par_chunks_mut(PAR_CHUNK)
        .zip(src.par_chunks(PAR_CHUNK))
        .for_each(|(d, s)| upscale(s, d));
}

/// Downscales FP32 to FP16 bits with round-to-nearest-even.
///
/// # Panics
///
/// Panics if `src` and `dst` differ in length.
pub fn downscale(src: &[f32], dst: &mut [u16]) {
    assert_eq!(src.len(), dst.len(), "downscale length mismatch");
    for (d, &s) in dst.iter_mut().zip(src) {
        *d = f32_to_f16_bits(s);
    }
}

/// Parallel [`downscale`] (rayon).
pub fn downscale_par(src: &[f32], dst: &mut [u16]) {
    assert_eq!(src.len(), dst.len(), "downscale length mismatch");
    if src.len() < PAR_CHUNK {
        return downscale(src, dst);
    }
    dst.par_chunks_mut(PAR_CHUNK)
        .zip(src.par_chunks(PAR_CHUNK))
        .for_each(|(d, s)| downscale(s, d));
}

/// Upscales `count` FP16 values stored at the *front* of `buf` (little
/// endian, bytes `0..2*count`) into FP32 occupying the whole buffer
/// (`0..4*count`), **in place** — no second buffer is allocated, mirroring
/// the paper's in-place conversion inside the pinned host gradient buffer.
///
/// Iterates backwards so the expanding writes never clobber unread input:
/// the f32 destination of element `i` starts at byte `4i ≥ 2i + 2` for
/// `i ≥ 1`, and element 0 is read before it is overwritten.
///
/// # Panics
///
/// Panics if `buf` is shorter than `4 * count` bytes.
pub fn upscale_in_place(buf: &mut [u8], count: usize) {
    assert!(
        buf.len() >= count * 4,
        "buffer too small for in-place upscale"
    );
    for i in (0..count).rev() {
        let h = u16::from_le_bytes([buf[2 * i], buf[2 * i + 1]]);
        let f = f16_bits_to_f32(h);
        buf[4 * i..4 * i + 4].copy_from_slice(&f.to_le_bytes());
    }
}

/// Inverse of [`upscale_in_place`]: compacts `count` FP32 values occupying
/// `buf[0..4*count]` into FP16 bits at the front (`0..2*count`), in place.
/// Iterates forwards; the shrinking writes trail the reads.
///
/// # Panics
///
/// Panics if `buf` is shorter than `4 * count` bytes.
pub fn downscale_in_place(buf: &mut [u8], count: usize) {
    assert!(
        buf.len() >= count * 4,
        "buffer too small for in-place downscale"
    );
    for i in 0..count {
        let f = f32::from_le_bytes([buf[4 * i], buf[4 * i + 1], buf[4 * i + 2], buf[4 * i + 3]]);
        let h = f32_to_f16_bits(f);
        buf[2 * i..2 * i + 2].copy_from_slice(&h.to_le_bytes());
    }
}

/// Measures sustained FP16→FP32 upscale throughput in bytes of FP16 input
/// per second, used to parameterize the performance model (the paper
/// reports 65 GB/s on Testbed-1).
pub fn measure_upscale_throughput(elements: usize, repeats: usize) -> f64 {
    let src: Vec<u16> = (0..elements).map(|i| (i % 60000) as u16).collect();
    let mut dst = vec![0.0f32; elements];
    let start = std::time::Instant::now();
    for _ in 0..repeats {
        upscale_par(&src, &mut dst);
        std::hint::black_box(&dst);
    }
    let secs = start.elapsed().as_secs_f64();
    (elements * 2 * repeats) as f64 / secs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::f16::F16;
    use proptest::prelude::*;

    #[test]
    fn upscale_matches_scalar_conversion() {
        let src: Vec<u16> = (0..1000u32).map(|i| (i * 37) as u16).collect();
        let mut dst = vec![0.0f32; src.len()];
        upscale(&src, &mut dst);
        for (i, &h) in src.iter().enumerate() {
            let expect = F16::from_bits(h).to_f32();
            if expect.is_nan() {
                assert!(dst[i].is_nan());
            } else {
                assert_eq!(dst[i], expect);
            }
        }
    }

    #[test]
    fn downscale_then_upscale_is_idempotent() {
        let vals: Vec<f32> = (0..512).map(|i| (i as f32 - 256.0) * 0.37).collect();
        let mut h = vec![0u16; vals.len()];
        downscale(&vals, &mut h);
        let mut up = vec![0.0f32; vals.len()];
        upscale(&h, &mut up);
        let mut h2 = vec![0u16; vals.len()];
        downscale(&up, &mut h2);
        assert_eq!(h, h2);
    }

    #[test]
    fn parallel_kernels_match_sequential() {
        let src: Vec<u16> = (0..200_000u32).map(|i| (i % 65_536) as u16).collect();
        let mut seq = vec![0.0f32; src.len()];
        let mut par = vec![0.0f32; src.len()];
        upscale(&src, &mut seq);
        upscale_par(&src, &mut par);
        assert_eq!(
            seq.iter().map(|f| f.to_bits()).collect::<Vec<_>>(),
            par.iter().map(|f| f.to_bits()).collect::<Vec<_>>()
        );

        let mut dseq = vec![0u16; seq.len()];
        let mut dpar = vec![0u16; seq.len()];
        downscale(&seq, &mut dseq);
        downscale_par(&par, &mut dpar);
        assert_eq!(dseq, dpar);
    }

    #[test]
    fn in_place_upscale_matches_out_of_place() {
        let halves: Vec<u16> = (0..333u32).map(|i| (i * 197) as u16).collect();
        let n = halves.len();
        let mut buf = vec![0u8; n * 4];
        for (i, h) in halves.iter().enumerate() {
            buf[2 * i..2 * i + 2].copy_from_slice(&h.to_le_bytes());
        }
        upscale_in_place(&mut buf, n);
        let mut expect = vec![0.0f32; n];
        upscale(&halves, &mut expect);
        for i in 0..n {
            let got = f32::from_le_bytes(buf[4 * i..4 * i + 4].try_into().unwrap());
            assert_eq!(got.to_bits(), expect[i].to_bits(), "element {i}");
        }
    }

    #[test]
    fn in_place_round_trip() {
        let n = 257;
        let vals: Vec<f32> = (0..n).map(|i| i as f32 * 0.5 - 64.0).collect();
        let mut buf = vec![0u8; n * 4];
        // Values chosen exactly representable in f16, so the cycle is exact.
        let mut h = vec![0u16; n];
        downscale(&vals, &mut h);
        for (i, hh) in h.iter().enumerate() {
            buf[2 * i..2 * i + 2].copy_from_slice(&hh.to_le_bytes());
        }
        upscale_in_place(&mut buf, n);
        downscale_in_place(&mut buf, n);
        for (i, hh) in h.iter().enumerate() {
            let got = u16::from_le_bytes(buf[2 * i..2 * i + 2].try_into().unwrap());
            assert_eq!(got, *hh, "element {i}");
        }
    }

    #[test]
    fn zero_count_in_place_is_noop() {
        let mut buf = vec![7u8; 16];
        upscale_in_place(&mut buf, 0);
        downscale_in_place(&mut buf, 0);
        assert!(buf.iter().all(|&b| b == 7));
    }

    #[test]
    #[should_panic(expected = "buffer too small")]
    fn in_place_upscale_rejects_short_buffer() {
        let mut buf = vec![0u8; 7];
        upscale_in_place(&mut buf, 2);
    }

    proptest! {
        #[test]
        fn in_place_equals_out_of_place(halves in proptest::collection::vec(any::<u16>(), 0..200)) {
            let n = halves.len();
            let mut buf = vec![0u8; n * 4];
            for (i, h) in halves.iter().enumerate() {
                buf[2 * i..2 * i + 2].copy_from_slice(&h.to_le_bytes());
            }
            upscale_in_place(&mut buf, n);
            let mut expect = vec![0.0f32; n];
            upscale(&halves, &mut expect);
            for i in 0..n {
                let got = f32::from_le_bytes(buf[4 * i..4 * i + 4].try_into().unwrap());
                prop_assert_eq!(got.to_bits(), expect[i].to_bits());
            }
        }
    }
}

/// Fused upscale-and-scale: `dst[i] = f32(src[i]) * scale`, the exact
/// operation the delayed-conversion update path performs (FP16 gradient →
/// FP32 × inverse loss scale) — fusing avoids a second pass over the
/// gradient buffer.
pub fn upscale_scaled(src: &[u16], dst: &mut [f32], scale: f32) {
    assert_eq!(src.len(), dst.len(), "upscale length mismatch");
    for (d, &s) in dst.iter_mut().zip(src) {
        *d = f16_bits_to_f32(s) * scale;
    }
}

/// Parallel [`upscale_scaled`].
pub fn upscale_scaled_par(src: &[u16], dst: &mut [f32], scale: f32) {
    assert_eq!(src.len(), dst.len(), "upscale length mismatch");
    if src.len() < PAR_CHUNK {
        return upscale_scaled(src, dst, scale);
    }
    dst.par_chunks_mut(PAR_CHUNK)
        .zip(src.par_chunks(PAR_CHUNK))
        .for_each(|(d, s)| upscale_scaled(s, d, scale));
}

/// Fused scale-and-downscale: `dst[i] = f16(src[i] * scale)` (loss scaling
/// applied while producing the FP16 working copy).
pub fn downscale_scaled(src: &[f32], dst: &mut [u16], scale: f32) {
    assert_eq!(src.len(), dst.len(), "downscale length mismatch");
    for (d, &s) in dst.iter_mut().zip(src) {
        *d = f32_to_f16_bits(s * scale);
    }
}

#[cfg(test)]
mod fused_tests {
    use super::*;

    #[test]
    fn fused_upscale_equals_separate_passes() {
        let src: Vec<u16> = (0..500u32).map(|i| (i * 131) as u16).collect();
        let mut fused = vec![0.0f32; src.len()];
        upscale_scaled(&src, &mut fused, 0.25);
        let mut two_pass = vec![0.0f32; src.len()];
        upscale(&src, &mut two_pass);
        for v in &mut two_pass {
            *v *= 0.25;
        }
        for (a, b) in fused.iter().zip(&two_pass) {
            if a.is_nan() {
                assert!(b.is_nan());
            } else {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn fused_parallel_matches_scalar() {
        let src: Vec<u16> = (0..150_000u32).map(|i| (i % 60_000) as u16).collect();
        let mut a = vec![0.0f32; src.len()];
        let mut b = vec![0.0f32; src.len()];
        upscale_scaled(&src, &mut a, 1.5);
        upscale_scaled_par(&src, &mut b, 1.5);
        assert!(a.iter().zip(&b).all(|(x, y)| x.to_bits() == y.to_bits()));
    }

    #[test]
    fn scale_of_one_is_plain_upscale() {
        let src: Vec<u16> = vec![0x3C00, 0x4000, 0xC000]; // 1, 2, -2
        let mut fused = vec![0.0f32; 3];
        upscale_scaled(&src, &mut fused, 1.0);
        assert_eq!(fused, vec![1.0, 2.0, -2.0]);
    }

    #[test]
    fn downscale_scaled_applies_factor_first() {
        let src = [2.0f32, -4.0];
        let mut out = [0u16; 2];
        downscale_scaled(&src, &mut out, 0.5);
        assert_eq!(crate::f16::F16::from_bits(out[0]).to_f32(), 1.0);
        assert_eq!(crate::f16::F16::from_bits(out[1]).to_f32(), -2.0);
    }
}

/// Upscales BF16 (raw bits) to FP32 (exact: BF16 is truncated FP32).
pub fn upscale_bf16(src: &[u16], dst: &mut [f32]) {
    assert_eq!(src.len(), dst.len(), "upscale length mismatch");
    for (d, &s) in dst.iter_mut().zip(src) {
        *d = crate::bf16::BF16::from_bits(s).to_f32();
    }
}

/// Downscales FP32 to BF16 bits with round-to-nearest-even.
pub fn downscale_bf16(src: &[f32], dst: &mut [u16]) {
    assert_eq!(src.len(), dst.len(), "downscale length mismatch");
    for (d, &s) in dst.iter_mut().zip(src) {
        *d = crate::bf16::BF16::from_f32(s).to_bits();
    }
}

/// Parallel [`upscale_bf16`].
pub fn upscale_bf16_par(src: &[u16], dst: &mut [f32]) {
    assert_eq!(src.len(), dst.len(), "upscale length mismatch");
    if src.len() < PAR_CHUNK {
        return upscale_bf16(src, dst);
    }
    dst.par_chunks_mut(PAR_CHUNK)
        .zip(src.par_chunks(PAR_CHUNK))
        .for_each(|(d, s)| upscale_bf16(s, d));
}

#[cfg(test)]
mod bf16_kernel_tests {
    use super::*;

    #[test]
    fn bf16_round_trip_is_exact_for_bf16_values() {
        let bits: Vec<u16> = (0..2048u32).map(|i| (i * 31) as u16).collect();
        let finite: Vec<u16> = bits
            .iter()
            .copied()
            .filter(|&b| crate::bf16::BF16::from_bits(b).is_finite())
            .collect();
        let mut f = vec![0.0f32; finite.len()];
        upscale_bf16(&finite, &mut f);
        let mut back = vec![0u16; finite.len()];
        downscale_bf16(&f, &mut back);
        assert_eq!(back, finite);
    }

    #[test]
    fn bf16_parallel_matches_scalar() {
        let src: Vec<u16> = (0..150_000u32).map(|i| (i % 50_000) as u16).collect();
        let mut a = vec![0.0f32; src.len()];
        let mut b = vec![0.0f32; src.len()];
        upscale_bf16(&src, &mut a);
        upscale_bf16_par(&src, &mut b);
        assert!(a.iter().zip(&b).all(|(x, y)| x.to_bits() == y.to_bits()));
    }

    #[test]
    fn bf16_never_overflows_where_f32_does_not() {
        let vals = [1e38f32, -2.5e38, 1e-38];
        let mut bits = vec![0u16; 3];
        downscale_bf16(&vals, &mut bits);
        let mut back = vec![0.0f32; 3];
        upscale_bf16(&bits, &mut back);
        assert!(back.iter().all(|v| v.is_finite()));
        // Relative error within 2⁻⁸.
        for (v, b) in vals.iter().zip(&back) {
            assert!(((v - b) / v).abs() <= 2.0f32.powi(-8));
        }
    }
}
