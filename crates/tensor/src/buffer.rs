//! Byte-addressed host staging buffers with typed accessors.
//!
//! A [`HostBuffer`] is the unit of I/O in the functional offloading path: a
//! subgroup's FP32 optimizer state is serialized into one before being
//! flushed to a tier, and deserialized out of one after a fetch. The fused
//! update pipeline goes further and mutates the fetched bytes *in place*
//! through [`HostBuffer::as_f32_mut`], so the backing storage is allocated
//! as `u32` words: the data pointer is always 4-byte aligned and
//! reinterpreting it as `f32` is sound (every bit pattern is a valid
//! `f32`/`u8`). That reinterpretation — together with the aligned bounce
//! buffers in [`crate::aligned`] and the syscall shim in `mlp-aio` — is one
//! of the few contained uses of `unsafe` in the workspace; all copy-based
//! accessors (`from_le_bytes`/`to_le_bytes`) remain safe code.

/// A byte-addressed staging buffer with a 4-byte-aligned backing store.
#[derive(Clone, Default)]
pub struct HostBuffer {
    /// Backing words; allocated so `words.len() * 4 >= len`.
    words: Vec<u32>,
    /// Logical length in bytes.
    len: usize,
}

impl HostBuffer {
    /// Creates a zero-filled buffer of `len` bytes.
    pub fn zeroed(len: usize) -> Self {
        HostBuffer {
            words: vec![0u32; len.div_ceil(4)],
            len,
        }
    }

    /// Creates a buffer holding a copy of `data`.
    pub fn from_bytes(data: Vec<u8>) -> Self {
        let mut buf = HostBuffer::zeroed(data.len());
        buf.as_bytes_mut().copy_from_slice(&data);
        buf
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Read-only byte view.
    pub fn as_bytes(&self) -> &[u8] {
        // SAFETY: `zeroed` allocates `words` with `len.div_ceil(4)` u32s
        // and `len` never grows afterwards, so the pointer is valid for
        // reads of `self.len <= words.len() * 4` bytes within one
        // allocation (and `len <= isize::MAX` follows from the Vec's own
        // size bound). `u8` has alignment 1, every initialized byte of a
        // `u32` is a valid `u8`, and the cast keeps the Vec allocation's
        // provenance. The returned borrow is tied to `&self`, so the Vec
        // cannot be dropped, reallocated, or written through `&mut self`
        // while the slice lives.
        unsafe { std::slice::from_raw_parts(self.words.as_ptr().cast::<u8>(), self.len) }
    }

    /// Mutable byte view.
    pub fn as_bytes_mut(&mut self) -> &mut [u8] {
        // SAFETY: same bounds/validity argument as `as_bytes`; in
        // addition `&mut self` gives exclusive access to `words` for the
        // borrow's lifetime, so this is the only live view into the
        // allocation (no aliasing), and writing any byte value keeps the
        // underlying u32s initialized and valid.
        unsafe { std::slice::from_raw_parts_mut(self.words.as_mut_ptr().cast::<u8>(), self.len) }
    }

    /// Consumes the buffer, returning its contents as plain bytes (copies:
    /// the aligned backing store cannot be transferred to a `Vec<u8>`
    /// without changing the allocation's layout).
    pub fn into_bytes(self) -> Vec<u8> {
        self.as_bytes().to_vec()
    }

    /// In-place `f32` view of the first `count` elements (bytes
    /// `0..4*count` interpreted as native-endian `f32`, which equals the
    /// serialized little-endian layout on every supported target).
    ///
    /// # Panics
    ///
    /// Panics if `4 * count` exceeds the buffer length.
    pub fn as_f32(&self, count: usize) -> &[f32] {
        assert!(count * 4 <= self.len, "as_f32 out of bounds");
        // SAFETY: the backing store is a `Vec<u32>`, so the pointer is
        // 4-byte aligned, which satisfies `f32`'s alignment; the assert
        // above plus the allocation invariant (`words.len() * 4 >= len`)
        // bound the view to `count <= words.len()` elements inside the
        // allocation. `u32` and `f32` have identical size/alignment and
        // every initialized `u32` bit pattern is a valid `f32` (including
        // NaN payloads), so the transmute of contents is lossless. The
        // borrow is tied to `&self`, preventing concurrent mutation or
        // reallocation for its lifetime.
        unsafe { std::slice::from_raw_parts(self.words.as_ptr().cast::<f32>(), count) }
    }

    /// Mutable in-place `f32` view of the first `count` elements — the
    /// zero-copy window the fused update kernels mutate directly, instead
    /// of deserializing into fresh `Vec<f32>`s.
    ///
    /// # Panics
    ///
    /// Panics if `4 * count` exceeds the buffer length.
    pub fn as_f32_mut(&mut self, count: usize) -> &mut [f32] {
        assert!(count * 4 <= self.len, "as_f32_mut out of bounds");
        // SAFETY: same alignment/bounds/validity argument as `as_f32`;
        // `&mut self` additionally guarantees this is the only live view
        // of the allocation (no aliasing), and any `f32` the kernels
        // store back is a valid `u32` bit pattern, so the backing words
        // stay initialized for later byte-level reads.
        unsafe { std::slice::from_raw_parts_mut(self.words.as_mut_ptr().cast::<f32>(), count) }
    }

    /// Copies `count` little-endian `f32`s starting at byte `offset`.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn read_f32(&self, offset: usize, count: usize) -> Vec<f32> {
        let end = offset + count * 4;
        assert!(end <= self.len, "read_f32 out of bounds");
        self.as_bytes()[offset..end]
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect()
    }

    /// Copies `dst.len()` little-endian `f32`s starting at byte `offset`
    /// into `dst` without allocating.
    pub fn read_f32_into(&self, offset: usize, dst: &mut [f32]) {
        let end = offset + dst.len() * 4;
        assert!(end <= self.len, "read_f32_into out of bounds");
        for (d, c) in dst
            .iter_mut()
            .zip(self.as_bytes()[offset..end].chunks_exact(4))
        {
            *d = f32::from_le_bytes([c[0], c[1], c[2], c[3]]);
        }
    }

    /// Writes `src` as little-endian `f32`s starting at byte `offset`.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn write_f32(&mut self, offset: usize, src: &[f32]) {
        let end = offset + src.len() * 4;
        assert!(end <= self.len, "write_f32 out of bounds");
        for (c, s) in self.as_bytes_mut()[offset..end]
            .chunks_exact_mut(4)
            .zip(src)
        {
            c.copy_from_slice(&s.to_le_bytes());
        }
    }

    /// Copies `count` little-endian `u16`s (FP16 bit patterns) starting at
    /// byte `offset`.
    pub fn read_u16(&self, offset: usize, count: usize) -> Vec<u16> {
        let end = offset + count * 2;
        assert!(end <= self.len, "read_u16 out of bounds");
        self.as_bytes()[offset..end]
            .chunks_exact(2)
            .map(|c| u16::from_le_bytes([c[0], c[1]]))
            .collect()
    }

    /// Writes `src` as little-endian `u16`s starting at byte `offset`.
    pub fn write_u16(&mut self, offset: usize, src: &[u16]) {
        let end = offset + src.len() * 2;
        assert!(end <= self.len, "write_u16 out of bounds");
        for (c, s) in self.as_bytes_mut()[offset..end]
            .chunks_exact_mut(2)
            .zip(src)
        {
            c.copy_from_slice(&s.to_le_bytes());
        }
    }
}

impl std::fmt::Debug for HostBuffer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "HostBuffer({} bytes)", self.len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f32_round_trip() {
        let mut buf = HostBuffer::zeroed(64);
        let vals = [1.5f32, -2.25, 0.0, f32::MAX];
        buf.write_f32(8, &vals);
        assert_eq!(buf.read_f32(8, 4), vals);
    }

    #[test]
    fn u16_round_trip() {
        let mut buf = HostBuffer::zeroed(32);
        let vals = [0u16, 1, 0x7C00, 0xFFFF];
        buf.write_u16(4, &vals);
        assert_eq!(buf.read_u16(4, 4), vals);
    }

    #[test]
    fn read_into_avoids_allocation_and_matches() {
        let mut buf = HostBuffer::zeroed(40);
        let vals: Vec<f32> = (0..10).map(|i| i as f32 * 0.5).collect();
        buf.write_f32(0, &vals);
        let mut out = vec![0.0f32; 10];
        buf.read_f32_into(0, &mut out);
        assert_eq!(out, vals);
    }

    #[test]
    fn layout_is_little_endian() {
        let mut buf = HostBuffer::zeroed(4);
        buf.write_f32(0, &[1.0]);
        assert_eq!(buf.as_bytes(), &1.0f32.to_le_bytes());
    }

    #[test]
    fn in_place_view_sees_serialized_values() {
        let mut buf = HostBuffer::zeroed(16);
        let vals = [0.25f32, -3.5, 1e-40, f32::INFINITY];
        buf.write_f32(0, &vals);
        assert_eq!(buf.as_f32(4), vals);
        buf.as_f32_mut(4)[1] = 7.0;
        assert_eq!(buf.read_f32(0, 4), vec![0.25, 7.0, 1e-40, f32::INFINITY]);
    }

    #[test]
    fn in_place_view_survives_byte_writes() {
        let mut buf = HostBuffer::zeroed(8);
        buf.as_bytes_mut().copy_from_slice(&[0, 0, 128, 63, 0, 0, 0, 64]); // 1.0, 2.0 LE
        assert_eq!(buf.as_f32(2), [1.0, 2.0]);
    }

    #[test]
    fn odd_byte_lengths_round_trip() {
        let mut buf = HostBuffer::zeroed(7);
        assert_eq!(buf.len(), 7);
        buf.as_bytes_mut().copy_from_slice(&[1, 2, 3, 4, 5, 6, 7]);
        assert_eq!(buf.clone().into_bytes(), vec![1, 2, 3, 4, 5, 6, 7]);
        assert_eq!(HostBuffer::from_bytes(vec![9; 5]).as_bytes(), &[9u8; 5]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn oob_write_panics() {
        let mut buf = HostBuffer::zeroed(4);
        buf.write_f32(4, &[1.0]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn oob_f32_view_panics() {
        let mut buf = HostBuffer::zeroed(7);
        buf.as_f32_mut(2);
    }
}
