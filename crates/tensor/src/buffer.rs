//! Byte-addressed host staging buffers with typed accessors.
//!
//! A [`HostBuffer`] is the unit of I/O in the functional offloading path: a
//! subgroup's FP32 optimizer state is serialized into one before being
//! flushed to a tier, and deserialized out of one after a fetch. Typed
//! access is copy-based (`from_le_bytes`/`to_le_bytes`), which keeps the
//! code free of `unsafe` while still auto-vectorizing well.

/// A resizable, byte-addressed staging buffer.
#[derive(Clone, Default)]
pub struct HostBuffer {
    data: Vec<u8>,
}

impl HostBuffer {
    /// Creates a zero-filled buffer of `len` bytes.
    pub fn zeroed(len: usize) -> Self {
        HostBuffer {
            data: vec![0u8; len],
        }
    }

    /// Creates a buffer that takes ownership of `data`.
    pub fn from_bytes(data: Vec<u8>) -> Self {
        HostBuffer { data }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Read-only byte view.
    pub fn as_bytes(&self) -> &[u8] {
        &self.data
    }

    /// Mutable byte view.
    pub fn as_bytes_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }

    /// Consumes the buffer, returning the backing bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.data
    }

    /// Copies `count` little-endian `f32`s starting at byte `offset`.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn read_f32(&self, offset: usize, count: usize) -> Vec<f32> {
        let end = offset + count * 4;
        assert!(end <= self.data.len(), "read_f32 out of bounds");
        self.data[offset..end]
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect()
    }

    /// Copies `dst.len()` little-endian `f32`s starting at byte `offset`
    /// into `dst` without allocating.
    pub fn read_f32_into(&self, offset: usize, dst: &mut [f32]) {
        let end = offset + dst.len() * 4;
        assert!(end <= self.data.len(), "read_f32_into out of bounds");
        for (d, c) in dst.iter_mut().zip(self.data[offset..end].chunks_exact(4)) {
            *d = f32::from_le_bytes([c[0], c[1], c[2], c[3]]);
        }
    }

    /// Writes `src` as little-endian `f32`s starting at byte `offset`.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn write_f32(&mut self, offset: usize, src: &[f32]) {
        let end = offset + src.len() * 4;
        assert!(end <= self.data.len(), "write_f32 out of bounds");
        for (c, s) in self.data[offset..end].chunks_exact_mut(4).zip(src) {
            c.copy_from_slice(&s.to_le_bytes());
        }
    }

    /// Copies `count` little-endian `u16`s (FP16 bit patterns) starting at
    /// byte `offset`.
    pub fn read_u16(&self, offset: usize, count: usize) -> Vec<u16> {
        let end = offset + count * 2;
        assert!(end <= self.data.len(), "read_u16 out of bounds");
        self.data[offset..end]
            .chunks_exact(2)
            .map(|c| u16::from_le_bytes([c[0], c[1]]))
            .collect()
    }

    /// Writes `src` as little-endian `u16`s starting at byte `offset`.
    pub fn write_u16(&mut self, offset: usize, src: &[u16]) {
        let end = offset + src.len() * 2;
        assert!(end <= self.data.len(), "write_u16 out of bounds");
        for (c, s) in self.data[offset..end].chunks_exact_mut(2).zip(src) {
            c.copy_from_slice(&s.to_le_bytes());
        }
    }
}

impl std::fmt::Debug for HostBuffer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "HostBuffer({} bytes)", self.data.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f32_round_trip() {
        let mut buf = HostBuffer::zeroed(64);
        let vals = [1.5f32, -2.25, 0.0, f32::MAX];
        buf.write_f32(8, &vals);
        assert_eq!(buf.read_f32(8, 4), vals);
    }

    #[test]
    fn u16_round_trip() {
        let mut buf = HostBuffer::zeroed(32);
        let vals = [0u16, 1, 0x7C00, 0xFFFF];
        buf.write_u16(4, &vals);
        assert_eq!(buf.read_u16(4, 4), vals);
    }

    #[test]
    fn read_into_avoids_allocation_and_matches() {
        let mut buf = HostBuffer::zeroed(40);
        let vals: Vec<f32> = (0..10).map(|i| i as f32 * 0.5).collect();
        buf.write_f32(0, &vals);
        let mut out = vec![0.0f32; 10];
        buf.read_f32_into(0, &mut out);
        assert_eq!(out, vals);
    }

    #[test]
    fn layout_is_little_endian() {
        let mut buf = HostBuffer::zeroed(4);
        buf.write_f32(0, &[1.0]);
        assert_eq!(buf.as_bytes(), &1.0f32.to_le_bytes());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn oob_write_panics() {
        let mut buf = HostBuffer::zeroed(4);
        buf.write_f32(4, &[1.0]);
    }
}
