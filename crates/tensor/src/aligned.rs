//! Alignment-aware bounce buffers for kernel-backed I/O engines.
//!
//! `O_DIRECT` file I/O and io_uring registered buffers both require the
//! user-space buffer to satisfy an alignment contract far stricter than
//! `Vec<u8>` provides: the buffer address *and* the transfer length must be
//! multiples of the filesystem's logical block size (4096 bytes covers every
//! filesystem we target). [`AlignedBuf`] is a heap allocation with an
//! explicit alignment, and [`AlignedPool`] recycles a fixed set of them so
//! the io_uring driver can register the pool once
//! (`IORING_REGISTER_BUFFERS`) and then address buffers by index for the
//! lifetime of the ring.
//!
//! Like [`HostBuffer`](crate::buffer::HostBuffer), this is one of the
//! contained uses of `unsafe` in the workspace (the workspace lint confines
//! `unsafe` to this crate plus the `mlp-aio` syscall shim); everything else
//! consumes the safe slice views.

use std::alloc::{alloc_zeroed, dealloc, Layout};
use std::ptr::NonNull;

/// The alignment every direct-I/O capable buffer in the workspace uses.
///
/// 4096 bytes is the logical block size of every filesystem the offload
/// tiers target (ext4, xfs, tmpfs) and the page size of the supported
/// architectures, so it satisfies both the `O_DIRECT` address/length
/// contract and io_uring's registered-buffer expectations.
pub const DIRECT_IO_ALIGN: usize = 4096;

/// A fixed-size, explicitly aligned heap buffer.
///
/// The allocation address is a multiple of `align` and the capacity is
/// rounded up to a multiple of `align`, so the whole buffer can be handed
/// to `O_DIRECT` reads/writes (which transfer in whole aligned blocks)
/// without a second copy.
pub struct AlignedBuf {
    ptr: NonNull<u8>,
    /// Allocated capacity in bytes; always a non-zero multiple of `align`.
    cap: usize,
    align: usize,
}

// SAFETY: `AlignedBuf` owns its allocation exclusively (the raw pointer is
// never shared or aliased outside the borrow-checked slice views below), so
// moving the owner to another thread moves unique access with it — the same
// argument that makes `Vec<u8>` `Send`.
unsafe impl Send for AlignedBuf {}

// SAFETY: shared references only expose `&self` methods that read through
// the pointer (`as_bytes`, accessors); mutation requires `&mut self`. With
// aliasing controlled by the borrow checker exactly as for `Vec<u8>`,
// concurrent `&AlignedBuf` access is data-race free.
unsafe impl Sync for AlignedBuf {}

impl AlignedBuf {
    /// Allocates a zero-filled buffer of at least `len` bytes whose address
    /// and capacity are multiples of `align`.
    ///
    /// # Panics
    ///
    /// Panics if `align` is zero or not a power of two, if `len` is zero,
    /// or if the rounded size overflows `isize` (allocation-size limit).
    pub fn zeroed(len: usize, align: usize) -> AlignedBuf {
        assert!(
            align.is_power_of_two(),
            "AlignedBuf: align must be a power of two, got {align}"
        );
        assert!(len > 0, "AlignedBuf: zero-length buffers are not allocatable");
        // Both conversions panic only on the documented `# Panics`
        // contract of this constructor (allocation-size misuse).
        let cap = len
            .checked_next_multiple_of(align)
            // lint:allow(hot-path-panic): documented constructor panic
            .expect("AlignedBuf: size overflow rounding to alignment");
        let layout = Layout::from_size_align(cap, align)
            // lint:allow(hot-path-panic): documented constructor panic
            .expect("AlignedBuf: invalid layout (size exceeds isize::MAX)");
        // SAFETY: `layout` has non-zero size (`len > 0` and rounding only
        // grows it) and a valid power-of-two alignment, which is all
        // `alloc_zeroed` requires. A null return means the allocator
        // failed; `handle_alloc_error` diverges, so `NonNull::new_unchecked`
        // below only runs on a non-null pointer.
        let raw = unsafe { alloc_zeroed(layout) };
        let Some(ptr) = NonNull::new(raw) else {
            std::alloc::handle_alloc_error(layout);
        };
        AlignedBuf { ptr, cap, align }
    }

    /// Capacity in bytes (always a multiple of [`AlignedBuf::align`]).
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// The alignment the buffer was allocated with.
    pub fn align(&self) -> usize {
        self.align
    }

    /// Rounds `len` up to the next multiple of this buffer's alignment —
    /// the transfer length an `O_DIRECT` operation must use to cover `len`
    /// payload bytes.
    ///
    /// # Panics
    ///
    /// Panics if the padded length exceeds the buffer capacity.
    pub fn padded_len(&self, len: usize) -> usize {
        let padded = len
            .checked_next_multiple_of(self.align)
            // lint:allow(hot-path-panic): documented `# Panics` contract
            .expect("AlignedBuf: padded length overflows");
        assert!(
            padded <= self.cap,
            "AlignedBuf: padded length {padded} exceeds capacity {}",
            self.cap
        );
        padded
    }

    /// Read-only view of the whole capacity.
    pub fn as_bytes(&self) -> &[u8] {
        // SAFETY: `zeroed` allocated (and zero-initialized) exactly
        // `self.cap` bytes at `self.ptr`, the buffer never reallocates or
        // shrinks, and `cap <= isize::MAX` is guaranteed by the `Layout`
        // check at construction. The borrow is tied to `&self`, so the
        // allocation outlives the slice and cannot be mutated through
        // `&mut self` while it is live.
        unsafe { std::slice::from_raw_parts(self.ptr.as_ptr(), self.cap) }
    }

    /// Mutable view of the whole capacity.
    pub fn as_bytes_mut(&mut self) -> &mut [u8] {
        // SAFETY: same bounds/validity/initialization argument as
        // `as_bytes`; `&mut self` additionally guarantees exclusive access
        // to the allocation for the borrow's lifetime, so no other view
        // aliases it.
        unsafe { std::slice::from_raw_parts_mut(self.ptr.as_ptr(), self.cap) }
    }

    /// Copies `src` into the front of the buffer and zero-pads the rest of
    /// the covering aligned block (so padded `O_DIRECT` writes never leak
    /// stale bytes from a previous operation into the file).
    ///
    /// # Panics
    ///
    /// Panics if `src` does not fit.
    pub fn fill_from(&mut self, src: &[u8]) {
        let padded = self.padded_len(src.len().max(1));
        let bytes = self.as_bytes_mut();
        bytes[..src.len()].copy_from_slice(src);
        bytes[src.len()..padded].fill(0);
    }
}

impl Drop for AlignedBuf {
    fn drop(&mut self) {
        // The layout reconstructed here is the one used at allocation:
        // `cap` and `align` are immutable after construction.
        let layout = Layout::from_size_align(self.cap, self.align)
            // lint:allow(hot-path-panic): infallible — this exact layout
            // was validated by the constructor; both fields are immutable
            .expect("AlignedBuf: layout was validated at construction");
        // SAFETY: `self.ptr` came from `alloc_zeroed` with this exact
        // layout and has not been freed (Drop runs at most once, and no
        // other code path deallocates).
        unsafe { dealloc(self.ptr.as_ptr(), layout) };
    }
}

impl std::fmt::Debug for AlignedBuf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "AlignedBuf({} bytes @ {})", self.cap, self.align)
    }
}

/// A non-blocking free list of same-shaped [`AlignedBuf`]s.
///
/// Unlike [`PinnedPool`](crate::pool::PinnedPool) this never blocks and
/// never caps the number of live buffers: `acquire` hands out a recycled
/// buffer when one is idle and allocates a fresh one otherwise. The
/// io_uring driver sizes its pool to the submission-queue depth up front
/// (so registration covers every buffer) and only ever recycles; other
/// engines can over-acquire harmlessly.
pub struct AlignedPool {
    idle: mlp_sync::Mutex<Vec<AlignedBuf>>,
    buf_bytes: usize,
    align: usize,
}

impl AlignedPool {
    /// Creates a pool of `count` pre-allocated buffers of `buf_bytes`
    /// (rounded up to `align`) each.
    pub fn new(count: usize, buf_bytes: usize, align: usize) -> AlignedPool {
        let idle = (0..count)
            .map(|_| AlignedBuf::zeroed(buf_bytes.max(1), align))
            .collect();
        AlignedPool {
            idle: mlp_sync::Mutex::new(idle),
            buf_bytes: buf_bytes.max(1),
            align,
        }
    }

    /// Takes an idle buffer, allocating a new one if the free list is
    /// empty.
    pub fn acquire(&self) -> AlignedBuf {
        if let Some(buf) = self.idle.lock().pop() {
            return buf;
        }
        AlignedBuf::zeroed(self.buf_bytes, self.align)
    }

    /// Returns a buffer to the free list. Buffers of a different shape
    /// (capacity or alignment) are dropped instead of pooled.
    pub fn release(&self, buf: AlignedBuf) {
        let expected_cap = self
            .buf_bytes
            .checked_next_multiple_of(self.align)
            // lint:allow(hot-path-panic): infallible — the constructor
            // already rounded this same (buf_bytes, align) pair
            .expect("AlignedPool: shape was validated at construction");
        if buf.capacity() == expected_cap && buf.align() == self.align {
            self.idle.lock().push(buf);
        }
    }

    /// Bytes of payload each pooled buffer holds.
    pub fn buf_bytes(&self) -> usize {
        self.buf_bytes
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    #[test]
    fn buffer_address_and_capacity_are_aligned() {
        for (len, align) in [(1, 512), (4096, 4096), (4097, 4096), (100_000, 4096)] {
            let buf = AlignedBuf::zeroed(len, align);
            assert_eq!(buf.as_bytes().as_ptr() as usize % align, 0, "{len}/{align}");
            assert_eq!(buf.capacity() % align, 0);
            assert!(buf.capacity() >= len);
        }
    }

    #[test]
    fn buffer_is_zero_initialized_and_writable() {
        let mut buf = AlignedBuf::zeroed(8192, 4096);
        assert!(buf.as_bytes().iter().all(|&b| b == 0));
        buf.as_bytes_mut()[4095] = 7;
        assert_eq!(buf.as_bytes()[4095], 7);
    }

    #[test]
    fn fill_from_zero_pads_the_covering_block() {
        let mut buf = AlignedBuf::zeroed(8192, 4096);
        buf.as_bytes_mut().fill(0xFF);
        buf.fill_from(&[1, 2, 3]);
        assert_eq!(&buf.as_bytes()[..3], &[1, 2, 3]);
        // The rest of the first aligned block is scrubbed...
        assert!(buf.as_bytes()[3..4096].iter().all(|&b| b == 0));
        // ...while blocks beyond the padded length are untouched.
        assert!(buf.as_bytes()[4096..].iter().all(|&b| b == 0xFF));
    }

    #[test]
    fn padded_len_rounds_up() {
        let buf = AlignedBuf::zeroed(8192, 4096);
        assert_eq!(buf.padded_len(1), 4096);
        assert_eq!(buf.padded_len(4096), 4096);
        assert_eq!(buf.padded_len(4097), 8192);
    }

    #[test]
    #[should_panic(expected = "exceeds capacity")]
    fn padded_len_rejects_overflowing_requests() {
        AlignedBuf::zeroed(4096, 4096).padded_len(4097);
    }

    #[test]
    fn pool_recycles_and_overflows() {
        let pool = AlignedPool::new(2, 4096, 4096);
        let a = pool.acquire();
        let b = pool.acquire();
        let c = pool.acquire(); // free list empty: fresh allocation
        assert_eq!(c.capacity(), 4096);
        pool.release(a);
        pool.release(b);
        pool.release(c);
        let again = pool.acquire();
        assert_eq!(again.capacity(), 4096);
    }

    #[test]
    fn pool_drops_foreign_shapes() {
        let pool = AlignedPool::new(1, 4096, 4096);
        pool.release(AlignedBuf::zeroed(16384, 4096)); // wrong capacity: dropped
        let buf = pool.acquire();
        assert_eq!(buf.capacity(), 4096);
    }

    #[test]
    fn send_and_sync_bounds_hold() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<AlignedBuf>();
        assert_send_sync::<AlignedPool>();
    }
}
