//! IEEE 754 binary16 ("half precision") implemented from scratch.
//!
//! The offloading engines move FP16 model parameters and gradients between
//! device, host, and storage tiers, and the delayed-conversion optimization
//! upscales FP16 gradients to FP32 on the fly during the update phase. We
//! implement the format ourselves (rather than depending on the `half`
//! crate) because the conversion *is* part of the system under study.
//!
//! Layout: 1 sign bit, 5 exponent bits (bias 15), 10 mantissa bits.

/// A 16-bit IEEE 754 binary16 value, stored as its bit pattern.
#[derive(Clone, Copy, PartialEq, Eq, Default)]
#[repr(transparent)]
pub struct F16(pub u16);

const SIGN_MASK: u16 = 0x8000;
const EXP_MASK: u16 = 0x7C00;
const MAN_MASK: u16 = 0x03FF;

impl F16 {
    /// Positive zero.
    pub const ZERO: F16 = F16(0);
    /// One.
    pub const ONE: F16 = F16(0x3C00);
    /// Positive infinity.
    pub const INFINITY: F16 = F16(0x7C00);
    /// Negative infinity.
    pub const NEG_INFINITY: F16 = F16(0xFC00);
    /// A canonical quiet NaN.
    pub const NAN: F16 = F16(0x7E00);
    /// Largest finite value (65504.0).
    pub const MAX: F16 = F16(0x7BFF);
    /// Smallest positive normal value (2⁻¹⁴ ≈ 6.1035e-5).
    pub const MIN_POSITIVE: F16 = F16(0x0400);
    /// Smallest positive subnormal value (2⁻²⁴ ≈ 5.96e-8).
    pub const MIN_POSITIVE_SUBNORMAL: F16 = F16(0x0001);

    /// Converts an `f32` with IEEE round-to-nearest-even semantics,
    /// overflowing to infinity and flushing tiny values to (signed) zero.
    #[inline]
    pub fn from_f32(x: f32) -> F16 {
        F16(f32_to_f16_bits(x))
    }

    /// Widens to `f32` exactly (every binary16 value is representable).
    #[inline]
    pub fn to_f32(self) -> f32 {
        f16_bits_to_f32(self.0)
    }

    /// Raw bit pattern.
    #[inline]
    pub fn to_bits(self) -> u16 {
        self.0
    }

    /// Constructs from a raw bit pattern.
    #[inline]
    pub fn from_bits(bits: u16) -> F16 {
        F16(bits)
    }

    /// Whether the value is NaN.
    #[inline]
    pub fn is_nan(self) -> bool {
        (self.0 & EXP_MASK) == EXP_MASK && (self.0 & MAN_MASK) != 0
    }

    /// Whether the value is ±∞.
    #[inline]
    pub fn is_infinite(self) -> bool {
        (self.0 & EXP_MASK) == EXP_MASK && (self.0 & MAN_MASK) == 0
    }

    /// Whether the value is finite (neither NaN nor ±∞).
    #[inline]
    pub fn is_finite(self) -> bool {
        (self.0 & EXP_MASK) != EXP_MASK
    }

    /// Whether the value is subnormal (non-zero with a zero exponent).
    #[inline]
    pub fn is_subnormal(self) -> bool {
        (self.0 & EXP_MASK) == 0 && (self.0 & MAN_MASK) != 0
    }

    /// Sign bit set (true for negative values, including -0 and negative
    /// NaNs).
    #[inline]
    pub fn is_sign_negative(self) -> bool {
        self.0 & SIGN_MASK != 0
    }
}

impl std::fmt::Debug for F16 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "F16({} = {:#06x})", self.to_f32(), self.0)
    }
}

impl std::fmt::Display for F16 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.to_f32())
    }
}

impl From<f32> for F16 {
    fn from(x: f32) -> Self {
        F16::from_f32(x)
    }
}

impl From<F16> for f32 {
    fn from(h: F16) -> Self {
        h.to_f32()
    }
}

/// Converts an `f32` bit-exactly to binary16 bits with round-to-nearest-even.
#[inline]
pub fn f32_to_f16_bits(x: f32) -> u16 {
    let bits = x.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp = ((bits >> 23) & 0xFF) as i32;
    let man = bits & 0x007F_FFFF;

    if exp == 0xFF {
        // Infinity or NaN. Preserve NaN-ness; force the quiet bit so a
        // signalling payload that would truncate to zero stays a NaN.
        return if man == 0 {
            sign | EXP_MASK
        } else {
            sign | EXP_MASK | 0x0200 | ((man >> 13) as u16 & MAN_MASK)
        };
    }

    // Unbiased exponent of the f32 value (normals; subnormal f32 inputs are
    // far below the f16 subnormal range and flush to zero below).
    let unbiased = exp - 127;
    let half_exp = unbiased + 15;

    if half_exp >= 0x1F {
        // Overflow → ±∞.
        return sign | EXP_MASK;
    }

    if half_exp <= 0 {
        // Result is subnormal (or underflows to zero). The implicit leading
        // one must be materialized, then the 24-bit significand is shifted
        // right by (14 - unbiased) with round-to-nearest-even.
        if half_exp < -10 {
            // Below half the smallest subnormal: rounds to signed zero.
            return sign;
        }
        // The result mantissa is round(significand × 2^(unbiased+1)) since
        // value = significand × 2^(unbiased−23) and man16 = value × 2²⁴.
        let significand = man | 0x0080_0000; // implicit bit
        let shift = (-unbiased - 1) as u32; // in [14, 24]
        let halfway = 1u32 << (shift - 1);
        let mask = (1u32 << shift) - 1;
        let mut half_man = (significand >> shift) as u16;
        let rem = significand & mask;
        if rem > halfway || (rem == halfway && (half_man & 1) == 1) {
            half_man += 1; // may carry into the exponent: 0x0400 = 2^-14 ✓
        }
        return sign | half_man;
    }

    // Normal result: keep 10 of the 23 mantissa bits, rounding to nearest
    // even on the discarded 13 bits. The mantissa increment may carry into
    // the exponent, which is exactly correct in IEEE encoding (including a
    // carry to infinity).
    let mut out = sign | ((half_exp as u16) << 10) | ((man >> 13) as u16);
    let rem = man & 0x1FFF;
    if rem > 0x1000 || (rem == 0x1000 && (out & 1) == 1) {
        out += 1;
    }
    out
}

/// Widens binary16 bits exactly to an `f32`.
#[inline]
pub fn f16_bits_to_f32(h: u16) -> f32 {
    let sign = ((h & SIGN_MASK) as u32) << 16;
    let exp = ((h & EXP_MASK) >> 10) as u32;
    let man = (h & MAN_MASK) as u32;

    let bits = match exp {
        0 => {
            if man == 0 {
                sign // ±0
            } else {
                // Subnormal: value = man × 2⁻²⁴ with the highest set bit of
                // `man` at position p becoming the implicit bit, so the f32
                // exponent is p − 24 (biased: 103 + p = 113 − lz).
                let lz = man.leading_zeros() - 21; // zeros above bit 10 → 10 − p
                let man = (man << lz) & MAN_MASK as u32; // implicit bit at 10, masked off
                let exp32 = 113 - lz;
                sign | (exp32 << 23) | (man << 13)
            }
        }
        0x1F => {
            if man == 0 {
                sign | 0x7F80_0000 // ±∞
            } else {
                sign | 0x7FC0_0000 | (man << 13) // NaN, keep payload, quiet
            }
        }
        _ => {
            let exp32 = exp + 127 - 15;
            sign | (exp32 << 23) | (man << 13)
        }
    };
    f32::from_bits(bits)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn known_constants() {
        assert_eq!(F16::from_f32(0.0).to_bits(), 0x0000);
        assert_eq!(F16::from_f32(-0.0).to_bits(), 0x8000);
        assert_eq!(F16::from_f32(1.0), F16::ONE);
        assert_eq!(F16::from_f32(-1.0).to_bits(), 0xBC00);
        assert_eq!(F16::from_f32(2.0).to_bits(), 0x4000);
        assert_eq!(F16::from_f32(0.5).to_bits(), 0x3800);
        assert_eq!(F16::from_f32(65504.0), F16::MAX);
        assert_eq!(F16::from_f32(f32::INFINITY), F16::INFINITY);
        assert_eq!(F16::from_f32(f32::NEG_INFINITY), F16::NEG_INFINITY);
        assert!(F16::from_f32(f32::NAN).is_nan());
    }

    #[test]
    fn widening_known_values() {
        assert_eq!(F16::ONE.to_f32(), 1.0);
        assert_eq!(F16::MAX.to_f32(), 65504.0);
        assert_eq!(F16::MIN_POSITIVE.to_f32(), 2.0f32.powi(-14));
        assert_eq!(F16::MIN_POSITIVE_SUBNORMAL.to_f32(), 2.0f32.powi(-24));
        assert_eq!(F16::INFINITY.to_f32(), f32::INFINITY);
        assert!(F16::NAN.to_f32().is_nan());
        assert_eq!(F16(0x8000).to_f32().to_bits(), (-0.0f32).to_bits());
    }

    #[test]
    fn overflow_rounds_to_infinity() {
        assert_eq!(F16::from_f32(65520.0), F16::INFINITY); // above MAX + ulp/2
        assert_eq!(F16::from_f32(1e9), F16::INFINITY);
        assert_eq!(F16::from_f32(-1e9), F16::NEG_INFINITY);
        // 65519.996 rounds down to MAX.
        assert_eq!(F16::from_f32(65519.0), F16::MAX);
    }

    #[test]
    fn underflow_flushes_to_zero() {
        assert_eq!(F16::from_f32(1e-30).to_bits(), 0x0000);
        assert_eq!(F16::from_f32(-1e-30).to_bits(), 0x8000);
        // Half of the smallest subnormal is a round-to-even tie → zero.
        let half_min_sub = 2.0f32.powi(-25);
        assert_eq!(F16::from_f32(half_min_sub).to_bits(), 0x0000);
        // Just above the tie rounds up to the smallest subnormal.
        let just_above = f32::from_bits(half_min_sub.to_bits() + 1);
        assert_eq!(F16::from_f32(just_above), F16::MIN_POSITIVE_SUBNORMAL);
    }

    #[test]
    fn round_to_nearest_even_ties() {
        // 1 + 2⁻¹¹ is exactly halfway between 1.0 and 1 + 2⁻¹⁰: ties to the
        // even mantissa (1.0).
        let tie = 1.0 + 2.0f32.powi(-11);
        assert_eq!(F16::from_f32(tie), F16::ONE);
        // (1 + 2⁻¹⁰) + 2⁻¹¹ ties to even: rounds UP to 1 + 2·2⁻¹⁰.
        let tie_up = 1.0 + 2.0f32.powi(-10) + 2.0f32.powi(-11);
        assert_eq!(F16::from_f32(tie_up).to_bits(), 0x3C02);
        // Slightly above a tie always rounds up.
        let above = 1.0 + 2.0f32.powi(-11) + 2.0f32.powi(-20);
        assert_eq!(F16::from_f32(above).to_bits(), 0x3C01);
    }

    #[test]
    fn subnormal_round_trip_examples() {
        for k in 1..=10 {
            let v = k as f32 * 2.0f32.powi(-24);
            let h = F16::from_f32(v);
            assert_eq!(h.to_bits(), k as u16, "subnormal {k}·2⁻²⁴");
            assert_eq!(h.to_f32(), v);
        }
    }

    #[test]
    fn mantissa_carry_into_exponent() {
        // Largest mantissa at exponent 0 rounds up across the power-of-two
        // boundary: 1.9995117... + ulp/2 → 2.0.
        let v = f16_bits_to_f32(0x3FFF); // 1.9990234375
        let just_under_2 = v + 2.0f32.powi(-11);
        assert_eq!(F16::from_f32(just_under_2).to_bits(), 0x4000);
    }

    #[test]
    fn exhaustive_f16_to_f32_round_trip() {
        // Every non-NaN f16 bit pattern must survive f16 → f32 → f16
        // exactly; NaNs must stay NaNs.
        for bits in 0..=u16::MAX {
            let h = F16::from_bits(bits);
            let back = F16::from_f32(h.to_f32());
            if h.is_nan() {
                assert!(back.is_nan(), "NaN lost at {bits:#06x}");
            } else {
                assert_eq!(back.to_bits(), bits, "round trip failed at {bits:#06x}");
            }
        }
    }

    #[test]
    fn exhaustive_widening_matches_reference() {
        // Independent reference: reconstruct the value arithmetically.
        for bits in 0..=u16::MAX {
            let h = F16::from_bits(bits);
            if h.is_nan() {
                continue;
            }
            let sign = if bits & 0x8000 != 0 { -1.0f64 } else { 1.0 };
            let exp = ((bits >> 10) & 0x1F) as i32;
            let man = (bits & 0x3FF) as f64;
            let expected = match exp {
                0 => sign * man * 2f64.powi(-24),
                0x1F => sign * f64::INFINITY,
                _ => sign * (1.0 + man / 1024.0) * 2f64.powi(exp - 15),
            };
            assert_eq!(h.to_f32() as f64, expected, "widening {bits:#06x}");
        }
    }

    proptest! {
        #[test]
        fn narrowing_error_within_half_ulp(x in -65504.0f32..65504.0) {
            let h = F16::from_f32(x);
            prop_assert!(h.is_finite());
            let back = h.to_f32();
            // Half-ULP bound: ulp(x) for binary16 is 2^(e-10) where e is
            // the exponent of x (clamped to the subnormal scale).
            let e = if x.abs() < 2.0f32.powi(-14) {
                -14
            } else {
                x.abs().log2().floor() as i32
            };
            let half_ulp = 2.0f32.powi(e - 11);
            prop_assert!(
                (back - x).abs() <= half_ulp,
                "x={x}, back={back}, half_ulp={half_ulp}"
            );
        }

        #[test]
        fn narrowing_is_monotone(a in -65000.0f32..65000.0, b in -65000.0f32..65000.0) {
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(F16::from_f32(lo).to_f32() <= F16::from_f32(hi).to_f32());
        }

        #[test]
        fn sign_preserved(x in proptest::num::f32::NORMAL) {
            let h = F16::from_f32(x);
            if !h.is_nan() {
                prop_assert_eq!(h.is_sign_negative(), x.is_sign_negative());
            }
        }
    }
}
