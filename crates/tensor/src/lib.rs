#![warn(missing_docs)]

//! Mixed-precision tensor substrate for the MLP-Offload reproduction.
//!
//! Mixed-precision training (§2 of the paper) keeps an FP16 working copy of
//! the model for forward/backward passes and an FP32 master copy (parameters,
//! momentum, variance) for the optimizer. The paper's *delayed in-place
//! mixed-precision gradient conversion* (§3.2) relies on FP16→FP32 upscaling
//! being an order of magnitude faster than fetching FP32 gradients from a
//! storage tier (65 GB/s on Testbed-1), so the conversion kernels here are a
//! first-class, benchmarked component.
//!
//! Provided:
//!
//! * [`f16::F16`] — IEEE 754 binary16 implemented from scratch (round to
//!   nearest even, subnormals, infinities, NaN), exhaustively tested.
//! * [`bf16::BF16`] — bfloat16 (truncated/rounded binary32).
//! * [`convert`] — bulk upscale/downscale kernels: scalar, rayon-parallel,
//!   and the in-place byte-buffer variants the delayed-conversion path uses.
//! * [`buffer::HostBuffer`] — byte-addressed host staging buffer with typed
//!   accessors, the unit of I/O for the offloading engines.
//! * [`pool::PinnedPool`] — explicit pool-based allocation of staging
//!   buffers (mirrors MLP-Offload's "explicit pool-based allocations for
//!   asynchronous fetch/flush operations", §3.5).
//! * [`aligned::AlignedBuf`] / [`aligned::AlignedPool`] — 4096-aligned
//!   bounce buffers for the `O_DIRECT` / io_uring registered-buffer paths
//!   of the I/O engine subsystem in `mlp-aio`.

pub mod aligned;
pub mod bf16;
pub mod buffer;
pub mod convert;
pub mod f16;
pub mod pool;

pub use aligned::{AlignedBuf, AlignedPool, DIRECT_IO_ALIGN};
pub use bf16::BF16;
pub use buffer::HostBuffer;
pub use f16::F16;
pub use pool::{PinnedPool, PooledBuffer};

/// Minimum elements per rayon work item for every bulk kernel in the
/// workspace (conversion, optimizer steps, fused update).
///
/// Below this size the kernels fall back to a single sequential pass —
/// fork/join overhead dominates under ~64K elements. The value also fixes
/// the parallel split points, so any two kernels chunked by `PAR_CHUNK`
/// process identical element ranges (relevant only for auditing: the
/// per-element updates are order-independent and bitwise identical
/// regardless of the split). Tune it here, once; `mlp-optim` and the fused
/// update pipeline all chunk by this constant.
pub const PAR_CHUNK: usize = 64 * 1024;
