//! Explicit pool-based allocation of staging buffers.
//!
//! MLP-Offload "orchestrates efficient host buffer management through
//! explicit pool-based allocations for asynchronous fetch/flush operations"
//! (§3.5): a fixed set of pinned buffers is allocated once and recycled,
//! avoiding per-operation allocation and the framework's pooled-memory
//! overheads. The pool here is thread-safe so the real (non-simulated)
//! async I/O engine can hand buffers between submitter and worker threads.
//!
//! The acquire/release lifecycle is written against the [`mlp_sync`]
//! facade: under `--cfg loom` the same code runs inside the schedule
//! explorer (`mlp-aio/tests/loom_pool.rs`), which certifies there are no
//! lost wakeups on `available`, no double-release, and no acquisition
//! that bypasses the capacity bound.

use mlp_sync::{Arc, Condvar, Mutex};
use mlp_trace::{Attrs, Gauge, Phase, TraceSink};

use crate::buffer::HostBuffer;

struct PoolState {
    idle: Vec<HostBuffer>,
    outstanding: usize,
    high_water: usize,
    acquires: u64,
}

struct PoolShared {
    state: Mutex<PoolState>,
    available: Condvar,
    buffer_bytes: usize,
    capacity: usize,
    /// Observability sink: [`Phase::PoolAcquire`]/[`Phase::PoolRelease`]
    /// instants per checkout/return plus a live `outstanding` gauge.
    /// Disabled (zero-cost) unless the pool was built with
    /// [`PinnedPool::new_traced`].
    trace: TraceSink,
    outstanding_gauge: Gauge,
}

/// A fixed-capacity pool of equally sized staging buffers.
#[derive(Clone)]
pub struct PinnedPool {
    shared: Arc<PoolShared>,
}

impl PinnedPool {
    /// Creates a pool of `capacity` buffers of `buffer_bytes` each,
    /// allocated eagerly (pinned buffers are registered up front in the
    /// real engine, so we pay the allocation once here too).
    pub fn new(capacity: usize, buffer_bytes: usize) -> Self {
        Self::new_traced(capacity, buffer_bytes, "staging", TraceSink::disabled())
    }

    /// Like [`PinnedPool::new`], but every checkout/return records a
    /// [`Phase::PoolAcquire`]/[`Phase::PoolRelease`] instant in `trace`
    /// and the live checkout count is published on the
    /// `pool.<name>.outstanding` gauge. A disabled sink makes this
    /// identical to [`PinnedPool::new`].
    pub fn new_traced(capacity: usize, buffer_bytes: usize, name: &str, trace: TraceSink) -> Self {
        assert!(capacity > 0, "pool needs at least one buffer");
        let idle = (0..capacity)
            .map(|_| HostBuffer::zeroed(buffer_bytes))
            .collect();
        let outstanding_gauge = trace.gauge(&format!("pool.{name}.outstanding"));
        PinnedPool {
            shared: Arc::new(PoolShared {
                state: Mutex::new(PoolState {
                    idle,
                    outstanding: 0,
                    high_water: 0,
                    acquires: 0,
                }),
                available: Condvar::new(),
                buffer_bytes,
                capacity,
                trace,
                outstanding_gauge,
            }),
        }
    }

    /// Size of each buffer in bytes.
    pub fn buffer_bytes(&self) -> usize {
        self.shared.buffer_bytes
    }

    /// Total number of buffers owned by the pool.
    pub fn capacity(&self) -> usize {
        self.shared.capacity
    }

    /// Buffers currently checked out.
    pub fn outstanding(&self) -> usize {
        self.shared.state.lock().outstanding
    }

    /// Most buffers ever checked out at once.
    pub fn high_water(&self) -> usize {
        self.shared.state.lock().high_water
    }

    /// Total successful acquisitions over the pool's lifetime. Together
    /// with [`PinnedPool::high_water`] this proves buffer recycling: a hot
    /// loop that acquires N times while the high-water mark stays at the
    /// (much smaller) capacity performed zero per-acquisition allocations.
    pub fn acquires(&self) -> u64 {
        self.shared.state.lock().acquires
    }

    /// Takes a buffer, blocking the calling thread until one is free.
    pub fn acquire(&self) -> PooledBuffer {
        let mut st = self.shared.state.lock();
        loop {
            match st.idle.pop() {
                Some(buf) => return self.check_out(&mut st, buf),
                None => self.shared.available.wait(&mut st),
            }
        }
    }

    /// Takes a buffer if one is free.
    pub fn try_acquire(&self) -> Option<PooledBuffer> {
        let mut st = self.shared.state.lock();
        let buf = st.idle.pop()?;
        Some(self.check_out(&mut st, buf))
    }

    fn check_out(&self, st: &mut PoolState, buf: HostBuffer) -> PooledBuffer {
        st.outstanding += 1;
        st.acquires += 1;
        st.high_water = st.high_water.max(st.outstanding);
        let trace = &self.shared.trace;
        if trace.is_enabled() {
            let attrs = Attrs::bytes(self.shared.buffer_bytes as u64);
            trace.instant(Phase::PoolAcquire, attrs, trace.now_ns());
            self.shared.outstanding_gauge.set(st.outstanding as u64);
        }
        PooledBuffer {
            pool: self.clone(),
            buf: Some(buf),
        }
    }

    fn give_back(&self, buf: HostBuffer) {
        let mut st = self.shared.state.lock();
        st.idle.push(buf);
        st.outstanding -= 1;
        let trace = &self.shared.trace;
        if trace.is_enabled() {
            let attrs = Attrs::bytes(self.shared.buffer_bytes as u64);
            trace.instant(Phase::PoolRelease, attrs, trace.now_ns());
            self.shared.outstanding_gauge.set(st.outstanding as u64);
        }
        drop(st);
        self.shared.available.notify_one();
    }
}

/// RAII handle to a pooled buffer; returns it to the pool on drop.
pub struct PooledBuffer {
    pool: PinnedPool,
    buf: Option<HostBuffer>,
}

impl PooledBuffer {
    /// Immutable access to the underlying buffer.
    pub fn buffer(&self) -> &HostBuffer {
        // lint:allow(hot-path-panic): the Option is Some from construction
        // until Drop takes it; no caller can reach this afterwards
        self.buf.as_ref().expect("buffer present until drop")
    }

    /// Mutable access to the underlying buffer.
    pub fn buffer_mut(&mut self) -> &mut HostBuffer {
        // lint:allow(hot-path-panic): the Option is Some from construction
        // until Drop takes it; no caller can reach this afterwards
        self.buf.as_mut().expect("buffer present until drop")
    }
}

impl std::fmt::Debug for PooledBuffer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.buf {
            Some(b) => write!(f, "PooledBuffer({} bytes)", b.len()),
            None => f.write_str("PooledBuffer(<returned>)"),
        }
    }
}

impl std::ops::Deref for PooledBuffer {
    type Target = HostBuffer;
    fn deref(&self) -> &HostBuffer {
        self.buffer()
    }
}

impl std::ops::DerefMut for PooledBuffer {
    fn deref_mut(&mut self) -> &mut HostBuffer {
        self.buffer_mut()
    }
}

impl Drop for PooledBuffer {
    fn drop(&mut self) {
        if let Some(buf) = self.buf.take() {
            self.pool.give_back(buf);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn acquire_and_release_cycle() {
        let pool = PinnedPool::new(2, 64);
        let a = pool.acquire();
        let b = pool.acquire();
        assert_eq!(pool.outstanding(), 2);
        assert!(pool.try_acquire().is_none());
        drop(a);
        assert_eq!(pool.outstanding(), 1);
        let c = pool.try_acquire().expect("freed buffer reusable");
        assert_eq!(c.len(), 64);
        drop(b);
        drop(c);
        assert_eq!(pool.outstanding(), 0);
        assert_eq!(pool.high_water(), 2);
    }

    #[test]
    fn buffers_keep_their_size() {
        let pool = PinnedPool::new(1, 128);
        let mut b = pool.acquire();
        b.write_f32(0, &[42.0]);
        drop(b);
        let b2 = pool.acquire();
        assert_eq!(b2.len(), 128);
        // Contents persist across recycling (callers must not rely on
        // zeroing); just assert the value survived as documented behaviour.
        assert_eq!(b2.read_f32(0, 1), vec![42.0]);
    }

    #[test]
    fn blocking_acquire_wakes_on_release() {
        let pool = PinnedPool::new(1, 16);
        let held = pool.acquire();
        let p2 = pool.clone();
        let t = std::thread::spawn(move || {
            let b = p2.acquire();
            b.len()
        });
        std::thread::sleep(Duration::from_millis(20));
        drop(held);
        assert_eq!(t.join().unwrap(), 16);
    }

    #[test]
    fn pool_is_shareable_across_threads() {
        let pool = PinnedPool::new(4, 32);
        let mut handles = Vec::new();
        for _ in 0..8 {
            let p = pool.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..100 {
                    let _b = p.acquire();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(pool.outstanding(), 0);
        assert!(pool.high_water() <= 4);
    }
}
