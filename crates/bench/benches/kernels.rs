//! Real (wall-clock) kernel microbenchmarks, reported against the paper's
//! reference numbers: FP16→FP32 conversion (65 GB/s on Testbed-1), CPU
//! Adam updates (~8 000 Mparam/s), the asynchronous I/O engine, and the
//! DES executor overhead.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use mlp_aio::engine::{AioConfig, AioEngine};
use mlp_optim::adam::{adam_step_par, AdamConfig};
use mlp_storage::{Backend, MemBackend};
use mlp_tensor::convert;

fn conversion(c: &mut Criterion) {
    let n = 1 << 22; // 4M elements = 8 MiB of FP16
    let src: Vec<u16> = (0..n as u32).map(|i| (i % 60000) as u16).collect();
    let mut dst = vec![0.0f32; n];
    let mut g = c.benchmark_group("fp16_upscale");
    g.throughput(Throughput::Bytes((n * 2) as u64));
    g.bench_function("scalar", |b| b.iter(|| convert::upscale(&src, &mut dst)));
    g.bench_function("parallel", |b| {
        b.iter(|| convert::upscale_par(&src, &mut dst))
    });
    g.finish();

    let mut half = vec![0u16; n];
    let mut g = c.benchmark_group("fp32_downscale");
    g.throughput(Throughput::Bytes((n * 4) as u64));
    g.bench_function("parallel", |b| {
        b.iter(|| convert::downscale_par(&dst, &mut half))
    });
    g.finish();
}

fn adam(c: &mut Criterion) {
    let n = 1 << 22;
    let cfg = AdamConfig::default();
    let mut p = vec![0.1f32; n];
    let mut m = vec![0.0f32; n];
    let mut v = vec![0.0f32; n];
    let grads = vec![0.01f32; n];
    let mut step = 0u64;
    let mut g = c.benchmark_group("cpu_adam");
    // Elements/second ≈ parameters/second (paper reference: 8e9 on 96
    // cores).
    g.throughput(Throughput::Elements(n as u64));
    g.bench_function("parallel", |b| {
        b.iter(|| {
            step += 1;
            adam_step_par(&cfg, step, &mut p, &mut m, &mut v, &grads);
        })
    });
    g.finish();
}

fn aio(c: &mut Criterion) {
    let backend: Arc<dyn Backend> = Arc::new(MemBackend::new("mem"));
    let engine = AioEngine::new(
        backend,
        AioConfig {
            workers: 4,
            queue_depth: 64,
        },
    );
    let payload = vec![0xABu8; 1 << 20]; // 1 MiB objects
    let mut g = c.benchmark_group("aio_engine");
    g.throughput(Throughput::Bytes(16 << 20));
    g.bench_function("write16_read16", |b| {
        b.iter(|| {
            let writes: Vec<_> = (0..16)
                .map(|i| engine.submit_write(&format!("k{i}"), payload.clone()))
                .collect();
            for w in writes {
                w.wait().unwrap();
            }
            let reads: Vec<_> = (0..16)
                .map(|i| engine.submit_read(&format!("k{i}")))
                .collect();
            for r in reads {
                std::hint::black_box(r.wait().unwrap());
            }
        })
    });
    g.finish();
}

fn des_executor(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_executor");
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("10k_timer_events", |b| {
        b.iter(|| {
            let sim = mlp_sim::Sim::new();
            for i in 0..100u64 {
                let s = sim.clone();
                sim.spawn(async move {
                    for k in 0..100u64 {
                        s.sleep_ns(1 + (i * 37 + k) % 1000).await;
                    }
                });
            }
            sim.run()
        })
    });
    g.finish();
}

criterion_group!(benches, conversion, adam, aio, des_executor);
criterion_main!(benches);
