//! Real (wall-clock) kernel microbenchmarks, reported against the paper's
//! reference numbers: FP16→FP32 conversion (65 GB/s on Testbed-1), CPU
//! Adam updates (~8 000 Mparam/s), the asynchronous I/O engine, and the
//! DES executor overhead.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use mlp_aio::engine::{AioConfig, AioEngine};
use mlp_optim::adam::{adam_step_par, AdamConfig};
use mlp_optim::fused::fused_update_fp16;
use mlp_optim::optimizer::{AdagradConfig, LionConfig, OptimizerConfig, SgdConfig};
use mlp_storage::{Backend, MemBackend};
use mlp_tensor::convert;
use mlp_tensor::F16;

fn conversion(c: &mut Criterion) {
    let n = 1 << 22; // 4M elements = 8 MiB of FP16
    let src: Vec<u16> = (0..n as u32).map(|i| (i % 60000) as u16).collect();
    let mut dst = vec![0.0f32; n];
    let mut g = c.benchmark_group("fp16_upscale");
    g.throughput(Throughput::Bytes((n * 2) as u64));
    g.bench_function("scalar", |b| b.iter(|| convert::upscale(&src, &mut dst)));
    g.bench_function("parallel", |b| {
        b.iter(|| convert::upscale_par(&src, &mut dst))
    });
    g.finish();

    let mut half = vec![0u16; n];
    let mut g = c.benchmark_group("fp32_downscale");
    g.throughput(Throughput::Bytes((n * 4) as u64));
    g.bench_function("parallel", |b| {
        b.iter(|| convert::downscale_par(&dst, &mut half))
    });
    g.finish();
}

fn adam(c: &mut Criterion) {
    let n = 1 << 22;
    let cfg = AdamConfig::default();
    let mut p = vec![0.1f32; n];
    let mut m = vec![0.0f32; n];
    let mut v = vec![0.0f32; n];
    let grads = vec![0.01f32; n];
    let mut step = 0u64;
    let mut g = c.benchmark_group("cpu_adam");
    // Elements/second ≈ parameters/second (paper reference: 8e9 on 96
    // cores).
    g.throughput(Throughput::Elements(n as u64));
    g.bench_function("parallel", |b| {
        b.iter(|| {
            step += 1;
            adam_step_par(&cfg, step, &mut p, &mut m, &mut v, &grads);
        })
    });
    g.finish();
}

/// Fused single-pass mixed-precision update vs. the legacy multi-pass
/// pipeline (upscale sweep → optimizer sweep → downscale sweep), per
/// optimizer, at 1M and 16M elements. The fused kernel touches each
/// buffer once; the multi-pass path also materializes an FP32 gradient
/// scratch vector per call — the allocation + bandwidth the zero-copy
/// pipeline removes.
fn update_pipeline(c: &mut Criterion) {
    let optimizers: [(&str, OptimizerConfig); 4] = [
        ("adam", OptimizerConfig::Adam(AdamConfig::default())),
        ("sgd", OptimizerConfig::Sgd(SgdConfig::default())),
        ("adagrad", OptimizerConfig::Adagrad(AdagradConfig::default())),
        ("lion", OptimizerConfig::Lion(LionConfig::default())),
    ];
    for n in [1usize << 20, 1 << 24] {
        let grads_fp16: Vec<u16> = (0..n)
            .map(|i| F16::from_f32(((i % 1000) as f32 - 500.0) * 1e-4).to_bits())
            .collect();
        let inv_scale = 1.0 / 1024.0;
        for (name, opt) in &optimizers {
            let mut params = vec![0.1f32; n];
            let mut slot1 = vec![0.0f32; n];
            let mut slot2 = vec![0.0f32; n];
            let mut fp16_out = vec![0u16; n];
            let mut g =
                c.benchmark_group(format!("update_{name}_{}m", n >> 20));
            g.throughput(Throughput::Elements(n as u64));
            g.sample_size(10);
            let mut step = 0u64;
            g.bench_function("fused", |b| {
                b.iter(|| {
                    step += 1;
                    fused_update_fp16(
                        opt,
                        step,
                        &mut params,
                        &mut slot1,
                        &mut slot2,
                        &grads_fp16,
                        inv_scale,
                        &mut fp16_out,
                    );
                })
            });
            g.bench_function("multi_pass", |b| {
                b.iter(|| {
                    step += 1;
                    let mut scratch = vec![0.0f32; n];
                    convert::upscale_scaled_par(&grads_fp16, &mut scratch, inv_scale);
                    opt.step_par(step, &mut params, &mut slot1, &mut slot2, &scratch);
                    convert::downscale_par(&params, &mut fp16_out);
                })
            });
            g.finish();
        }
    }
}

fn aio(c: &mut Criterion) {
    let backend: Arc<dyn Backend> = Arc::new(MemBackend::new("mem"));
    let engine = AioEngine::new(
        backend,
        AioConfig {
            workers: 4,
            queue_depth: 64,
            ..AioConfig::default()
        },
    );
    let payload = vec![0xABu8; 1 << 20]; // 1 MiB objects
    let mut g = c.benchmark_group("aio_engine");
    g.throughput(Throughput::Bytes(16 << 20));
    g.bench_function("write16_read16", |b| {
        b.iter(|| {
            let writes: Vec<_> = (0..16)
                .map(|i| engine.submit_write(&format!("k{i}"), payload.clone()))
                .collect();
            for w in writes {
                w.wait().unwrap();
            }
            let reads: Vec<_> = (0..16)
                .map(|i| engine.submit_read(&format!("k{i}")))
                .collect();
            for r in reads {
                std::hint::black_box(r.wait().unwrap());
            }
        })
    });
    g.finish();
}

fn des_executor(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_executor");
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("10k_timer_events", |b| {
        b.iter(|| {
            let sim = mlp_sim::Sim::new();
            for i in 0..100u64 {
                let s = sim.clone();
                sim.spawn(async move {
                    for k in 0..100u64 {
                        s.sleep_ns(1 + (i * 37 + k) % 1000).await;
                    }
                });
            }
            sim.run()
        })
    });
    g.finish();
}

criterion_group!(benches, conversion, adam, update_pipeline, aio, des_executor);
criterion_main!(benches);
