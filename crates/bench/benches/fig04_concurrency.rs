//! Bench target `fig04_concurrency` — regenerates Fig. 4 (tier throughput under concurrency) and times the full
//! experiment run (deterministic virtual-time simulation).

use criterion::{criterion_group, criterion_main, Criterion};
use mlp_train::experiments as exp;

fn bench(c: &mut Criterion) {
    // Print the reproduced rows once so `cargo bench` output carries the
    // figure's data series.
    let rows = exp::fig4_concurrency();
    mlp_bench::render_fig4(&rows);
    let mut g = c.benchmark_group("fig04_concurrency");
    g.sample_size(10);
    g.bench_function("generate", |b| {
        b.iter(|| std::hint::black_box(exp::fig4_concurrency()))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
