//! Bench target `fig12_weak_scaling` — regenerates Fig. 12 (weak-scaling update throughput) and times the full
//! experiment run (deterministic virtual-time simulation).

use criterion::{criterion_group, criterion_main, Criterion};
use mlp_train::experiments as exp;

fn bench(c: &mut Criterion) {
    // Print the reproduced rows once so `cargo bench` output carries the
    // figure's data series.
    let rows = exp::weak_scaling();
    mlp_bench::render_fig12(&rows);
    let mut g = c.benchmark_group("fig12_weak_scaling");
    g.sample_size(10);
    g.bench_function("generate", |b| {
        b.iter(|| std::hint::black_box(exp::weak_scaling()))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
