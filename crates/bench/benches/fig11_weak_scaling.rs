//! Bench target `fig11_weak_scaling` — regenerates Fig. 11 (weak-scaling iteration time) and times the full
//! experiment run (deterministic virtual-time simulation).

use criterion::{criterion_group, criterion_main, Criterion};
use mlp_train::experiments as exp;

fn bench(c: &mut Criterion) {
    // Print the reproduced rows once so `cargo bench` output carries the
    // figure's data series.
    let rows = exp::weak_scaling();
    mlp_bench::render_fig11(&rows);
    let mut g = c.benchmark_group("fig11_weak_scaling");
    g.sample_size(10);
    g.bench_function("generate", |b| {
        b.iter(|| std::hint::black_box(exp::weak_scaling()))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
