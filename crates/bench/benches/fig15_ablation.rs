//! Bench target `fig15_ablation` — regenerates Fig. 15 (ablation with PFS multi-path) and times the full
//! experiment run (deterministic virtual-time simulation).

use criterion::{criterion_group, criterion_main, Criterion};
use mlp_train::experiments as exp;

fn bench(c: &mut Criterion) {
    // Print the reproduced rows once so `cargo bench` output carries the
    // figure's data series.
    let rows = exp::fig15_ablation_pfs();
    mlp_bench::render_ablation("Fig. 15: ablation with PFS multi-path", &rows);
    let mut g = c.benchmark_group("fig15_ablation");
    g.sample_size(10);
    g.bench_function("generate", |b| {
        b.iter(|| std::hint::black_box(exp::fig15_ablation_pfs()))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
