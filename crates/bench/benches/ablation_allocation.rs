//! Design-choice ablation: Eq. 1 proportional subgroup allocation vs an
//! equal split vs NVMe-only (no multi-path). Proportional allocation keeps
//! both paths finishing together; an equal split over unequal tiers makes
//! the slow path straggle (DESIGN.md ablation #1).

use criterion::{criterion_group, criterion_main, Criterion};
use mlp_model::zoo;
use mlp_offload::EngineConfig;
use mlp_train::driver::{run, summarize, TrainSetup};
use mlp_train::testbed1;

fn iteration_secs(tier_ratio: Option<Vec<f64>>, multipath: bool) -> f64 {
    let tb = testbed1();
    let mut cfg = EngineConfig::mlp_offload();
    cfg.tier_ratio = tier_ratio;
    cfg.adaptive_bandwidth = false;
    let tiers = if multipath {
        vec![tb.nvme.clone(), tb.pfs.clone()]
    } else {
        vec![tb.nvme.clone()]
    };
    let mut setup = TrainSetup::new(tb, zoo::model_70b(), cfg, tiers);
    setup.iterations = 4;
    let results = run(&setup);
    summarize(&setup, &results, 2).total_s
}

fn bench(c: &mut Criterion) {
    let proportional = iteration_secs(None, true);
    let equal = iteration_secs(Some(vec![1.0, 1.0]), true);
    let local_only = iteration_secs(None, false);
    mlp_bench::print_table(
        "Ablation: subgroup allocation policy (70B, Testbed-1, MLP-Offload engine)",
        &["policy", "iteration (s)"],
        &[
            vec![
                "Eq. 1 proportional (min-bandwidth)".into(),
                format!("{proportional:.1}"),
            ],
            vec!["equal split 1:1".into(), format!("{equal:.1}")],
            vec![
                "NVMe only (no multi-path)".into(),
                format!("{local_only:.1}"),
            ],
        ],
    );
    assert!(
        proportional <= equal + 1e-9 && proportional < local_only,
        "proportional allocation must win: {proportional:.1} vs {equal:.1} vs {local_only:.1}"
    );

    let mut g = c.benchmark_group("ablation_allocation");
    g.sample_size(10);
    g.bench_function("proportional", |b| b.iter(|| iteration_secs(None, true)));
    g.bench_function("equal_split", |b| {
        b.iter(|| iteration_secs(Some(vec![1.0, 1.0]), true))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
