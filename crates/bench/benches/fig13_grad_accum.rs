//! Bench target `fig13_grad_accum` — regenerates Fig. 13 (gradient accumulation) and times the full
//! experiment run (deterministic virtual-time simulation).

use criterion::{criterion_group, criterion_main, Criterion};
use mlp_train::experiments as exp;

fn bench(c: &mut Criterion) {
    // Print the reproduced rows once so `cargo bench` output carries the
    // figure's data series.
    let rows = exp::fig13_grad_accumulation();
    mlp_bench::render_fig13(&rows);
    let mut g = c.benchmark_group("fig13_grad_accum");
    g.sample_size(10);
    g.bench_function("generate", |b| {
        b.iter(|| std::hint::black_box(exp::fig13_grad_accumulation()))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
