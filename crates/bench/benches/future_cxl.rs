//! Bench target `future_cxl` — regenerates the §5 future-work CXL
//! memory-pool extension study and the §4.4 cost-effectiveness rows.

use criterion::{criterion_group, criterion_main, Criterion};
use mlp_train::experiments as exp;

fn bench(c: &mut Criterion) {
    mlp_bench::render_cxl(&exp::future_cxl());
    mlp_bench::render_cost(&exp::cost_effectiveness());
    let mut g = c.benchmark_group("future_cxl");
    g.sample_size(10);
    g.bench_function("generate", |b| {
        b.iter(|| std::hint::black_box(exp::future_cxl()))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
