//! Bench target `fig05_timeline` — regenerates Fig. 5 (update-phase I/O timeline) and times the full
//! experiment run (deterministic virtual-time simulation).

use criterion::{criterion_group, criterion_main, Criterion};
use mlp_train::experiments as exp;

fn bench(c: &mut Criterion) {
    // Print the reproduced rows once so `cargo bench` output carries the
    // figure's data series.
    let rows = exp::fig5_throughput_timeline();
    mlp_bench::render_fig5(&rows);
    let mut g = c.benchmark_group("fig05_timeline");
    g.sample_size(10);
    g.bench_function("generate", |b| {
        b.iter(|| std::hint::black_box(exp::fig5_throughput_timeline()))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
