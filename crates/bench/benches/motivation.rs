//! Bench target `motivation` — regenerates the §3.1 motivation comparison and times the full
//! experiment run (deterministic virtual-time simulation).

use criterion::{criterion_group, criterion_main, Criterion};
use mlp_train::experiments as exp;

fn bench(c: &mut Criterion) {
    // Print the reproduced rows once so `cargo bench` output carries the
    // figure's data series.
    let rows = exp::motivation();
    mlp_bench::render_motivation(&rows);
    let mut g = c.benchmark_group("motivation");
    g.sample_size(10);
    g.bench_function("generate", |b| {
        b.iter(|| std::hint::black_box(exp::motivation()))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
