//! Bench target `fig10_tier_distribution` — regenerates Fig. 10 (optimizer-state distribution) and times the full
//! experiment run (deterministic virtual-time simulation).

use criterion::{criterion_group, criterion_main, Criterion};
use mlp_train::experiments as exp;

fn bench(c: &mut Criterion) {
    // Print the reproduced rows once so `cargo bench` output carries the
    // figure's data series.
    let rows = exp::model_scaling();
    mlp_bench::render_fig10(&rows);
    let mut g = c.benchmark_group("fig10_tier_distribution");
    g.sample_size(10);
    g.bench_function("generate", |b| {
        b.iter(|| std::hint::black_box(exp::model_scaling()))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
