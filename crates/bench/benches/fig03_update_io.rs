//! Bench target `fig03_update_io` — regenerates Fig. 3 (update duration and I/O share) and times the full
//! experiment run (deterministic virtual-time simulation).

use criterion::{criterion_group, criterion_main, Criterion};
use mlp_train::experiments as exp;

fn bench(c: &mut Criterion) {
    // Print the reproduced rows once so `cargo bench` output carries the
    // figure's data series.
    let rows = exp::fig3_update_breakdown();
    mlp_bench::render_fig3(&rows);
    let mut g = c.benchmark_group("fig03_update_io");
    g.sample_size(10);
    g.bench_function("generate", |b| {
        b.iter(|| std::hint::black_box(exp::fig3_update_breakdown()))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
