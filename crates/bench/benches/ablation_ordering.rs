//! Design-choice ablation: subgroup processing order with host-frame
//! retention enabled — the alternating order converts the retained tail
//! into immediate hits, while repeating a fixed direction leaves the
//! retained subgroups stranded at the far end of every pass
//! (DESIGN.md ablation #2).

use criterion::{criterion_group, criterion_main, Criterion};
use mlp_model::zoo;
use mlp_offload::{EngineConfig, OrderPolicy};
use mlp_train::driver::{run, summarize, TrainSetup};
use mlp_train::testbed1;

fn run_with_order(order: OrderPolicy) -> (f64, f64) {
    let tb = testbed1();
    let mut cfg = EngineConfig::mlp_offload();
    cfg.order = order;
    let mut setup = TrainSetup::new(
        tb.clone(),
        zoo::model_40b(),
        cfg,
        vec![tb.nvme.clone(), tb.pfs.clone()],
    );
    setup.iterations = 4;
    let results = run(&setup);
    let s = summarize(&setup, &results, 2);
    (s.total_s, s.cache_hit_rate)
}

fn bench(c: &mut Criterion) {
    let (alt_s, alt_hits) = run_with_order(OrderPolicy::Alternating);
    let (asc_s, asc_hits) = run_with_order(OrderPolicy::Ascending);
    let (desc_s, desc_hits) = run_with_order(OrderPolicy::Descending);
    mlp_bench::print_table(
        "Ablation: subgroup ordering with retention (40B, Testbed-1)",
        &["order", "iteration (s)", "cache hit rate"],
        &[
            vec![
                "alternating (MLP-Offload)".into(),
                format!("{alt_s:.1}"),
                format!("{:.0}%", alt_hits * 100.0),
            ],
            vec![
                "always ascending".into(),
                format!("{asc_s:.1}"),
                format!("{:.0}%", asc_hits * 100.0),
            ],
            vec![
                "always descending".into(),
                format!("{desc_s:.1}"),
                format!("{:.0}%", desc_hits * 100.0),
            ],
        ],
    );
    assert!(
        alt_hits >= asc_hits && alt_hits >= desc_hits,
        "alternating must maximize hits: {alt_hits} vs {asc_hits}/{desc_hits}"
    );

    let mut g = c.benchmark_group("ablation_ordering");
    g.sample_size(10);
    g.bench_function("alternating", |b| {
        b.iter(|| run_with_order(OrderPolicy::Alternating))
    });
    g.bench_function("ascending", |b| {
        b.iter(|| run_with_order(OrderPolicy::Ascending))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
