//! Bench target `sensitivity` — subgroup-size and host-cache sweeps
//! (the §4.1 configuration choices).

use criterion::{criterion_group, criterion_main, Criterion};
use mlp_train::experiments as exp;

fn bench(c: &mut Criterion) {
    mlp_bench::render_subgroup_sweep(&exp::subgroup_size_sweep());
    mlp_bench::render_cache_sweep(&exp::cache_sweep());
    let mut g = c.benchmark_group("sensitivity");
    g.sample_size(10);
    g.bench_function("cache_sweep", |b| {
        b.iter(|| std::hint::black_box(exp::cache_sweep()))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
