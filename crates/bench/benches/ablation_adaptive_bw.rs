//! Design-choice ablation: adaptive bandwidth re-estimation (§3.3) under a
//! drifting shared PFS. External load halves the PFS mid-run; the adaptive
//! engine re-balances subgroups toward the NVMe while the static engine
//! keeps overloading the slow path (DESIGN.md ablation #5).

use criterion::{criterion_group, criterion_main, Criterion};
use mlp_model::Subgroup;
use mlp_offload::sim::{NodeSimEnv, NodeSpec, SimWorker};
use mlp_offload::EngineConfig;
use mlp_sim::Sim;
use mlp_storage::spec::{testbed1_nvme, testbed1_pfs};

/// Runs 6 update phases; the PFS drops to 30% capacity after the second.
/// Returns the mean update duration of the post-drift iterations.
fn post_drift_update_secs(adaptive: bool) -> f64 {
    let sim = Sim::new();
    let env = NodeSimEnv::new(
        &sim,
        &NodeSpec {
            tier_specs: vec![testbed1_nvme(), testbed1_pfs()],
            gpus: 1,
            d2h_bps: 55e9,
            cpu_update_params_per_s: 8e9,
            conv_bytes_per_s: 65e9,
        },
    );
    let mut cfg = EngineConfig::mlp_offload();
    cfg.adaptive_bandwidth = adaptive;
    cfg.cache_retention = false; // isolate the allocation effect
    let subgroups: Vec<Subgroup> = (0..40)
        .map(|id| Subgroup {
            id,
            params: 100_000_000,
        })
        .collect();
    let worker = SimWorker::new(env.clone(), 0, cfg, subgroups);

    let mut durations = Vec::new();
    for it in 0..6 {
        if it == 2 {
            env.tiers[1].set_load_factor(0.3);
        }
        let w = worker.clone();
        let stats = sim.block_on(async move { w.run_update().await });
        durations.push(stats.duration_s);
    }
    durations[3..].iter().sum::<f64>() / 3.0
}

fn bench(c: &mut Criterion) {
    let adaptive = post_drift_update_secs(true);
    let static_alloc = post_drift_update_secs(false);
    mlp_bench::print_table(
        "Ablation: adaptive bandwidth re-estimation under PFS load drift (40 subgroups)",
        &["allocation", "post-drift update (s)"],
        &[
            vec![
                "adaptive (EMA re-estimation)".into(),
                format!("{adaptive:.1}"),
            ],
            vec![
                "static (microbenchmark only)".into(),
                format!("{static_alloc:.1}"),
            ],
        ],
    );
    assert!(
        adaptive < static_alloc,
        "adaptation must help after drift: {adaptive:.1} vs {static_alloc:.1}"
    );

    let mut g = c.benchmark_group("ablation_adaptive_bw");
    g.sample_size(10);
    g.bench_function("adaptive", |b| b.iter(|| post_drift_update_secs(true)));
    g.bench_function("static", |b| b.iter(|| post_drift_update_secs(false)));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
