//! Bench target `fig14_ablation` — regenerates Fig. 14 (ablation, NVMe only) and times the full
//! experiment run (deterministic virtual-time simulation).

use criterion::{criterion_group, criterion_main, Criterion};
use mlp_train::experiments as exp;

fn bench(c: &mut Criterion) {
    // Print the reproduced rows once so `cargo bench` output carries the
    // figure's data series.
    let rows = exp::fig14_ablation_nvme();
    mlp_bench::render_ablation("Fig. 14: ablation on node-local NVMe only", &rows);
    let mut g = c.benchmark_group("fig14_ablation");
    g.sample_size(10);
    g.bench_function("generate", |b| {
        b.iter(|| std::hint::black_box(exp::fig14_ablation_nvme()))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
