//! Bench target `fig09_io_throughput` — regenerates Fig. 9 (effective I/O throughput) and times the full
//! experiment run (deterministic virtual-time simulation).

use criterion::{criterion_group, criterion_main, Criterion};
use mlp_train::experiments as exp;

fn bench(c: &mut Criterion) {
    // Print the reproduced rows once so `cargo bench` output carries the
    // figure's data series.
    let rows = exp::model_scaling();
    mlp_bench::render_fig9(&rows);
    let mut g = c.benchmark_group("fig09_io_throughput");
    g.sample_size(10);
    g.bench_function("generate", |b| {
        b.iter(|| std::hint::black_box(exp::model_scaling()))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
