#![warn(missing_docs)]
#![deny(unsafe_code)]

//! Shared formatting for the reproduction harness: renders each
//! experiment's rows the way the paper's tables and figure captions report
//! them, plus the traced Fig. 5 timeline export ([`timeline`]).

pub mod timeline;

use mlp_train::experiments::{
    AblationRow, CacheSweepRow, CheckpointRow, CostRow, CxlRow, Fig13Row, Fig3Row, Fig4Row,
    Fig5Point, MotivationRow, ScalingRow, SubgroupSizeRow, WeakScalingRow,
};

/// Prints an ASCII table with a title.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let line: String = widths
        .iter()
        .map(|w| "-".repeat(w + 2))
        .collect::<Vec<_>>()
        .join("+");
    println!("\n== {title} ==");
    println!("{line}");
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!(" {c:<w$} "))
            .collect::<Vec<_>>()
            .join("|")
    };
    println!(
        "{}",
        fmt_row(&headers.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    );
    println!("{line}");
    for row in rows {
        println!("{}", fmt_row(row));
    }
    println!("{line}");
}

fn s1(x: f64) -> String {
    format!("{x:.1}")
}
fn s2(x: f64) -> String {
    format!("{x:.2}")
}
fn pct(x: f64) -> String {
    format!("{:.0}%", x * 100.0)
}

/// Renders the §3.1 motivation rows.
pub fn render_motivation(rows: &[MotivationRow]) {
    print_table(
        "3.1 motivation: 20B iteration time by offload target (paper: 0.4s / 3.7s / 67s)",
        &["configuration", "iteration (s)", "slowdown vs GPU"],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.configuration.clone(),
                    s2(r.iteration_s),
                    s1(r.slowdown_vs_gpu),
                ]
            })
            .collect::<Vec<_>>(),
    );
}

/// Renders Fig. 3.
pub fn render_fig3(rows: &[Fig3Row]) {
    print_table(
        "Fig. 3: update duration, host vs SSD offload (paper: SSD ~30x slower, 99% I/O)",
        &["model", "offload", "update (s)", "I/O share"],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.model.clone(),
                    r.offload_target.clone(),
                    s1(r.update_s),
                    pct(r.io_fraction),
                ]
            })
            .collect::<Vec<_>>(),
    );
}

/// Renders Fig. 4.
pub fn render_fig4(rows: &[Fig4Row]) {
    print_table(
        "Fig. 4: tier throughput under concurrency (aggregate flat, latency grows)",
        &[
            "tier",
            "procs",
            "agg read (GB/s)",
            "agg write (GB/s)",
            "mean op latency (s)",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.tier.clone(),
                    r.procs.to_string(),
                    s2(r.agg_read_gbps),
                    s2(r.agg_write_gbps),
                    s2(r.mean_latency_s),
                ]
            })
            .collect::<Vec<_>>(),
    );
}

/// Renders the Fig. 5 timeline (coarse, at most ~24 rows).
pub fn render_fig5(points: &[Fig5Point]) {
    let step = (points.len() / 24).max(1);
    print_table(
        "Fig. 5: I/O throughput timeline, 40B baseline update on NVMe (oscillating, write-bound)",
        &["t (s)", "read (GB/s)", "write (GB/s)"],
        &points
            .iter()
            .step_by(step)
            .map(|p| vec![s1(p.t_s), s2(p.read_gbps), s2(p.write_gbps)])
            .collect::<Vec<_>>(),
    );
}

/// Renders Fig. 7 (iteration breakdown) from the scaling rows.
pub fn render_fig7(rows: &[ScalingRow]) {
    print_table(
        "Fig. 7: iteration breakdown vs model size (paper: MLP-Offload up to 2.7x faster)",
        &[
            "model",
            "approach",
            "fwd (s)",
            "bwd (s)",
            "update (s)",
            "total (s)",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.model.clone(),
                    r.approach.clone(),
                    s2(r.forward_s),
                    s1(r.backward_s),
                    s1(r.update_s),
                    s1(r.total_s),
                ]
            })
            .collect::<Vec<_>>(),
    );
}

/// Renders Fig. 8 (update throughput) from the scaling rows.
pub fn render_fig8(rows: &[ScalingRow]) {
    print_table(
        "Fig. 8: update throughput (paper refs: 40000 M/s GPU, 8000 M/s CPU; MLP 1.8-2.4x DS)",
        &["model", "approach", "update throughput (Mparam/s)"],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.model.clone(),
                    r.approach.clone(),
                    s1(r.update_mparams_per_s),
                ]
            })
            .collect::<Vec<_>>(),
    );
}

/// Renders Fig. 9 (effective I/O throughput) from the scaling rows.
pub fn render_fig9(rows: &[ScalingRow]) {
    print_table(
        "Fig. 9: effective I/O throughput (paper: DS ~3.2 GB/s, MLP ~2.6x, decaying with size)",
        &[
            "model",
            "approach",
            "effective I/O (GB/s)",
            "cache hit rate",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.model.clone(),
                    r.approach.clone(),
                    s2(r.effective_io_gbps),
                    pct(r.cache_hit_rate),
                ]
            })
            .collect::<Vec<_>>(),
    );
}

/// Renders Fig. 10 (state distribution) from the scaling rows.
pub fn render_fig10(rows: &[ScalingRow]) {
    print_table(
        "Fig. 10: optimizer-state distribution (paper: ~2:1 NVMe:PFS for MLP-Offload)",
        &["model", "approach", "host", "nvme", "pfs"],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.model.clone(),
                    r.approach.clone(),
                    pct(r.host_fraction),
                    pct(r.nvme_fraction),
                    pct(r.pfs_fraction),
                ]
            })
            .collect::<Vec<_>>(),
    );
}

/// Renders Fig. 11 (weak-scaling iteration time).
pub fn render_fig11(rows: &[WeakScalingRow]) {
    print_table(
        "Fig. 11: weak scaling, iteration time (paper: MLP up to 2x faster at scale)",
        &["nodes", "GPUs", "model", "approach", "iteration (s)"],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.nodes.to_string(),
                    r.gpus.to_string(),
                    r.model.clone(),
                    r.approach.clone(),
                    s1(r.iteration_s),
                ]
            })
            .collect::<Vec<_>>(),
    );
}

/// Renders Fig. 12 (weak-scaling update throughput).
pub fn render_fig12(rows: &[WeakScalingRow]) {
    print_table(
        "Fig. 12: weak scaling, aggregate update throughput",
        &["nodes", "model", "approach", "update throughput (Mparam/s)"],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.nodes.to_string(),
                    r.model.clone(),
                    r.approach.clone(),
                    s1(r.update_mparams_per_s),
                ]
            })
            .collect::<Vec<_>>(),
    );
}

/// Renders Fig. 13 (gradient accumulation).
pub fn render_fig13(rows: &[Fig13Row]) {
    print_table(
        "Fig. 13: gradient accumulation, 40B (paper: MLP >= 40% faster throughout)",
        &["accum steps", "equiv batch", "approach", "iteration (s)"],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.accumulation_steps.to_string(),
                    r.equivalent_batch.to_string(),
                    r.approach.clone(),
                    s1(r.iteration_s),
                ]
            })
            .collect::<Vec<_>>(),
    );
}

/// Renders an ablation ladder (Figs. 14/15).
pub fn render_ablation(title: &str, rows: &[AblationRow]) {
    print_table(
        title,
        &["model", "stage", "iteration (s)", "speedup vs baseline"],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.model.clone(),
                    r.stage.clone(),
                    s1(r.iteration_s),
                    s2(r.speedup_vs_baseline),
                ]
            })
            .collect::<Vec<_>>(),
    );
}

/// Renders the §3.3 checkpoint pre-staging rows.
pub fn render_checkpoint(rows: &[CheckpointRow]) {
    print_table(
        "3.3 checkpoint pre-staging: persistent fraction and remaining flush time",
        &[
            "model",
            "approach",
            "pre-staged",
            "remaining flush (s, at PFS speed)",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.model.clone(),
                    r.approach.clone(),
                    pct(r.prestaged_fraction),
                    s1(r.checkpoint_flush_s),
                ]
            })
            .collect::<Vec<_>>(),
    );
}

/// Renders the §4.4 cost-effectiveness rows.
pub fn render_cost(rows: &[CostRow]) {
    print_table(
        "4.4 cost-effectiveness: 70B on 80 GPUs vs 8 GPUs + offload (paper: ~2x better)",
        &[
            "configuration",
            "GPUs",
            "iteration (s)",
            "slowdown",
            "cost-effectiveness",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.configuration.clone(),
                    r.gpus.to_string(),
                    s1(r.iteration_s),
                    s1(r.slowdown_vs_gpu_only),
                    s2(r.cost_effectiveness),
                ]
            })
            .collect::<Vec<_>>(),
    );
}

/// Renders the §5 CXL-extension rows.
pub fn render_cxl(rows: &[CxlRow]) {
    print_table(
        "5 (future work): CXL memory pool as an additional I/O path (70B, Testbed-1)",
        &["tier set", "iteration (s)", "speedup vs MLP-Offload"],
        &rows
            .iter()
            .map(|r| vec![r.tiers.clone(), s1(r.iteration_s), s2(r.speedup_vs_mlp)])
            .collect::<Vec<_>>(),
    );
}

/// Renders the subgroup-size sensitivity rows.
pub fn render_subgroup_sweep(rows: &[SubgroupSizeRow]) {
    print_table(
        "4.1 sensitivity: subgroup size (paper picks 100M over DeepSpeed's 1B default)",
        &["subgroup (Mparam)", "approach", "iteration (s)"],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.subgroup_mparams.to_string(),
                    r.approach.clone(),
                    s1(r.iteration_s),
                ]
            })
            .collect::<Vec<_>>(),
    );
}

/// Renders the host-cache sensitivity rows.
pub fn render_cache_sweep(rows: &[CacheSweepRow]) {
    print_table(
        "sensitivity: host-cache budget (40B, MLP-Offload)",
        &["cache fraction", "iteration (s)", "hit rate"],
        &rows
            .iter()
            .map(|r| {
                vec![
                    format!("{:.2}", r.cache_fraction),
                    s1(r.iteration_s),
                    pct(r.cache_hit_rate),
                ]
            })
            .collect::<Vec<_>>(),
    );
}

/// Renders Tables 1 and 2 from the encoded constants.
pub fn render_tables() {
    let t1 = mlp_train::testbed1();
    let t2 = mlp_train::testbed2();
    print_table(
        "Table 1: testbed configurations",
        &["feature", &t1.name, &t2.name],
        &[
            vec!["GPUs".into(), "4x H100-80GB".into(), "4x A100-40GB".into()],
            vec![
                "Pinned D<->H (GB/s)".into(),
                format!("{:.0}", t1.d2h_bps / 1e9),
                format!("{:.0}", t2.d2h_bps / 1e9),
            ],
            vec![
                "CPU cores".into(),
                t1.cpu_cores.to_string(),
                t2.cpu_cores.to_string(),
            ],
            vec!["Host memory (GB)".into(), "512".into(), "512".into()],
            vec![
                "NVMe R|W (GB/s)".into(),
                format!(
                    "{:.1} | {:.1}",
                    t1.nvme.read_bps / 1e9,
                    t1.nvme.write_bps / 1e9
                ),
                format!(
                    "{:.1} | {:.1}",
                    t2.nvme.read_bps / 1e9,
                    t2.nvme.write_bps / 1e9
                ),
            ],
            vec!["PFS".into(), "VAST".into(), "Lustre".into()],
            vec![
                "PFS R|W (GB/s)".into(),
                format!(
                    "{:.1} | {:.1}",
                    t1.pfs.read_bps / 1e9,
                    t1.pfs.write_bps / 1e9
                ),
                format!(
                    "{:.1} | {:.1}",
                    t2.pfs.read_bps / 1e9,
                    t2.pfs.write_bps / 1e9
                ),
            ],
        ],
    );

    let rows: Vec<Vec<String>> = std::iter::once(mlp_model::zoo::model_20b())
        .chain(mlp_model::zoo::table2())
        .map(|m| {
            vec![
                m.name.clone(),
                m.num_layers.to_string(),
                m.hidden_dim.to_string(),
                m.attention_heads.to_string(),
                format!("{:.1}", m.param_count() as f64 / 1e9),
            ]
        })
        .collect();
    print_table(
        "Table 2: model configurations (computed sizes from 12*L*D^2 + embeddings)",
        &["model", "N_L", "D_H", "AH", "params (B)"],
        &rows,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_printer_handles_empty_and_ragged_titles() {
        print_table("empty", &["a", "b"], &[]);
        print_table(
            "one",
            &["col"],
            &[vec!["a-very-long-cell-value".to_string()]],
        );
    }
}
