//! The `repro --trace` timeline export: runs the 40B configuration for
//! both approaches with tracing enabled, writes one merged Chrome trace
//! (open it at `chrome://tracing` or <https://ui.perfetto.dev>), and
//! summarizes per-tier I/O.
//!
//! The exported timeline is the paper's Fig. 5 argument made visible:
//! MLP-Offload's lazy flushes (deferred drain) overlap the next backward
//! pass, while DeepSpeed ZeRO-3 serializes flush I/O inside the update
//! phase.

use mlp_model::zoo;
use mlp_offload::EngineConfig;
use mlp_storage::spec::object_store;
use mlp_trace::{chrome_trace_json_named, EventKind, IoSummary, Phase, TraceEvent, TraceSink};
use mlp_train::driver::{run, TrainSetup};
use mlp_train::testbed1;

/// One approach's slice of the exported timeline.
pub struct TimelineRun {
    /// Display name (the Chrome-trace process label).
    pub name: &'static str,
    /// Chrome-trace pid stamped on this run's events.
    pub pid: u32,
    /// Every span and instant the run recorded.
    pub events: Vec<TraceEvent>,
    /// Tier labels by tier index (for the I/O summary table).
    pub tier_names: Vec<String>,
    /// Virtual seconds during which state-flush spans overlap the same
    /// worker's backward spans — the Fig. 5 overlap metric.
    pub flush_backward_overlap_s: f64,
    /// Virtual seconds during which checkpoint flush/trickle spans overlap
    /// the same worker's backward spans — the asynchronous checkpoint
    /// pipeline's version of the Fig. 5 overlap (0 when the run does not
    /// checkpoint, or checkpoints synchronously).
    pub ckpt_backward_overlap_s: f64,
}

/// Virtual seconds during which `a`-phase spans overlap `b`-phase spans
/// recorded by the same worker (`tid`).
fn overlap_secs(events: &[TraceEvent], a: Phase, b: Phase) -> f64 {
    let spans = |p: Phase| {
        events
            .iter()
            .filter(move |e| e.phase == p && e.kind == EventKind::Span)
    };
    let mut total_ns = 0u64;
    for ea in spans(a) {
        for eb in spans(b) {
            if ea.tid != eb.tid {
                continue;
            }
            let lo = ea.ts_ns.max(eb.ts_ns);
            let hi = (ea.ts_ns + ea.dur_ns).min(eb.ts_ns + eb.dur_ns);
            total_ns += hi.saturating_sub(lo);
        }
    }
    total_ns as f64 / 1e9
}

/// Runs the 40B Testbed-1 scenario for DeepSpeed ZeRO-3 (pid 0) and
/// MLP-Offload with deferred flush drain (pid 1), two iterations each,
/// and writes the merged Chrome trace to `path`. Returns both runs'
/// events and overlap metrics for rendering.
pub fn export_timeline_trace(path: &str) -> std::io::Result<Vec<TimelineRun>> {
    export_timeline_trace_every(path, 1)
}

/// [`export_timeline_trace`] with an explicit checkpoint cadence for the
/// MLP-Offload run: `checkpoint_every` iterations between asynchronous
/// two-hop checkpoints (NVMe staging → object store), 0 to disable. The
/// baseline run never checkpoints, so the checkpoint lanes isolate the
/// pipeline's contribution to the timeline.
pub fn export_timeline_trace_every(
    path: &str,
    checkpoint_every: usize,
) -> std::io::Result<Vec<TimelineRun>> {
    let tb = testbed1();
    let mut mlp_cfg = EngineConfig::mlp_offload();
    // Fig. 5: leave the update phase's lazy flushes in flight so they
    // drain while the next iteration's backward pass runs.
    mlp_cfg.deferred_flush_drain = true;
    // The object store joins the tier set as a checkpoint target only: a
    // negligible allocation weight keeps training state off it (30 ms
    // per-op latency would distort the Fig. 5 update path), while the
    // checkpoint pipeline trickles into it by tier kind.
    let mlp_tiers = vec![tb.nvme.clone(), tb.pfs.clone(), object_store()];
    mlp_cfg.tier_ratio = Some(vec![
        tb.nvme.model_bandwidth_bps(),
        tb.pfs.model_bandwidth_bps(),
        1e-6,
    ]);
    let approaches = [
        (
            "DeepSpeed ZeRO-3",
            EngineConfig::deepspeed_zero3(),
            vec![tb.nvme.clone()],
            0,
        ),
        ("MLP-Offload", mlp_cfg, mlp_tiers, checkpoint_every),
    ];

    let mut runs = Vec::new();
    for (pid, (name, cfg, tiers, every)) in approaches.into_iter().enumerate() {
        let sink = TraceSink::enabled();
        let mut setup = TrainSetup::new(
            tb.clone(),
            zoo::model_40b(),
            cfg.with_trace(sink.clone()),
            tiers.clone(),
        )
        .with_checkpoint_every(every);
        setup.iterations = 2;
        run(&setup);
        let mut events = sink.events();
        for e in &mut events {
            e.pid = pid as u32;
        }
        runs.push(TimelineRun {
            name,
            pid: pid as u32,
            flush_backward_overlap_s: overlap_secs(&events, Phase::Flush, Phase::Backward),
            ckpt_backward_overlap_s: overlap_secs(&events, Phase::CkptFlush, Phase::Backward)
                + overlap_secs(&events, Phase::CkptTrickle, Phase::Backward),
            tier_names: tiers.iter().map(|t| t.name.clone()).collect(),
            events,
        });
    }

    let merged: Vec<TraceEvent> = runs.iter().flat_map(|r| r.events.iter().copied()).collect();
    let process_names: Vec<(u32, &str)> = runs.iter().map(|r| (r.pid, r.name)).collect();
    let worker_labels: Vec<(u32, u32, String)> = runs
        .iter()
        .flat_map(|r| {
            (0..tb.gpus_per_node as u32).map(move |g| (r.pid, g, format!("worker {g}")))
        })
        .collect();
    let thread_names: Vec<(u32, u32, &str)> = worker_labels
        .iter()
        .map(|(p, t, n)| (*p, *t, n.as_str()))
        .collect();
    std::fs::write(
        path,
        chrome_trace_json_named(&merged, &process_names, &thread_names),
    )?;
    Ok(runs)
}

/// Renders each run's per-tier I/O summary and the Fig. 5 overlap metric.
pub fn render_timeline(path: &str, runs: &[TimelineRun]) {
    let total: usize = runs.iter().map(|r| r.events.len()).sum();
    println!("\n== Fig. 5 timeline: wrote {total} events to {path} ==");
    println!("(open in chrome://tracing or https://ui.perfetto.dev)");
    for r in runs {
        let names: Vec<&str> = r.tier_names.iter().map(String::as_str).collect();
        println!(
            "\n{} — flush/backward overlap: {:.1} s {}",
            r.name,
            r.flush_backward_overlap_s,
            if r.flush_backward_overlap_s > 0.0 {
                "(flushes hidden behind backward compute)"
            } else {
                "(flush I/O serializes inside the update phase)"
            }
        );
        if r.ckpt_backward_overlap_s > 0.0 {
            println!(
                "{} — checkpoint/backward overlap: {:.1} s (async flush+trickle off the critical path)",
                r.name, r.ckpt_backward_overlap_s
            );
        }
        print!("{}", IoSummary::from_events(&r.events).render(&names));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The exported trace must round-trip through the Chrome parser and
    /// show the paper's asymmetry: MLP-Offload overlaps flushes with the
    /// backward pass, ZeRO-3 does not.
    #[test]
    fn export_shows_fig5_overlap_asymmetry() {
        let dir = std::env::temp_dir().join("mlp_timeline_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.json");
        let runs = export_timeline_trace(path.to_str().unwrap()).unwrap();
        assert_eq!(runs.len(), 2);
        let (zero3, mlp) = (&runs[0], &runs[1]);
        assert_eq!(
            zero3.flush_backward_overlap_s, 0.0,
            "baseline flushes must serialize"
        );
        assert!(
            mlp.flush_backward_overlap_s > 0.0,
            "deferred flushes must overlap backward"
        );
        // The asynchronous checkpoint pipeline joins the Fig. 5 argument:
        // its flush/trickle spans hide behind the next backward pass on
        // the MLP run, and never appear on the non-checkpointing baseline.
        assert!(
            mlp.ckpt_backward_overlap_s > 0.0,
            "async checkpoint flushes must overlap backward"
        );
        assert_eq!(zero3.ckpt_backward_overlap_s, 0.0);
        assert!(
            mlp.events.iter().any(|e| e.phase == Phase::CkptTrickle),
            "object-store trickle must reach the timeline"
        );
        // Both runs put spans on the timeline and bytes on the tiers.
        for r in &runs {
            assert!(!r.events.is_empty());
            assert!(IoSummary::from_events(&r.events).total_bytes() > 0);
        }

        let text = std::fs::read_to_string(&path).unwrap();
        let parsed = mlp_trace::parse_chrome_trace(&text).expect("valid Chrome trace");
        // Span events survive the round trip (instants too; metadata
        // records are not TraceEvents).
        let merged: usize = runs.iter().map(|r| r.events.len()).sum();
        assert_eq!(parsed.len(), merged);
        assert!(parsed.iter().any(|e| e.pid == 1 && e.phase == Phase::Flush));
        std::fs::remove_file(&path).ok();
    }
}
