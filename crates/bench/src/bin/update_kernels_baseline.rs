//! `update_kernels_baseline` — measures the fused single-pass update
//! kernel against the legacy multi-pass pipeline (upscale sweep →
//! optimizer sweep → downscale sweep) for every optimizer at 1M and 16M
//! elements, and writes the machine-readable baseline consumed by CI and
//! tracked in `BENCH_update_kernels.json`.
//!
//! ```text
//! update_kernels_baseline [OUTPUT_PATH]   (default: BENCH_update_kernels.json)
//! ```
//!
//! Reported per (optimizer, size, path): elements/second and effective
//! GB/s of memory traffic. The byte counts per element differ by design —
//! that asymmetry *is* the optimization. Fused touches each state array
//! once (12 B read + 12 B write), the FP16 gradients once (2 B), and the
//! FP16 output once (2 B): 28 B/element. Multi-pass adds a materialized
//! FP32 gradient scratch vector (4 B write + 4 B read), re-reads the
//! parameters for the downscale sweep (4 B), and re-writes FP16 (2 B on
//! top of the same 26): 40 B/element plus a heap allocation per call.

use std::time::Instant;

use mlp_optim::adam::AdamConfig;
use mlp_optim::fused::fused_update_fp16;
use mlp_optim::optimizer::{AdagradConfig, LionConfig, OptimizerConfig, SgdConfig};
use mlp_tensor::{convert, F16};

/// Effective bytes of memory traffic per element, fused path.
const FUSED_BYTES_PER_ELEM: f64 = 28.0;
/// Effective bytes of memory traffic per element, multi-pass path.
const MULTI_BYTES_PER_ELEM: f64 = 40.0;

struct Measurement {
    optimizer: &'static str,
    elements: usize,
    path: &'static str,
    elements_per_s: f64,
    gb_per_s: f64,
    iters: u64,
}

fn measure(
    name: &'static str,
    opt: &OptimizerConfig,
    n: usize,
    fused: bool,
) -> Measurement {
    let grads_fp16: Vec<u16> = (0..n)
        .map(|i| F16::from_f32(((i % 1000) as f32 - 500.0) * 1e-4).to_bits())
        .collect();
    let inv_scale = 1.0 / 1024.0;
    let mut params = vec![0.1f32; n];
    let mut slot1 = vec![0.0f32; n];
    let mut slot2 = vec![0.0f32; n];
    let mut fp16_out = vec![0u16; n];
    let mut step = 0u64;

    let mut run = |step: u64| {
        if fused {
            fused_update_fp16(
                opt,
                step,
                &mut params,
                &mut slot1,
                &mut slot2,
                &grads_fp16,
                inv_scale,
                &mut fp16_out,
            );
        } else {
            let mut scratch = vec![0.0f32; n];
            convert::upscale_scaled_par(&grads_fp16, &mut scratch, inv_scale);
            opt.step_par(step, &mut params, &mut slot1, &mut slot2, &scratch);
            convert::downscale_par(&params, &mut fp16_out);
        }
    };

    // Warm-up (page-in + branch warm).
    step += 1;
    run(step);

    // Measure for at least ~2 s and at least 10 iterations (long enough to
    // ride out scheduler noise on small shared machines).
    let mut iters = 0u64;
    let start = Instant::now();
    loop {
        step += 1;
        run(step);
        iters += 1;
        if iters >= 10 && start.elapsed().as_secs_f64() >= 2.0 {
            break;
        }
    }
    let secs = start.elapsed().as_secs_f64();
    let elements_per_s = (n as f64 * iters as f64) / secs;
    let bytes = if fused {
        FUSED_BYTES_PER_ELEM
    } else {
        MULTI_BYTES_PER_ELEM
    };
    Measurement {
        optimizer: name,
        elements: n,
        path: if fused { "fused" } else { "multi_pass" },
        elements_per_s,
        gb_per_s: elements_per_s * bytes / 1e9,
        iters,
    }
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_update_kernels.json".to_string());
    let optimizers: [(&'static str, OptimizerConfig); 4] = [
        ("adam", OptimizerConfig::Adam(AdamConfig::default())),
        ("sgd", OptimizerConfig::Sgd(SgdConfig::default())),
        ("adagrad", OptimizerConfig::Adagrad(AdagradConfig::default())),
        ("lion", OptimizerConfig::Lion(LionConfig::default())),
    ];

    let mut results = Vec::new();
    for n in [1usize << 20, 1 << 24] {
        for (name, opt) in &optimizers {
            for fused in [true, false] {
                let m = measure(name, opt, n, fused);
                eprintln!(
                    "{:>8} {:>9} {:>10}: {:8.1} Melem/s  {:6.2} GB/s  ({} iters)",
                    m.optimizer,
                    m.elements,
                    m.path,
                    m.elements_per_s / 1e6,
                    m.gb_per_s,
                    m.iters
                );
                results.push(m);
            }
        }
    }

    // Headline ratio the baseline tracks: fused vs multi-pass speedup in
    // elements/s at 16M, per optimizer.
    let mut speedups = serde_json::Map::new();
    for (name, _) in &optimizers {
        let at = |path: &str| {
            results
                .iter()
                .find(|m| m.optimizer == *name && m.elements == 1 << 24 && m.path == path)
                .expect("measured")
                .elements_per_s
        };
        let ratio = at("fused") / at("multi_pass");
        eprintln!("{name}: fused/multi_pass speedup @16M = {ratio:.2}x");
        speedups.insert(
            name.to_string(),
            serde_json::json!((ratio * 100.0).round() / 100.0),
        );
    }

    let doc = serde_json::json!({
        "benchmark": "update_kernels",
        "description": "fused single-pass mixed-precision update vs multi-pass (upscale, step, downscale) — elements/s and effective GB/s per optimizer",
        "bytes_per_element": { "fused": FUSED_BYTES_PER_ELEM, "multi_pass": MULTI_BYTES_PER_ELEM },
        "threads": std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1),
        "speedup_at_16m": speedups,
        "results": results.iter().map(|m| serde_json::json!({
            "optimizer": m.optimizer,
            "elements": m.elements,
            "path": m.path,
            "elements_per_s": m.elements_per_s.round(),
            "gb_per_s": (m.gb_per_s * 1000.0).round() / 1000.0,
            "iters": m.iters,
        })).collect::<Vec<_>>(),
    });
    std::fs::write(&out_path, serde_json::to_string_pretty(&doc).expect("serializable") + "\n")
        .expect("write baseline");
    println!("wrote {out_path}");
}
