//! `adaptive_replan_baseline` — the §3.3 closed-loop acceptance scenario
//! at benchmark scale, written as the machine-readable baseline tracked
//! in `BENCH_adaptive_replan.json`.
//!
//! ```text
//! adaptive_replan_baseline [OUTPUT_PATH] [--check COMMITTED_PATH]
//! ```
//!
//! One node with NVMe + PFS runs the update phase for a fixed number of
//! iterations; partway through, external load collapses the PFS to 15%
//! of its bandwidth. Three planner variants run the identical schedule:
//!
//! * `static` — Eq. 1 split frozen at the construction-time bandwidths;
//!   it keeps routing 40% of the flushes to the collapsed tier.
//! * `adaptive` — the closed loop: observed transfer rates fold into the
//!   [`BandwidthEstimator`] each iteration, flush writes re-split on the
//!   live estimates, and a bounded number of durable copies migrate
//!   between tiers at iteration boundaries.
//! * `oracle` — knows the post-degradation bandwidths a priori and plans
//!   for them from iteration zero (the re-plan quality upper bound).
//!
//! The headline metric is *recovery*: the fraction of the oracle's
//! iteration-time win over the static planner that the adaptive planner
//! achieves on the post-degradation tail. The acceptance bar is ≥ 0.9.
//!
//! With `--check`, the freshly measured numbers are compared against the
//! committed baseline and the run fails if any tail iteration time
//! regressed by more than 10% (the simulation is virtual-time
//! deterministic, so a real change is the only way to move them).

use mlp_model::Subgroup;
use mlp_offload::sim::{NodeSimEnv, NodeSpec, SimWorker};
use mlp_offload::EngineConfig;
use mlp_sim::Sim;
use mlp_train::testbed1;

/// Subgroups in the optimizer-state partition.
const SUBGROUPS: usize = 24;
/// Parameters per subgroup (24 × 100M × 12 B = 28.8 GB of state).
const PARAMS: u64 = 100_000_000;
/// Iterations per variant.
const ITERS: usize = 20;
/// Iteration at which the PFS collapses.
const DEGRADE_AT: usize = 6;
/// Post-degradation load factor on the PFS.
const LOAD_FACTOR: f64 = 0.15;
/// Tail iterations averaged for the steady-state comparison (leaves the
/// adaptive planner a few iterations of EMA convergence + migration).
const TAIL: usize = 8;
/// Migration budget per iteration for the adaptive variant.
const MIGRATIONS_PER_ITER: usize = 4;

struct VariantResult {
    name: &'static str,
    pre_mean_s: f64,
    tail_mean_s: f64,
    migrations: u64,
}

fn run_variant(name: &'static str, cfg: EngineConfig) -> VariantResult {
    let tb = testbed1();
    let sim = Sim::new();
    let env = NodeSimEnv::new(
        &sim,
        &NodeSpec {
            tier_specs: vec![tb.nvme.clone(), tb.pfs.clone()],
            gpus: 1,
            d2h_bps: 55e9,
            cpu_update_params_per_s: 8e9,
            conv_bytes_per_s: 65e9,
        },
    );
    let worker = SimWorker::new(
        env.clone(),
        0,
        cfg,
        (0..SUBGROUPS)
            .map(|id| Subgroup { id, params: PARAMS })
            .collect(),
    );
    let mut durs = Vec::with_capacity(ITERS);
    for i in 0..ITERS {
        if i == DEGRADE_AT {
            env.tiers[1].set_load_factor(LOAD_FACTOR);
        }
        let w = worker.clone();
        durs.push(sim.block_on(async move { w.run_update().await }).duration_s);
    }
    let pre_mean_s = durs[..DEGRADE_AT].iter().sum::<f64>() / DEGRADE_AT as f64;
    let tail_mean_s = durs[ITERS - TAIL..].iter().sum::<f64>() / TAIL as f64;
    eprintln!(
        "{name:>8}: pre {pre_mean_s:7.2}s/iter  tail {tail_mean_s:7.2}s/iter  \
         migrations {}",
        worker.planner_migrations()
    );
    VariantResult {
        name,
        pre_mean_s,
        tail_mean_s,
        migrations: worker.planner_migrations(),
    }
}

fn round2(x: f64) -> f64 {
    (x * 100.0).round() / 100.0
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_path = "BENCH_adaptive_replan.json".to_string();
    let mut check_path: Option<String> = None;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        if a == "--check" {
            check_path = Some(it.next().expect("--check needs a baseline path"));
        } else {
            out_path = a;
        }
    }

    let mut static_cfg = EngineConfig::mlp_offload();
    static_cfg.cache_retention = false;
    static_cfg.adaptive_bandwidth = false;

    let mut adaptive_cfg = EngineConfig::mlp_offload();
    adaptive_cfg.cache_retention = false;
    adaptive_cfg.max_migrations_per_iter = MIGRATIONS_PER_ITER;

    let mut oracle_cfg = EngineConfig::mlp_offload();
    oracle_cfg.cache_retention = false;
    oracle_cfg.adaptive_bandwidth = false;
    let tb = testbed1();
    oracle_cfg.tier_ratio = Some(vec![
        tb.nvme.read_bps.min(tb.nvme.write_bps),
        tb.pfs.read_bps.min(tb.pfs.write_bps) * LOAD_FACTOR,
    ]);

    let variants = [
        run_variant("static", static_cfg),
        run_variant("adaptive", adaptive_cfg),
        run_variant("oracle", oracle_cfg),
    ];
    let [st, ad, or] = &variants;
    let recovery = (st.tail_mean_s - ad.tail_mean_s) / (st.tail_mean_s - or.tail_mean_s);
    eprintln!("recovery of oracle win: {:.0}%", recovery * 100.0);
    assert!(
        st.tail_mean_s > or.tail_mean_s * 1.5,
        "static must lose badly post-degradation for the scenario to discriminate"
    );
    assert!(
        recovery >= 0.9,
        "adaptive planner recovered only {:.0}% of the oracle's win",
        recovery * 100.0
    );

    let doc = serde_json::json!({
        "benchmark": "adaptive_replan",
        "description": "Closed-loop re-planning under mid-run bandwidth degradation — post-collapse tail iteration seconds for static / adaptive / oracle planners and the fraction of the oracle's win the adaptive planner recovers",
        "subgroups": SUBGROUPS,
        "params_per_subgroup": PARAMS,
        "iterations": ITERS,
        "degrade_at": DEGRADE_AT,
        "pfs_load_factor": LOAD_FACTOR,
        "tail_iterations": TAIL,
        "migrations_per_iter": MIGRATIONS_PER_ITER,
        "recovery_of_oracle_win": round2(recovery),
        "results": variants.iter().map(|v| serde_json::json!({
            "variant": v.name,
            "pre_mean_s": round2(v.pre_mean_s),
            "tail_mean_s": round2(v.tail_mean_s),
            "migrations": v.migrations,
        })).collect::<Vec<_>>(),
    });
    std::fs::write(
        &out_path,
        serde_json::to_string_pretty(&doc).expect("serializable") + "\n",
    )
    .expect("write baseline");
    println!("wrote {out_path}");

    if let Some(committed) = check_path {
        let body = std::fs::read_to_string(&committed).expect("read committed baseline");
        let old: serde_json::Value = serde_json::from_str(&body).expect("parse committed baseline");
        let mut failures = Vec::new();
        for v in &variants {
            let old_tail = old["results"]
                .as_array()
                .expect("results array")
                .iter()
                .find(|r| r["variant"].as_str() == Some(v.name))
                .and_then(|r| r["tail_mean_s"].as_f64())
                .expect("committed tail_mean_s");
            // >10% slower than the committed number is a regression; a
            // faster number is progress, reported but not fatal (the
            // committed file should then be regenerated).
            let ratio = v.tail_mean_s / old_tail;
            eprintln!(
                "check {:>8}: tail {:.2}s vs committed {:.2}s ({:+.1}%)",
                v.name,
                v.tail_mean_s,
                old_tail,
                (ratio - 1.0) * 100.0
            );
            if ratio > 1.10 {
                failures.push(format!(
                    "{}: tail iteration time regressed {:.1}% (got {:.2}s, committed {:.2}s)",
                    v.name,
                    (ratio - 1.0) * 100.0,
                    v.tail_mean_s,
                    old_tail
                ));
            }
        }
        if !failures.is_empty() {
            eprintln!("BASELINE REGRESSION:");
            for f in &failures {
                eprintln!("  {f}");
            }
            std::process::exit(1);
        }
        println!("baseline check passed ({committed})");
    }
}
