//! `checkpoint_baseline` — the asynchronous two-hop checkpoint pipeline's
//! cost on the training critical path, written as the machine-readable
//! baseline tracked in `BENCH_checkpoint.json`.
//!
//! ```text
//! checkpoint_baseline [OUTPUT_PATH] [--check COMMITTED_PATH]
//! ```
//!
//! One Testbed-1 node trains the 40B model over NVMe + PFS + object
//! store and checkpoints every iteration, three ways:
//!
//! * `none` — no checkpointing: the iteration-time floor.
//! * `sync` — the blocking baseline: flush to NVMe and trickle to the
//!   object store complete inside the iteration, on the critical path.
//! * `async` — the pipeline: checkpoint I/O is left in flight and
//!   drains while the next iteration's backward pass runs (§3.3).
//!
//! The headline metric is the *hidden fraction*: how much of the sync
//! variant's checkpoint overhead the asynchronous pipeline removes from
//! the critical path. At 40B the NVMe staging tier is close to saturated
//! by training's own deferred flush I/O during the backward window, so
//! the pipeline can only reclaim the tier's remaining idle time; the
//! acceptance bar is ≥ 0.15 of the blocking overhead (≈ 10 virtual
//! seconds per iteration here), and the per-variant regression gate
//! holds the rest of the story in place.
//!
//! With `--check`, freshly measured numbers are compared against the
//! committed baseline and the run fails if any variant's mean iteration
//! time regressed by more than 10% (virtual time is deterministic, so a
//! real change is the only way to move them).

use mlp_model::zoo;
use mlp_offload::EngineConfig;
use mlp_storage::spec::object_store;
use mlp_train::driver::{run, TrainSetup};
use mlp_train::testbed1;

/// Iterations per variant.
const ITERS: usize = 6;
/// Warmup iterations excluded from the mean (first-touch placement).
const WARMUP: usize = 1;

struct VariantResult {
    name: &'static str,
    mean_iter_s: f64,
    ckpt_copied_bytes: u64,
}

fn run_variant(name: &'static str, every: usize, sync: bool) -> VariantResult {
    let tb = testbed1();
    let mut cfg = EngineConfig::mlp_offload();
    cfg.deferred_flush_drain = true;
    // The object store is the checkpoint target only: a negligible
    // allocation weight keeps training state on NVMe + PFS.
    cfg.tier_ratio = Some(vec![
        tb.nvme.model_bandwidth_bps(),
        tb.pfs.model_bandwidth_bps(),
        1e-6,
    ]);
    let tiers = vec![tb.nvme.clone(), tb.pfs.clone(), object_store()];
    let mut setup = TrainSetup::new(tb, zoo::model_40b(), cfg, tiers).with_checkpoint_every(every);
    setup.iterations = ITERS;
    setup.checkpoint_sync = sync;
    let results = run(&setup);
    let mean_iter_s = results[WARMUP..]
        .iter()
        .map(|r| r.breakdown.total_s())
        .sum::<f64>()
        / (ITERS - WARMUP) as f64;
    let ckpt_copied_bytes = results
        .iter()
        .filter_map(|r| r.checkpoint.as_ref())
        .map(|c| c.copied_bytes)
        .sum();
    eprintln!("{name:>6}: {mean_iter_s:7.2} s/iter  checkpoint copies {ckpt_copied_bytes} B");
    VariantResult {
        name,
        mean_iter_s,
        ckpt_copied_bytes,
    }
}

fn round2(x: f64) -> f64 {
    (x * 100.0).round() / 100.0
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_path = "BENCH_checkpoint.json".to_string();
    let mut check_path: Option<String> = None;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        if a == "--check" {
            check_path = Some(it.next().expect("--check needs a baseline path"));
        } else {
            out_path = a;
        }
    }

    let variants = [
        run_variant("none", 0, false),
        run_variant("sync", 1, true),
        run_variant("async", 1, false),
    ];
    let [none, sync, async_] = &variants;
    assert!(none.ckpt_copied_bytes == 0 && sync.ckpt_copied_bytes > 0);
    assert_eq!(
        sync.ckpt_copied_bytes, async_.ckpt_copied_bytes,
        "both checkpointing variants must move identical bytes"
    );
    let sync_overhead = sync.mean_iter_s - none.mean_iter_s;
    let async_overhead = async_.mean_iter_s - none.mean_iter_s;
    assert!(
        sync_overhead > 0.0,
        "blocking checkpoints must cost critical-path time for the scenario to discriminate"
    );
    let hidden = 1.0 - async_overhead / sync_overhead;
    eprintln!(
        "checkpoint overhead: sync {sync_overhead:.2} s/iter, async {async_overhead:.2} s/iter \
         ({:.0}% hidden behind backward)",
        hidden * 100.0
    );
    assert!(
        hidden >= 0.15,
        "async pipeline hid only {:.0}% of the sync checkpoint overhead",
        hidden * 100.0
    );

    let doc = serde_json::json!({
        "benchmark": "checkpoint",
        "description": "Critical-path cost of per-iteration checkpointing to NVMe + object store — mean iteration seconds without checkpoints, with blocking checkpoints, and with the asynchronous two-hop pipeline, plus the fraction of the blocking overhead the pipeline hides behind backward compute",
        "iterations": ITERS,
        "warmup": WARMUP,
        "hidden_fraction": round2(hidden),
        "results": variants.iter().map(|v| serde_json::json!({
            "variant": v.name,
            "mean_iter_s": round2(v.mean_iter_s),
            "ckpt_copied_bytes": v.ckpt_copied_bytes,
        })).collect::<Vec<_>>(),
    });
    std::fs::write(
        &out_path,
        serde_json::to_string_pretty(&doc).expect("serializable") + "\n",
    )
    .expect("write baseline");
    println!("wrote {out_path}");

    if let Some(committed) = check_path {
        let body = std::fs::read_to_string(&committed).expect("read committed baseline");
        let old: serde_json::Value = serde_json::from_str(&body).expect("parse committed baseline");
        let mut failures = Vec::new();
        for v in &variants {
            let old_mean = old["results"]
                .as_array()
                .expect("results array")
                .iter()
                .find(|r| r["variant"].as_str() == Some(v.name))
                .and_then(|r| r["mean_iter_s"].as_f64())
                .expect("committed mean_iter_s");
            let ratio = v.mean_iter_s / old_mean;
            eprintln!(
                "check {:>6}: {:.2} s/iter vs committed {:.2} ({:+.1}%)",
                v.name,
                v.mean_iter_s,
                old_mean,
                (ratio - 1.0) * 100.0
            );
            if ratio > 1.10 {
                failures.push(format!(
                    "{}: mean iteration time regressed {:.1}% (got {:.2}s, committed {:.2}s)",
                    v.name,
                    (ratio - 1.0) * 100.0,
                    v.mean_iter_s,
                    old_mean
                ));
            }
        }
        if !failures.is_empty() {
            eprintln!("BASELINE REGRESSION:");
            for f in &failures {
                eprintln!("  {f}");
            }
            std::process::exit(1);
        }
        println!("baseline check passed ({committed})");
    }
}
