//! `repro` — regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! repro [SUBCOMMAND] [--json]
//!
//! Subcommands:
//!   tables      Tables 1 and 2
//!   motivation  §3.1 20B offload-target comparison
//!   fig3 fig4 fig5 fig7 fig8 fig9 fig10 fig11 fig12 fig13 fig14 fig15
//!   sensitivity subgroup-size and cache-budget sweeps
//!   checkpoint  §3.3 checkpoint pre-staging
//!   cost        §4.4 cost-effectiveness comparison
//!   cxl         §5 future-work CXL extension
//!   all         everything (default)
//! ```
//!
//! `--json` emits the raw rows as JSON instead of ASCII tables.
//!
//! `--trace <out.json>` runs the 40B Fig. 5 scenario with tracing enabled
//! for both approaches and writes a merged Chrome trace (see
//! OBSERVABILITY.md). With no subcommand it runs only the timeline export.
//! `--checkpoint-every N` sets the traced MLP-Offload run's asynchronous
//! checkpoint cadence (default 1; 0 disables): checkpoint flush/trickle
//! spans land on the same timeline, overlapping the next backward pass.

use mlp_bench::timeline::{export_timeline_trace_every, render_timeline};
use mlp_bench::*;
use mlp_train::experiments as exp;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    // Pull out `--trace <path>` before subcommand detection so the path
    // operand is not mistaken for a subcommand.
    let trace_path = args.iter().position(|a| a == "--trace").map(|i| {
        args.remove(i);
        if i >= args.len() {
            eprintln!("--trace requires an output path");
            std::process::exit(2);
        }
        args.remove(i)
    });
    // `--checkpoint-every N`: asynchronous two-hop checkpoint cadence for
    // the traced MLP-Offload run (default 1, i.e. every iteration; 0
    // disables checkpointing).
    let checkpoint_every = args
        .iter()
        .position(|a| a == "--checkpoint-every")
        .map(|i| {
            args.remove(i);
            if i >= args.len() {
                eprintln!("--checkpoint-every requires an iteration count");
                std::process::exit(2);
            }
            args.remove(i).parse().unwrap_or_else(|_| {
                eprintln!("--checkpoint-every expects a non-negative integer");
                std::process::exit(2);
            })
        })
        .unwrap_or(1);
    let json = args.iter().any(|a| a == "--json");
    let explicit_cmd = args.iter().find(|a| !a.starts_with("--")).cloned();
    if let Some(path) = &trace_path {
        match export_timeline_trace_every(path, checkpoint_every) {
            Ok(runs) => render_timeline(path, &runs),
            Err(e) => {
                eprintln!("failed to write trace to {path}: {e}");
                std::process::exit(1);
            }
        }
        if explicit_cmd.is_none() {
            return;
        }
    }
    let cmd = explicit_cmd.unwrap_or_else(|| "all".to_string());

    macro_rules! emit {
        ($rows:expr, $render:expr) => {{
            let rows = $rows;
            if json {
                println!(
                    "{}",
                    serde_json::to_string_pretty(&rows).expect("serializable rows")
                );
            } else {
                $render(&rows);
            }
        }};
    }

    let all = cmd == "all";
    let mut matched = all;

    if all || cmd == "tables" {
        matched = true;
        if !json {
            render_tables();
        }
    }
    if all || cmd == "motivation" {
        matched = true;
        emit!(exp::motivation(), render_motivation);
    }
    if all || cmd == "fig3" {
        matched = true;
        emit!(exp::fig3_update_breakdown(), render_fig3);
    }
    if all || cmd == "fig4" {
        matched = true;
        emit!(exp::fig4_concurrency(), render_fig4);
    }
    if all || cmd == "fig5" {
        matched = true;
        emit!(exp::fig5_throughput_timeline(), render_fig5);
    }
    if all || ["fig7", "fig8", "fig9", "fig10"].contains(&cmd.as_str()) {
        matched = true;
        let rows = exp::model_scaling();
        if json {
            println!(
                "{}",
                serde_json::to_string_pretty(&rows).expect("serializable rows")
            );
        } else {
            if all || cmd == "fig7" {
                render_fig7(&rows);
            }
            if all || cmd == "fig8" {
                render_fig8(&rows);
            }
            if all || cmd == "fig9" {
                render_fig9(&rows);
            }
            if all || cmd == "fig10" {
                render_fig10(&rows);
            }
        }
    }
    if all || cmd == "fig11" || cmd == "fig12" {
        matched = true;
        let rows = exp::weak_scaling();
        if json {
            println!(
                "{}",
                serde_json::to_string_pretty(&rows).expect("serializable rows")
            );
        } else {
            if all || cmd == "fig11" {
                render_fig11(&rows);
            }
            if all || cmd == "fig12" {
                render_fig12(&rows);
            }
        }
    }
    if all || cmd == "fig13" {
        matched = true;
        emit!(exp::fig13_grad_accumulation(), render_fig13);
    }
    if all || cmd == "fig14" {
        matched = true;
        let rows = exp::fig14_ablation_nvme();
        if json {
            println!(
                "{}",
                serde_json::to_string_pretty(&rows).expect("serializable rows")
            );
        } else {
            render_ablation(
                "Fig. 14: ablation on node-local NVMe only (paper: up to 1.6x)",
                &rows,
            );
        }
    }
    if all || cmd == "fig15" {
        matched = true;
        let rows = exp::fig15_ablation_pfs();
        if json {
            println!(
                "{}",
                serde_json::to_string_pretty(&rows).expect("serializable rows")
            );
        } else {
            render_ablation(
                "Fig. 15: ablation with PFS multi-path (paper: 2.5x over DeepSpeed ZeRO-3)",
                &rows,
            );
        }
    }

    if all || cmd == "sensitivity" {
        matched = true;
        if json {
            println!(
                "{}",
                serde_json::to_string_pretty(&exp::subgroup_size_sweep()).expect("rows")
            );
        } else {
            render_subgroup_sweep(&exp::subgroup_size_sweep());
            render_cache_sweep(&exp::cache_sweep());
        }
    }
    if all || cmd == "checkpoint" {
        matched = true;
        emit!(exp::checkpoint_prestaging(), render_checkpoint);
    }
    if all || cmd == "cost" {
        matched = true;
        emit!(exp::cost_effectiveness(), render_cost);
    }
    if all || cmd == "cxl" {
        matched = true;
        emit!(exp::future_cxl(), render_cxl);
    }

    if !matched {
        eprintln!(
            "unknown subcommand {cmd:?}; expected one of: tables motivation fig3 fig4 fig5 \
             fig7 fig8 fig9 fig10 fig11 fig12 fig13 fig14 fig15 sensitivity checkpoint cost cxl all"
        );
        std::process::exit(2);
    }
}
