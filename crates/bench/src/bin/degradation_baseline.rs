//! `degradation_baseline` — the permanent-tier-loss acceptance scenario
//! at benchmark scale, written as the machine-readable baseline tracked
//! in `BENCH_degradation.json`.
//!
//! ```text
//! degradation_baseline [OUTPUT_PATH] [--check COMMITTED_PATH]
//! ```
//!
//! One node runs the update phase for a fixed number of iterations.
//! Three variants of the same schedule:
//!
//! * `two_tier` — NVMe + PFS healthy for the whole run (the upper
//!   bound: both paths carry flush traffic).
//! * `tier_loss` — NVMe + PFS until the PFS is quarantined mid-run
//!   (`SimWorker::quarantine_tier`, the sim-side entry of the breaker
//!   path, DESIGN.md §15); its durable copies drain to the NVMe and the
//!   planner never targets it again.
//! * `single_tier` — NVMe only from iteration zero: the run that
//!   "never had the tier", which the post-loss tail must match.
//!
//! The headline metric is *graceful degradation*: the post-loss tail
//! iteration time of `tier_loss` must be within 5% of `single_tier`'s —
//! losing a tier costs its bandwidth share, nothing more. The one-off
//! drain cost is visible in the `kill`-iteration spike and the
//! `drained` copy count.
//!
//! With `--check`, the freshly measured numbers are compared against
//! the committed baseline and the run fails if any variant's tail
//! iteration time regressed by more than 10% (the simulation is
//! virtual-time deterministic, so a real change is the only way to
//! move them).

use mlp_model::Subgroup;
use mlp_offload::sim::{NodeSimEnv, NodeSpec, SimWorker};
use mlp_offload::EngineConfig;
use mlp_sim::Sim;
use mlp_storage::TierSpec;
use mlp_train::testbed1;

/// Subgroups in the optimizer-state partition.
const SUBGROUPS: usize = 24;
/// Parameters per subgroup (24 × 100M × 12 B = 28.8 GB of state).
const PARAMS: u64 = 100_000_000;
/// Iterations per variant.
const ITERS: usize = 20;
/// Iteration before which the PFS is quarantined in `tier_loss`.
const KILL_AT: usize = 6;
/// Tail iterations averaged for the steady-state comparison (leaves
/// the drained placements a few iterations to settle).
const TAIL: usize = 8;

struct VariantResult {
    name: &'static str,
    pre_mean_s: f64,
    tail_mean_s: f64,
    drained: usize,
}

fn run_variant(name: &'static str, tiers: Vec<TierSpec>, kill_at: Option<usize>) -> VariantResult {
    let mut cfg = EngineConfig::mlp_offload();
    cfg.cache_retention = false;
    cfg.adaptive_bandwidth = false;
    let sim = Sim::new();
    let env = NodeSimEnv::new(
        &sim,
        &NodeSpec {
            tier_specs: tiers,
            gpus: 1,
            d2h_bps: 55e9,
            cpu_update_params_per_s: 8e9,
            conv_bytes_per_s: 65e9,
        },
    );
    let worker = SimWorker::new(
        env.clone(),
        0,
        cfg,
        (0..SUBGROUPS)
            .map(|id| Subgroup { id, params: PARAMS })
            .collect(),
    );
    let mut durs = Vec::with_capacity(ITERS);
    let mut drained = 0;
    for i in 0..ITERS {
        if kill_at == Some(i) {
            let w = worker.clone();
            drained = sim.block_on(async move {
                w.drain_flushes().await;
                w.quarantine_tier(1).await
            });
        }
        let w = worker.clone();
        durs.push(sim.block_on(async move { w.run_update().await }).duration_s);
    }
    let pre_mean_s = durs[..KILL_AT].iter().sum::<f64>() / KILL_AT as f64;
    let tail_mean_s = durs[ITERS - TAIL..].iter().sum::<f64>() / TAIL as f64;
    eprintln!(
        "{name:>12}: pre {pre_mean_s:7.2}s/iter  tail {tail_mean_s:7.2}s/iter  drained {drained}"
    );
    VariantResult {
        name,
        pre_mean_s,
        tail_mean_s,
        drained,
    }
}

fn round2(x: f64) -> f64 {
    (x * 100.0).round() / 100.0
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_path = "BENCH_degradation.json".to_string();
    let mut check_path: Option<String> = None;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        if a == "--check" {
            check_path = Some(it.next().expect("--check needs a baseline path"));
        } else {
            out_path = a;
        }
    }

    let tb = testbed1();
    let variants = [
        run_variant("two_tier", vec![tb.nvme.clone(), tb.pfs.clone()], None),
        run_variant(
            "tier_loss",
            vec![tb.nvme.clone(), tb.pfs.clone()],
            Some(KILL_AT),
        ),
        run_variant("single_tier", vec![tb.nvme.clone()], None),
    ];
    let [two, loss, single] = &variants;
    assert!(
        loss.drained > 0,
        "the quarantined PFS held no durable copies — the scenario does not exercise the drain"
    );
    assert!(
        two.tail_mean_s < single.tail_mean_s,
        "the second tier must be worth something or the loss costs nothing"
    );
    // Graceful degradation: after the drain, the crippled run settles at
    // the single-tier rate — losing the tier costs its bandwidth share
    // and a one-off drain, nothing more.
    let overhead = loss.tail_mean_s / single.tail_mean_s - 1.0;
    eprintln!(
        "post-loss tail vs never-had-the-tier: {:+.1}%",
        overhead * 100.0
    );
    assert!(
        overhead.abs() <= 0.05,
        "post-loss tail {:.2}s diverges {:.1}% from the single-tier reference {:.2}s",
        loss.tail_mean_s,
        overhead * 100.0,
        single.tail_mean_s
    );

    let doc = serde_json::json!({
        "benchmark": "degradation",
        "description": "Permanent tier loss mid-run — the PFS is quarantined at an iteration boundary, its durable copies drain to the NVMe, and the post-loss tail must match a run that never had the tier (graceful degradation, DESIGN.md §15)",
        "subgroups": SUBGROUPS,
        "params_per_subgroup": PARAMS,
        "iterations": ITERS,
        "kill_at": KILL_AT,
        "tail_iterations": TAIL,
        "post_loss_overhead_vs_single_tier": round2(overhead * 100.0),
        "results": variants.iter().map(|v| serde_json::json!({
            "variant": v.name,
            "pre_mean_s": round2(v.pre_mean_s),
            "tail_mean_s": round2(v.tail_mean_s),
            "drained": v.drained,
        })).collect::<Vec<_>>(),
    });
    std::fs::write(
        &out_path,
        serde_json::to_string_pretty(&doc).expect("serializable") + "\n",
    )
    .expect("write baseline");
    println!("wrote {out_path}");

    if let Some(committed) = check_path {
        let body = std::fs::read_to_string(&committed).expect("read committed baseline");
        let old: serde_json::Value = serde_json::from_str(&body).expect("parse committed baseline");
        let mut failures = Vec::new();
        for v in &variants {
            let old_tail = old["results"]
                .as_array()
                .expect("results array")
                .iter()
                .find(|r| r["variant"].as_str() == Some(v.name))
                .and_then(|r| r["tail_mean_s"].as_f64())
                .expect("committed tail_mean_s");
            // >10% slower than the committed number is a regression; a
            // faster number is progress, reported but not fatal (the
            // committed file should then be regenerated).
            let ratio = v.tail_mean_s / old_tail;
            eprintln!(
                "check {:>12}: tail {:.2}s vs committed {:.2}s ({:+.1}%)",
                v.name,
                v.tail_mean_s,
                old_tail,
                (ratio - 1.0) * 100.0
            );
            if ratio > 1.10 {
                failures.push(format!(
                    "{}: tail iteration time regressed {:.1}% (got {:.2}s, committed {:.2}s)",
                    v.name,
                    (ratio - 1.0) * 100.0,
                    v.tail_mean_s,
                    old_tail
                ));
            }
        }
        if !failures.is_empty() {
            eprintln!("BASELINE REGRESSION:");
            for f in &failures {
                eprintln!("  {f}");
            }
            std::process::exit(1);
        }
        println!("baseline check passed ({committed})");
    }
}
