//! `io_engines_baseline` — sweeps every available `IoEngine` backend
//! (pool / sync / mmap / uring) across queue depths over real files and
//! writes the machine-readable baseline tracked in
//! `BENCH_io_engines.json`.
//!
//! ```text
//! io_engines_baseline [OUTPUT_PATH]   (default: BENCH_io_engines.json)
//! ```
//!
//! Three workloads per (engine, depth), all through the shared
//! [`OpDriver`] harness so the numbers are directly comparable:
//!
//! * `flush` — all-writes phase (checkpoint/offload flush pattern),
//! * `fetch` — all-reads phase over the same objects (prefetch pattern),
//! * `mixed` — alternating read/write over the key set, the steady-state
//!   pattern of the offload pipeline (fetch subgroup *i+1* while
//!   flushing subgroup *i*). This is the headline: batched io_uring
//!   submission should beat the worker pool here once the queue depth
//!   gives it a batch worth submitting (depth ≥ 32).
//!
//! Engines that are not available on the host (e.g. `uring` without the
//! feature or kernel support) are reported as skipped rather than
//! silently dropped, so a baseline regenerated on a weaker host is
//! visibly partial instead of quietly different.

use std::sync::Arc;

use mlp_aio::{AioConfig, AioEngine, EngineKind};
use mlp_storage::microbench::{measure_driver, measure_driver_mixed, DrivePlan, OpDriver};
use mlp_storage::{Backend, DirBackend};

/// Payload bytes per object: one bounce-buffer-sized block (256 KiB),
/// large enough that per-op throughput is I/O-bound, small enough that
/// a phase holds plenty of ops to window.
const BLOCK_BYTES: usize = 256 * 1024;
/// Objects per phase (256 × 256 KiB = 64 MiB moved per timed phase —
/// enough ops that submission batching has something to amortize and a
/// single scheduler hiccup does not move the number).
const BLOCKS: usize = 256;
/// In-flight windows to sweep; must include a depth ≥ 32 so the batched
/// engines get to amortize submission.
const DEPTHS: [usize; 4] = [1, 8, 32, 64];
/// Timed repetitions per configuration; the baseline records the peak
/// (bandwidth microbenches report peak: the minimum-interference run,
/// which is also the most repeatable statistic on shared machines).
const RUNS: usize = 3;

struct Row {
    engine: &'static str,
    queue_depth: usize,
    workload: &'static str,
    mb_per_s: f64,
}

fn measure_engine(kind: EngineKind, root: &std::path::Path, rows: &mut Vec<Row>) {
    for depth in DEPTHS {
        let dir = root.join(format!("{}-d{}", kind.name(), depth));
        std::fs::create_dir_all(&dir).expect("bench dir");
        // Buffered I/O for every engine: with `O_DIRECT` the raw engines
        // pay real device latency while the thread engines ride the page
        // cache — a medium comparison, not an engine comparison. Forcing
        // the page cache for all of them isolates the thing this
        // baseline tracks: submission/completion overhead per engine.
        let backend = Arc::new(
            DirBackend::new("dir", &dir)
                .expect("backend")
                .with_direct_io(false),
        ) as Arc<dyn Backend>;
        let base = AioConfig::default();
        let cfg = AioConfig {
            engine: kind,
            queue_depth: base.queue_depth.max(depth),
            ..base
        };
        let engine = AioEngine::new(backend, cfg);
        assert_eq!(
            engine.engine_name(),
            kind.name(),
            "probed-available engine fell back at construction"
        );
        let plan = DrivePlan { block_bytes: BLOCK_BYTES, blocks: BLOCKS, queue_depth: depth };

        // Warm-up pass (page cache, worker spin-up), then timed phases;
        // keep the peak of `RUNS` repetitions per workload.
        let _ = measure_driver(&engine, plan);
        let mut flush_bps = 0.0f64;
        let mut fetch_bps = 0.0f64;
        let mut mixed_bps = 0.0f64;
        for _ in 0..RUNS {
            let sample = measure_driver(&engine, plan).expect("separate-phase run");
            flush_bps = flush_bps.max(sample.write_bps);
            fetch_bps = fetch_bps.max(sample.read_bps);
            mixed_bps = mixed_bps.max(measure_driver_mixed(&engine, plan).expect("mixed run"));
        }
        engine.drain();

        for (workload, bps) in [
            ("flush", flush_bps),
            ("fetch", fetch_bps),
            ("mixed", mixed_bps),
        ] {
            let mb_per_s = bps / 1e6;
            eprintln!(
                "{:>14} depth {:>2} {:>5}: {:9.1} MB/s",
                engine.driver_name(),
                depth,
                workload,
                mb_per_s
            );
            rows.push(Row { engine: kind.name(), queue_depth: depth, workload, mb_per_s });
        }
    }
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_io_engines.json".to_string());
    let root = std::env::temp_dir().join(format!("io_engines_baseline-{}", std::process::id()));
    std::fs::create_dir_all(&root).expect("bench root");

    let mut rows = Vec::new();
    let mut skipped = Vec::new();
    for kind in EngineKind::all() {
        if kind.is_available() {
            measure_engine(kind, &root, &mut rows);
        } else {
            eprintln!("{:>14}: not available on this host, skipped", kind.name());
            skipped.push(kind.name());
        }
    }
    let _ = std::fs::remove_dir_all(&root);

    // Headline ratio the baseline tracks: batched submission vs the
    // worker pool on the steady-state mixed workload at depth ≥ 32.
    let at = |engine: &str, depth: usize, workload: &str| {
        rows.iter()
            .find(|r| r.engine == engine && r.queue_depth == depth && r.workload == workload)
            .map(|r| r.mb_per_s)
    };
    let mut speedups = serde_json::Map::new();
    for depth in DEPTHS.iter().filter(|&&d| d >= 32) {
        if let (Some(u), Some(p)) = (at("uring", *depth, "mixed"), at("pool", *depth, "mixed")) {
            let ratio = u / p;
            eprintln!("uring/pool mixed speedup @depth {depth} = {ratio:.2}x");
            speedups.insert(
                format!("depth_{depth}"),
                serde_json::json!((ratio * 100.0).round() / 100.0),
            );
        }
    }

    let doc = serde_json::json!({
        "benchmark": "io_engines",
        "description": "IoEngine backend comparison over real files — flush (all-writes), fetch (all-reads), and mixed steady-state MB/s per engine and queue depth",
        "block_bytes": BLOCK_BYTES,
        "blocks": BLOCKS,
        "skipped_engines": skipped,
        "uring_over_pool_mixed": speedups,
        "results": rows.iter().map(|r| serde_json::json!({
            "engine": r.engine,
            "queue_depth": r.queue_depth,
            "workload": r.workload,
            "mb_per_s": (r.mb_per_s * 10.0).round() / 10.0,
        })).collect::<Vec<_>>(),
    });
    std::fs::write(&out_path, serde_json::to_string_pretty(&doc).expect("serializable") + "\n")
        .expect("write baseline");
    println!("wrote {out_path}");
}
