//! `train_demo` — end-to-end functional training driven by the paper's
//! DeepSpeed-style JSON configuration (§3.5): measure the tiers, place
//! subgroups per Eq. 1 (or the configured ratio), and train a real
//! regression task with the optimizer state offloaded through actual
//! filesystem directories.
//!
//! ```text
//! train_demo [CONFIG.json] [ITERATIONS]
//! ```
//!
//! Without arguments, a config pointing at two temporary directories is
//! generated, mirroring the snippet from the paper:
//!
//! ```json
//! { "mlp_offload": { "tiers": ["/tmp/.../nvme", "/tmp/.../pfs"], "ratio": "2:1" } }
//! ```

use std::sync::Arc;

use mlp_offload::func::SharedTier;
use mlp_offload::EngineConfig;
use mlp_optim::adam::AdamConfig;
use mlp_optim::optimizer::OptimizerConfig;
use mlp_storage::microbench::measure_backend;
use mlp_storage::{Backend, DirBackend};
use mlp_train::func_trainer::{train, FuncTrainConfig, RegressionTask};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let iterations: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(60);

    let (json, _tmp_root) = match args.first() {
        Some(path) => (
            std::fs::read_to_string(path).unwrap_or_else(|e| {
                eprintln!("cannot read {path}: {e}");
                std::process::exit(1);
            }),
            None,
        ),
        None => {
            let root = std::env::temp_dir().join(format!("mlp-train-demo-{}", std::process::id()));
            let nvme = root.join("nvme");
            let pfs = root.join("pfs");
            std::fs::create_dir_all(&nvme).expect("create tier dir");
            std::fs::create_dir_all(&pfs).expect("create tier dir");
            let json = format!(
                "{{ \"mlp_offload\": {{ \"tiers\": [{:?}, {:?}], \"ratio\": \"2:1\" }} }}",
                nvme.display().to_string(),
                pfs.display().to_string()
            );
            println!("no config given; generated:\n{json}\n");
            (json, Some(root))
        }
    };

    let (mut cfg, tier_dirs) = EngineConfig::from_deepspeed_json(&json).unwrap_or_else(|e| {
        eprintln!("bad config: {e}");
        std::process::exit(1);
    });
    cfg = cfg.with_host_frames(8);

    // Open + microbenchmark each tier (the §3.3 B_i measurement).
    let mut tiers = Vec::new();
    for dir in &tier_dirs {
        let backend = Arc::new(DirBackend::new(dir.clone(), dir).unwrap_or_else(|e| {
            eprintln!("cannot open tier {dir}: {e}");
            std::process::exit(1);
        })) as Arc<dyn Backend>;
        let sample = measure_backend(backend.as_ref(), 1 << 20, 4).unwrap_or_else(|e| {
            eprintln!("cannot microbenchmark tier {dir}: {e}");
            std::process::exit(1);
        });
        println!(
            "tier {dir}: read {:.2} GB/s, write {:.2} GB/s",
            sample.read_bps / 1e9,
            sample.write_bps / 1e9
        );
        tiers.push(SharedTier::new(backend, sample.model_bandwidth_bps()));
    }

    let task = RegressionTask::new(256, 96, 7);
    let train_cfg = FuncTrainConfig {
        engine: cfg,
        subgroup_len: 32,
        optimizer: OptimizerConfig::Adam(AdamConfig {
            lr: 0.05,
            ..AdamConfig::default()
        }),
        grad_clip: Some(50.0),
        ..FuncTrainConfig::default()
    };
    println!("\ntraining a 256-parameter regression task, {iterations} iterations...");
    let report = train(&task, &tiers, train_cfg, iterations).expect("training");
    println!(
        "loss {:.3} -> {:.6}; {} cache hits; {} overflow steps skipped; final loss scale {:.0}",
        report.losses.first().unwrap(),
        report.losses.last().unwrap(),
        report.cache_hits,
        report.skipped_steps,
        report.final_loss_scale
    );

    if let Some(root) = _tmp_root {
        let _ = std::fs::remove_dir_all(root);
    }
}
