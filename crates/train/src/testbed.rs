//! The paper's testbeds (Table 1).

use serde::{Deserialize, Serialize};

use mlp_storage::spec::{
    testbed1_nvme, testbed1_pfs, testbed2_nvme, testbed2_pfs, TierKind, TierSpec,
};

use crate::comm::NetworkSpec;
use crate::compute::{a100, h100, GpuSpec};

/// One testbed row of Table 1 plus the derived model parameters.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Testbed {
    /// Display name.
    pub name: String,
    /// GPU model on this testbed.
    pub gpu: GpuSpec,
    /// GPUs per node.
    pub gpus_per_node: usize,
    /// Host memory per node, bytes.
    pub host_bytes: u64,
    /// Pinned device↔host bandwidth per GPU, bytes/second.
    pub d2h_bps: f64,
    /// CPU cores per node.
    pub cpu_cores: usize,
    /// Aggregate CPU optimizer-update throughput, parameters/second.
    pub cpu_update_params_per_s: f64,
    /// Aggregate FP16→FP32 conversion throughput, FP16 bytes/second.
    pub conv_bytes_per_s: f64,
    /// Node-local NVMe.
    pub nvme: TierSpec,
    /// Parallel file system.
    pub pfs: TierSpec,
    /// Network fabric.
    pub network: NetworkSpec,
}

const GIB: u64 = 1 << 30;

/// Testbed-1: ANL JLSE — 4×H100-80GB, 96 cores, 512 GB host memory,
/// 55 GB/s pinned D↔H, NVMe 6.9/5.3 GB/s, VAST PFS 3.6/3.6 GB/s.
pub fn testbed1() -> Testbed {
    Testbed {
        name: "Testbed-1 (JLSE 4xH100)".into(),
        gpu: h100(),
        gpus_per_node: 4,
        host_bytes: 512 * GIB,
        d2h_bps: 55e9,
        cpu_cores: 96,
        // Paper references: ~8000 Mparam/s CPU updates, 65 GB/s FP16→FP32.
        cpu_update_params_per_s: 8e9,
        conv_bytes_per_s: 65e9,
        nvme: testbed1_nvme(),
        pfs: testbed1_pfs(),
        network: NetworkSpec {
            intranode_bps: 450e9,
            internode_bps: 25e9,
        },
    }
}

/// Testbed-2: ALCF Polaris — 4×A100-40GB, 32 cores, 512 GB host memory,
/// 25 GB/s pinned D↔H, NVMe 13.5/4.8 GB/s, Lustre 6.9/13.7 GB/s.
pub fn testbed2() -> Testbed {
    Testbed {
        name: "Testbed-2 (Polaris 4xA100)".into(),
        gpu: a100(),
        gpus_per_node: 4,
        host_bytes: 512 * GIB,
        d2h_bps: 25e9,
        cpu_cores: 32,
        // Scaled by the core-count ratio from Testbed-1's references.
        cpu_update_params_per_s: 8e9 * 32.0 / 96.0,
        conv_bytes_per_s: 65e9 * 32.0 / 96.0,
        nvme: testbed2_nvme(),
        pfs: testbed2_pfs(),
        network: NetworkSpec {
            intranode_bps: 300e9,
            internode_bps: 25e9,
        },
    }
}

/// A pseudo "tier" describing host DRAM, used to model CPU-offloaded (but
/// not disk-offloaded) training: state moves at memory bandwidth with no
/// mixed-I/O penalty.
pub fn host_memory_tier() -> TierSpec {
    TierSpec {
        name: "host-dram".into(),
        kind: TierKind::HostMemory,
        read_bps: 100e9,
        write_bps: 100e9,
        capacity_bytes: u64::MAX,
        mixed_rw_efficiency: 1.0,
        op_latency_s: 1e-6,
        per_stream_bps: 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_host_memory_and_gpus() {
        let t1 = testbed1();
        assert_eq!(t1.gpus_per_node, 4);
        assert_eq!(t1.host_bytes, 512 * GIB);
        assert_eq!(t1.cpu_cores, 96);
        assert_eq!(t1.d2h_bps, 55e9);
        let t2 = testbed2();
        assert_eq!(t2.cpu_cores, 32);
        assert_eq!(t2.d2h_bps, 25e9);
    }

    #[test]
    fn testbed2_cpu_scales_with_cores() {
        let t2 = testbed2();
        assert!(t2.cpu_update_params_per_s < testbed1().cpu_update_params_per_s);
    }

    #[test]
    fn host_tier_is_fast_and_unpenalized() {
        let h = host_memory_tier();
        assert_eq!(h.mixed_rw_efficiency, 1.0);
        assert!(h.read_bps >= 50e9);
        assert!(!h.kind.is_persistent());
    }
}
