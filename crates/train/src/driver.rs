//! The simulated training-iteration driver.
//!
//! Builds a node's shared resources, instantiates one offloading engine
//! per GPU worker, and runs iterations phase by phase: forward (compute +
//! ZeRO-3 gather), `grad_accum` backward micro-steps (compute + gradient
//! staging/offload), then the offloaded update phase. Nodes are symmetric
//! in the paper's weak-scaling setup (tensor parallelism intra-node, data
//! parallelism inter-node), so one node is simulated and inter-node
//! collectives enter as modelled communication time.

use serde::{Deserialize, Serialize};

use mlp_model::config::OPTIM_STATE_BYTES_PER_PARAM;
use mlp_model::memory::{MemoryEstimate, MemoryInputs};
use mlp_model::shard::{ShardLayout, DEFAULT_SUBGROUP_PARAMS};
use mlp_model::ModelConfig;
use mlp_offload::checkpoint::CheckpointStats;
use mlp_offload::sim::engine::virtual_ns;
use mlp_offload::sim::{NodeSimEnv, NodeSpec, SimWorker};
use mlp_offload::stats::{BackwardStats, IterationBreakdown, TierDistribution, UpdateStats};
use mlp_offload::EngineConfig;
use mlp_sim::Sim;
use mlp_storage::TierSpec;
use mlp_trace::{Attrs, Phase};

use crate::comm::comm_times;
use crate::compute::compute_times;
use crate::testbed::Testbed;

/// A full training configuration to simulate.
#[derive(Clone, Debug)]
pub struct TrainSetup {
    /// Hardware testbed.
    pub testbed: Testbed,
    /// Model to train.
    pub model: ModelConfig,
    /// Compute nodes (1 = pure data parallelism; >1 = tensor parallelism
    /// intra-node, data parallelism inter-node, as in §4.4).
    pub nodes: usize,
    /// Offloading engine configuration.
    pub engine_cfg: EngineConfig,
    /// Third-level tiers (e.g. `[nvme]` for the baseline,
    /// `[nvme, pfs]` for MLP-Offload).
    pub tiers: Vec<TierSpec>,
    /// Backward micro-steps per update (gradient accumulation, §4.5).
    pub grad_accum_steps: usize,
    /// Iterations to run (callers usually discard warmups).
    pub iterations: usize,
    /// Parameters per subgroup (paper: 100 M).
    pub subgroup_params: u64,
    /// Fraction of the estimator's free host memory actually usable for
    /// subgroup caching (staging buffers and fragmentation claim the
    /// rest).
    pub cache_safety_factor: f64,
    /// Microbatch size per rank (paper default 1).
    pub microbatch: u64,
    /// Checkpoint every N iterations (0 = never). The checkpoint flushes
    /// host-resident state to the first persistent tier and trickles it to
    /// the object-store tier when one is configured (two-hop pipeline).
    pub checkpoint_every: usize,
    /// Run checkpoints synchronously (blocking the iteration boundary —
    /// the baseline) instead of overlapping them with the next backward.
    pub checkpoint_sync: bool,
}

impl TrainSetup {
    /// A setup with the paper's defaults for the given approach.
    pub fn new(
        testbed: Testbed,
        model: ModelConfig,
        engine_cfg: EngineConfig,
        tiers: Vec<TierSpec>,
    ) -> Self {
        TrainSetup {
            testbed,
            model,
            nodes: 1,
            engine_cfg,
            tiers,
            grad_accum_steps: 1,
            iterations: 3,
            subgroup_params: DEFAULT_SUBGROUP_PARAMS,
            cache_safety_factor: 0.5,
            microbatch: 1,
            checkpoint_every: 0,
            checkpoint_sync: false,
        }
    }

    /// Enables periodic checkpointing every `every` iterations,
    /// asynchronous by default (set [`TrainSetup::checkpoint_sync`] for
    /// the blocking baseline).
    pub fn with_checkpoint_every(mut self, every: usize) -> Self {
        self.checkpoint_every = every;
        self
    }

    /// Total GPUs across all nodes.
    pub fn world_size(&self) -> usize {
        self.nodes * self.testbed.gpus_per_node
    }

    /// Enables closed-loop adaptive re-planning on every worker: flush
    /// writes re-split on the live bandwidth estimates and up to
    /// `max_migrations_per_iter` durable subgroup copies migrate between
    /// tiers at each iteration boundary (§3.3 feedback loop).
    pub fn with_adaptive_replan(mut self, max_migrations_per_iter: usize) -> Self {
        self.engine_cfg = self.engine_cfg.with_adaptive_replan(max_migrations_per_iter);
        self
    }

    /// Sets the EMA smoothing factor for the bandwidth estimator
    /// (1.0 = trust the latest observation, 0.0 = never update).
    pub fn with_bandwidth_alpha(mut self, alpha: f64) -> Self {
        self.engine_cfg.bandwidth_alpha = alpha;
        self
    }
}

/// Everything measured in one simulated iteration (node-level).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct IterationResult {
    /// Phase durations.
    pub breakdown: IterationBreakdown,
    /// Update statistics merged across the node's workers (counts and
    /// bytes summed; duration is the phase wall time).
    pub update: UpdateStats,
    /// Backward statistics merged across workers and micro-steps.
    pub backward: BackwardStats,
    /// Optimizer-state distribution at iteration end, summed across
    /// workers.
    pub distribution: TierDistribution,
    /// Virtual-time window `[start, end]` of the update phase (for the
    /// Fig. 5 timeline).
    pub update_window: (f64, f64),
    /// Checkpoint byte accounting, when this iteration ended with one
    /// (summed across node-0 workers).
    pub checkpoint: Option<CheckpointStats>,
}

/// Runs the simulation and returns per-iteration results.
pub fn run(setup: &TrainSetup) -> Vec<IterationResult> {
    assert!(setup.nodes >= 1 && setup.iterations >= 1 && setup.grad_accum_steps >= 1);
    let tb = &setup.testbed;
    let world = setup.world_size();
    let tp = if setup.nodes > 1 { tb.gpus_per_node } else { 1 };
    let tokens = setup.microbatch * setup.model.seq_len;

    let ct = compute_times(&setup.model, &tb.gpu, tokens, tp, true);
    let cm = comm_times(&setup.model, &tb.network, setup.nodes, tp, tokens);

    // Per-worker subgroup layout (ZeRO-3 shards across the whole world).
    let shard = ShardLayout::new(&setup.model, world);
    let subgroups = shard.subgroups_for_rank(0, setup.subgroup_params);

    // Host frame budget per worker, from the memory estimator.
    let host_frames = if setup.engine_cfg.cache_retention {
        let est = MemoryEstimate::estimate(
            &setup.model,
            MemoryInputs {
                gpus_per_node: tb.gpus_per_node,
                world_size: world,
                host_bytes: tb.host_bytes,
                microbatch: setup.microbatch,
            },
        );
        let sub_bytes = setup.subgroup_params * OPTIM_STATE_BYTES_PER_PARAM;
        let usable = (est.host_cache_bytes as f64 * setup.cache_safety_factor) as u64;
        (((usable / tb.gpus_per_node as u64) / sub_bytes) as usize).max(3)
    } else {
        3
    };
    let engine_cfg = setup.engine_cfg.clone().with_host_frames(host_frames);

    let sim = Sim::new();
    let node_spec = NodeSpec {
        tier_specs: setup.tiers.clone(),
        gpus: tb.gpus_per_node,
        d2h_bps: tb.d2h_bps,
        cpu_update_params_per_s: tb.cpu_update_params_per_s,
        conv_bytes_per_s: tb.conv_bytes_per_s,
    };
    // Every node is simulated. Shared external tiers (PFS, object stores)
    // are *one* facility: a single SimTier instance serves all nodes, so
    // cross-node I/O competition emerges from the fluid model — the
    // globally-shared-tier behaviour the paper flags for study in §5.
    // Node-local NVMe is instantiated per node; tier locks stay
    // node-local (§3.2's node-level concurrency control).
    let shared_tiers: Vec<Option<mlp_storage::SimTier>> = setup
        .tiers
        .iter()
        .map(|spec| {
            spec.kind
                .is_shared()
                .then(|| mlp_storage::SimTier::new(&sim, spec))
        })
        .collect();
    let mut envs = Vec::with_capacity(setup.nodes);
    for _ in 0..setup.nodes {
        let tiers: Vec<mlp_storage::SimTier> = setup
            .tiers
            .iter()
            .zip(&shared_tiers)
            .map(|(spec, shared)| match shared {
                Some(t) => t.clone(),
                None => mlp_storage::SimTier::new(&sim, spec),
            })
            .collect();
        envs.push(NodeSimEnv::with_tiers(&sim, &node_spec, tiers));
    }
    let env = envs[0].clone();
    let workers: Vec<SimWorker> = envs
        .iter()
        .flat_map(|node_env| {
            (0..tb.gpus_per_node).map(|g| {
                SimWorker::new(
                    node_env.clone(),
                    g,
                    engine_cfg.clone(),
                    subgroups.subgroups().to_vec(),
                )
            })
        })
        .collect();
    // Metrics are reported for node 0 (nodes are symmetric).
    let node0_workers = tb.gpus_per_node;

    let iterations = setup.iterations;
    let accum = setup.grad_accum_steps;
    let trace = engine_cfg.trace.clone();
    // Checkpoint routing: flush to the fastest persistent tier, trickle to
    // the object store when the tier set has one.
    let ckpt_every = setup.checkpoint_every;
    let ckpt_sync = setup.checkpoint_sync;
    let ckpt_fast = setup
        .tiers
        .iter()
        .position(|t| t.kind.is_persistent());
    let ckpt_object = setup
        .tiers
        .iter()
        .position(|t| t.kind == mlp_storage::TierKind::ObjectStore);
    if ckpt_every > 0 {
        assert!(
            ckpt_fast.is_some(),
            "checkpointing needs at least one persistent tier"
        );
    }
    let sim2 = sim.clone();
    sim.block_on(async move {
        let sim = sim2;
        let mut out = Vec::with_capacity(iterations);
        for it in 0..iterations {
            let i0 = sim.now_secs();
            let mut breakdown = IterationBreakdown::default();
            let mut backward = BackwardStats::default();

            for micro in 0..accum {
                // Forward: compute + ZeRO-3 parameter gather, lockstep.
                let f0 = sim.now_secs();
                sim.sleep(ct.forward_s + cm.forward_s).await;
                breakdown.forward_s += sim.now_secs() - f0;
                if trace.is_enabled() {
                    trace.complete_span(
                        Phase::Forward,
                        Attrs::NONE,
                        virtual_ns(f0),
                        virtual_ns(sim.now_secs()),
                    );
                }

                // Backward micro-step on every worker.
                let final_step = micro == accum - 1;
                let secs =
                    ct.backward_s + cm.backward_s + if final_step { cm.grad_sync_s } else { 0.0 };
                let b0 = sim.now_secs();
                let handles: Vec<_> = workers
                    .iter()
                    .map(|w| {
                        let w = w.clone();
                        sim.spawn(async move { w.run_backward(secs, final_step).await })
                    })
                    .collect();
                for (i, h) in handles.into_iter().enumerate() {
                    let s = h.await;
                    if i < node0_workers {
                        backward.compute_s += s.compute_s;
                        backward.grad_bytes_offloaded += s.grad_bytes_offloaded;
                        backward.grad_bytes_d2h += s.grad_bytes_d2h;
                    }
                }
                breakdown.backward_s += sim.now_secs() - b0;
            }
            backward.duration_s = breakdown.backward_s;

            // Update phase on every worker.
            let u0 = sim.now_secs();
            let handles: Vec<_> = workers
                .iter()
                .map(|w| {
                    let w = w.clone();
                    sim.spawn(async move { w.run_update().await })
                })
                .collect();
            let mut update = UpdateStats {
                bytes_read_by_tier: vec![0; env.num_tiers()],
                bytes_written_by_tier: vec![0; env.num_tiers()],
                ..Default::default()
            };
            for (i, h) in handles.into_iter().enumerate() {
                let s = h.await;
                if i >= node0_workers {
                    continue;
                }
                update.cache_hits += s.cache_hits;
                update.fetches += s.fetches;
                update.flushes += s.flushes;
                update.retained += s.retained;
                update.params_updated += s.params_updated;
                update.read_secs_sum += s.read_secs_sum;
                update.write_secs_sum += s.write_secs_sum;
                update.migrations += s.migrations;
                update.bytes_migrated += s.bytes_migrated;
                for (a, b) in update
                    .bytes_read_by_tier
                    .iter_mut()
                    .zip(&s.bytes_read_by_tier)
                {
                    *a += b;
                }
                for (a, b) in update
                    .bytes_written_by_tier
                    .iter_mut()
                    .zip(&s.bytes_written_by_tier)
                {
                    *a += b;
                }
                update.events.extend(s.events);
            }
            let u1 = sim.now_secs();
            update.duration_s = u1 - u0;
            breakdown.update_s = update.duration_s;

            // Node-level state distribution at the iteration boundary.
            let mut distribution = TierDistribution {
                host_bytes: 0,
                tier_bytes: vec![0; env.num_tiers()],
            };
            for w in workers.iter().take(node0_workers) {
                let d = w.tier_distribution();
                distribution.host_bytes += d.host_bytes;
                for (a, b) in distribution.tier_bytes.iter_mut().zip(&d.tier_bytes) {
                    *a += b;
                }
            }

            // Periodic checkpoint at the iteration boundary. Asynchronous
            // mode submits the flush/trickle tasks and returns immediately:
            // they settle at the next update phase's drain, overlapping the
            // next backward pass (the Fig. 5 overlap applied to
            // checkpointing). Synchronous mode blocks here — the baseline.
            let mut checkpoint = None;
            let c0 = sim.now_secs();
            if ckpt_every > 0 && (it + 1) % ckpt_every == 0 {
                let fast = ckpt_fast.expect("asserted above");
                let handles: Vec<_> = workers
                    .iter()
                    .map(|w| {
                        let w = w.clone();
                        sim.spawn(async move {
                            w.run_checkpoint(fast, ckpt_object, ckpt_sync).await
                        })
                    })
                    .collect();
                let mut agg = CheckpointStats::default();
                for (i, h) in handles.into_iter().enumerate() {
                    let s = h.await;
                    if i < node0_workers {
                        agg.copied_bytes += s.copied_bytes;
                        agg.prestaged_bytes += s.prestaged_bytes;
                    }
                }
                if trace.is_enabled() {
                    trace.counter("ckpt.checkpoints").inc();
                    trace.counter("ckpt.flush_bytes").add(agg.copied_bytes);
                    trace.counter("ckpt.prestaged_bytes").add(agg.prestaged_bytes);
                }
                checkpoint = Some(agg);
            }
            // Synchronous checkpoints block here, so this lands on the
            // critical path; asynchronous submission is near-free (its
            // I/O settles during the next iteration's drain).
            breakdown.checkpoint_s = sim.now_secs() - c0;

            if trace.is_enabled() {
                trace.complete_span(
                    Phase::Iteration,
                    Attrs::NONE,
                    virtual_ns(i0),
                    virtual_ns(sim.now_secs()),
                );
            }
            out.push(IterationResult {
                breakdown,
                update,
                backward,
                distribution,
                update_window: (u0, u1),
                checkpoint,
            });
        }
        // Settle flushes still in flight under deferred-drain mode so the
        // exported timeline (and tier accounting) is complete.
        for w in &workers {
            w.drain_flushes().await;
        }
        out
    })
}

/// Steady-state summary over the non-warmup iterations.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Summary {
    /// Mean forward seconds.
    pub forward_s: f64,
    /// Mean backward seconds.
    pub backward_s: f64,
    /// Mean update seconds.
    pub update_s: f64,
    /// Mean iteration seconds.
    pub total_s: f64,
    /// Node update throughput, parameters/second.
    pub update_params_per_s: f64,
    /// Effective I/O throughput (the Fig. 9 metric), bytes/second.
    pub effective_io_bps: f64,
    /// Host-cache hit rate over processed subgroups.
    pub cache_hit_rate: f64,
    /// State distribution fractions (host, then tiers) at the end.
    pub distribution_fractions: Vec<f64>,
    /// Training throughput in tokens/second across the whole job
    /// (global batch tokens per iteration over iteration time).
    pub tokens_per_s: f64,
}

/// Averages the iterations after `warmup`.
pub fn summarize(setup: &TrainSetup, results: &[IterationResult], warmup: usize) -> Summary {
    assert!(
        warmup < results.len(),
        "need at least one measured iteration"
    );
    let measured = &results[warmup..];
    let n = measured.len() as f64;
    let forward_s = measured.iter().map(|r| r.breakdown.forward_s).sum::<f64>() / n;
    let backward_s = measured.iter().map(|r| r.breakdown.backward_s).sum::<f64>() / n;
    let update_s = measured.iter().map(|r| r.breakdown.update_s).sum::<f64>() / n;
    let params: f64 = measured
        .iter()
        .map(|r| r.update.params_updated as f64)
        .sum::<f64>()
        / n;
    let state_bytes_node = ShardLayout::new(&setup.model, setup.world_size()).params_for_rank(0)
        * OPTIM_STATE_BYTES_PER_PARAM
        * setup.testbed.gpus_per_node as u64;
    let effective_io_bps = measured
        .iter()
        .map(|r| r.update.effective_io_bps(state_bytes_node))
        .sum::<f64>()
        / n;
    let hits: f64 = measured.iter().map(|r| r.update.cache_hits as f64).sum();
    let processed: f64 = measured
        .iter()
        .map(|r| (r.update.cache_hits + r.update.fetches) as f64)
        .sum();
    let total_s = forward_s + backward_s + update_s;
    let global_tokens_per_iter = (setup.microbatch
        * setup.model.seq_len
        * setup.grad_accum_steps as u64
        * setup.world_size() as u64) as f64;
    Summary {
        forward_s,
        backward_s,
        update_s,
        total_s,
        update_params_per_s: if update_s > 0.0 {
            params / update_s
        } else {
            0.0
        },
        tokens_per_s: if total_s > 0.0 {
            global_tokens_per_iter / total_s
        } else {
            0.0
        },
        effective_io_bps,
        cache_hit_rate: if processed > 0.0 {
            hits / processed
        } else {
            0.0
        },
        distribution_fractions: results.last().expect("non-empty").distribution.fractions(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testbed::testbed1;
    use mlp_model::zoo;

    fn quick_setup(cfg: EngineConfig, tiers: Vec<TierSpec>) -> TrainSetup {
        let mut s = TrainSetup::new(testbed1(), zoo::model_40b(), cfg, tiers);
        s.iterations = 3;
        s
    }

    #[test]
    fn baseline_40b_iteration_matches_paper_scale() {
        // Paper §3.1/§4.2: DeepSpeed ZeRO-3, 40B, Testbed-1 → ~242 s
        // iterations (0.6 s fwd, ~28 s bwd, ~213 s update).
        let tb = testbed1();
        let setup = quick_setup(EngineConfig::deepspeed_zero3(), vec![tb.nvme.clone()]);
        let results = run(&setup);
        let s = summarize(&setup, &results, 1);
        assert!((0.4..1.0).contains(&s.forward_s), "fwd {}", s.forward_s);
        assert!((20.0..45.0).contains(&s.backward_s), "bwd {}", s.backward_s);
        assert!((170.0..260.0).contains(&s.update_s), "upd {}", s.update_s);
        assert!((200.0..300.0).contains(&s.total_s), "total {}", s.total_s);
    }

    #[test]
    fn adaptive_replan_migrations_surface_in_node_level_stats() {
        // Four workers contend for the shared PFS, so the live estimates
        // drift from the construction-time Table-1 weights and the
        // planner migrates some durable copies. The migrations must show
        // up in the merged node-level stats, stay within the per-worker
        // budget, account their bytes exactly, and leave the cache-hit
        // sequence identical to the plain setup (the alternating-order
        // guarantee).
        let tb = testbed1();
        let budget = 4;
        let plain = quick_setup(
            EngineConfig::mlp_offload(),
            vec![tb.nvme.clone(), tb.pfs.clone()],
        );
        let adaptive = quick_setup(
            EngineConfig::mlp_offload(),
            vec![tb.nvme.clone(), tb.pfs.clone()],
        )
        .with_adaptive_replan(budget)
        .with_bandwidth_alpha(0.5);
        let workers = adaptive.world_size();
        let sub_bytes = adaptive.subgroup_params * 12;
        let mut total = 0;
        for (a, b) in run(&plain).iter().zip(&run(&adaptive)) {
            assert_eq!(a.update.cache_hits, b.update.cache_hits);
            assert_eq!(a.update.flushes, b.update.flushes);
            assert!(b.update.migrations <= budget * workers);
            assert_eq!(b.update.bytes_migrated, b.update.migrations as u64 * sub_bytes);
            total += b.update.migrations;
        }
        assert!(total > 0, "contention must trigger at least one migration");
    }

    #[test]
    fn mlp_offload_40b_is_roughly_2_5x_faster() {
        let tb = testbed1();
        let ds = quick_setup(EngineConfig::deepspeed_zero3(), vec![tb.nvme.clone()]);
        let mlp = quick_setup(
            EngineConfig::mlp_offload(),
            vec![tb.nvme.clone(), tb.pfs.clone()],
        );
        let ds_s = summarize(&ds, &run(&ds), 1);
        let mlp_s = summarize(&mlp, &run(&mlp), 1);
        let speedup = ds_s.total_s / mlp_s.total_s;
        assert!(
            (1.8..3.6).contains(&speedup),
            "iteration speedup {speedup:.2} (ds {:.1}s vs mlp {:.1}s)",
            ds_s.total_s,
            mlp_s.total_s
        );
        // Backward accelerates by an order of magnitude (paper: 13.5×).
        let bwd_speedup = ds_s.backward_s / mlp_s.backward_s;
        assert!(bwd_speedup > 5.0, "backward speedup {bwd_speedup:.1}");
    }

    #[test]
    fn warmup_iteration_is_slower_for_mlp() {
        // Iteration 0 has a cold cache: no hits, slower update.
        let tb = testbed1();
        let setup = quick_setup(
            EngineConfig::mlp_offload(),
            vec![tb.nvme.clone(), tb.pfs.clone()],
        );
        let results = run(&setup);
        assert_eq!(results[0].update.cache_hits, 0);
        assert!(results[1].update.cache_hits > 0);
        assert!(results[1].breakdown.update_s < results[0].breakdown.update_s);
    }

    #[test]
    fn periodic_async_checkpoints_overlap_backward() {
        // NVMe + PFS + object store, checkpoint every iteration. In async
        // mode the ckpt_flush spans must overlap a backward span on the
        // timeline (the Fig. 5 overlap applied to checkpointing); the
        // blocking baseline must keep them disjoint.
        let tb = testbed1();
        let run_mode = |sync: bool| {
            let mut cfg = EngineConfig::mlp_offload();
            let trace = mlp_trace::TraceSink::enabled();
            cfg.trace = trace.clone();
            let mut setup = quick_setup(
                cfg,
                vec![
                    tb.nvme.clone(),
                    tb.pfs.clone(),
                    mlp_storage::spec::object_store(),
                ],
            )
            .with_checkpoint_every(1);
            setup.checkpoint_sync = sync;
            let results = run(&setup);
            for r in &results {
                let c = r.checkpoint.expect("every iteration checkpoints");
                assert!(c.copied_bytes + c.prestaged_bytes > 0);
            }
            let events = trace.events();
            let flushes: Vec<_> = events
                .iter()
                .filter(|e| e.phase == Phase::CkptFlush)
                .collect();
            assert!(!flushes.is_empty(), "no ckpt_flush spans");
            let overlapped = events.iter().filter(|e| e.phase == Phase::Backward).any(
                |b| flushes.iter().any(|f| f.overlaps(b)),
            );
            let snap = trace.metrics_snapshot();
            assert_eq!(
                snap.counter("ckpt.checkpoints"),
                Some(setup.iterations as u64)
            );
            assert!(snap.counter("ckpt.flush_bytes").unwrap_or(0) > 0);
            overlapped
        };
        assert!(run_mode(false), "async checkpoint must overlap backward");
        assert!(!run_mode(true), "sync checkpoint must stay off the backward");
    }

    #[test]
    fn gradient_accumulation_amortizes_update() {
        let tb = testbed1();
        let mut setup = quick_setup(
            EngineConfig::mlp_offload(),
            vec![tb.nvme.clone(), tb.pfs.clone()],
        );
        setup.grad_accum_steps = 4;
        setup.iterations = 2;
        let results = run(&setup);
        let r = &results[1];
        // Four forward+backward micro-steps, one update.
        assert!(r.breakdown.forward_s > 3.0 * r.breakdown.forward_s / 4.0);
        assert!(r.breakdown.update_s > r.breakdown.forward_s);
    }
}

#[cfg(test)]
mod determinism_tests {
    use super::*;
    use crate::testbed::testbed1;
    use mlp_model::zoo;

    #[test]
    fn whole_driver_is_bit_reproducible() {
        let run_once = || {
            let tb = testbed1();
            let mut setup = TrainSetup::new(
                tb.clone(),
                zoo::model_40b(),
                EngineConfig::mlp_offload(),
                vec![tb.nvme.clone(), tb.pfs.clone()],
            );
            setup.iterations = 3;
            run(&setup)
                .iter()
                .map(|r| {
                    (
                        r.breakdown.total_s().to_bits(),
                        r.update.cache_hits,
                        r.update.fetches,
                        r.distribution.host_bytes,
                    )
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run_once(), run_once());
    }

    #[test]
    fn tokens_per_second_accounts_global_batch() {
        let tb = testbed1();
        let mut setup = TrainSetup::new(
            tb.clone(),
            zoo::model_40b(),
            EngineConfig::mlp_offload(),
            vec![tb.nvme.clone(), tb.pfs.clone()],
        );
        setup.grad_accum_steps = 2;
        setup.microbatch = 4;
        setup.iterations = 3;
        let results = run(&setup);
        let s = summarize(&setup, &results, 1);
        let expected_tokens = 4.0 * 2048.0 * 2.0 * 4.0; // mb × seq × accum × gpus
        assert!((s.tokens_per_s * s.total_s - expected_tokens).abs() < 1.0);
    }
}
