//! Synthetic tokenized corpus — the stand-in for the paper's dataset.
//!
//! §4.1 trains on a 79 K-record subset of OSCAR-en tokenized with the
//! LLaMA2 tokenizer (vocab 32 000, sequence length 2048). Dataset
//! *content* never touches the offloading path — only batch shapes and
//! token counts do — so the substitute generates deterministic token
//! sequences with a Zipfian-ish id distribution and exposes the same
//! accounting the trainer needs (tokens per micro-step, records consumed).

use serde::{Deserialize, Serialize};

/// A deterministic synthetic corpus of fixed-length token records.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SyntheticCorpus {
    /// Vocabulary size (LLaMA2: 32 000).
    pub vocab_size: u32,
    /// Tokens per record (paper: 2048).
    pub seq_len: usize,
    /// Records in the corpus (paper subset: 79 000).
    pub records: usize,
    seed: u64,
}

impl SyntheticCorpus {
    /// The paper's configuration: 79 K records × 2048 tokens, vocab 32 000.
    pub fn paper_default(seed: u64) -> Self {
        SyntheticCorpus {
            vocab_size: 32_000,
            seq_len: 2048,
            records: 79_000,
            seed,
        }
    }

    /// A small corpus for tests and examples.
    pub fn small(seed: u64) -> Self {
        SyntheticCorpus {
            vocab_size: 1_000,
            seq_len: 64,
            records: 256,
            seed,
        }
    }

    /// Total tokens in the corpus.
    pub fn total_tokens(&self) -> u64 {
        self.records as u64 * self.seq_len as u64
    }

    /// Generates record `index` (0-based, wraps modulo the corpus so
    /// epochs repeat deterministically). Token ids follow a skewed
    /// distribution: low ids are far more frequent, like a real
    /// tokenizer's output.
    pub fn record(&self, index: u64) -> Vec<u32> {
        let rec = index % self.records as u64;
        let mut state = self
            .seed
            .wrapping_mul(0x9E3779B97F4A7C15)
            .wrapping_add(rec.wrapping_mul(0xD1B54A32D192ED03));
        (0..self.seq_len)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let u = ((state >> 33) as f64 + 1.0) / (1u64 << 31) as f64; // (0, 1]
                                                                            // Skew toward low ids: id ∝ u³ over the vocabulary.
                let skewed = u * u * u;
                ((skewed * self.vocab_size as f64) as u32).min(self.vocab_size - 1)
            })
            .collect()
    }

    /// Iterator over micro-batches: each yields `microbatch` records,
    /// advancing a cursor (one "data-parallel rank"'s stream when `stride`
    /// ranks round-robin the corpus).
    pub fn batches(&self, rank: u64, stride: u64, microbatch: usize) -> BatchIter<'_> {
        assert!(stride >= 1 && microbatch >= 1, "degenerate batch config");
        BatchIter {
            corpus: self,
            cursor: rank,
            stride,
            microbatch,
        }
    }
}

/// Iterator returned by [`SyntheticCorpus::batches`]. Infinite (wraps
/// epochs), like a pre-training data loader.
pub struct BatchIter<'a> {
    corpus: &'a SyntheticCorpus,
    cursor: u64,
    stride: u64,
    microbatch: usize,
}

impl Iterator for BatchIter<'_> {
    type Item = Vec<Vec<u32>>;

    fn next(&mut self) -> Option<Self::Item> {
        let batch = (0..self.microbatch)
            .map(|i| self.corpus.record(self.cursor + i as u64 * self.stride))
            .collect();
        self.cursor += self.microbatch as u64 * self.stride;
        Some(batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_section_4_1() {
        let c = SyntheticCorpus::paper_default(1);
        assert_eq!(c.vocab_size, 32_000);
        assert_eq!(c.seq_len, 2048);
        assert_eq!(c.records, 79_000);
        assert_eq!(c.total_tokens(), 79_000 * 2048);
    }

    #[test]
    fn records_are_deterministic_and_in_vocab() {
        let c = SyntheticCorpus::small(7);
        let a = c.record(5);
        let b = c.record(5);
        assert_eq!(a, b);
        assert_eq!(a.len(), 64);
        assert!(a.iter().all(|&t| t < c.vocab_size));
        assert_ne!(c.record(5), c.record(6), "distinct records differ");
    }

    #[test]
    fn epochs_wrap_deterministically() {
        let c = SyntheticCorpus::small(7);
        assert_eq!(c.record(3), c.record(3 + c.records as u64));
    }

    #[test]
    fn distribution_is_skewed_toward_low_ids() {
        let c = SyntheticCorpus::small(11);
        let mut low = 0usize;
        let mut total = 0usize;
        for r in 0..64 {
            for t in c.record(r) {
                total += 1;
                if t < c.vocab_size / 4 {
                    low += 1;
                }
            }
        }
        // u³ skew puts ~63% of mass in the lowest quarter of the vocab.
        let frac = low as f64 / total as f64;
        assert!(frac > 0.5, "low-id fraction {frac}");
    }

    #[test]
    fn rank_streams_are_disjoint_within_a_pass() {
        let c = SyntheticCorpus::small(3);
        let mut r0 = c.batches(0, 2, 2);
        let mut r1 = c.batches(1, 2, 2);
        let b0 = r0.next().unwrap(); // records 0, 2
        let b1 = r1.next().unwrap(); // records 1, 3
        assert_eq!(b0[0], c.record(0));
        assert_eq!(b0[1], c.record(2));
        assert_eq!(b1[0], c.record(1));
        assert_eq!(b1[1], c.record(3));
    }
}
