//! Analytic GPU compute model.
//!
//! The paper's contribution never touches GPU kernels: forward and
//! backward passes matter only as the time the offloading engine must
//! overlap I/O with. A dense roofline estimate — FLOPs over sustained
//! throughput — reproduces the reported phase durations (e.g. 0.6 s
//! forward for 40B on 4×H100, §3.1) and is the standard first-order model
//! for transformer training time.

use serde::{Deserialize, Serialize};

use mlp_model::ModelConfig;

/// A GPU's sustained training throughput.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct GpuSpec {
    /// Sustained mixed-precision FLOP/s during training (well below the
    /// datasheet peak; calibrated so the 40B forward pass takes ~0.6 s on
    /// H100, §3.1).
    pub sustained_flops: f64,
    /// Reference GPU-side optimizer update throughput, parameters/second
    /// (the paper's "~40 000 Mparam/s on the GPUs").
    pub update_params_per_s: f64,
}

/// H100-80GB (Testbed-1).
pub fn h100() -> GpuSpec {
    GpuSpec {
        sustained_flops: 280e12,
        update_params_per_s: 40e9,
    }
}

/// A100-40GB (Testbed-2).
pub fn a100() -> GpuSpec {
    GpuSpec {
        sustained_flops: 140e12,
        update_params_per_s: 40e9,
    }
}

/// Per-micro-step compute durations for one worker (GPU).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct ComputeTimes {
    /// Forward-pass seconds.
    pub forward_s: f64,
    /// Backward-pass compute seconds (includes activation recomputation
    /// when checkpointing is on).
    pub backward_s: f64,
}

/// Computes per-micro-step durations. `tokens_per_rank` is the microbatch
/// tokens this GPU processes; `tp` divides the model FLOPs across
/// tensor-parallel peers (1 = pure data parallelism).
pub fn compute_times(
    model: &ModelConfig,
    gpu: &GpuSpec,
    tokens_per_rank: u64,
    tp: usize,
    activation_checkpointing: bool,
) -> ComputeTimes {
    assert!(tp >= 1, "tensor-parallel degree must be at least 1");
    let fwd_flops = model.forward_flops(tokens_per_rank) / tp as f64;
    let bwd_flops = model.backward_flops(tokens_per_rank, activation_checkpointing) / tp as f64;
    ComputeTimes {
        forward_s: fwd_flops / gpu.sustained_flops,
        backward_s: bwd_flops / gpu.sustained_flops,
    }
}

/// Closed-form iteration time for the *no-offload* reference (optimizer
/// state fully resident in GPU memory) — the 0.4 s/iteration 20B case of
/// §3.1 and the GPU-only cost-effectiveness point of §4.4.
pub fn gpu_only_iteration_secs(
    model: &ModelConfig,
    gpu: &GpuSpec,
    tokens_per_rank: u64,
    world_size: usize,
) -> f64 {
    let t = compute_times(model, gpu, tokens_per_rank, 1, false);
    let params_per_rank = model.param_count() as f64 / world_size as f64;
    t.forward_s + t.backward_s + params_per_rank / gpu.update_params_per_s
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlp_model::zoo;

    #[test]
    fn forty_b_forward_is_about_point_six_seconds() {
        // §3.1: forward 0.6 s for 40B on a 4×H100 node (per-rank
        // microbatch of 2048 tokens under data parallelism).
        let t = compute_times(&zoo::model_40b(), &h100(), 2048, 1, true);
        assert!((0.45..0.75).contains(&t.forward_s), "got {}", t.forward_s);
    }

    #[test]
    fn checkpointing_inflates_backward_by_half() {
        let m = zoo::model_40b();
        let plain = compute_times(&m, &h100(), 2048, 1, false);
        let ckpt = compute_times(&m, &h100(), 2048, 1, true);
        assert!((ckpt.backward_s / plain.backward_s - 1.5).abs() < 1e-9);
    }

    #[test]
    fn tensor_parallelism_divides_compute() {
        let m = zoo::model_70b();
        let tp1 = compute_times(&m, &a100(), 2048, 1, true);
        let tp4 = compute_times(&m, &a100(), 2048, 4, true);
        assert!((tp1.forward_s / tp4.forward_s - 4.0).abs() < 1e-9);
    }

    #[test]
    fn twenty_b_gpu_only_iteration_matches_motivation() {
        // §3.1 reports ~0.4 s per iteration for 20B without offloading.
        // The dense roofline calibrated to the 40B phase breakdown gives
        // ~1 s (the intro's motivation numbers are approximate); the
        // magnitude — sub-second-to-low-seconds vs tens of seconds under
        // NVMe offload — is what the motivation experiment reproduces.
        let secs = gpu_only_iteration_secs(&zoo::model_20b(), &h100(), 2048, 4);
        assert!((0.2..1.5).contains(&secs), "got {secs}");
    }
}
