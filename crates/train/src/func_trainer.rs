//! A complete functional (real-bytes) training loop.
//!
//! Wires the MLP-Offload functional engine together with mixed-precision
//! dynamic loss scaling and global gradient clipping into the loop a
//! downstream user actually runs: forward → FP16 gradients → accumulate →
//! offloaded update, with overflow steps skipped and the scale adapting.
//! The model is supplied as a [`GradientSource`], so anything
//! differentiable plugs in; a least-squares [`RegressionTask`] is provided
//! as the built-in workload (standing in for the paper's OSCAR-en token
//! stream, whose content is irrelevant to the offloading behaviour).

use mlp_offload::func::{MlpFuncEngine, SharedTier};
use mlp_offload::EngineConfig;
use mlp_optim::optimizer::OptimizerConfig;
use mlp_optim::scaler::DynamicLossScaler;
use mlp_optim::SubgroupState;
use mlp_tensor::convert;
use mlp_trace::{Attrs, Phase};

/// Produces loss and FP16 gradients for the current parameters — the
/// stand-in for a framework's forward/backward passes.
pub trait GradientSource {
    /// Number of trainable parameters.
    fn dim(&self) -> usize;
    /// Loss at `params`.
    fn loss(&self, params: &[f32]) -> f32;
    /// Gradient at `params`, scaled by `loss_scale`, rounded to FP16 bits.
    fn grad_fp16(&self, params: &[f32], loss_scale: f32) -> Vec<u16>;
}

/// Least-squares regression `y = X·w*` on synthetic data.
pub struct RegressionTask {
    xs: Vec<Vec<f32>>,
    ys: Vec<f32>,
    dim: usize,
}

impl RegressionTask {
    /// Builds a task with `samples` rows of dimension `dim`; `seed` fixes
    /// the data and the hidden true weights.
    pub fn new(dim: usize, samples: usize, seed: u64) -> Self {
        // Small deterministic LCG so the crate does not need `rand` in its
        // public dependency set.
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f32 / (1u64 << 31) as f32) - 1.0
        };
        let w_true: Vec<f32> = (0..dim).map(|_| next()).collect();
        let xs: Vec<Vec<f32>> = (0..samples)
            .map(|_| (0..dim).map(|_| next()).collect())
            .collect();
        let ys = xs
            .iter()
            .map(|x| x.iter().zip(&w_true).map(|(a, b)| a * b).sum())
            .collect();
        RegressionTask { xs, ys, dim }
    }
}

impl GradientSource for RegressionTask {
    fn dim(&self) -> usize {
        self.dim
    }

    fn loss(&self, params: &[f32]) -> f32 {
        let n = self.xs.len() as f32;
        self.xs
            .iter()
            .zip(&self.ys)
            .map(|(x, y)| {
                let pred: f32 = x.iter().zip(params).map(|(a, b)| a * b).sum();
                (pred - y).powi(2)
            })
            .sum::<f32>()
            / n
    }

    fn grad_fp16(&self, params: &[f32], loss_scale: f32) -> Vec<u16> {
        let n = self.xs.len() as f32;
        let mut g = vec![0.0f32; self.dim];
        for (x, y) in self.xs.iter().zip(&self.ys) {
            let pred: f32 = x.iter().zip(params).map(|(a, b)| a * b).sum();
            let e = 2.0 * (pred - y) / n * loss_scale;
            for (gi, xi) in g.iter_mut().zip(x) {
                *gi += e * xi;
            }
        }
        let mut out = vec![0u16; self.dim];
        convert::downscale(&g, &mut out);
        out
    }
}

/// Configuration of a functional training run.
pub struct FuncTrainConfig {
    /// Offloading engine configuration.
    pub engine: EngineConfig,
    /// Optimizer.
    pub optimizer: OptimizerConfig,
    /// Parameters per subgroup.
    pub subgroup_len: usize,
    /// Global gradient-norm clip (None disables).
    pub grad_clip: Option<f64>,
    /// Initial loss scale (dynamic scaling adapts from here).
    pub initial_loss_scale: f32,
    /// Re-drive attempts when an I/O error still surfaces from a phase
    /// after the engine-level [`mlp_offload::RetryPolicy`] gave up. The
    /// engine unwinds failed phases cleanly, so re-calling continues the
    /// same iteration bit-identically; 0 (the default) propagates the
    /// first error.
    pub iteration_retries: u32,
}

impl Default for FuncTrainConfig {
    fn default() -> Self {
        FuncTrainConfig {
            // 3 pipeline frames + 5 cache frames by default.
            engine: EngineConfig::mlp_offload().with_host_frames(8),
            optimizer: OptimizerConfig::default(),
            subgroup_len: 32,
            grad_clip: Some(1.0),
            initial_loss_scale: 1024.0,
            iteration_retries: 0,
        }
    }
}

/// The outcome of a run.
pub struct FuncTrainReport {
    /// Loss before each applied iteration.
    pub losses: Vec<f32>,
    /// Iterations skipped by the loss scaler (gradient overflow).
    pub skipped_steps: usize,
    /// Final loss scale.
    pub final_loss_scale: f32,
    /// Total host-cache hits across iterations.
    pub cache_hits: usize,
    /// Phase calls that failed and were re-driven to completion
    /// (`iteration_retries` > 0).
    pub redriven_phases: usize,
}

/// Calls `f` until it succeeds or `retries` re-drives are exhausted,
/// counting the re-drives in `redriven`.
fn with_redrives<T>(
    retries: u32,
    redriven: &mut usize,
    mut f: impl FnMut() -> std::io::Result<T>,
) -> std::io::Result<T> {
    let mut attempts = 0u32;
    loop {
        match f() {
            Ok(v) => return Ok(v),
            Err(_) if attempts < retries => {
                attempts += 1;
                *redriven += 1;
            }
            Err(e) => return Err(e),
        }
    }
}

/// Runs `iterations` of mixed-precision training of `task` with the
/// optimizer state offloaded through `tiers`.
pub fn train(
    task: &dyn GradientSource,
    tiers: &[SharedTier],
    cfg: FuncTrainConfig,
    iterations: usize,
) -> std::io::Result<FuncTrainReport> {
    let dim = task.dim();
    assert!(
        cfg.subgroup_len > 0 && dim.is_multiple_of(cfg.subgroup_len),
        "dim must split into subgroups"
    );
    let subgroups = dim / cfg.subgroup_len;
    let trace = cfg.engine.trace.clone();

    let initial: Vec<SubgroupState> = (0..subgroups)
        .map(|_| SubgroupState::new(vec![0.0; cfg.subgroup_len]))
        .collect();
    let mut engine = MlpFuncEngine::new(cfg.engine, cfg.optimizer, tiers, 0, initial)?;
    engine.set_grad_clip(cfg.grad_clip);

    let mut scaler = DynamicLossScaler::with_scale(cfg.initial_loss_scale);
    let mut report = FuncTrainReport {
        losses: Vec::new(),
        skipped_steps: 0,
        final_loss_scale: scaler.scale(),
        cache_hits: 0,
        redriven_phases: 0,
    };

    for _ in 0..iterations {
        // RAII span: covers skipped (overflow) iterations too.
        let _iter_span = trace.span(Phase::Iteration, Attrs::NONE);
        let params: Vec<f32> = with_redrives(
            cfg.iteration_retries,
            &mut report.redriven_phases,
            || engine.master_params(),
        )?
        .into_iter()
        .flatten()
        .collect();
        report.losses.push(task.loss(&params));
        let grads = task.grad_fp16(&params, scaler.scale());
        // Overflow check on the scaled FP16 gradients (Inf after rounding).
        let overflow = grads
            .iter()
            .any(|&h| !mlp_tensor::F16::from_bits(h).is_finite());
        if !scaler.update(overflow) {
            report.skipped_steps += 1;
            continue; // skip the step, scale backed off
        }
        engine.set_inv_loss_scale(scaler.inv_scale());
        let per_sub: Vec<Vec<u16>> = grads
            .chunks(cfg.subgroup_len)
            .map(<[u16]>::to_vec)
            .collect();
        engine.accumulate_gradients(&per_sub);
        // A failed update unwinds cleanly and stays re-drivable: each
        // re-call continues the *same* iteration (gradient accumulators
        // untouched, durable subgroup updates not re-applied).
        let outcome = with_redrives(
            cfg.iteration_retries,
            &mut report.redriven_phases,
            || engine.update(),
        )?;
        report.cache_hits += outcome.cache_hits;
    }
    report.final_loss_scale = scaler.scale();
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlp_storage::{Backend, MemBackend};
    use std::sync::Arc;

    fn tiers() -> Vec<SharedTier> {
        vec![
            SharedTier::new(Arc::new(MemBackend::new("a")) as Arc<dyn Backend>, 2.0),
            SharedTier::new(Arc::new(MemBackend::new("b")) as Arc<dyn Backend>, 1.0),
        ]
    }

    #[test]
    fn regression_learns_through_the_full_loop() {
        let task = RegressionTask::new(64, 48, 9);
        let cfg = FuncTrainConfig {
            optimizer: OptimizerConfig::Adam(mlp_optim::AdamConfig {
                lr: 0.05,
                ..Default::default()
            }),
            ..Default::default()
        };
        let report = train(&task, &tiers(), cfg, 60).unwrap();
        let first = report.losses[0];
        let last = *report.losses.last().unwrap();
        assert!(last < first * 0.05, "loss {first} -> {last}");
        assert!(report.cache_hits > 0, "warm cache must produce hits");
    }

    #[test]
    fn huge_loss_scale_backs_off_instead_of_diverging() {
        let task = RegressionTask::new(32, 32, 4);
        let cfg = FuncTrainConfig {
            initial_loss_scale: 1e8, // guaranteed FP16 overflow at first
            optimizer: OptimizerConfig::Adam(mlp_optim::AdamConfig {
                lr: 0.05,
                ..Default::default()
            }),
            ..Default::default()
        };
        let report = train(&task, &tiers(), cfg, 80).unwrap();
        assert!(report.skipped_steps > 0, "overflow steps must be skipped");
        assert!(report.final_loss_scale < 1e8);
        let first = report.losses[0];
        let last = *report.losses.last().unwrap();
        assert!(
            last < first * 0.5,
            "training must recover: {first} -> {last}"
        );
        // And the final state stays finite.
        assert!(last.is_finite());
    }

    #[test]
    fn fused_and_multi_pass_updates_train_identically() {
        // End-to-end A/B of the `fused_update` flag: the whole run —
        // losses, scaler behaviour, final state — must be bit-identical,
        // since the fused kernel reproduces the multi-pass op sequence.
        let run = |fused: bool| {
            let task = RegressionTask::new(64, 48, 11);
            let mut cfg = FuncTrainConfig {
                optimizer: OptimizerConfig::Adam(mlp_optim::AdamConfig {
                    lr: 0.05,
                    ..Default::default()
                }),
                ..Default::default()
            };
            cfg.engine.fused_update = fused;
            train(&task, &tiers(), cfg, 25).unwrap()
        };
        let fused = run(true);
        let multi = run(false);
        assert_eq!(fused.losses, multi.losses);
        assert_eq!(fused.skipped_steps, multi.skipped_steps);
        assert_eq!(fused.final_loss_scale, multi.final_loss_scale);
    }

    #[test]
    fn training_rides_through_transient_faults_bit_identically() {
        use mlp_offload::{AioConfig, RetryPolicy};
        use mlp_storage::{FaultConfig, FaultInjectBackend};
        use std::time::Duration;

        let cfg = || FuncTrainConfig {
            optimizer: OptimizerConfig::Adam(mlp_optim::AdamConfig {
                lr: 0.05,
                ..Default::default()
            }),
            // Should a fault still surface past the op-level retries, the
            // trainer re-drives the phase instead of aborting the run.
            iteration_retries: 64,
            ..Default::default()
        };
        let task = RegressionTask::new(64, 48, 9);
        let clean = train(&task, &tiers(), cfg(), 40).unwrap();

        // The same run with every tier injecting 20% transient faults,
        // absorbed by a fast-backoff retry policy inside the I/O workers.
        let retry = RetryPolicy {
            max_attempts: 6,
            base_backoff: Duration::from_micros(10),
            backoff_multiplier: 2.0,
            max_backoff: Duration::from_micros(200),
        };
        let mut injectors = Vec::new();
        let mut faulty_tiers = Vec::new();
        for (i, (name, bw)) in [("a", 2.0), ("b", 1.0)].iter().enumerate() {
            let inject = Arc::new(FaultInjectBackend::new(
                Arc::new(MemBackend::new(*name)) as Arc<dyn Backend>,
                FaultConfig::transient(101 + 101 * i as u64, 0.2),
            ));
            faulty_tiers.push(
                SharedTier::new(Arc::clone(&inject) as Arc<dyn Backend>, *bw).with_aio(
                    AioConfig {
                        retry: retry.clone(),
                        ..AioConfig::default()
                    },
                ),
            );
            injectors.push(inject);
        }
        let faulty = train(&task, &faulty_tiers, cfg(), 40).unwrap();

        // Faults really fired…
        let transients: u64 = injectors.iter().map(|i| i.counts().transient).sum();
        assert!(transients > 0, "injection must have fired");
        // …and the run is bit-identical to the fault-free one.
        assert_eq!(clean.losses, faulty.losses);
        assert_eq!(clean.skipped_steps, faulty.skipped_steps);
        assert_eq!(clean.final_loss_scale, faulty.final_loss_scale);
    }

    #[test]
    fn regression_task_is_deterministic() {
        let a = RegressionTask::new(16, 8, 7);
        let b = RegressionTask::new(16, 8, 7);
        let p = vec![0.1f32; 16];
        assert_eq!(a.loss(&p), b.loss(&p));
        assert_eq!(a.grad_fp16(&p, 2.0), b.grad_fp16(&p, 2.0));
    }
}
