//! One function per paper experiment: each returns the data series behind
//! a table or figure of the evaluation (§3.1 gap analysis and §4), ready
//! to be printed by the `repro` binary or measured by the Criterion
//! benches.
//!
//! Methodology mirrors §4.1 scaled to simulation: each configuration runs
//! [`ITERATIONS`] iterations of which the first [`WARMUP`] are discarded
//! (the paper runs 10 with 2 warmups on real hardware; the simulator is
//! deterministic and reaches steady state after the first cache-warming
//! iteration).

use serde::{Deserialize, Serialize};

use mlp_model::zoo;
use mlp_model::ModelConfig;
use mlp_offload::config::AblationStage;
use mlp_offload::stats::{IoKind, UpdateStats};
use mlp_offload::EngineConfig;
use mlp_storage::microbench::measure_sim_tier_concurrent;
use mlp_storage::TierSpec;

use crate::compute::gpu_only_iteration_secs;
use crate::driver::{run, summarize, Summary, TrainSetup};
use crate::testbed::{host_memory_tier, testbed1, testbed2, Testbed};

/// Default iterations simulated per configuration (override with the
/// `MLP_REPRO_ITERS` environment variable; the paper runs 10 with 2
/// warmups on hardware, the simulator is deterministic after warmup).
pub const ITERATIONS: usize = 4;
/// Leading iterations excluded from averages.
pub const WARMUP: usize = 2;

/// Iterations to simulate, honouring `MLP_REPRO_ITERS` (min `WARMUP + 1`).
pub fn iterations() -> usize {
    std::env::var("MLP_REPRO_ITERS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(ITERATIONS)
        .max(WARMUP + 1)
}

/// The two compared approaches (§4.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Approach {
    /// DeepSpeed ZeRO-3 + DeepNVMe, NVMe offload only.
    DeepSpeedZero3,
    /// MLP-Offload: all design principles, NVMe + PFS multi-path.
    MlpOffload,
}

impl Approach {
    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            Approach::DeepSpeedZero3 => "DeepSpeed ZeRO-3",
            Approach::MlpOffload => "MLP-Offload",
        }
    }

    /// Engine configuration for this approach.
    pub fn engine_config(self) -> EngineConfig {
        match self {
            Approach::DeepSpeedZero3 => EngineConfig::deepspeed_zero3(),
            Approach::MlpOffload => EngineConfig::mlp_offload(),
        }
    }

    /// Third-level tiers this approach uses on `tb`.
    pub fn tiers(self, tb: &Testbed) -> Vec<TierSpec> {
        match self {
            Approach::DeepSpeedZero3 => vec![tb.nvme.clone()],
            Approach::MlpOffload => vec![tb.nvme.clone(), tb.pfs.clone()],
        }
    }
}

fn run_summary(setup: &TrainSetup) -> Summary {
    let results = run(setup);
    summarize(setup, &results, WARMUP.min(results.len() - 1))
}

fn standard_setup(
    tb: &Testbed,
    model: &ModelConfig,
    approach: Approach,
    nodes: usize,
) -> TrainSetup {
    let mut s = TrainSetup::new(
        tb.clone(),
        model.clone(),
        approach.engine_config(),
        approach.tiers(tb),
    );
    s.nodes = nodes;
    s.iterations = iterations();
    s
}

// ===========================================================================
// §3.1 motivation: 20B GPU-only vs CPU-offload vs NVMe-offload
// ===========================================================================

/// One row of the §3.1 motivation comparison.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct MotivationRow {
    /// Where the optimizer state lives.
    pub configuration: String,
    /// Average iteration seconds.
    pub iteration_s: f64,
    /// Slowdown relative to the GPU-only reference.
    pub slowdown_vs_gpu: f64,
}

/// §3.1: the 20B model trained with state on GPU, host memory, and NVMe.
/// Paper: 0.4 s → 3.7 s → 67 s (~170× slowdown).
pub fn motivation() -> Vec<MotivationRow> {
    let tb = testbed1();
    let model = zoo::model_20b();
    let gpu_s = gpu_only_iteration_secs(&model, &tb.gpu, model.seq_len, tb.gpus_per_node);

    // CPU offload: optimizer state lives in host memory — modelled as a
    // DRAM-speed "tier" with no interleaving penalty and host caching off
    // (every subgroup streams through memory once per update).
    let mut cpu_setup = TrainSetup::new(
        tb.clone(),
        model.clone(),
        EngineConfig::deepspeed_zero3(),
        vec![host_memory_tier()],
    );
    cpu_setup.iterations = iterations();
    let cpu = run_summary(&cpu_setup);

    // NVMe offload: the DeepSpeed baseline.
    let nvme = run_summary(&standard_setup(&tb, &model, Approach::DeepSpeedZero3, 1));

    vec![
        MotivationRow {
            configuration: "GPU-only (no offload)".into(),
            iteration_s: gpu_s,
            slowdown_vs_gpu: 1.0,
        },
        MotivationRow {
            configuration: "Host-memory offload".into(),
            iteration_s: cpu.total_s,
            slowdown_vs_gpu: cpu.total_s / gpu_s,
        },
        MotivationRow {
            configuration: "NVMe offload (DeepSpeed)".into(),
            iteration_s: nvme.total_s,
            slowdown_vs_gpu: nvme.total_s / gpu_s,
        },
    ]
}

// ===========================================================================
// Fig. 3: update-phase duration and I/O share, host vs SSD offload
// ===========================================================================

/// One bar of Fig. 3.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Fig3Row {
    /// Model name.
    pub model: String,
    /// `"host"` or `"nvme"`.
    pub offload_target: String,
    /// Average update-phase seconds.
    pub update_s: f64,
    /// Fraction of the update spent waiting on storage I/O.
    pub io_fraction: f64,
}

/// Fig. 3: the 20B host-offloaded update completes ~30× faster than the
/// SSD-offloaded larger models, whose updates are ~99% I/O.
pub fn fig3_update_breakdown() -> Vec<Fig3Row> {
    let tb = testbed1();
    let mut rows = Vec::new();
    for (model, host) in [
        (zoo::model_20b(), true),
        (zoo::model_40b(), false),
        (zoo::model_70b(), false),
        (zoo::model_120b(), false),
    ] {
        let tiers = if host {
            vec![host_memory_tier()]
        } else {
            vec![tb.nvme.clone()]
        };
        let mut setup = TrainSetup::new(
            tb.clone(),
            model.clone(),
            EngineConfig::deepspeed_zero3(),
            tiers,
        );
        setup.iterations = iterations();
        let s = run_summary(&setup);
        // Pure CPU compute time for the node's updates; the remainder of
        // the phase is I/O wait.
        let cpu_s = model.param_count() as f64 / tb.cpu_update_params_per_s;
        rows.push(Fig3Row {
            model: model.name.clone(),
            offload_target: if host { "host".into() } else { "nvme".into() },
            update_s: s.update_s,
            io_fraction: (1.0 - cpu_s / s.update_s).max(0.0),
        });
    }
    rows
}

// ===========================================================================
// Fig. 4: raw tier throughput under concurrency
// ===========================================================================

/// One point of the Fig. 4 concurrency sweep.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Fig4Row {
    /// `"nvme"` or `"pfs"`.
    pub tier: String,
    /// Concurrent processes.
    pub procs: usize,
    /// Aggregate read throughput, GB/s.
    pub agg_read_gbps: f64,
    /// Aggregate write throughput, GB/s.
    pub agg_write_gbps: f64,
    /// Mean per-process op latency, seconds.
    pub mean_latency_s: f64,
}

/// Fig. 4: aggregate single-direction throughput stays flat with
/// concurrency while per-process latency grows linearly.
pub fn fig4_concurrency() -> Vec<Fig4Row> {
    let tb = testbed1();
    let mut rows = Vec::new();
    for spec in [&tb.nvme, &tb.pfs] {
        for procs in [1usize, 2, 4, 8] {
            let (sample, latency) = measure_sim_tier_concurrent(spec, 8 << 30, procs);
            rows.push(Fig4Row {
                tier: spec.name.clone(),
                procs,
                agg_read_gbps: sample.read_bps / 1e9,
                agg_write_gbps: sample.write_bps / 1e9,
                mean_latency_s: latency,
            });
        }
    }
    rows
}

// ===========================================================================
// Fig. 5: effective throughput timeline during one update phase
// ===========================================================================

/// One time bin of the Fig. 5 timeline.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Fig5Point {
    /// Seconds since the start of the update phase (bin midpoint).
    pub t_s: f64,
    /// Read throughput in this bin, GB/s.
    pub read_gbps: f64,
    /// Write throughput in this bin, GB/s.
    pub write_gbps: f64,
}

/// Buckets an update phase's I/O events into `bin_s`-second bins.
pub fn bin_update_events(stats: &UpdateStats, window: (f64, f64), bin_s: f64) -> Vec<Fig5Point> {
    let (start, end) = window;
    let bins = (((end - start) / bin_s).ceil() as usize).max(1);
    let mut read = vec![0.0f64; bins];
    let mut write = vec![0.0f64; bins];
    for e in &stats.events {
        let dur = e.secs().max(1e-12);
        let rate = e.bytes as f64 / dur;
        for b in 0..bins {
            let b_start = start + b as f64 * bin_s;
            let b_end = b_start + bin_s;
            let overlap = (e.end_s.min(b_end) - e.start_s.max(b_start)).max(0.0);
            if overlap <= 0.0 {
                continue;
            }
            match e.kind {
                IoKind::Fetch => read[b] += rate * overlap,
                IoKind::Flush | IoKind::GradFlush => write[b] += rate * overlap,
            }
        }
    }
    (0..bins)
        .map(|b| Fig5Point {
            t_s: (b as f64 + 0.5) * bin_s,
            read_gbps: read[b] / bin_s / 1e9,
            write_gbps: write[b] / bin_s / 1e9,
        })
        .collect()
}

/// Fig. 5: the per-subgroup read/write throughput oscillation of the
/// baseline's 40B NVMe-offloaded update (3 host buffer slots).
pub fn fig5_throughput_timeline() -> Vec<Fig5Point> {
    let tb = testbed1();
    let setup = standard_setup(&tb, &zoo::model_40b(), Approach::DeepSpeedZero3, 1);
    let results = run(&setup);
    let steady = &results[results.len() - 1];
    bin_update_events(&steady.update, steady.update_window, 0.5)
}

// ===========================================================================
// Figs. 7–10: single-node model-size scaling (40B–120B, Testbed-1)
// ===========================================================================

/// One (model, approach) cell of the Fig. 7–10 study.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ScalingRow {
    /// Model name.
    pub model: String,
    /// Approach label.
    pub approach: String,
    /// Mean forward seconds (Fig. 7).
    pub forward_s: f64,
    /// Mean backward seconds (Fig. 7).
    pub backward_s: f64,
    /// Mean update seconds (Fig. 7).
    pub update_s: f64,
    /// Mean iteration seconds (Fig. 7).
    pub total_s: f64,
    /// Node update throughput, Mparam/s (Fig. 8).
    pub update_mparams_per_s: f64,
    /// Effective I/O throughput, GB/s (Fig. 9).
    pub effective_io_gbps: f64,
    /// Host share of the optimizer state (Fig. 10).
    pub host_fraction: f64,
    /// NVMe share of the optimizer state (Fig. 10).
    pub nvme_fraction: f64,
    /// PFS share of the optimizer state (Fig. 10; 0 for the baseline).
    pub pfs_fraction: f64,
    /// Host-cache hit rate during updates.
    pub cache_hit_rate: f64,
}

/// Runs the single-node model-scaling study behind Figures 7, 8, 9 and 10.
pub fn model_scaling() -> Vec<ScalingRow> {
    let tb = testbed1();
    let mut rows = Vec::new();
    for model in zoo::single_node_set() {
        for approach in [Approach::DeepSpeedZero3, Approach::MlpOffload] {
            let setup = standard_setup(&tb, &model, approach, 1);
            let s = run_summary(&setup);
            let f = &s.distribution_fractions;
            rows.push(ScalingRow {
                model: model.name.clone(),
                approach: approach.label().into(),
                forward_s: s.forward_s,
                backward_s: s.backward_s,
                update_s: s.update_s,
                total_s: s.total_s,
                update_mparams_per_s: s.update_params_per_s / 1e6,
                effective_io_gbps: s.effective_io_bps / 1e9,
                host_fraction: f[0],
                nvme_fraction: f.get(1).copied().unwrap_or(0.0),
                pfs_fraction: f.get(2).copied().unwrap_or(0.0),
                cache_hit_rate: s.cache_hit_rate,
            });
        }
    }
    rows
}

// ===========================================================================
// Figs. 11–12: weak scaling (Testbed-2, 1–8 nodes, 40B–280B)
// ===========================================================================

/// One (nodes, model, approach) cell of the weak-scaling study.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct WeakScalingRow {
    /// Compute nodes (4 GPUs each).
    pub nodes: usize,
    /// Total GPUs.
    pub gpus: usize,
    /// Model name.
    pub model: String,
    /// Approach label.
    pub approach: String,
    /// Mean iteration seconds (Fig. 11).
    pub iteration_s: f64,
    /// Aggregate update throughput across nodes, Mparam/s (Fig. 12).
    pub update_mparams_per_s: f64,
}

/// Figs. 11–12: model size grows with node count (40B/1 → 280B/8 on
/// Testbed-2); MLP-Offload stays up to ~2× faster at scale.
pub fn weak_scaling() -> Vec<WeakScalingRow> {
    let tb = testbed2();
    let cases = [
        (zoo::model_40b(), 1usize),
        (zoo::model_70b(), 2),
        (zoo::model_100b(), 3),
        (zoo::model_130b(), 4),
        (zoo::model_280b(), 8),
    ];
    let mut rows = Vec::new();
    for (model, nodes) in cases {
        for approach in [Approach::DeepSpeedZero3, Approach::MlpOffload] {
            let setup = standard_setup(&tb, &model, approach, nodes);
            let s = run_summary(&setup);
            rows.push(WeakScalingRow {
                nodes,
                gpus: nodes * tb.gpus_per_node,
                model: model.name.clone(),
                approach: approach.label().into(),
                iteration_s: s.total_s,
                // Nodes update their shards in parallel.
                update_mparams_per_s: s.update_params_per_s * nodes as f64 / 1e6,
            });
        }
    }
    rows
}

// ===========================================================================
// Fig. 13: gradient accumulation (40B, Testbed-1)
// ===========================================================================

/// One (accumulation, approach) cell of Fig. 13.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Fig13Row {
    /// Backward micro-steps per update.
    pub accumulation_steps: usize,
    /// Equivalent global batch size (4 ranks × microbatch 8 × steps).
    pub equivalent_batch: usize,
    /// Approach label.
    pub approach: String,
    /// Mean iteration seconds.
    pub iteration_s: f64,
}

/// Fig. 13: even with 16-step accumulation amortizing the update phase,
/// MLP-Offload stays ≥40% faster than the baseline.
pub fn fig13_grad_accumulation() -> Vec<Fig13Row> {
    let tb = testbed1();
    let model = zoo::model_40b();
    let mut rows = Vec::new();
    for accum in [1usize, 2, 4, 8, 16] {
        for approach in [Approach::DeepSpeedZero3, Approach::MlpOffload] {
            let mut setup = standard_setup(&tb, &model, approach, 1);
            setup.grad_accum_steps = accum;
            setup.microbatch = 8; // the largest that fits (§4.5)
            let s = run_summary(&setup);
            rows.push(Fig13Row {
                accumulation_steps: accum,
                equivalent_batch: 4 * 8 * accum,
                approach: approach.label().into(),
                iteration_s: s.total_s,
            });
        }
    }
    rows
}

// ===========================================================================
// Figs. 14–15: ablations (progressive activation)
// ===========================================================================

/// One (model, stage) cell of the ablation ladders.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AblationRow {
    /// Model name.
    pub model: String,
    /// Stage label (progressively activated).
    pub stage: String,
    /// Whether the PFS path is active.
    pub multipath: bool,
    /// Mean iteration seconds.
    pub iteration_s: f64,
    /// Speedup over the baseline stage of the same figure.
    pub speedup_vs_baseline: f64,
}

fn ablation(models: &[ModelConfig], multipath: bool) -> Vec<AblationRow> {
    let tb = testbed1();
    let mut rows = Vec::new();
    for model in models {
        let mut baseline_s = None;
        for stage in AblationStage::ladder() {
            // The baseline bar is always DeepSpeed on NVMe alone; the
            // optimized stages use the figure's tier set.
            let tiers = if multipath && stage != AblationStage::Baseline {
                vec![tb.nvme.clone(), tb.pfs.clone()]
            } else {
                vec![tb.nvme.clone()]
            };
            let mut setup = TrainSetup::new(tb.clone(), model.clone(), stage.config(), tiers);
            setup.iterations = iterations();
            let s = run_summary(&setup);
            let base = *baseline_s.get_or_insert(s.total_s);
            rows.push(AblationRow {
                model: model.name.clone(),
                stage: stage.label().into(),
                multipath,
                iteration_s: s.total_s,
                speedup_vs_baseline: base / s.total_s,
            });
        }
    }
    rows
}

/// Fig. 14: progressive activation on node-local NVMe only (up to ~1.6×
/// without a PFS).
pub fn fig14_ablation_nvme() -> Vec<AblationRow> {
    ablation(
        &[zoo::model_40b(), zoo::model_70b(), zoo::model_100b()],
        false,
    )
}

/// Fig. 15: the same ladder with the PFS active; the top stage is full
/// MLP-Offload (~2.5× over the baseline).
pub fn fig15_ablation_pfs() -> Vec<AblationRow> {
    ablation(
        &[zoo::model_40b(), zoo::model_70b(), zoo::model_100b()],
        true,
    )
}

// ===========================================================================
// §3.3 checkpoint pre-staging: what multi-path offloading saves a
// checkpointing engine
// ===========================================================================

/// One row of the checkpoint pre-staging comparison.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CheckpointRow {
    /// Approach label.
    pub approach: String,
    /// Model name.
    pub model: String,
    /// Fraction of the optimizer state already on persistent tiers at the
    /// iteration boundary.
    pub prestaged_fraction: f64,
    /// Seconds to flush the remainder to the PFS (what a DataStates-style
    /// engine must still move).
    pub checkpoint_flush_s: f64,
}

/// §3.3: "the virtual storage tiers in MLP-Offload also accelerate the
/// checkpointing process by pre-staging a fraction of optimizer states to
/// persistent storage". The baseline keeps everything on the (persistent)
/// NVMe too, but a host-offloaded configuration pre-stages nothing; the
/// interesting deltas are the host-resident fraction and the flush time.
pub fn checkpoint_prestaging() -> Vec<CheckpointRow> {
    let tb = testbed1();
    let mut rows = Vec::new();
    for model in [zoo::model_40b(), zoo::model_100b()] {
        for approach in [Approach::DeepSpeedZero3, Approach::MlpOffload] {
            let setup = standard_setup(&tb, &model, approach, 1);
            let results = run(&setup);
            let dist = &results.last().expect("iterations ran").distribution;
            let report =
                mlp_offload::checkpoint::PrestageReport::from_distribution(dist, &setup.tiers);
            rows.push(CheckpointRow {
                approach: approach.label().into(),
                model: model.name.clone(),
                prestaged_fraction: report.prestaged_fraction(),
                checkpoint_flush_s: report.checkpoint_flush_secs(tb.pfs.write_bps),
            });
        }
    }
    rows
}

// ===========================================================================
// §4.4 cost-effectiveness: 10× fewer GPUs at a ~5× slowdown
// ===========================================================================

/// One row of the §4.4 cost-effectiveness comparison.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CostRow {
    /// Configuration label.
    pub configuration: String,
    /// GPUs used.
    pub gpus: usize,
    /// Mean iteration seconds.
    pub iteration_s: f64,
    /// Slowdown vs the GPU-only reference.
    pub slowdown_vs_gpu_only: f64,
    /// Cost-effectiveness: GPU-only (gpus × time) over this config's
    /// (gpus × time); >1 means cheaper per iteration.
    pub cost_effectiveness: f64,
}

/// §4.4: training 70B without offloading needs ~80 A100s (24 s/iter);
/// NVMe offloading runs it on 8 GPUs — ZeRO-3 at ~7× slowdown,
/// MLP-Offload at ~4.8×, i.e. ~2× better GPU-seconds per iteration than
/// the GPU-only deployment.
pub fn cost_effectiveness() -> Vec<CostRow> {
    let tb = testbed2();
    let model = zoo::model_70b();
    // GPU-only reference: the paper's 80-GPU deployment at 24 s/iter; the
    // roofline gives the compute floor for the same world size.
    let gpu_only_gpus = 80usize;
    let gpu_only_s =
        crate::compute::gpu_only_iteration_secs(&model, &tb.gpu, model.seq_len, gpu_only_gpus)
            .max(24.0); // communication-bound in practice (paper's measured 24 s)

    let mut rows = vec![CostRow {
        configuration: "GPU-only (no offload)".into(),
        gpus: gpu_only_gpus,
        iteration_s: gpu_only_s,
        slowdown_vs_gpu_only: 1.0,
        cost_effectiveness: 1.0,
    }];
    let reference_cost = gpu_only_gpus as f64 * gpu_only_s;
    for approach in [Approach::DeepSpeedZero3, Approach::MlpOffload] {
        let setup = standard_setup(&tb, &model, approach, 2); // 8 GPUs
        let s = run_summary(&setup);
        let gpus = setup.world_size();
        rows.push(CostRow {
            configuration: format!("{} (NVMe offload, 8 GPUs)", approach.label()),
            gpus,
            iteration_s: s.total_s,
            slowdown_vs_gpu_only: s.total_s / gpu_only_s,
            cost_effectiveness: reference_cost / (gpus as f64 * s.total_s),
        });
    }
    rows
}

// ===========================================================================
// Extension (§5 future work): CXL memory pools as an additional path
// ===========================================================================

/// One row of the CXL-extension study.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CxlRow {
    /// Tier set label.
    pub tiers: String,
    /// Mean iteration seconds.
    pub iteration_s: f64,
    /// Speedup over the NVMe+PFS MLP-Offload configuration.
    pub speedup_vs_mlp: f64,
}

/// §5: "we next plan to explore parallel I/O paths for next-generation
/// Compute-Express-Link (CXL) memory pools". The virtual-tier design
/// generalizes unchanged: adding a CXL pool as a third path lets Eq. 1
/// absorb most of the optimizer state at memory speeds.
pub fn future_cxl() -> Vec<CxlRow> {
    let tb = testbed1();
    let model = zoo::model_70b();
    let mut rows = Vec::new();
    let mut base = None;
    for (label, tiers) in [
        (
            "NVMe + PFS (MLP-Offload)",
            vec![tb.nvme.clone(), tb.pfs.clone()],
        ),
        (
            "NVMe + PFS + CXL pool",
            vec![
                tb.nvme.clone(),
                tb.pfs.clone(),
                mlp_storage::spec::cxl_pool(),
            ],
        ),
    ] {
        let mut setup = TrainSetup::new(
            tb.clone(),
            model.clone(),
            EngineConfig::mlp_offload(),
            tiers,
        );
        setup.iterations = iterations();
        let s = run_summary(&setup);
        let b = *base.get_or_insert(s.total_s);
        rows.push(CxlRow {
            tiers: label.into(),
            iteration_s: s.total_s,
            speedup_vs_mlp: b / s.total_s,
        });
    }
    rows
}

// ===========================================================================
// Sensitivity studies (§4.1 configuration choices)
// ===========================================================================

/// One subgroup-size point.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SubgroupSizeRow {
    /// Parameters per subgroup.
    pub subgroup_mparams: u64,
    /// Approach label.
    pub approach: String,
    /// Mean iteration seconds.
    pub iteration_s: f64,
}

/// §4.1: "smaller subgroups achieve better I/O and compute overlap of
/// offloaded subgroups. Therefore ... a subgroup size of 100 million
/// trainable parameters as opposed to DeepSpeed's default size of 1
/// billion" — sweeps the subgroup size for the 40B model.
pub fn subgroup_size_sweep() -> Vec<SubgroupSizeRow> {
    let tb = testbed1();
    let model = zoo::model_40b();
    let mut rows = Vec::new();
    for mparams in [1000u64, 500, 200, 100, 50] {
        for approach in [Approach::DeepSpeedZero3, Approach::MlpOffload] {
            let mut setup = standard_setup(&tb, &model, approach, 1);
            setup.subgroup_params = mparams * 1_000_000;
            let s = run_summary(&setup);
            rows.push(SubgroupSizeRow {
                subgroup_mparams: mparams,
                approach: approach.label().into(),
                iteration_s: s.total_s,
            });
        }
    }
    rows
}

/// One host-cache-budget point.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CacheSweepRow {
    /// Fraction of the estimator's free host memory given to the cache.
    pub cache_fraction: f64,
    /// Mean iteration seconds.
    pub iteration_s: f64,
    /// Steady-state hit rate.
    pub cache_hit_rate: f64,
}

/// Host-cache sensitivity for the 40B MLP-Offload configuration: the
/// cacheable fraction is what makes Fig. 9's effective throughput decay
/// with model size, so iteration time must fall monotonically as the
/// cache grows.
pub fn cache_sweep() -> Vec<CacheSweepRow> {
    let tb = testbed1();
    let model = zoo::model_40b();
    let mut rows = Vec::new();
    for fraction in [0.0f64, 0.25, 0.5, 0.75, 1.0] {
        let mut setup = standard_setup(&tb, &model, Approach::MlpOffload, 1);
        setup.cache_safety_factor = fraction.max(1e-6);
        if fraction == 0.0 {
            setup.engine_cfg.cache_retention = false;
        }
        let s = run_summary(&setup);
        rows.push(CacheSweepRow {
            cache_fraction: fraction,
            iteration_s: s.total_s,
            cache_hit_rate: s.cache_hit_rate,
        });
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn motivation_ordering_matches_paper() {
        let rows = motivation();
        assert_eq!(rows.len(), 3);
        assert!(rows[0].iteration_s < rows[1].iteration_s);
        assert!(rows[1].iteration_s < rows[2].iteration_s);
        // NVMe offload is one-to-two orders of magnitude slower than
        // GPU-only (paper: ~170×).
        assert!(
            rows[2].slowdown_vs_gpu > 30.0,
            "got {}",
            rows[2].slowdown_vs_gpu
        );
    }

    #[test]
    fn fig3_host_update_is_much_faster_and_ssd_is_io_bound() {
        let rows = fig3_update_breakdown();
        let host = &rows[0];
        assert_eq!(host.offload_target, "host");
        for ssd in &rows[1..] {
            assert!(
                ssd.update_s / host.update_s > 10.0,
                "{} only {}x slower",
                ssd.model,
                ssd.update_s / host.update_s
            );
            assert!(
                ssd.io_fraction > 0.9,
                "{} io {}",
                ssd.model,
                ssd.io_fraction
            );
        }
    }

    #[test]
    fn fig4_flat_aggregate_growing_latency() {
        let rows = fig4_concurrency();
        let nvme: Vec<&Fig4Row> = rows.iter().filter(|r| r.tier == "nvme").collect();
        let base = nvme[0];
        let worst = nvme.last().unwrap();
        assert!((worst.agg_write_gbps / base.agg_write_gbps - 1.0).abs() < 0.05);
        assert!(worst.mean_latency_s / base.mean_latency_s > 6.0);
    }

    #[test]
    fn fig5_write_bound_with_oscillation() {
        let points = fig5_throughput_timeline();
        assert!(points.len() > 10);
        let peak_write = points.iter().map(|p| p.write_gbps).fold(0.0, f64::max);
        // Bounded by the NVMe write bandwidth.
        assert!(peak_write <= 5.4, "peak write {peak_write}");
        assert!(peak_write > 1.0);
    }

    #[test]
    fn smaller_subgroups_pipeline_better() {
        let rows = subgroup_size_sweep();
        // The paper's chosen 100M must beat DeepSpeed's 1B default for
        // MLP-Offload (finer overlap + finer multi-path balancing).
        let at = |m: u64| {
            rows.iter()
                .find(|r| r.subgroup_mparams == m && r.approach.starts_with("MLP"))
                .unwrap()
                .iteration_s
        };
        assert!(at(100) < at(1000), "100M {} vs 1B {}", at(100), at(1000));
    }

    #[test]
    fn bigger_cache_is_monotonically_faster() {
        let rows = cache_sweep();
        for w in rows.windows(2) {
            assert!(
                w[1].iteration_s <= w[0].iteration_s * 1.02,
                "cache {} -> {}: {:.1}s -> {:.1}s",
                w[0].cache_fraction,
                w[1].cache_fraction,
                w[0].iteration_s,
                w[1].iteration_s
            );
            assert!(w[1].cache_hit_rate >= w[0].cache_hit_rate - 1e-9);
        }
    }

    #[test]
    fn checkpoint_prestaging_covers_most_state() {
        let rows = checkpoint_prestaging();
        for r in &rows {
            // Everything not host-cached sits on persistent tiers.
            assert!(
                r.prestaged_fraction > 0.7,
                "{}: {}",
                r.approach,
                r.prestaged_fraction
            );
            assert!(r.checkpoint_flush_s >= 0.0);
        }
        // MLP-Offload keeps a host cache, so it has *more* left to flush
        // than the cache-less baseline — the pre-staging win is vs
        // host-memory offload, and the flush remains tens of seconds
        // instead of the full-state hundreds.
        let mlp40 = rows
            .iter()
            .find(|r| r.model == "40B" && r.approach.starts_with("MLP"))
            .unwrap();
        let full_state_flush =
            zoo::model_40b().optimizer_state_bytes() as f64 / testbed1().pfs.write_bps;
        assert!(mlp40.checkpoint_flush_s < full_state_flush * 0.5);
    }

    #[test]
    fn cost_effectiveness_matches_section_4_4() {
        let rows = cost_effectiveness();
        let mlp = rows
            .iter()
            .find(|r| r.configuration.contains("MLP"))
            .unwrap();
        let ds = rows
            .iter()
            .find(|r| r.configuration.contains("DeepSpeed"))
            .unwrap();
        // Offloading uses 10× fewer GPUs at a single-digit slowdown, and
        // MLP-Offload is more cost-effective than GPU-only (paper: ~2×).
        assert!(
            ds.slowdown_vs_gpu_only < 10.0,
            "DS slowdown {}",
            ds.slowdown_vs_gpu_only
        );
        assert!(mlp.slowdown_vs_gpu_only < ds.slowdown_vs_gpu_only);
        assert!(
            mlp.cost_effectiveness > 1.5,
            "MLP cost-eff {}",
            mlp.cost_effectiveness
        );
    }

    #[test]
    fn cxl_extension_accelerates_further() {
        let rows = future_cxl();
        assert!(
            rows[1].speedup_vs_mlp > 1.3,
            "CXL gain {:.2}",
            rows[1].speedup_vs_mlp
        );
    }

    #[test]
    fn fig13_mlp_stays_at_least_40_percent_faster() {
        let rows = fig13_grad_accumulation();
        for accum in [1usize, 16] {
            let ds = rows
                .iter()
                .find(|r| r.accumulation_steps == accum && r.approach.starts_with("DeepSpeed"))
                .unwrap();
            let mlp = rows
                .iter()
                .find(|r| r.accumulation_steps == accum && r.approach.starts_with("MLP"))
                .unwrap();
            assert!(
                ds.iteration_s / mlp.iteration_s >= 1.35,
                "accum {accum}: only {:.2}x",
                ds.iteration_s / mlp.iteration_s
            );
        }
    }
}
