#![warn(missing_docs)]
#![deny(unsafe_code)]

//! Training-iteration driver and paper-experiment harness.
//!
//! Assembles the substrates into full training runs: the analytic GPU
//! compute model ([`compute`]), the collective-communication cost model
//! ([`comm`]), the Table-1 testbed descriptions ([`testbed`]), the
//! iteration driver that runs simulated multi-worker training
//! ([`driver`]), and one function per paper figure ([`experiments`]).

pub mod comm;
pub mod compute;
pub mod data;
pub mod driver;
pub mod experiments;
pub mod func_trainer;
pub mod testbed;

pub use driver::{IterationResult, TrainSetup};
pub use testbed::{testbed1, testbed2, Testbed};
