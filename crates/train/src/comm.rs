//! Collective-communication cost model.
//!
//! ZeRO-3 shards parameters across data-parallel ranks and therefore
//! all-gathers FP16 parameters before the forward and backward passes and
//! reduce-scatters FP16 gradients after the backward (§2: "1.5× higher
//! communication"). Ring-collective cost: each participant moves
//! `bytes × (n−1)/n` over its slowest link. Tensor parallelism adds
//! per-layer activation all-reduces on the intra-node fabric.
//!
//! On HPC interconnects these costs are small next to storage I/O — the
//! paper's weak-scaling observation — but they are modelled so the
//! crossover behaviour is honest.

use serde::{Deserialize, Serialize};

use mlp_model::ModelConfig;

/// Network fabric description.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct NetworkSpec {
    /// Intra-node GPU↔GPU bandwidth per GPU (NVLink), bytes/second.
    pub intranode_bps: f64,
    /// Inter-node bandwidth per node (Slingshot/InfiniBand), bytes/second.
    pub internode_bps: f64,
}

/// Per-iteration communication seconds added to each phase for one rank.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct CommTimes {
    /// Added to every forward micro-step (parameter all-gather).
    pub forward_s: f64,
    /// Added to every backward micro-step (parameter all-gather).
    pub backward_s: f64,
    /// Added to the final backward micro-step (gradient reduce-scatter).
    pub grad_sync_s: f64,
}

/// Computes per-rank communication times. `dp_nodes` is the number of
/// data-parallel groups communicating inter-node; `tp` the intra-node
/// tensor-parallel degree.
pub fn comm_times(
    model: &ModelConfig,
    net: &NetworkSpec,
    dp_nodes: usize,
    tp: usize,
    tokens_per_rank: u64,
) -> CommTimes {
    assert!(dp_nodes >= 1 && tp >= 1, "degrees must be at least 1");
    let fp16_params = model.fp16_param_bytes() as f64;

    // Inter-node ZeRO-3 traffic: parameters all-gathered across the
    // data-parallel groups (each node holds 1/dp of the model and streams
    // the rest in), gradients reduce-scattered once per iteration.
    let ring = |bytes: f64, n: usize| {
        if n <= 1 {
            0.0
        } else {
            bytes * (n as f64 - 1.0) / n as f64 / net.internode_bps
        }
    };
    let param_gather_s = ring(fp16_params / dp_nodes as f64, dp_nodes);
    let grad_sync_s = ring(fp16_params / dp_nodes as f64, dp_nodes);

    // Intra-node tensor parallelism: two activation all-reduces per layer
    // (attention + MLP), each 2·tokens·hidden FP16 bytes.
    let tp_allreduce_s = if tp > 1 {
        let per_layer =
            2.0 * 2.0 * (tokens_per_rank * model.hidden_dim * 2) as f64 * (tp as f64 - 1.0)
                / tp as f64
                / net.intranode_bps;
        per_layer * model.num_layers as f64
    } else {
        0.0
    };

    CommTimes {
        forward_s: param_gather_s + tp_allreduce_s,
        backward_s: param_gather_s + tp_allreduce_s,
        grad_sync_s,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlp_model::zoo;

    fn slingshot() -> NetworkSpec {
        NetworkSpec {
            intranode_bps: 300e9,
            internode_bps: 25e9,
        }
    }

    #[test]
    fn single_node_has_no_internode_traffic() {
        let c = comm_times(&zoo::model_40b(), &slingshot(), 1, 1, 2048);
        assert_eq!(c.forward_s, 0.0);
        assert_eq!(c.grad_sync_s, 0.0);
    }

    #[test]
    fn internode_comm_is_seconds_not_minutes() {
        // 70B across 2 nodes: ~2.8 s of gather traffic — noticeable but
        // far below the 100+ s update phase (the paper's weak-scaling
        // argument).
        let c = comm_times(&zoo::model_70b(), &slingshot(), 2, 4, 2048);
        assert!(
            c.forward_s > 0.5 && c.forward_s < 10.0,
            "got {}",
            c.forward_s
        );
    }

    #[test]
    fn comm_grows_with_node_count() {
        let m = zoo::model_280b();
        let c2 = comm_times(&m, &slingshot(), 2, 4, 2048);
        let c8 = comm_times(&m, &slingshot(), 8, 4, 2048);
        // Per-node shard shrinks but the (n−1)/n factor grows; for a fixed
        // model the total gather bytes per node shrink with n.
        assert!(c8.forward_s < c2.forward_s * 1.5);
        assert!(c8.forward_s > 0.0);
    }

    #[test]
    fn tp_allreduce_is_subsecond() {
        let c = comm_times(&zoo::model_70b(), &slingshot(), 1, 4, 2048);
        assert!(c.forward_s < 0.5, "got {}", c.forward_s);
    }
}
