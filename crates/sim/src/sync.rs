//! Cooperative synchronization primitives for simulated processes.
//!
//! All primitives are strictly FIFO, which keeps simulations deterministic
//! and models the fairness of the queue-based locking the paper's engine
//! uses (process-exclusive, multi-thread-shared access to a storage tier,
//! §3.5).

use std::cell::RefCell;
use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll};

use crate::executor::{Sim, TaskId};

// ---------------------------------------------------------------------------
// SimMutex
// ---------------------------------------------------------------------------

struct MutexState {
    locked: bool,
    /// FIFO queue of waiting (ticket, task).
    queue: VecDeque<(u64, TaskId)>,
    /// Ticket that currently owns a pending lock handoff.
    handoff: Option<u64>,
    next_ticket: u64,
}

/// An asynchronous, FIFO-fair mutual-exclusion lock.
///
/// Used to model *tier-exclusive concurrency control*: only one worker
/// process on a node may access a given storage tier at a time (§3.2).
pub struct SimMutex {
    sim: Sim,
    state: Rc<RefCell<MutexState>>,
}

impl SimMutex {
    /// Creates an unlocked mutex.
    pub fn new(sim: &Sim) -> Self {
        SimMutex {
            sim: sim.clone(),
            state: Rc::new(RefCell::new(MutexState {
                locked: false,
                queue: VecDeque::new(),
                handoff: None,
                next_ticket: 0,
            })),
        }
    }

    /// Acquires the lock, waiting in FIFO order.
    pub fn lock(&self) -> MutexLock {
        MutexLock {
            sim: self.sim.clone(),
            state: Rc::clone(&self.state),
            ticket: None,
            acquired: false,
        }
    }

    /// Attempts to acquire without waiting.
    pub fn try_lock(&self) -> Option<MutexGuard> {
        let mut s = self.state.borrow_mut();
        if !s.locked && s.handoff.is_none() && s.queue.is_empty() {
            s.locked = true;
            drop(s);
            Some(MutexGuard {
                sim: self.sim.clone(),
                state: Rc::clone(&self.state),
            })
        } else {
            None
        }
    }

    /// Whether the lock is currently held (or mid-handoff).
    pub fn is_locked(&self) -> bool {
        let s = self.state.borrow();
        s.locked || s.handoff.is_some()
    }

    /// Number of tasks queued behind the current holder.
    pub fn waiters(&self) -> usize {
        self.state.borrow().queue.len()
    }
}

impl Clone for SimMutex {
    fn clone(&self) -> Self {
        SimMutex {
            sim: self.sim.clone(),
            state: Rc::clone(&self.state),
        }
    }
}

fn mutex_release(sim: &Sim, state: &Rc<RefCell<MutexState>>) {
    let mut s = state.borrow_mut();
    if let Some((ticket, task)) = s.queue.pop_front() {
        // Hand the lock to the next waiter: `locked` stays true so nobody
        // can barge in between release and the waiter's next poll.
        s.handoff = Some(ticket);
        drop(s);
        sim.wake(task);
    } else {
        s.locked = false;
    }
}

/// Future returned by [`SimMutex::lock`].
pub struct MutexLock {
    sim: Sim,
    state: Rc<RefCell<MutexState>>,
    ticket: Option<u64>,
    acquired: bool,
}

impl Future for MutexLock {
    type Output = MutexGuard;

    fn poll(mut self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<MutexGuard> {
        let this = &mut *self;
        let mut s = this.state.borrow_mut();
        match this.ticket {
            None => {
                if !s.locked && s.handoff.is_none() && s.queue.is_empty() {
                    s.locked = true;
                    drop(s);
                    this.acquired = true;
                    Poll::Ready(MutexGuard {
                        sim: this.sim.clone(),
                        state: Rc::clone(&this.state),
                    })
                } else {
                    let ticket = s.next_ticket;
                    s.next_ticket += 1;
                    let task = this.sim.current_task();
                    s.queue.push_back((ticket, task));
                    this.ticket = Some(ticket);
                    Poll::Pending
                }
            }
            Some(ticket) => {
                if s.handoff == Some(ticket) {
                    s.handoff = None;
                    drop(s);
                    this.acquired = true;
                    Poll::Ready(MutexGuard {
                        sim: this.sim.clone(),
                        state: Rc::clone(&this.state),
                    })
                } else {
                    Poll::Pending
                }
            }
        }
    }
}

impl Drop for MutexLock {
    fn drop(&mut self) {
        if self.acquired {
            return;
        }
        let Some(ticket) = self.ticket else { return };
        let mut s = self.state.borrow_mut();
        if s.handoff == Some(ticket) {
            // We were granted the lock but dropped before observing it:
            // behave as an immediate release.
            s.handoff = None;
            drop(s);
            mutex_release(&self.sim, &self.state);
        } else {
            s.queue.retain(|&(t, _)| t != ticket);
        }
    }
}

/// RAII guard; releases the mutex (waking the next waiter) on drop.
pub struct MutexGuard {
    sim: Sim,
    state: Rc<RefCell<MutexState>>,
}

impl Drop for MutexGuard {
    fn drop(&mut self) {
        mutex_release(&self.sim, &self.state);
    }
}

// ---------------------------------------------------------------------------
// Semaphore
// ---------------------------------------------------------------------------

struct SemState {
    permits: usize,
    queue: VecDeque<(u64, TaskId)>,
    /// Tickets whose permit has been granted but not yet observed.
    granted: Vec<u64>,
    next_ticket: u64,
}

/// FIFO counting semaphore.
///
/// Models bounded resources such as the configurable number of pinned host
/// buffer slots that cap how many subgroups may be in flight at once (the
/// paper's "minimum of three subgroups": flush + update + prefetch, §4.1).
pub struct Semaphore {
    sim: Sim,
    state: Rc<RefCell<SemState>>,
}

impl Semaphore {
    /// Creates a semaphore with `permits` initially available permits.
    pub fn new(sim: &Sim, permits: usize) -> Self {
        Semaphore {
            sim: sim.clone(),
            state: Rc::new(RefCell::new(SemState {
                permits,
                queue: VecDeque::new(),
                granted: Vec::new(),
                next_ticket: 0,
            })),
        }
    }

    /// Acquires one permit, waiting in FIFO order.
    pub fn acquire(&self) -> SemAcquire {
        SemAcquire {
            sim: self.sim.clone(),
            state: Rc::clone(&self.state),
            ticket: None,
            acquired: false,
        }
    }

    /// Attempts to take a permit without waiting.
    pub fn try_acquire(&self) -> Option<SemGuard> {
        let mut s = self.state.borrow_mut();
        if s.permits > 0 && s.queue.is_empty() {
            s.permits -= 1;
            drop(s);
            Some(SemGuard {
                sim: self.sim.clone(),
                state: Rc::clone(&self.state),
            })
        } else {
            None
        }
    }

    /// Currently available permits.
    pub fn available(&self) -> usize {
        self.state.borrow().permits
    }

    /// Number of waiting acquirers.
    pub fn waiters(&self) -> usize {
        self.state.borrow().queue.len()
    }

    /// Adds permits (releases without a guard), waking waiters FIFO.
    pub fn add_permits(&self, n: usize) {
        for _ in 0..n {
            sem_release(&self.sim, &self.state);
        }
    }
}

impl Clone for Semaphore {
    fn clone(&self) -> Self {
        Semaphore {
            sim: self.sim.clone(),
            state: Rc::clone(&self.state),
        }
    }
}

fn sem_release(sim: &Sim, state: &Rc<RefCell<SemState>>) {
    let mut s = state.borrow_mut();
    if let Some((ticket, task)) = s.queue.pop_front() {
        s.granted.push(ticket);
        drop(s);
        sim.wake(task);
    } else {
        s.permits += 1;
    }
}

/// Future returned by [`Semaphore::acquire`].
pub struct SemAcquire {
    sim: Sim,
    state: Rc<RefCell<SemState>>,
    ticket: Option<u64>,
    acquired: bool,
}

impl Future for SemAcquire {
    type Output = SemGuard;

    fn poll(mut self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<SemGuard> {
        let this = &mut *self;
        let mut s = this.state.borrow_mut();
        match this.ticket {
            None => {
                if s.permits > 0 && s.queue.is_empty() {
                    s.permits -= 1;
                    drop(s);
                    this.acquired = true;
                    Poll::Ready(SemGuard {
                        sim: this.sim.clone(),
                        state: Rc::clone(&this.state),
                    })
                } else {
                    let ticket = s.next_ticket;
                    s.next_ticket += 1;
                    let task = this.sim.current_task();
                    s.queue.push_back((ticket, task));
                    this.ticket = Some(ticket);
                    Poll::Pending
                }
            }
            Some(ticket) => {
                if let Some(pos) = s.granted.iter().position(|&t| t == ticket) {
                    s.granted.swap_remove(pos);
                    drop(s);
                    this.acquired = true;
                    Poll::Ready(SemGuard {
                        sim: this.sim.clone(),
                        state: Rc::clone(&this.state),
                    })
                } else {
                    Poll::Pending
                }
            }
        }
    }
}

impl Drop for SemAcquire {
    fn drop(&mut self) {
        if self.acquired {
            return;
        }
        let Some(ticket) = self.ticket else { return };
        let mut s = self.state.borrow_mut();
        if let Some(pos) = s.granted.iter().position(|&t| t == ticket) {
            // Granted but never observed: forward the permit.
            s.granted.swap_remove(pos);
            drop(s);
            sem_release(&self.sim, &self.state);
        } else {
            s.queue.retain(|&(t, _)| t != ticket);
        }
    }
}

/// RAII permit; returns the permit (waking the next waiter) on drop.
pub struct SemGuard {
    sim: Sim,
    state: Rc<RefCell<SemState>>,
}

impl Drop for SemGuard {
    fn drop(&mut self) {
        sem_release(&self.sim, &self.state);
    }
}

// ---------------------------------------------------------------------------
// Notify
// ---------------------------------------------------------------------------

struct NotifyState {
    epoch: u64,
    waiters: Vec<TaskId>,
}

/// Broadcast notification: every waiter registered before a
/// [`Notify::notify_all`] call is woken by it.
pub struct Notify {
    sim: Sim,
    state: Rc<RefCell<NotifyState>>,
}

impl Notify {
    /// Creates a notifier.
    pub fn new(sim: &Sim) -> Self {
        Notify {
            sim: sim.clone(),
            state: Rc::new(RefCell::new(NotifyState {
                epoch: 0,
                waiters: Vec::new(),
            })),
        }
    }

    /// Future that completes at the next `notify_all` after it is first
    /// polled.
    pub fn notified(&self) -> Notified {
        Notified {
            sim: self.sim.clone(),
            state: Rc::clone(&self.state),
            epoch: None,
        }
    }

    /// Wakes all current waiters.
    pub fn notify_all(&self) {
        let waiters = {
            let mut s = self.state.borrow_mut();
            s.epoch += 1;
            std::mem::take(&mut s.waiters)
        };
        for t in waiters {
            self.sim.wake(t);
        }
    }
}

impl Clone for Notify {
    fn clone(&self) -> Self {
        Notify {
            sim: self.sim.clone(),
            state: Rc::clone(&self.state),
        }
    }
}

/// Future returned by [`Notify::notified`].
pub struct Notified {
    sim: Sim,
    state: Rc<RefCell<NotifyState>>,
    epoch: Option<u64>,
}

impl Future for Notified {
    type Output = ();

    fn poll(mut self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<()> {
        let this = &mut *self;
        let mut s = this.state.borrow_mut();
        match this.epoch {
            None => {
                this.epoch = Some(s.epoch);
                let task = this.sim.current_task();
                s.waiters.push(task);
                Poll::Pending
            }
            Some(e) => {
                if s.epoch > e {
                    Poll::Ready(())
                } else {
                    Poll::Pending
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::rc::Rc;

    #[test]
    fn mutex_grants_in_fifo_order() {
        let sim = Sim::new();
        let m = SimMutex::new(&sim);
        let log = Rc::new(RefCell::new(Vec::new()));
        for i in 0..4 {
            let m = m.clone();
            let s = sim.clone();
            let log = Rc::clone(&log);
            sim.spawn(async move {
                let _g = m.lock().await;
                log.borrow_mut().push(i);
                s.sleep(1.0).await;
            });
        }
        sim.run();
        assert_eq!(*log.borrow(), vec![0, 1, 2, 3]);
        assert_eq!(sim.now(), crate::time::secs(4.0));
        assert!(!m.is_locked());
    }

    #[test]
    fn mutex_serializes_critical_sections() {
        let sim = Sim::new();
        let m = SimMutex::new(&sim);
        let active = Rc::new(RefCell::new((0usize, 0usize))); // (current, max)
        for _ in 0..5 {
            let m = m.clone();
            let s = sim.clone();
            let active = Rc::clone(&active);
            sim.spawn(async move {
                let _g = m.lock().await;
                {
                    let mut a = active.borrow_mut();
                    a.0 += 1;
                    a.1 = a.1.max(a.0);
                }
                s.sleep(0.5).await;
                active.borrow_mut().0 -= 1;
            });
        }
        sim.run();
        assert_eq!(active.borrow().1, 1);
    }

    #[test]
    fn try_lock_fails_while_held() {
        let sim = Sim::new();
        let m = SimMutex::new(&sim);
        let g = m.try_lock().unwrap();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn dropped_waiter_leaves_queue_consistent() {
        let sim = Sim::new();
        let m = SimMutex::new(&sim);
        let m2 = m.clone();
        let s = sim.clone();
        sim.block_on(async move {
            let g = m2.try_lock().unwrap();
            // Create a waiter, poll it once so it joins the queue, then drop
            // it before it is ever granted (cancellation path).
            {
                let mut fut = std::pin::pin!(m2.lock());
                std::future::poll_fn(|cx| {
                    assert!(fut.as_mut().poll(cx).is_pending());
                    std::task::Poll::Ready(())
                })
                .await;
                assert_eq!(m2.waiters(), 1);
            }
            assert_eq!(m2.waiters(), 0);
            drop(g);
            // Lock must be acquirable again.
            let _g2 = m2.lock().await;
            let _ = s;
        });
    }

    #[test]
    fn semaphore_caps_concurrency() {
        let sim = Sim::new();
        let sem = Semaphore::new(&sim, 3);
        let active = Rc::new(RefCell::new((0usize, 0usize)));
        for _ in 0..10 {
            let sem = sem.clone();
            let s = sim.clone();
            let active = Rc::clone(&active);
            sim.spawn(async move {
                let _g = sem.acquire().await;
                {
                    let mut a = active.borrow_mut();
                    a.0 += 1;
                    a.1 = a.1.max(a.0);
                }
                s.sleep(1.0).await;
                active.borrow_mut().0 -= 1;
            });
        }
        sim.run();
        assert_eq!(active.borrow().1, 3);
        assert_eq!(sem.available(), 3);
    }

    #[test]
    fn semaphore_add_permits_wakes_waiters() {
        let sim = Sim::new();
        let sem = Semaphore::new(&sim, 0);
        let sem2 = sem.clone();
        let h = sim.spawn(async move {
            let _g = sem2.acquire().await;
            true
        });
        sim.run();
        assert!(!h.is_done());
        sem.add_permits(1);
        sim.run();
        assert!(h.try_take().unwrap());
    }

    #[test]
    fn notify_all_wakes_every_registered_waiter() {
        let sim = Sim::new();
        let n = Notify::new(&sim);
        let mut handles = Vec::new();
        for _ in 0..3 {
            let n = n.clone();
            handles.push(sim.spawn(async move {
                n.notified().await;
                7u8
            }));
        }
        sim.run();
        assert!(handles.iter().all(|h| !h.is_done()));
        n.notify_all();
        sim.run();
        for h in handles {
            assert_eq!(h.try_take(), Some(7));
        }
    }

    #[test]
    fn semaphore_fifo_ordering() {
        let sim = Sim::new();
        let sem = Semaphore::new(&sim, 1);
        let log = Rc::new(RefCell::new(Vec::new()));
        for i in 0..4 {
            let sem = sem.clone();
            let s = sim.clone();
            let log = Rc::clone(&log);
            sim.spawn(async move {
                let _g = sem.acquire().await;
                log.borrow_mut().push(i);
                s.sleep(1.0).await;
            });
        }
        sim.run();
        assert_eq!(*log.borrow(), vec![0, 1, 2, 3]);
    }
}

// ---------------------------------------------------------------------------
// Barrier
// ---------------------------------------------------------------------------

struct BarrierState {
    parties: usize,
    arrived: usize,
    generation: u64,
    waiters: Vec<TaskId>,
}

/// A reusable phase barrier for a fixed number of simulated participants
/// (e.g. the node's worker processes synchronizing between forward,
/// backward, and update phases).
pub struct Barrier {
    sim: Sim,
    state: Rc<RefCell<BarrierState>>,
}

impl Barrier {
    /// Creates a barrier for `parties` participants.
    pub fn new(sim: &Sim, parties: usize) -> Self {
        assert!(parties > 0, "barrier needs at least one party");
        Barrier {
            sim: sim.clone(),
            state: Rc::new(RefCell::new(BarrierState {
                parties,
                arrived: 0,
                generation: 0,
                waiters: Vec::new(),
            })),
        }
    }

    /// Arrives at the barrier; resolves once all parties of this
    /// generation have arrived. Returns `true` for the last arriver (the
    /// "leader", mirroring `std::sync::Barrier`).
    pub fn wait(&self) -> BarrierWait {
        BarrierWait {
            sim: self.sim.clone(),
            state: Rc::clone(&self.state),
            phase: None,
        }
    }

    /// Parties currently waiting.
    pub fn waiting(&self) -> usize {
        self.state.borrow().arrived
    }
}

impl Clone for Barrier {
    fn clone(&self) -> Self {
        Barrier {
            sim: self.sim.clone(),
            state: Rc::clone(&self.state),
        }
    }
}

/// Future returned by [`Barrier::wait`].
pub struct BarrierWait {
    sim: Sim,
    state: Rc<RefCell<BarrierState>>,
    /// (generation we joined, whether we are the leader).
    phase: Option<(u64, bool)>,
}

impl Future for BarrierWait {
    type Output = bool;

    fn poll(mut self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<bool> {
        let this = &mut *self;
        let mut s = this.state.borrow_mut();
        match this.phase {
            None => {
                s.arrived += 1;
                if s.arrived == s.parties {
                    // Leader: release everyone and open the next generation.
                    s.arrived = 0;
                    s.generation += 1;
                    let waiters = std::mem::take(&mut s.waiters);
                    drop(s);
                    for t in waiters {
                        this.sim.wake(t);
                    }
                    Poll::Ready(true)
                } else {
                    let gen = s.generation;
                    let task = this.sim.current_task();
                    s.waiters.push(task);
                    this.phase = Some((gen, false));
                    Poll::Pending
                }
            }
            Some((gen, _)) => {
                if s.generation > gen {
                    Poll::Ready(false)
                } else {
                    Poll::Pending
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// WaitGroup
// ---------------------------------------------------------------------------

struct WgState {
    count: usize,
    waiters: Vec<TaskId>,
}

/// Tracks a dynamic set of outstanding operations (e.g. lazily spawned
/// flush tasks); [`WaitGroup::wait`] resolves when the count returns to
/// zero.
pub struct WaitGroup {
    sim: Sim,
    state: Rc<RefCell<WgState>>,
}

impl WaitGroup {
    /// Creates an empty wait group.
    pub fn new(sim: &Sim) -> Self {
        WaitGroup {
            sim: sim.clone(),
            state: Rc::new(RefCell::new(WgState {
                count: 0,
                waiters: Vec::new(),
            })),
        }
    }

    /// Registers one outstanding operation; drop the token to complete it.
    pub fn add(&self) -> WgToken {
        self.state.borrow_mut().count += 1;
        WgToken {
            sim: self.sim.clone(),
            state: Rc::clone(&self.state),
        }
    }

    /// Outstanding operations.
    pub fn count(&self) -> usize {
        self.state.borrow().count
    }

    /// Resolves when no operations are outstanding (immediately if none).
    pub fn wait(&self) -> WgWait {
        WgWait {
            sim: self.sim.clone(),
            state: Rc::clone(&self.state),
            registered: false,
        }
    }
}

impl Clone for WaitGroup {
    fn clone(&self) -> Self {
        WaitGroup {
            sim: self.sim.clone(),
            state: Rc::clone(&self.state),
        }
    }
}

/// Completion token returned by [`WaitGroup::add`].
pub struct WgToken {
    sim: Sim,
    state: Rc<RefCell<WgState>>,
}

impl Drop for WgToken {
    fn drop(&mut self) {
        let waiters = {
            let mut s = self.state.borrow_mut();
            s.count -= 1;
            if s.count == 0 {
                std::mem::take(&mut s.waiters)
            } else {
                Vec::new()
            }
        };
        for t in waiters {
            self.sim.wake(t);
        }
    }
}

/// Future returned by [`WaitGroup::wait`].
pub struct WgWait {
    sim: Sim,
    state: Rc<RefCell<WgState>>,
    registered: bool,
}

impl Future for WgWait {
    type Output = ();

    fn poll(mut self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<()> {
        let mut s = self.state.borrow_mut();
        if s.count == 0 {
            return Poll::Ready(());
        }
        let task = self.sim.current_task();
        if !s.waiters.contains(&task) {
            s.waiters.push(task);
        }
        drop(s);
        self.registered = true;
        Poll::Pending
    }
}

#[cfg(test)]
mod barrier_tests {
    use super::*;
    use std::rc::Rc;

    #[test]
    fn barrier_releases_all_parties_together() {
        let sim = Sim::new();
        let barrier = Barrier::new(&sim, 3);
        let log = Rc::new(RefCell::new(Vec::new()));
        for i in 0..3u64 {
            let b = barrier.clone();
            let s = sim.clone();
            let log = Rc::clone(&log);
            sim.spawn(async move {
                s.sleep(i as f64).await; // staggered arrivals
                let leader = b.wait().await;
                log.borrow_mut().push((s.now_secs(), i, leader));
            });
        }
        sim.run();
        let log = log.borrow();
        // Everyone released at t = 2 s (the last arrival).
        assert!(
            log.iter().all(|&(t, _, _)| (t - 2.0).abs() < 1e-9),
            "{log:?}"
        );
        assert_eq!(log.iter().filter(|&&(_, _, l)| l).count(), 1, "one leader");
    }

    #[test]
    fn barrier_is_reusable_across_generations() {
        let sim = Sim::new();
        let barrier = Barrier::new(&sim, 2);
        let mut handles = Vec::new();
        for i in 0..2u64 {
            let b = barrier.clone();
            let s = sim.clone();
            handles.push(sim.spawn(async move {
                let mut times = Vec::new();
                for round in 0..3u64 {
                    s.sleep((i + round) as f64 * 0.1).await;
                    b.wait().await;
                    times.push(s.now_secs());
                }
                times
            }));
        }
        sim.run();
        let a = handles[0].try_take().unwrap();
        let b = handles[1].try_take().unwrap();
        assert_eq!(a, b, "parties must leave every round together");
    }

    #[test]
    fn waitgroup_waits_for_dynamic_tasks() {
        let sim = Sim::new();
        let wg = WaitGroup::new(&sim);
        let done = Rc::new(RefCell::new(0));
        for i in 0..4u64 {
            let token = wg.add();
            let s = sim.clone();
            let done = Rc::clone(&done);
            sim.spawn(async move {
                s.sleep(i as f64 * 0.5).await;
                *done.borrow_mut() += 1;
                drop(token);
            });
        }
        let wg2 = wg.clone();
        let s = sim.clone();
        let h = sim.spawn(async move {
            wg2.wait().await;
            s.now_secs()
        });
        sim.run();
        assert_eq!(*done.borrow(), 4);
        assert!((h.try_take().unwrap() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn empty_waitgroup_resolves_immediately() {
        let sim = Sim::new();
        let wg = WaitGroup::new(&sim);
        let s = sim.clone();
        let wg2 = wg.clone();
        sim.block_on(async move {
            wg2.wait().await;
            assert_eq!(s.now(), 0);
        });
    }
}
