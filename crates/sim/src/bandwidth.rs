//! Processor-sharing ("fluid flow") bandwidth resources.
//!
//! A [`BwLink`] models a storage channel or interconnect with a fixed
//! capacity in bytes/second. Concurrent transfers share the capacity
//! equally, so the aggregate throughput stays constant while per-transfer
//! latency grows linearly with concurrency — exactly the behaviour the paper
//! measures for NVMe and PFS under concurrent access (Fig. 4).
//!
//! An optional *efficiency curve* `eff(n) ∈ (0, 1]` degrades the usable
//! capacity when `n` transfers are in flight, modelling interleaved-writer
//! penalties on SSDs and PCIe/controller contention: the paper observes
//! DeepSpeed's four uncoordinated workers sustaining ~3.2 GB/s on a
//! 5.3 GB/s NVMe (Fig. 9), which tier-exclusive access recovers (§3.2).

use std::cell::RefCell;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll};

use crate::executor::{Sim, TaskId};
use crate::time::{SimTime, NS_PER_SEC};

/// Residual below which a flow counts as complete (absorbs float slop from
/// the nanosecond-rounded completion events).
const EPS_BYTES: f64 = 1e-3;

struct Flow {
    remaining: f64,
    task: TaskId,
    done: bool,
}

struct LinkState {
    name: String,
    capacity_bps: f64,
    efficiency: Rc<dyn Fn(usize) -> f64>,
    flows: Vec<Option<Flow>>,
    free: Vec<usize>,
    active: usize,
    last_advance: SimTime,
    gen: u64,
    // --- statistics ---
    total_bytes: f64,
    busy_ns: u64,
    ops_completed: u64,
}

impl LinkState {
    fn rate_per_flow(&self) -> f64 {
        debug_assert!(self.active > 0);
        self.capacity_bps * (self.efficiency)(self.active) / self.active as f64
    }

    /// Advances the fluid model to `now`, draining bytes from active flows.
    fn advance(&mut self, now: SimTime) {
        if now <= self.last_advance {
            return;
        }
        let dt = (now - self.last_advance) as f64 / NS_PER_SEC as f64;
        if self.active > 0 {
            let rate = self.rate_per_flow();
            let drained = rate * dt;
            for slot in self.flows.iter_mut().flatten() {
                // Skip flows that already crossed zero but have not been
                // reaped yet (possible between their crossing instant and
                // the completion event): draining them further would add
                // negative deltas to the byte counter.
                if !slot.done && slot.remaining > 0.0 {
                    let d = drained.min(slot.remaining);
                    slot.remaining -= drained;
                    self.total_bytes += d;
                }
            }
            self.busy_ns += now - self.last_advance;
        }
        self.last_advance = now;
    }

    /// Marks every drained flow complete; returns the tasks to wake.
    fn reap(&mut self) -> Vec<TaskId> {
        let mut woken = Vec::new();
        for slot in self.flows.iter_mut().flatten() {
            if !slot.done && slot.remaining <= EPS_BYTES {
                slot.done = true;
                self.active -= 1;
                self.ops_completed += 1;
                woken.push(slot.task);
            }
        }
        woken
    }

    /// Virtual time of the next flow completion, if any flow is active.
    fn next_completion(&self) -> Option<SimTime> {
        if self.active == 0 {
            return None;
        }
        let rate = self.rate_per_flow();
        let min_rem = self
            .flows
            .iter()
            .flatten()
            .filter(|f| !f.done)
            .map(|f| f.remaining)
            .fold(f64::INFINITY, f64::min);
        let dt_ns = (min_rem.max(0.0) / rate * NS_PER_SEC as f64).ceil() as u64;
        // +1 ns guarantees the event lands strictly after the crossing so
        // progress is monotone even under float rounding.
        Some(self.last_advance + dt_ns + 1)
    }
}

/// A shared bandwidth resource. Cheap to clone (all clones share state).
pub struct BwLink {
    sim: Sim,
    state: Rc<RefCell<LinkState>>,
}

impl Clone for BwLink {
    fn clone(&self) -> Self {
        BwLink {
            sim: self.sim.clone(),
            state: Rc::clone(&self.state),
        }
    }
}

impl BwLink {
    /// Creates a link with the given capacity in bytes/second and perfect
    /// sharing (no contention penalty).
    pub fn new(sim: &Sim, name: impl Into<String>, capacity_bps: f64) -> Self {
        assert!(
            capacity_bps > 0.0 && capacity_bps.is_finite(),
            "capacity must be positive"
        );
        BwLink {
            sim: sim.clone(),
            state: Rc::new(RefCell::new(LinkState {
                name: name.into(),
                capacity_bps,
                efficiency: Rc::new(|_| 1.0),
                flows: Vec::new(),
                free: Vec::new(),
                active: 0,
                last_advance: 0,
                gen: 0,
                total_bytes: 0.0,
                busy_ns: 0,
                ops_completed: 0,
            })),
        }
    }

    /// Installs a contention-efficiency curve: with `n` concurrent flows the
    /// usable capacity is `capacity * eff(n)`. `eff(1)` should be `1.0`.
    pub fn with_efficiency(self, eff: impl Fn(usize) -> f64 + 'static) -> Self {
        self.state.borrow_mut().efficiency = Rc::new(eff);
        self
    }

    /// The link's display name.
    pub fn name(&self) -> String {
        self.state.borrow().name.clone()
    }

    /// Nominal capacity in bytes/second.
    pub fn capacity_bps(&self) -> f64 {
        self.state.borrow().capacity_bps
    }

    /// Re-points the capacity (models external load shifts on a shared PFS,
    /// §3.3). Takes effect immediately for in-flight transfers.
    pub fn set_capacity_bps(&self, bps: f64) {
        assert!(bps > 0.0 && bps.is_finite(), "capacity must be positive");
        let now = self.sim.now();
        let mut s = self.state.borrow_mut();
        s.advance(now);
        s.capacity_bps = bps;
        drop(s);
        self.sync_completion_event();
    }

    /// Number of in-flight transfers.
    pub fn active_flows(&self) -> usize {
        self.state.borrow().active
    }

    /// Total bytes delivered so far.
    pub fn total_bytes(&self) -> f64 {
        let now = self.sim.now();
        let mut s = self.state.borrow_mut();
        s.advance(now);
        s.total_bytes
    }

    /// Seconds during which at least one transfer was in flight.
    pub fn busy_seconds(&self) -> f64 {
        let now = self.sim.now();
        let mut s = self.state.borrow_mut();
        s.advance(now);
        s.busy_ns as f64 / NS_PER_SEC as f64
    }

    /// Number of completed transfers.
    pub fn ops_completed(&self) -> u64 {
        self.state.borrow().ops_completed
    }

    /// Starts a transfer of `bytes`; resolves when the fluid model has
    /// delivered them. Zero-byte transfers complete immediately.
    pub fn transfer(&self, bytes: u64) -> Transfer {
        Transfer {
            link: self.clone(),
            bytes,
            slot: None,
            finished: false,
        }
    }

    /// Recomputes and (re)schedules the next completion event. Must be
    /// called after every state change that affects rates or membership.
    fn sync_completion_event(&self) {
        let mut s = self.state.borrow_mut();
        s.gen += 1;
        let gen = s.gen;
        let Some(at) = s.next_completion() else {
            return;
        };
        drop(s);
        let state = Rc::clone(&self.state);
        let link = self.clone();
        self.sim.call_at(at, move |sim| {
            let woken = {
                let mut s = state.borrow_mut();
                if s.gen != gen {
                    return; // stale event: state changed since scheduling
                }
                s.advance(sim.now());
                s.reap()
            };
            for t in &woken {
                sim.wake(*t);
            }
            link.sync_completion_event();
        });
    }
}

/// Future returned by [`BwLink::transfer`].
pub struct Transfer {
    link: BwLink,
    bytes: u64,
    slot: Option<usize>,
    finished: bool,
}

impl Future for Transfer {
    type Output = ();

    fn poll(mut self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<()> {
        let this = &mut *self;
        match this.slot {
            None => {
                if this.bytes == 0 {
                    this.finished = true;
                    return Poll::Ready(());
                }
                let now = this.link.sim.now();
                let task = this.link.sim.current_task();
                {
                    let mut s = this.link.state.borrow_mut();
                    s.advance(now);
                    let woken = s.reap();
                    for t in woken {
                        this.link.sim.wake(t);
                    }
                    let flow = Flow {
                        remaining: this.bytes as f64,
                        task,
                        done: false,
                    };
                    let idx = match s.free.pop() {
                        Some(i) => {
                            s.flows[i] = Some(flow);
                            i
                        }
                        None => {
                            s.flows.push(Some(flow));
                            s.flows.len() - 1
                        }
                    };
                    s.active += 1;
                    this.slot = Some(idx);
                }
                this.link.sync_completion_event();
                Poll::Pending
            }
            Some(idx) => {
                let mut s = this.link.state.borrow_mut();
                let done = s.flows[idx].as_ref().is_some_and(|f| f.done);
                if done {
                    s.flows[idx] = None;
                    s.free.push(idx);
                    drop(s);
                    this.finished = true;
                    Poll::Ready(())
                } else {
                    Poll::Pending
                }
            }
        }
    }
}

impl Drop for Transfer {
    fn drop(&mut self) {
        if self.finished {
            return;
        }
        let Some(idx) = self.slot else { return };
        let now = self.link.sim.now();
        let mut s = self.link.state.borrow_mut();
        s.advance(now);
        if let Some(f) = s.flows[idx].take() {
            if !f.done {
                s.active -= 1;
            }
            s.free.push(idx);
        }
        drop(s);
        self.link.sync_completion_event();
    }
}

/// Standard contention curve used for storage tiers:
/// `eff(n) = 1 / (1 + penalty * (n - 1))`.
///
/// `penalty = 0` gives perfect sharing. The storage crate calibrates
/// `penalty` per tier so that uncoordinated multi-process access reproduces
/// the effective throughputs the paper reports (e.g. ~3.2 GB/s on a
/// 5.3 GB/s NVMe with 4 workers → penalty ≈ 0.22).
pub fn contention_curve(penalty: f64) -> impl Fn(usize) -> f64 {
    move |n| {
        if n <= 1 {
            1.0
        } else {
            1.0 / (1.0 + penalty * (n as f64 - 1.0))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::to_secs;

    fn approx(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "expected {b} ± {tol}, got {a}");
    }

    #[test]
    fn single_flow_takes_bytes_over_capacity() {
        let sim = Sim::new();
        let link = BwLink::new(&sim, "nvme", 1e9); // 1 GB/s
        let l = link.clone();
        let s = sim.clone();
        let t = sim.block_on(async move {
            l.transfer(2_000_000_000).await; // 2 GB
            s.now()
        });
        approx(to_secs(t), 2.0, 1e-6);
        assert_eq!(link.ops_completed(), 1);
    }

    #[test]
    fn two_equal_flows_share_fairly() {
        let sim = Sim::new();
        let link = BwLink::new(&sim, "nvme", 100.0);
        let mut ends = Vec::new();
        for _ in 0..2 {
            let l = link.clone();
            let s = sim.clone();
            ends.push(sim.spawn(async move {
                l.transfer(100).await;
                s.now()
            }));
        }
        sim.run();
        for h in ends {
            // 200 bytes total over 100 B/s aggregate → both end at ~2 s.
            approx(to_secs(h.try_take().unwrap()), 2.0, 1e-6);
        }
    }

    #[test]
    fn staggered_flows_follow_piecewise_rates() {
        let sim = Sim::new();
        let link = BwLink::new(&sim, "nvme", 100.0);
        let a = sim.spawn({
            let l = link.clone();
            let s = sim.clone();
            async move {
                l.transfer(100).await;
                s.now()
            }
        });
        let b = sim.spawn({
            let l = link.clone();
            let s = sim.clone();
            async move {
                s.sleep(0.5).await;
                l.transfer(100).await;
                s.now()
            }
        });
        sim.run();
        // A: alone 0–0.5 s (50 B), then shared at 50 B/s → done at 1.5 s.
        approx(to_secs(a.try_take().unwrap()), 1.5, 1e-6);
        // B: shared 0.5–1.5 s (50 B), then alone → done at 2.0 s.
        approx(to_secs(b.try_take().unwrap()), 2.0, 1e-6);
    }

    #[test]
    fn efficiency_curve_degrades_aggregate() {
        let sim = Sim::new();
        let link =
            BwLink::new(&sim, "ssd", 100.0).with_efficiency(|n| if n > 1 { 0.5 } else { 1.0 });
        let mut ends = Vec::new();
        for _ in 0..2 {
            let l = link.clone();
            let s = sim.clone();
            ends.push(sim.spawn(async move {
                l.transfer(100).await;
                s.now()
            }));
        }
        sim.run();
        for h in ends {
            // Aggregate halved to 50 B/s → 200 bytes take 4 s.
            approx(to_secs(h.try_take().unwrap()), 4.0, 1e-6);
        }
    }

    #[test]
    fn aggregate_throughput_constant_latency_grows() {
        // The Fig. 4 property: total time for N concurrent equal transfers
        // scales with N (per-op latency), while delivered bytes/total time
        // (aggregate throughput) stays flat.
        for n in [1usize, 2, 4, 8] {
            let sim = Sim::new();
            let link = BwLink::new(&sim, "nvme", 1000.0);
            for _ in 0..n {
                let l = link.clone();
                sim.spawn(async move { l.transfer(1000).await });
            }
            let end = {
                sim.run();
                sim.now_secs()
            };
            approx(end, n as f64, 1e-6);
            approx(link.total_bytes() / end, 1000.0, 1e-3);
        }
    }

    #[test]
    fn zero_byte_transfer_is_instant() {
        let sim = Sim::new();
        let link = BwLink::new(&sim, "x", 10.0);
        let l = link.clone();
        let s = sim.clone();
        sim.block_on(async move {
            l.transfer(0).await;
            assert_eq!(s.now(), 0);
        });
    }

    #[test]
    fn cancelled_transfer_frees_bandwidth() {
        let sim = Sim::new();
        let link = BwLink::new(&sim, "x", 100.0);
        let a = sim.spawn({
            let l = link.clone();
            let s = sim.clone();
            async move {
                l.transfer(100).await;
                s.now()
            }
        });
        // B starts a transfer then abandons it at t = 0.5 s.
        sim.spawn({
            let l = link.clone();
            let s = sim.clone();
            async move {
                let mut t = std::pin::pin!(l.transfer(1_000_000));
                std::future::poll_fn(|cx| {
                    assert!(t.as_mut().poll(cx).is_pending());
                    std::task::Poll::Ready(())
                })
                .await;
                s.sleep(0.5).await;
                // Dropping the pinned transfer cancels it.
            }
        });
        sim.run();
        // A shared 0–0.5 s (25 B), then alone: 75 B at 100 B/s → 1.25 s.
        approx(to_secs(a.try_take().unwrap()), 1.25, 1e-6);
        assert_eq!(link.active_flows(), 0);
    }

    #[test]
    fn capacity_change_mid_flight_applies() {
        let sim = Sim::new();
        let link = BwLink::new(&sim, "pfs", 100.0);
        let a = sim.spawn({
            let l = link.clone();
            let s = sim.clone();
            async move {
                l.transfer(100).await;
                s.now()
            }
        });
        sim.spawn({
            let l = link.clone();
            let s = sim.clone();
            async move {
                s.sleep(0.5).await;
                l.set_capacity_bps(50.0); // external load halves the PFS
            }
        });
        sim.run();
        // 50 B at 100 B/s, then 50 B at 50 B/s → 0.5 + 1.0 = 1.5 s.
        approx(to_secs(a.try_take().unwrap()), 1.5, 1e-6);
    }

    #[test]
    fn contention_curve_matches_formula() {
        let c = contention_curve(0.25);
        approx(c(1), 1.0, 1e-12);
        approx(c(2), 1.0 / 1.25, 1e-12);
        approx(c(5), 1.0 / 2.0, 1e-12);
        let perfect = contention_curve(0.0);
        approx(perfect(8), 1.0, 1e-12);
    }

    #[test]
    fn busy_time_excludes_idle_gaps() {
        let sim = Sim::new();
        let link = BwLink::new(&sim, "x", 100.0);
        let l = link.clone();
        let s = sim.clone();
        sim.block_on(async move {
            l.transfer(100).await; // 1 s busy
            s.sleep(3.0).await; // idle
            l.transfer(100).await; // 1 s busy
        });
        approx(link.busy_seconds(), 2.0, 1e-6);
        approx(link.total_bytes(), 200.0, 1e-3);
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn bytes_are_conserved_under_arbitrary_flows(
            sizes in proptest::collection::vec(1u64..5_000, 1..12),
            starts in proptest::collection::vec(0u64..3_000_000_000, 1..12),
            capacity in 100.0f64..10_000.0,
        ) {
            let sim = Sim::new();
            let link = BwLink::new(&sim, "prop", capacity);
            let n = sizes.len().min(starts.len());
            let mut handles = Vec::new();
            for i in 0..n {
                let l = link.clone();
                let s = sim.clone();
                let bytes = sizes[i];
                let at = starts[i];
                handles.push(sim.spawn(async move {
                    s.sleep_ns(at).await;
                    let t0 = s.now_secs();
                    l.transfer(bytes).await;
                    (bytes, s.now_secs() - t0)
                }));
            }
            sim.run();
            let mut total = 0u64;
            for h in handles {
                let (bytes, secs) = h.try_take().expect("flow completed");
                total += bytes;
                // No flow finishes faster than the full link allows.
                prop_assert!(
                    secs + 1e-9 >= bytes as f64 / capacity,
                    "{bytes} B in {secs}s at {capacity} B/s"
                );
            }
            // Fluid accounting delivers every byte exactly once.
            let delivered = link.total_bytes();
            prop_assert!(
                (delivered - total as f64).abs() < 1.0,
                "delivered {delivered} of {total}"
            );
            prop_assert_eq!(link.active_flows(), 0);
            prop_assert_eq!(link.ops_completed(), n as u64);
        }
    }
}
