//! Future combinators for simulated tasks: racing and timeouts.
//!
//! The executor re-polls a task whenever *any* condition it registered
//! fires, so racing two futures needs no waker plumbing: poll both, first
//! `Ready` wins, the loser is dropped (every primitive in this crate is
//! cancel-safe).

use std::future::Future;
use std::pin::Pin;
use std::task::{Context, Poll};

use crate::executor::Sim;
use crate::time::SimTime;

/// Result of [`race`].
#[derive(Debug, PartialEq, Eq)]
pub enum Either<A, B> {
    /// The first future finished first (ties go to the first).
    Left(A),
    /// The second future finished first.
    Right(B),
}

/// Future returned by [`race`].
pub struct Race<A, B> {
    a: A,
    b: B,
}

/// Races two futures; resolves with the first to complete (the other is
/// dropped, releasing any queue positions or permits it held). Futures
/// must be `Unpin` — wrap `async` blocks in `Box::pin`.
pub fn race<A, B>(a: A, b: B) -> Race<A, B>
where
    A: Future + Unpin,
    B: Future + Unpin,
{
    Race { a, b }
}

impl<A, B> Future for Race<A, B>
where
    A: Future + Unpin,
    B: Future + Unpin,
{
    type Output = Either<A::Output, B::Output>;

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        if let Poll::Ready(v) = Pin::new(&mut self.a).poll(cx) {
            return Poll::Ready(Either::Left(v));
        }
        if let Poll::Ready(v) = Pin::new(&mut self.b).poll(cx) {
            return Poll::Ready(Either::Right(v));
        }
        Poll::Pending
    }
}

/// Runs `fut` with a virtual-time deadline: `Some(output)` if it finishes
/// within `dur` nanoseconds, `None` if the timer fires first (the future
/// is dropped/cancelled).
pub async fn timeout_ns<F>(sim: &Sim, dur: SimTime, fut: F) -> Option<F::Output>
where
    F: Future + Unpin,
{
    match race(fut, sim.sleep_ns(dur)).await {
        Either::Left(v) => Some(v),
        Either::Right(()) => None,
    }
}

/// [`timeout_ns`] with the deadline in seconds.
pub async fn timeout<F>(sim: &Sim, secs: f64, fut: F) -> Option<F::Output>
where
    F: Future + Unpin,
{
    timeout_ns(sim, crate::time::secs(secs), fut).await
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bandwidth::BwLink;
    use crate::sync::SimMutex;
    use crate::time::secs;

    #[test]
    fn race_picks_the_earlier_future() {
        let sim = Sim::new();
        let s = sim.clone();
        let out = sim.block_on(async move {
            let fast = s.sleep(1.0);
            let slow = s.sleep(5.0);
            let r = race(
                Box::pin(async move {
                    fast.await;
                    "fast"
                }),
                Box::pin(async move {
                    slow.await;
                    "slow"
                }),
            )
            .await;
            (r, s.now())
        });
        assert_eq!(out.0, Either::Left("fast"));
        // The loser was dropped: time stops at the winner.
        assert_eq!(out.1, secs(1.0));
    }

    #[test]
    fn timeout_returns_none_when_deadline_hits() {
        let sim = Sim::new();
        let link = BwLink::new(&sim, "slow", 10.0);
        let s = sim.clone();
        let out = sim.block_on(async move {
            // 1000 bytes at 10 B/s = 100 s ≫ the 2 s deadline.
            let r = timeout(&s.clone(), 2.0, Box::pin(link.transfer(1000))).await;
            (r.is_none(), s.now(), link.active_flows())
        });
        assert!(out.0, "must time out");
        assert_eq!(out.1, secs(2.0));
        // The abandoned transfer was cancelled, not leaked.
        assert_eq!(out.2, 0);
    }

    #[test]
    fn timeout_returns_some_when_work_finishes() {
        let sim = Sim::new();
        let s = sim.clone();
        let out = sim.block_on(async move {
            let d = s.sleep(0.5);
            timeout(&s.clone(), 2.0, d).await
        });
        assert_eq!(out, Some(()));
        assert_eq!(sim.now(), secs(0.5));
    }

    #[test]
    fn cancelled_lock_waiter_leaves_the_queue() {
        let sim = Sim::new();
        let m = SimMutex::new(&sim);
        let m2 = m.clone();
        let s = sim.clone();
        sim.block_on(async move {
            let g = m2.try_lock().unwrap();
            // A waiter that gives up after 1 s.
            let waited = timeout(&s.clone(), 1.0, m2.lock()).await;
            assert!(waited.is_none());
            assert_eq!(m2.waiters(), 0, "cancelled waiter must dequeue");
            drop(g);
            let _g2 = m2.lock().await; // still acquirable
        });
    }

    #[test]
    fn simultaneous_completion_prefers_left() {
        let sim = Sim::new();
        let s = sim.clone();
        let out = sim.block_on(async move { race(s.sleep(1.0), s.sleep(1.0)).await });
        assert_eq!(out, Either::Left(()));
    }
}
