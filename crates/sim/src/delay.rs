//! Virtual-time timer future.

use std::future::Future;
use std::pin::Pin;
use std::task::{Context, Poll};

use crate::executor::Sim;
use crate::time::SimTime;

/// Future that completes once the simulation clock reaches its deadline.
/// Created by [`Sim::sleep`] / [`Sim::sleep_ns`].
pub struct Delay {
    sim: Sim,
    deadline: SimTime,
    /// Sequence number of the scheduled wake, while registered.
    pending: Option<u64>,
}

impl Delay {
    pub(crate) fn new(sim: Sim, deadline: SimTime) -> Self {
        Delay {
            sim,
            deadline,
            pending: None,
        }
    }

    /// Absolute virtual time at which this delay fires.
    pub fn deadline(&self) -> SimTime {
        self.deadline
    }
}

impl Future for Delay {
    type Output = ();

    fn poll(mut self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<()> {
        if self.sim.now() >= self.deadline {
            self.pending = None; // the wake (if any) was consumed
            return Poll::Ready(());
        }
        if self.pending.is_none() {
            let task = self.sim.current_task();
            self.pending = Some(self.sim.wake_at(self.deadline, task));
        }
        Poll::Pending
    }
}

impl Drop for Delay {
    fn drop(&mut self) {
        if let Some(seq) = self.pending {
            // Cancelled before firing: tombstone the heap entry so the
            // clock does not advance to a dead deadline.
            self.sim.cancel_wake(seq);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::secs;

    #[test]
    fn deadline_is_absolute() {
        let sim = Sim::new();
        let s = sim.clone();
        sim.block_on(async move {
            s.sleep(1.0).await;
            let d = s.sleep(2.0);
            assert_eq!(d.deadline(), secs(3.0));
            d.await;
            assert_eq!(s.now(), secs(3.0));
        });
    }

    #[test]
    fn already_elapsed_deadline_is_ready() {
        let sim = Sim::new();
        let s = sim.clone();
        sim.block_on(async move {
            s.sleep(5.0).await;
            // Deadline in the past: completes without advancing time.
            Delay::new(s.clone(), secs(1.0)).await;
            assert_eq!(s.now(), secs(5.0));
        });
    }
}
