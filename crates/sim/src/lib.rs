#![warn(missing_docs)]
#![deny(unsafe_code)]

//! Deterministic discrete-event simulation (DES) kernel with an async/await
//! process model.
//!
//! The offloading engines in this workspace are written as ordinary `async`
//! code (`tier.read(sub).await`, `lock.lock().await`, ...). In *simulated
//! mode* those futures run on the single-threaded executor provided here: a
//! virtual clock advances instantly between events, so an iteration that
//! takes minutes of "paper time" simulates in microseconds, and every run is
//! bit-for-bit deterministic.
//!
//! The kernel provides:
//!
//! * [`Sim`] — the executor handle: [`Sim::spawn`], [`Sim::run`],
//!   [`Sim::block_on`], and the virtual clock ([`Sim::now`]).
//! * [`Delay`] (via [`Sim::sleep`] / [`Sim::sleep_ns`]) — virtual-time timers.
//! * [`sync::SimMutex`], [`sync::Semaphore`], [`sync::Notify`] — FIFO
//!   cooperative synchronization primitives used for tier-exclusive locks and
//!   bounded host-buffer slots.
//! * [`channel`] — unbounded FIFO channels between simulated processes.
//! * [`bandwidth::BwLink`] — a processor-sharing ("fluid flow") bandwidth
//!   resource modelling a storage channel or interconnect: aggregate
//!   throughput is conserved while per-flow latency grows with concurrency,
//!   optionally degraded by a contention-efficiency curve.
//!
//! # Example
//!
//! ```
//! use mlp_sim::{Sim, time::secs};
//!
//! let sim = Sim::new();
//! let handle = sim.spawn({
//!     let sim = sim.clone();
//!     async move {
//!         sim.sleep_ns(secs(1.5)).await;
//!         sim.now()
//!     }
//! });
//! let end = sim.block_on(handle);
//! assert_eq!(end, secs(1.5));
//! ```

pub mod bandwidth;
pub mod channel;
pub mod combinators;
mod delay;
mod executor;
pub mod sync;
pub mod time;
pub mod trace;

pub use combinators::{race, timeout, Either};
pub use delay::Delay;
pub use executor::{JoinHandle, Sim, TaskId};
pub use time::SimTime;
