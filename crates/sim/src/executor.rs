//! The single-threaded deterministic executor.
//!
//! Tasks are plain `Future<Output = ()>` values stored in a slab. The event
//! heap orders pending events by `(time, sequence)`, so simultaneous events
//! fire in the order they were scheduled and every run is reproducible.
//! Futures never see a real [`std::task::Waker`]: blocking primitives
//! register the *currently running task id* with the scheduler and the
//! scheduler re-polls that task when the condition fires. Spurious re-polls
//! are allowed, so all futures in this crate keep their poll methods
//! idempotent.

use std::cell::RefCell;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet, VecDeque};
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll, Waker};

use crate::time::SimTime;

/// Identifier of a spawned task (slab index).
pub type TaskId = usize;

type BoxedFuture = Pin<Box<dyn Future<Output = ()>>>;
type BoxedCall = Box<dyn FnOnce(&Sim)>;

enum Slot {
    /// Slot free for reuse.
    Empty,
    /// Task currently being polled (future temporarily moved out).
    Polling,
    /// Task parked, waiting for a wake.
    Parked(BoxedFuture),
}

enum Action {
    /// Re-poll the given task.
    Wake(TaskId),
    /// Invoke an arbitrary callback at the scheduled time (used by
    /// resources such as [`crate::bandwidth::BwLink`] for completion events).
    Call(BoxedCall),
}

struct HeapEntry {
    time: SimTime,
    seq: u64,
    action: Action,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

struct Inner {
    now: SimTime,
    seq: u64,
    heap: BinaryHeap<HeapEntry>,
    /// Sequence numbers of cancelled timers: their heap entries are
    /// skipped without advancing the clock (a dropped `Delay` must not
    /// hold virtual time hostage).
    cancelled: HashSet<u64>,
    ready: VecDeque<TaskId>,
    tasks: Vec<Slot>,
    free: Vec<TaskId>,
    current: Option<TaskId>,
    live: usize,
}

/// Handle to the simulation executor. Cheap to clone; all clones share the
/// same virtual clock and task set.
pub struct Sim {
    inner: Rc<RefCell<Inner>>,
}

impl Clone for Sim {
    fn clone(&self) -> Self {
        Sim {
            inner: Rc::clone(&self.inner),
        }
    }
}

impl Default for Sim {
    fn default() -> Self {
        Self::new()
    }
}

impl Sim {
    /// Creates an empty simulation with the clock at zero.
    pub fn new() -> Self {
        Sim {
            inner: Rc::new(RefCell::new(Inner {
                now: 0,
                seq: 0,
                heap: BinaryHeap::new(),
                cancelled: HashSet::new(),
                ready: VecDeque::new(),
                tasks: Vec::new(),
                free: Vec::new(),
                current: None,
                live: 0,
            })),
        }
    }

    /// Current virtual time in nanoseconds.
    pub fn now(&self) -> SimTime {
        self.inner.borrow().now
    }

    /// Current virtual time in seconds (for reporting).
    pub fn now_secs(&self) -> f64 {
        crate::time::to_secs(self.now())
    }

    /// Number of tasks that have been spawned but not yet completed.
    pub fn live_tasks(&self) -> usize {
        self.inner.borrow().live
    }

    /// Spawns a task and returns a [`JoinHandle`] that resolves to its
    /// output. The task starts running on the next scheduler dispatch.
    pub fn spawn<T, F>(&self, fut: F) -> JoinHandle<T>
    where
        T: 'static,
        F: Future<Output = T> + 'static,
    {
        let state = Rc::new(RefCell::new(JoinState {
            result: None,
            waiters: Vec::new(),
        }));
        let wrapped = {
            let state = Rc::clone(&state);
            let sim = self.clone();
            async move {
                let out = fut.await;
                let waiters = {
                    let mut s = state.borrow_mut();
                    s.result = Some(out);
                    std::mem::take(&mut s.waiters)
                };
                for t in waiters {
                    sim.wake(t);
                }
            }
        };
        let id = {
            let mut inner = self.inner.borrow_mut();
            let id = match inner.free.pop() {
                Some(id) => {
                    inner.tasks[id] = Slot::Parked(Box::pin(wrapped));
                    id
                }
                None => {
                    inner.tasks.push(Slot::Parked(Box::pin(wrapped)));
                    inner.tasks.len() - 1
                }
            };
            inner.live += 1;
            inner.ready.push_back(id);
            id
        };
        let _ = id;
        JoinHandle { state }
    }

    /// Id of the task currently being polled.
    ///
    /// # Panics
    ///
    /// Panics when called from outside a task (blocking primitives may only
    /// be awaited inside spawned tasks).
    pub fn current_task(&self) -> TaskId {
        self.inner
            .borrow()
            .current
            .expect("sim primitive awaited outside of a spawned task")
    }

    /// Marks a task runnable immediately.
    pub(crate) fn wake(&self, task: TaskId) {
        self.inner.borrow_mut().ready.push_back(task);
    }

    /// Schedules a wake for `task` at absolute time `at`; returns the
    /// event's sequence number for cancellation.
    pub(crate) fn wake_at(&self, at: SimTime, task: TaskId) -> u64 {
        let mut inner = self.inner.borrow_mut();
        let seq = inner.seq;
        inner.seq += 1;
        let time = at.max(inner.now);
        inner.heap.push(HeapEntry {
            time,
            seq,
            action: Action::Wake(task),
        });
        seq
    }

    /// Tombstones a scheduled wake so it neither fires nor advances the
    /// clock.
    pub(crate) fn cancel_wake(&self, seq: u64) {
        self.inner.borrow_mut().cancelled.insert(seq);
    }

    /// Schedules an arbitrary callback at absolute time `at`. Used by shared
    /// resources to implement completion events.
    pub fn call_at(&self, at: SimTime, f: impl FnOnce(&Sim) + 'static) {
        let mut inner = self.inner.borrow_mut();
        let seq = inner.seq;
        inner.seq += 1;
        let time = at.max(inner.now);
        inner.heap.push(HeapEntry {
            time,
            seq,
            action: Action::Call(Box::new(f)),
        });
    }

    /// Returns a future that completes `dur` nanoseconds of virtual time
    /// from now.
    pub fn sleep_ns(&self, dur: SimTime) -> crate::Delay {
        crate::Delay::new(self.clone(), self.now().saturating_add(dur))
    }

    /// Returns a future that completes `secs` seconds of virtual time from
    /// now.
    pub fn sleep(&self, secs: f64) -> crate::Delay {
        self.sleep_ns(crate::time::secs(secs))
    }

    /// Runs the simulation until no runnable task or pending event remains.
    /// Returns the final virtual time.
    ///
    /// Tasks still alive afterwards (see [`Sim::live_tasks`]) are deadlocked:
    /// they wait on conditions nothing can trigger.
    pub fn run(&self) -> SimTime {
        loop {
            self.drain_ready();
            let entry = { self.inner.borrow_mut().heap.pop() };
            let Some(entry) = entry else { break };
            {
                let mut inner = self.inner.borrow_mut();
                if inner.cancelled.remove(&entry.seq) {
                    continue; // tombstoned timer: skip without advancing
                }
                debug_assert!(entry.time >= inner.now, "time went backwards");
                inner.now = entry.time;
            }
            match entry.action {
                Action::Wake(t) => self.wake(t),
                Action::Call(f) => f(self),
            }
        }
        self.now()
    }

    /// Spawns `fut`, runs the simulation to quiescence, and returns the
    /// future's output.
    ///
    /// # Panics
    ///
    /// Panics if the future did not complete (i.e. it deadlocked on a
    /// condition nothing triggered).
    pub fn block_on<T: 'static>(&self, fut: impl Future<Output = T> + 'static) -> T {
        let handle = self.spawn(fut);
        self.run();
        handle
            .try_take()
            .expect("block_on: future never completed (simulation deadlock)")
    }

    fn drain_ready(&self) {
        loop {
            let id = {
                let mut inner = self.inner.borrow_mut();
                match inner.ready.pop_front() {
                    Some(id) => id,
                    None => return,
                }
            };
            let mut fut = {
                let mut inner = self.inner.borrow_mut();
                match std::mem::replace(&mut inner.tasks[id], Slot::Polling) {
                    Slot::Parked(fut) => {
                        inner.current = Some(id);
                        fut
                    }
                    // Task already finished (duplicate wake) or being polled.
                    other => {
                        inner.tasks[id] = other;
                        continue;
                    }
                }
            };
            let poll = self.poll_task(&mut fut);
            let mut inner = self.inner.borrow_mut();
            inner.current = None;
            match poll {
                Poll::Ready(()) => {
                    inner.tasks[id] = Slot::Empty;
                    inner.free.push(id);
                    inner.live -= 1;
                }
                Poll::Pending => {
                    inner.tasks[id] = Slot::Parked(fut);
                }
            }
        }
    }
}

struct JoinState<T> {
    result: Option<T>,
    waiters: Vec<TaskId>,
}

/// Future resolving to the output of a spawned task. Can also be queried
/// synchronously after [`Sim::run`] via [`JoinHandle::try_take`].
pub struct JoinHandle<T> {
    state: Rc<RefCell<JoinState<T>>>,
}

impl<T> JoinHandle<T> {
    /// Takes the task's result if it has completed.
    pub fn try_take(&self) -> Option<T> {
        self.state.borrow_mut().result.take()
    }

    /// Whether the task has completed (result may already be taken).
    pub fn is_done(&self) -> bool {
        // A waiter list left non-empty after completion is impossible: the
        // completion wrapper drains it.
        self.state.borrow().result.is_some()
    }
}

impl<T: 'static> Future for JoinHandle<T> {
    type Output = T;

    fn poll(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<T> {
        let mut s = self.state.borrow_mut();
        if let Some(out) = s.result.take() {
            return Poll::Ready(out);
        }
        // Register interest; the spawn wrapper wakes all waiters on
        // completion. Registering on every poll may duplicate the id, which
        // is harmless (spurious re-polls are allowed).
        drop(s);
        let task = CURRENT_SIM.with(|c| {
            c.borrow()
                .as_ref()
                .expect("JoinHandle awaited outside a Sim task")
                .current_task()
        });
        self.state.borrow_mut().waiters.push(task);
        Poll::Pending
    }
}

thread_local! {
    /// The executor installs itself here while polling so that futures that
    /// only hold task-shared state (like [`JoinHandle`]) can find the
    /// scheduler. Primitives constructed from a [`Sim`] handle don't need it.
    static CURRENT_SIM: RefCell<Option<Sim>> = const { RefCell::new(None) };
}

impl Sim {
    /// Installs this executor as the thread's current one for the duration
    /// of `f`. Called internally around task polls.
    fn with_installed<R>(&self, f: impl FnOnce() -> R) -> R {
        CURRENT_SIM.with(|c| *c.borrow_mut() = Some(self.clone()));
        let out = f();
        CURRENT_SIM.with(|c| *c.borrow_mut() = None);
        out
    }
}

// NOTE: drain_ready must install the executor so JoinHandle::poll can find
// it. We wrap the poll call here rather than duplicating logic above.
// (Separated to keep the borrow scopes in drain_ready readable.)
impl Sim {
    pub(crate) fn poll_task(&self, fut: &mut BoxedFuture) -> Poll<()> {
        self.with_installed(|| {
            let waker = Waker::noop();
            let mut cx = Context::from_waker(waker);
            fut.as_mut().poll(&mut cx)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::secs;

    #[test]
    fn clock_starts_at_zero() {
        let sim = Sim::new();
        assert_eq!(sim.now(), 0);
        assert_eq!(sim.live_tasks(), 0);
    }

    #[test]
    fn block_on_returns_value() {
        let sim = Sim::new();
        let v = sim.block_on(async { 41 + 1 });
        assert_eq!(v, 42);
    }

    #[test]
    fn sleep_advances_virtual_clock() {
        let sim = Sim::new();
        let s2 = sim.clone();
        let t = sim.block_on(async move {
            s2.sleep(2.5).await;
            s2.now()
        });
        assert_eq!(t, secs(2.5));
        assert_eq!(sim.now(), secs(2.5));
    }

    #[test]
    fn sequential_sleeps_accumulate() {
        let sim = Sim::new();
        let s2 = sim.clone();
        let t = sim.block_on(async move {
            s2.sleep(1.0).await;
            s2.sleep(2.0).await;
            s2.now()
        });
        assert_eq!(t, secs(3.0));
    }

    #[test]
    fn concurrent_tasks_overlap_in_virtual_time() {
        let sim = Sim::new();
        let a = sim.spawn({
            let s = sim.clone();
            async move {
                s.sleep(5.0).await;
                s.now()
            }
        });
        let b = sim.spawn({
            let s = sim.clone();
            async move {
                s.sleep(3.0).await;
                s.now()
            }
        });
        sim.run();
        assert_eq!(a.try_take().unwrap(), secs(5.0));
        assert_eq!(b.try_take().unwrap(), secs(3.0));
        // Overlapping, not serialized: total time is the max, not the sum.
        assert_eq!(sim.now(), secs(5.0));
    }

    #[test]
    fn join_handle_awaits_child() {
        let sim = Sim::new();
        let s = sim.clone();
        let total = sim.block_on(async move {
            let child = s.spawn({
                let s = s.clone();
                async move {
                    s.sleep(1.0).await;
                    7u32
                }
            });
            let v = child.await;
            v + 1
        });
        assert_eq!(total, 8);
        assert_eq!(sim.now(), secs(1.0));
    }

    #[test]
    fn simultaneous_events_fire_in_spawn_order() {
        let sim = Sim::new();
        let log = Rc::new(RefCell::new(Vec::new()));
        for i in 0..4 {
            let s = sim.clone();
            let log = Rc::clone(&log);
            sim.spawn(async move {
                s.sleep(1.0).await;
                log.borrow_mut().push(i);
            });
        }
        sim.run();
        assert_eq!(*log.borrow(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn deadlocked_tasks_are_reported_as_live() {
        let sim = Sim::new();
        let never = sim.spawn(std::future::pending::<()>());
        sim.run();
        assert_eq!(sim.live_tasks(), 1);
        assert!(!never.is_done());
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn block_on_panics_on_deadlock() {
        let sim = Sim::new();
        sim.block_on(std::future::pending::<()>());
    }

    #[test]
    fn zero_length_sleep_completes() {
        let sim = Sim::new();
        let s = sim.clone();
        sim.block_on(async move {
            s.sleep(0.0).await;
        });
    }

    #[test]
    fn determinism_two_runs_identical() {
        fn run_once() -> Vec<(u64, usize)> {
            let sim = Sim::new();
            let log = Rc::new(RefCell::new(Vec::new()));
            for i in 0..8 {
                let s = sim.clone();
                let log = Rc::clone(&log);
                sim.spawn(async move {
                    s.sleep(((i * 7) % 5) as f64 * 0.25).await;
                    log.borrow_mut().push((s.now(), i));
                    s.sleep(0.1 * i as f64).await;
                    log.borrow_mut().push((s.now(), i));
                });
            }
            sim.run();
            let out = log.borrow().clone();
            out
        }
        assert_eq!(run_once(), run_once());
    }

    #[test]
    fn call_at_fires_in_time_order() {
        let sim = Sim::new();
        let log = Rc::new(RefCell::new(Vec::new()));
        for (i, t) in [3.0, 1.0, 2.0].iter().enumerate() {
            let log = Rc::clone(&log);
            sim.call_at(secs(*t), move |s| log.borrow_mut().push((s.now(), i)));
        }
        sim.run();
        assert_eq!(
            *log.borrow(),
            vec![(secs(1.0), 1), (secs(2.0), 2), (secs(3.0), 0)]
        );
    }
}
