//! Virtual-time representation and conversion helpers.
//!
//! Simulated time is a monotonically non-decreasing count of nanoseconds
//! since the start of the simulation. Integer nanoseconds keep event ordering
//! exact and runs reproducible; conversions to floating-point seconds are
//! provided for reporting and for the fluid-flow bandwidth math.

/// Simulated time in nanoseconds since the simulation epoch.
pub type SimTime = u64;

/// Nanoseconds per second.
pub const NS_PER_SEC: u64 = 1_000_000_000;

/// Converts seconds (may be fractional) to a [`SimTime`] duration.
///
/// Negative or non-finite inputs saturate to zero; durations are clamped to
/// `u64::MAX` nanoseconds (~584 years of simulated time).
#[inline]
pub fn secs(s: f64) -> SimTime {
    if s.is_nan() || s <= 0.0 {
        return 0;
    }
    let ns = s * NS_PER_SEC as f64;
    if ns >= u64::MAX as f64 {
        u64::MAX
    } else {
        ns as u64
    }
}

/// Converts milliseconds to a [`SimTime`] duration.
#[inline]
pub fn millis(ms: f64) -> SimTime {
    secs(ms * 1e-3)
}

/// Converts microseconds to a [`SimTime`] duration.
#[inline]
pub fn micros(us: f64) -> SimTime {
    secs(us * 1e-6)
}

/// Converts a [`SimTime`] to floating-point seconds.
#[inline]
pub fn to_secs(t: SimTime) -> f64 {
    t as f64 / NS_PER_SEC as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn secs_round_trips_whole_seconds() {
        assert_eq!(secs(1.0), NS_PER_SEC);
        assert_eq!(secs(2.5), 2_500_000_000);
        assert_eq!(to_secs(secs(3.25)), 3.25);
    }

    #[test]
    fn secs_saturates_on_garbage() {
        assert_eq!(secs(-1.0), 0);
        assert_eq!(secs(f64::NAN), 0);
        assert_eq!(secs(f64::INFINITY), u64::MAX);
    }

    #[test]
    fn sub_second_units() {
        assert_eq!(millis(1.0), 1_000_000);
        assert_eq!(micros(1.0), 1_000);
    }
}
