//! Lightweight virtual-time event tracing.
//!
//! A [`Tracer`] collects `(time, label)` samples from inside simulated
//! tasks — handy when debugging pipeline schedules ("when did worker 2
//! start flushing subgroup 17?") or asserting ordering properties in
//! tests without threading state through every future.

use std::cell::RefCell;
use std::rc::Rc;

use crate::executor::Sim;
use crate::time::SimTime;

/// One trace sample.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Virtual time of the sample, nanoseconds.
    pub at: SimTime,
    /// Free-form label.
    pub label: String,
}

/// A shared, ordered event log. Cheap to clone.
pub struct Tracer {
    sim: Sim,
    events: Rc<RefCell<Vec<TraceEvent>>>,
}

impl Clone for Tracer {
    fn clone(&self) -> Self {
        Tracer {
            sim: self.sim.clone(),
            events: Rc::clone(&self.events),
        }
    }
}

impl Tracer {
    /// Creates an empty tracer bound to `sim`'s clock.
    pub fn new(sim: &Sim) -> Self {
        Tracer {
            sim: sim.clone(),
            events: Rc::new(RefCell::new(Vec::new())),
        }
    }

    /// Records `label` at the current virtual time.
    pub fn record(&self, label: impl Into<String>) {
        self.events.borrow_mut().push(TraceEvent {
            at: self.sim.now(),
            label: label.into(),
        });
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.borrow().len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.borrow().is_empty()
    }

    /// Snapshot of all events in record order (which is also time order:
    /// the virtual clock never goes backwards).
    pub fn events(&self) -> Vec<TraceEvent> {
        self.events.borrow().clone()
    }

    /// Times of every event whose label satisfies `pred`.
    pub fn times_where(&self, pred: impl Fn(&str) -> bool) -> Vec<SimTime> {
        self.events
            .borrow()
            .iter()
            .filter(|e| pred(&e.label))
            .map(|e| e.at)
            .collect()
    }

    /// Drops all recorded events.
    pub fn clear(&self) {
        self.events.borrow_mut().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::secs;

    #[test]
    fn events_carry_virtual_timestamps_in_order() {
        let sim = Sim::new();
        let tracer = Tracer::new(&sim);
        for i in 0..3u64 {
            let t = tracer.clone();
            let s = sim.clone();
            sim.spawn(async move {
                s.sleep(i as f64).await;
                t.record(format!("task{i}:start"));
                s.sleep(0.5).await;
                t.record(format!("task{i}:end"));
            });
        }
        sim.run();
        let events = tracer.events();
        assert_eq!(events.len(), 6);
        // Record order is time order.
        for w in events.windows(2) {
            assert!(w[0].at <= w[1].at);
        }
        assert_eq!(
            tracer.times_where(|l| l.ends_with("start")),
            vec![secs(0.0), secs(1.0), secs(2.0)]
        );
    }

    #[test]
    fn clear_resets_the_log() {
        let sim = Sim::new();
        let tracer = Tracer::new(&sim);
        tracer.record("x");
        assert!(!tracer.is_empty());
        tracer.clear();
        assert!(tracer.is_empty());
    }
}
