//! Unbounded FIFO channels between simulated processes.
//!
//! Used for completion queues and work queues between pipeline stages
//! (e.g. "subgroup fetched" notifications between the prefetcher and the
//! updater in the offload engines).

use std::cell::RefCell;
use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll};

use crate::executor::{Sim, TaskId};

struct ChanState<T> {
    queue: VecDeque<T>,
    recv_waiters: VecDeque<TaskId>,
    senders: usize,
}

/// Creates an unbounded multi-producer channel. Receiving from multiple
/// tasks concurrently is allowed; items are handed out FIFO.
pub fn channel<T>(sim: &Sim) -> (Sender<T>, Receiver<T>) {
    let state = Rc::new(RefCell::new(ChanState {
        queue: VecDeque::new(),
        recv_waiters: VecDeque::new(),
        senders: 1,
    }));
    (
        Sender {
            sim: sim.clone(),
            state: Rc::clone(&state),
        },
        Receiver {
            sim: sim.clone(),
            state,
        },
    )
}

/// Sending half. Cloning adds a producer; the channel closes when all
/// senders are dropped.
pub struct Sender<T> {
    sim: Sim,
    state: Rc<RefCell<ChanState<T>>>,
}

impl<T> Sender<T> {
    /// Enqueues an item, waking one waiting receiver.
    pub fn send(&self, item: T) {
        let waiter = {
            let mut s = self.state.borrow_mut();
            s.queue.push_back(item);
            s.recv_waiters.pop_front()
        };
        if let Some(t) = waiter {
            self.sim.wake(t);
        }
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.state.borrow_mut().senders += 1;
        Sender {
            sim: self.sim.clone(),
            state: Rc::clone(&self.state),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let waiters = {
            let mut s = self.state.borrow_mut();
            s.senders -= 1;
            if s.senders == 0 {
                std::mem::take(&mut s.recv_waiters)
            } else {
                VecDeque::new()
            }
        };
        for t in waiters {
            self.sim.wake(t);
        }
    }
}

/// Receiving half.
pub struct Receiver<T> {
    sim: Sim,
    state: Rc<RefCell<ChanState<T>>>,
}

impl<T> Receiver<T> {
    /// Waits for the next item; resolves to `None` once the channel is
    /// closed (all senders dropped) and drained.
    pub fn recv(&self) -> Recv<'_, T> {
        Recv {
            chan: self,
            registered: false,
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Option<T> {
        self.state.borrow_mut().queue.pop_front()
    }

    /// Number of queued items.
    pub fn len(&self) -> usize {
        self.state.borrow().queue.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        Receiver {
            sim: self.sim.clone(),
            state: Rc::clone(&self.state),
        }
    }
}

/// Future returned by [`Receiver::recv`].
pub struct Recv<'a, T> {
    chan: &'a Receiver<T>,
    registered: bool,
}

impl<T> Future for Recv<'_, T> {
    type Output = Option<T>;

    fn poll(mut self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<Option<T>> {
        let mut s = self.chan.state.borrow_mut();
        if let Some(item) = s.queue.pop_front() {
            return Poll::Ready(Some(item));
        }
        if s.senders == 0 {
            return Poll::Ready(None);
        }
        let task = self.chan.sim.current_task();
        // Re-register on every poll: the waiter entry was consumed by the
        // wake that triggered this poll (or this is the first poll).
        if !s.recv_waiters.contains(&task) {
            s.recv_waiters.push_back(task);
        }
        drop(s);
        self.registered = true;
        Poll::Pending
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::secs;

    #[test]
    fn items_arrive_in_order() {
        let sim = Sim::new();
        let (tx, rx) = channel::<u32>(&sim);
        let consumer = sim.spawn(async move {
            let mut got = Vec::new();
            while let Some(v) = rx.recv().await {
                got.push(v);
            }
            got
        });
        sim.spawn({
            let sim2 = sim.clone();
            async move {
                for i in 0..5 {
                    sim2.sleep(0.1).await;
                    tx.send(i);
                }
            }
        });
        sim.run();
        assert_eq!(consumer.try_take().unwrap(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn recv_returns_none_after_close() {
        let sim = Sim::new();
        let (tx, rx) = channel::<u8>(&sim);
        tx.send(9);
        drop(tx);
        let out = sim.block_on(async move {
            let a = rx.recv().await;
            let b = rx.recv().await;
            (a, b)
        });
        assert_eq!(out, (Some(9), None));
    }

    #[test]
    fn receiver_blocks_until_send() {
        let sim = Sim::new();
        let (tx, rx) = channel::<u64>(&sim);
        let h = sim.spawn({
            let sim2 = sim.clone();
            async move {
                let v = rx.recv().await.unwrap();
                (v, sim2.now())
            }
        });
        sim.spawn({
            let sim2 = sim.clone();
            async move {
                sim2.sleep(2.0).await;
                tx.send(123);
            }
        });
        sim.run();
        assert_eq!(h.try_take().unwrap(), (123, secs(2.0)));
    }

    #[test]
    fn try_recv_and_len() {
        let sim = Sim::new();
        let (tx, rx) = channel::<u8>(&sim);
        assert!(rx.is_empty());
        tx.send(1);
        tx.send(2);
        assert_eq!(rx.len(), 2);
        assert_eq!(rx.try_recv(), Some(1));
        assert_eq!(rx.try_recv(), Some(2));
        assert_eq!(rx.try_recv(), None);
    }

    #[test]
    fn multiple_senders_close_only_when_all_dropped() {
        let sim = Sim::new();
        let (tx1, rx) = channel::<u8>(&sim);
        let tx2 = tx1.clone();
        drop(tx1);
        tx2.send(5);
        drop(tx2);
        let out = sim.block_on(async move { (rx.recv().await, rx.recv().await) });
        assert_eq!(out, (Some(5), None));
    }
}

#[cfg(test)]
mod multi_consumer_tests {
    use super::*;

    #[test]
    fn two_consumers_partition_the_stream() {
        let sim = Sim::new();
        let (tx, rx) = channel::<u32>(&sim);
        let mut handles = Vec::new();
        for _ in 0..2 {
            let rx = rx.clone();
            handles.push(sim.spawn(async move {
                let mut got = Vec::new();
                while let Some(v) = rx.recv().await {
                    got.push(v);
                }
                got
            }));
        }
        sim.spawn({
            let s = sim.clone();
            async move {
                for i in 0..10 {
                    s.sleep(0.01).await;
                    tx.send(i);
                }
            }
        });
        sim.run();
        let mut all: Vec<u32> = handles
            .into_iter()
            .flat_map(|h| h.try_take().unwrap())
            .collect();
        all.sort_unstable();
        // Every item delivered exactly once across the consumers.
        assert_eq!(all, (0..10).collect::<Vec<_>>());
    }
}
