#![warn(missing_docs)]
#![deny(unsafe_code)]

//! Model substrate: transformer architecture math, the paper's model zoo,
//! ZeRO-3 sharding into subgroups, and a DeepSpeed-style memory estimator.
//!
//! The paper trains decoder-only transformers described by three numbers
//! (Table 2): number of layers `N_L`, hidden dimension `D_H`, and attention
//! heads `AH`. Everything the offloading engines need — parameter counts,
//! FLOP counts, optimizer-state sizes, subgroup layouts, and host/GPU
//! memory footprints — derives from those numbers here.

pub mod config;
pub mod memory;
pub mod parallelism;
pub mod shard;
pub mod zoo;

pub use config::ModelConfig;
pub use memory::MemoryEstimate;
pub use shard::{ShardLayout, Subgroup, SubgroupLayout};
