//! 3D-parallelism layouts (§2 background).
//!
//! Data, pipeline, and tensor parallelism compose into a "3D" layout of
//! the GPU grid. ZeRO-3, the regime the paper targets, cannot combine with
//! pipeline parallelism (its scatter-gather collectives fight with
//! inter-stage communication), so valid layouts here are constrained the
//! same way. The per-GPU memory model shows *why* offloading becomes
//! necessary: below a certain GPU count no legal layout fits without it.

use serde::{Deserialize, Serialize};

use crate::config::{ModelConfig, FP16_BYTES, OPTIM_STATE_BYTES_PER_PARAM};

/// One way to lay a model across a GPU grid.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Layout {
    /// Tensor-parallel degree (horizontal layer split, intra-node).
    pub tensor: usize,
    /// Pipeline-parallel degree (vertical layer split).
    pub pipeline: usize,
    /// Data-parallel degree (model replicas / ZeRO shards).
    pub data: usize,
}

impl Layout {
    /// Total GPUs used.
    pub fn gpus(&self) -> usize {
        self.tensor * self.pipeline * self.data
    }

    /// Whether this layout is usable with ZeRO-3 (no pipeline stage split;
    /// §2: "ZeRO-3 cannot be seamlessly combined with pipeline
    /// parallelism").
    pub fn zero3_compatible(&self) -> bool {
        self.pipeline == 1
    }
}

/// Memory a single GPU must hold under `layout` with ZeRO stage `zero`
/// and no offloading.
///
/// * ZeRO-0: full replica of FP16 params + grads + FP32 optimizer state.
/// * ZeRO-1: optimizer state sharded over data parallelism.
/// * ZeRO-2: + gradients sharded.
/// * ZeRO-3: + parameters sharded.
pub fn gpu_bytes_per_rank(model: &ModelConfig, layout: &Layout, zero: u8) -> u64 {
    assert!(zero <= 3, "ZeRO stages are 0-3");
    let p = model.param_count() / (layout.tensor as u64 * layout.pipeline as u64);
    let dp = layout.data as u64;
    let params = p * FP16_BYTES / if zero >= 3 { dp } else { 1 };
    let grads = p * FP16_BYTES / if zero >= 2 { dp } else { 1 };
    let optim = p * OPTIM_STATE_BYTES_PER_PARAM / if zero >= 1 { dp } else { 1 };
    params + grads + optim
}

/// Enumerates the ZeRO-3-compatible layouts of `model` over exactly
/// `gpus` GPUs with at most `max_tensor` tensor-parallel ways (typically
/// the node's GPU count), sorted by tensor degree.
pub fn zero3_layouts(gpus: usize, max_tensor: usize) -> Vec<Layout> {
    assert!(gpus >= 1, "need at least one GPU");
    (1..=max_tensor.min(gpus))
        .filter(|t| gpus.is_multiple_of(*t))
        .map(|tensor| Layout {
            tensor,
            pipeline: 1,
            data: gpus / tensor,
        })
        .collect()
}

/// The smallest GPU count at which `model` trains without offloading:
/// every rank must fit FP16 params + grads + sharded optimizer state into
/// the *usable* fraction of `gpu_mem_bytes` under ZeRO-3 (tensor degree ≤
/// `gpus_per_node`). `usable_fraction` accounts for everything the model
/// states share the device with — activations, all-gather staging,
/// allocator fragmentation; ~1/3 reproduces the §4.4 reference ("~80
/// A100-40GB GPUs for 70B", via the paper's DataStates-LLM citation).
pub fn min_gpus_without_offload(
    model: &ModelConfig,
    gpu_mem_bytes: u64,
    gpus_per_node: usize,
    max_gpus: usize,
    usable_fraction: f64,
) -> Option<usize> {
    assert!((0.0..=1.0).contains(&usable_fraction), "fraction in (0, 1]");
    let usable = (gpu_mem_bytes as f64 * usable_fraction) as u64;
    for gpus in 1..=max_gpus {
        let fits = zero3_layouts(gpus, gpus_per_node)
            .iter()
            .any(|l| gpu_bytes_per_rank(model, l, 3) <= usable);
        if fits {
            return Some(gpus);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo;

    const GIB: u64 = 1 << 30;

    #[test]
    fn layout_arithmetic() {
        let l = Layout {
            tensor: 4,
            pipeline: 2,
            data: 8,
        };
        assert_eq!(l.gpus(), 64);
        assert!(!l.zero3_compatible());
        assert!(Layout {
            tensor: 4,
            pipeline: 1,
            data: 8
        }
        .zero3_compatible());
    }

    #[test]
    fn zero_stages_monotonically_shrink_memory() {
        let m = zoo::model_40b();
        let l = Layout {
            tensor: 1,
            pipeline: 1,
            data: 8,
        };
        let sizes: Vec<u64> = (0..=3).map(|z| gpu_bytes_per_rank(&m, &l, z)).collect();
        for w in sizes.windows(2) {
            assert!(w[1] < w[0], "{sizes:?}");
        }
        // ZeRO-0 holds 16 bytes/param regardless of dp.
        assert_eq!(sizes[0], m.param_count() * 16);
    }

    #[test]
    fn layout_enumeration_covers_divisors() {
        let layouts = zero3_layouts(8, 4);
        assert_eq!(layouts.len(), 3); // t=1,2,4
        assert!(layouts
            .iter()
            .all(|l| l.gpus() == 8 && l.zero3_compatible()));
    }

    #[test]
    fn seventy_b_needs_about_eighty_a100s_gpu_only() {
        // §4.4: "training the 70B model without offloading requires the
        // aggregated memory of ~80 A100-40GB GPUs".
        let m = zoo::model_70b();
        let n = min_gpus_without_offload(&m, 40 * GIB, 4, 256, 0.33).expect("fits somewhere");
        assert!((60..=96).contains(&n), "got {n}");
    }

    #[test]
    fn twenty_b_fits_one_node_of_h100s() {
        // §3.1 trains 20B on a single 4×H100-80GB node without offloading.
        let m = zoo::model_20b();
        let n = min_gpus_without_offload(&m, 80 * GIB, 4, 64, 0.33).unwrap();
        assert!(n <= 16, "got {n}");
    }

    #[test]
    fn offload_breaks_the_floor() {
        // With the optimizer state offloaded, only FP16 params + grads
        // stay on GPU: the 40B model then fits 4×H100 (§4.2's setup),
        // which ZeRO-3 alone cannot do.
        let m = zoo::model_40b();
        let l = Layout {
            tensor: 1,
            pipeline: 1,
            data: 4,
        };
        let full = gpu_bytes_per_rank(&m, &l, 3);
        assert!(full > 80 * GIB, "without offload it must NOT fit");
        let offloaded = m.param_count() / 4 * FP16_BYTES * 2; // params + grads
        assert!(offloaded < 80 * GIB, "with optimizer offloaded it fits");
    }
}
