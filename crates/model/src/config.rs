//! Transformer architecture description and derived quantities.

use serde::{Deserialize, Serialize};

/// Bytes per FP16 value.
pub const FP16_BYTES: u64 = 2;
/// Bytes per FP32 value.
pub const FP32_BYTES: u64 = 4;
/// FP32 optimizer-state bytes per parameter under Adam: master parameter,
/// momentum, and variance (the paper's "8× larger than FP16 parameters"
/// counts these 12 bytes plus the 4-byte FP32 gradient against the 2-byte
/// FP16 parameter).
pub const OPTIM_STATE_BYTES_PER_PARAM: u64 = 3 * FP32_BYTES;

/// A decoder-only transformer configuration (Table 2 of the paper).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ModelConfig {
    /// Display name, e.g. `"40B"`.
    pub name: String,
    /// Number of transformer layers (`N_L`).
    pub num_layers: u64,
    /// Hidden dimension (`D_H`).
    pub hidden_dim: u64,
    /// Attention heads (`AH`).
    pub attention_heads: u64,
    /// Vocabulary size (LLaMA2 tokenizer: 32 000).
    pub vocab_size: u64,
    /// Sequence length (paper default: 2048).
    pub seq_len: u64,
}

impl ModelConfig {
    /// Creates a config with the paper's defaults (LLaMA2 tokenizer vocab,
    /// sequence length 2048).
    pub fn new(name: impl Into<String>, num_layers: u64, hidden_dim: u64, heads: u64) -> Self {
        ModelConfig {
            name: name.into(),
            num_layers,
            hidden_dim,
            attention_heads: heads,
            vocab_size: 32_000,
            seq_len: 2048,
        }
    }

    /// Parameters in one transformer layer: 4·D² for attention
    /// (Q, K, V, output projections) plus 8·D² for the 4×-expansion MLP,
    /// plus the layer norms (4·D).
    pub fn params_per_layer(&self) -> u64 {
        let d = self.hidden_dim;
        12 * d * d + 4 * d
    }

    /// Total trainable parameters: layers plus (untied) input/output
    /// embeddings and the final layer norm.
    pub fn param_count(&self) -> u64 {
        self.num_layers * self.params_per_layer()
            + 2 * self.vocab_size * self.hidden_dim
            + 2 * self.hidden_dim
    }

    /// Bytes of the FP16 working copy of the parameters.
    pub fn fp16_param_bytes(&self) -> u64 {
        self.param_count() * FP16_BYTES
    }

    /// Bytes of FP16 gradients for the full model.
    pub fn fp16_grad_bytes(&self) -> u64 {
        self.param_count() * FP16_BYTES
    }

    /// Bytes of the FP32 optimizer state (master params + momentum +
    /// variance) for the full model.
    pub fn optimizer_state_bytes(&self) -> u64 {
        self.param_count() * OPTIM_STATE_BYTES_PER_PARAM
    }

    /// Forward-pass FLOPs for `tokens` tokens: the standard 2·P·T dense
    /// estimate (attention-score FLOPs are second order at these sizes).
    pub fn forward_flops(&self, tokens: u64) -> f64 {
        2.0 * self.param_count() as f64 * tokens as f64
    }

    /// Backward-pass FLOPs: 2× the forward pass, plus a full forward
    /// recomputation when activation checkpointing is enabled (the paper's
    /// "33% additional recomputations").
    pub fn backward_flops(&self, tokens: u64, activation_checkpointing: bool) -> f64 {
        let recompute = if activation_checkpointing { 1.0 } else { 0.0 };
        (4.0 + 2.0 * recompute) * self.param_count() as f64 * tokens as f64
    }

    /// Bytes of activation checkpoints per microbatch sample: one D_H-wide
    /// FP16 activation per layer boundary per token.
    pub fn activation_checkpoint_bytes_per_sample(&self) -> u64 {
        self.seq_len * self.hidden_dim * FP16_BYTES * (self.num_layers + 1)
    }
}

impl std::fmt::Display for ModelConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} (L={}, D={}, H={}, {:.1}B params)",
            self.name,
            self.num_layers,
            self.hidden_dim,
            self.attention_heads,
            self.param_count() as f64 / 1e9
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forty_b_matches_nominal_size() {
        let m = ModelConfig::new("40B", 128, 5120, 40);
        let p = m.param_count() as f64;
        // 12·128·5120² ≈ 40.3B plus embeddings.
        assert!((p / 1e9 - 40.0).abs() < 1.5, "got {}B", p / 1e9);
    }

    #[test]
    fn optimizer_state_is_six_times_fp16_params() {
        let m = ModelConfig::new("x", 4, 1024, 8);
        assert_eq!(m.optimizer_state_bytes(), 6 * m.fp16_param_bytes());
    }

    #[test]
    fn checkpointing_adds_a_third_of_backward() {
        let m = ModelConfig::new("x", 4, 1024, 8);
        let plain = m.backward_flops(1000, false);
        let ckpt = m.backward_flops(1000, true);
        assert!((ckpt / plain - 1.5).abs() < 1e-9); // 6PT vs 4PT
    }

    #[test]
    fn params_scale_quadratically_with_hidden_dim() {
        let a = ModelConfig::new("a", 10, 1000, 8).params_per_layer();
        let b = ModelConfig::new("b", 10, 2000, 8).params_per_layer();
        let ratio = b as f64 / a as f64;
        assert!((ratio - 4.0).abs() < 0.01, "ratio {ratio}");
    }
}
