//! DeepSpeed-style memory estimator.
//!
//! Mirrors the accounting the paper relies on (§4.1 and the DeepSpeed
//! memory-requirements documentation it cites): what must live on the GPU,
//! what the runtime reserves on the host, and how much host memory is left
//! over for caching subgroups — the quantity that drives the cache-friendly
//! reordering win.

use serde::{Deserialize, Serialize};

use crate::config::{ModelConfig, FP16_BYTES};
use crate::shard::ShardLayout;

/// Gibibyte, for readable reporting.
pub const GIB: u64 = 1 << 30;

/// Estimated memory footprints for one training configuration.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct MemoryEstimate {
    /// Per-GPU bytes: FP16 shard parameters + activation checkpoints +
    /// one subgroup's FP16 gradients.
    pub gpu_bytes_per_rank: u64,
    /// Host bytes reserved by the runtime itself (ZeRO-3 data structures,
    /// gradient-accumulation and all-reduce buckets): the paper reports
    /// 250–350 GB, proportional to model size.
    pub host_runtime_bytes: u64,
    /// Host bytes available for caching optimizer-state subgroups and for
    /// asynchronous I/O staging, after the runtime reservation.
    pub host_cache_bytes: u64,
    /// Total FP32 optimizer-state bytes per node (all local ranks).
    pub optimizer_state_bytes_per_node: u64,
}

/// Inputs for a memory estimate.
#[derive(Clone, Copy, Debug)]
pub struct MemoryInputs {
    /// GPUs (= ranks) per node.
    pub gpus_per_node: usize,
    /// Total data-parallel world size.
    pub world_size: usize,
    /// Host memory per node in bytes.
    pub host_bytes: u64,
    /// Microbatch size per rank.
    pub microbatch: u64,
}

impl MemoryEstimate {
    /// Estimates footprints for `model` under `inputs`.
    pub fn estimate(model: &ModelConfig, inputs: MemoryInputs) -> Self {
        let shard = ShardLayout::new(model, inputs.world_size);
        let shard_params = shard.params_for_rank(0);

        let gpu_bytes_per_rank = shard_params * FP16_BYTES
            + inputs.microbatch * model.activation_checkpoint_bytes_per_sample()
            + crate::shard::DEFAULT_SUBGROUP_PARAMS * FP16_BYTES;

        // Runtime reservation: ZeRO-3 bookkeeping, gradient-accumulation
        // buffers, all-reduce buckets, and collective staging. Calibrated to
        // the paper's reported 250–350 GB on a 4-GPU node across 40–120B
        // models: a ~200 GiB fixed runtime floor plus ~1.2 bytes per
        // node-local parameter fits both endpoints.
        let local_params = shard_params * inputs.gpus_per_node as u64;
        let host_runtime_bytes = (local_params as f64 * 1.2) as u64 + 200 * GIB;

        let host_cache_bytes = inputs.host_bytes.saturating_sub(host_runtime_bytes);

        let optimizer_state_bytes_per_node =
            shard_params * crate::config::OPTIM_STATE_BYTES_PER_PARAM * inputs.gpus_per_node as u64;

        MemoryEstimate {
            gpu_bytes_per_rank,
            host_runtime_bytes,
            host_cache_bytes,
            optimizer_state_bytes_per_node,
        }
    }

    /// Whether the full FP32 optimizer state fits in the host cache (no
    /// third-level offload needed — the 20B case in §3.1).
    pub fn optimizer_fits_in_host(&self) -> bool {
        self.optimizer_state_bytes_per_node <= self.host_cache_bytes
    }

    /// How many subgroups of `subgroup_state_bytes` each rank can cache in
    /// host memory (the budget is split evenly across local ranks).
    pub fn cacheable_subgroups_per_rank(
        &self,
        gpus_per_node: usize,
        subgroup_state_bytes: u64,
    ) -> usize {
        if subgroup_state_bytes == 0 {
            return 0;
        }
        ((self.host_cache_bytes / gpus_per_node as u64) / subgroup_state_bytes) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo;

    fn testbed1_inputs() -> MemoryInputs {
        MemoryInputs {
            gpus_per_node: 4,
            world_size: 4,
            host_bytes: 512 * GIB,
            microbatch: 1,
        }
    }

    #[test]
    fn twenty_b_optimizer_fits_in_host() {
        let est = MemoryEstimate::estimate(&zoo::model_20b(), testbed1_inputs());
        assert!(
            est.optimizer_fits_in_host(),
            "paper: 20B state fits in 512 GB"
        );
    }

    #[test]
    fn forty_b_requires_disk_offload() {
        let est = MemoryEstimate::estimate(&zoo::model_40b(), testbed1_inputs());
        assert!(!est.optimizer_fits_in_host(), "paper: ≥40B spills to NVMe");
    }

    #[test]
    fn runtime_reservation_in_paper_range() {
        // Paper: 250–350 GB for ZeRO-3 data structures on the 4-GPU node,
        // proportional to model size (40B–120B).
        for m in zoo::single_node_set() {
            let est = MemoryEstimate::estimate(&m, testbed1_inputs());
            let gb = est.host_runtime_bytes / GIB;
            assert!(
                (230..=360).contains(&gb),
                "{}: runtime reservation {gb} GiB out of range",
                m.name
            );
        }
        let est120 = MemoryEstimate::estimate(&zoo::model_120b(), testbed1_inputs());
        let est40 = MemoryEstimate::estimate(&zoo::model_40b(), testbed1_inputs());
        assert!(est120.host_runtime_bytes > est40.host_runtime_bytes);
    }

    #[test]
    fn cache_shrinks_as_models_grow() {
        let small = MemoryEstimate::estimate(&zoo::model_40b(), testbed1_inputs());
        let large = MemoryEstimate::estimate(&zoo::model_120b(), testbed1_inputs());
        assert!(large.host_cache_bytes < small.host_cache_bytes);
    }

    #[test]
    fn cacheable_subgroups_accounting() {
        let est = MemoryEstimate::estimate(&zoo::model_40b(), testbed1_inputs());
        let sub_bytes =
            crate::shard::DEFAULT_SUBGROUP_PARAMS * crate::config::OPTIM_STATE_BYTES_PER_PARAM;
        let n = est.cacheable_subgroups_per_rank(4, sub_bytes);
        // 40B: ~10B params/rank → 101 subgroups; only a fraction fits.
        assert!(n >= 1, "at least the pipeline minimum must fit");
        assert!(n < 101, "cache must not hold the whole shard for 40B");
    }
}
