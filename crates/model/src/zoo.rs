//! The paper's model zoo (Table 2), plus the 20B model used by the §3.1
//! motivation experiments.
//!
//! | Model | N_L | D_H   | AH  |
//! |-------|-----|-------|-----|
//! | 40B   | 128 | 5120  | 40  |
//! | 52B   | 64  | 8192  | 64  |
//! | 70B   | 80  | 8192  | 64  |
//! | 100B  | 124 | 8192  | 64  |
//! | 120B  | 96  | 10240 | 80  |
//! | 130B  | 70  | 12288 | 96  |
//! | 280B  | 72  | 16384 | 128 |

use crate::config::ModelConfig;

/// The 20B model of §3.1 (small enough for its optimizer state to fit in
/// 512 GB of host memory; used as the no-disk baseline).
pub fn model_20b() -> ModelConfig {
    ModelConfig::new("20B", 44, 6144, 48)
}

/// Table 2: 40B.
pub fn model_40b() -> ModelConfig {
    ModelConfig::new("40B", 128, 5120, 40)
}

/// Table 2: 52B (Tele-FLM).
pub fn model_52b() -> ModelConfig {
    ModelConfig::new("52B", 64, 8192, 64)
}

/// Table 2: 70B (LLaMA-2-70B dimensions).
pub fn model_70b() -> ModelConfig {
    ModelConfig::new("70B", 80, 8192, 64)
}

/// Table 2: 100B.
pub fn model_100b() -> ModelConfig {
    ModelConfig::new("100B", 124, 8192, 64)
}

/// Table 2: 120B (Galactica dimensions).
pub fn model_120b() -> ModelConfig {
    ModelConfig::new("120B", 96, 10240, 80)
}

/// Table 2: 130B (GLM-130B dimensions).
pub fn model_130b() -> ModelConfig {
    ModelConfig::new("130B", 70, 12288, 96)
}

/// Table 2: 280B (Gopher dimensions).
pub fn model_280b() -> ModelConfig {
    ModelConfig::new("280B", 72, 16384, 128)
}

/// All Table 2 models in ascending size order.
pub fn table2() -> Vec<ModelConfig> {
    vec![
        model_40b(),
        model_52b(),
        model_70b(),
        model_100b(),
        model_120b(),
        model_130b(),
        model_280b(),
    ]
}

/// The single-node scaling set used by Figures 7–10 (40B–120B on Testbed-1).
pub fn single_node_set() -> Vec<ModelConfig> {
    vec![
        model_40b(),
        model_52b(),
        model_70b(),
        model_100b(),
        model_120b(),
    ]
}

/// Looks a model up by display name (e.g. `"70B"`).
pub fn by_name(name: &str) -> Option<ModelConfig> {
    std::iter::once(model_20b())
        .chain(table2())
        .find(|m| m.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zoo_matches_table2_dimensions() {
        let m = model_280b();
        assert_eq!(
            (m.num_layers, m.hidden_dim, m.attention_heads),
            (72, 16384, 128)
        );
        let m = model_130b();
        assert_eq!(
            (m.num_layers, m.hidden_dim, m.attention_heads),
            (70, 12288, 96)
        );
    }

    #[test]
    fn nominal_sizes_are_close_to_computed() {
        // Dense 12·L·D² math reproduces the nominal labels within 20%
        // (the labels come from heterogeneous published models with
        //  slightly different FFN/vocab choices).
        for m in std::iter::once(model_20b()).chain(table2()) {
            let nominal: f64 = m.name.trim_end_matches('B').parse().unwrap();
            let actual = m.param_count() as f64 / 1e9;
            let err = (actual - nominal).abs() / nominal;
            assert!(
                err < 0.20,
                "{}: computed {actual:.1}B vs nominal {nominal}B",
                m.name
            );
        }
    }

    #[test]
    fn zoo_is_sorted_by_size() {
        let sizes: Vec<u64> = table2().iter().map(|m| m.param_count()).collect();
        let mut sorted = sizes.clone();
        sorted.sort_unstable();
        assert_eq!(sizes, sorted);
    }

    #[test]
    fn lookup_by_name() {
        assert_eq!(by_name("70B").unwrap().hidden_dim, 8192);
        assert_eq!(by_name("20B").unwrap().num_layers, 44);
        assert!(by_name("7B").is_none());
    }
}
