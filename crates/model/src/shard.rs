//! ZeRO-3 sharding: model and optimizer state partitioned across
//! data-parallel ranks, and each rank's shard decomposed into fixed-size
//! *subgroups* — the unit of offloading, prefetching, and update
//! computation throughout this workspace (§2 of the paper).

use serde::{Deserialize, Serialize};

use crate::config::{ModelConfig, FP16_BYTES, FP32_BYTES, OPTIM_STATE_BYTES_PER_PARAM};

/// The paper's subgroup size: 100 million parameters (chosen over
/// DeepSpeed's 1B default for better I/O/compute overlap and load
/// balancing, §4.1).
pub const DEFAULT_SUBGROUP_PARAMS: u64 = 100_000_000;

/// One subgroup of a rank's model shard.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Subgroup {
    /// Index within the owning rank's shard (0-based, processing order in
    /// the first iteration is ascending id).
    pub id: usize,
    /// Trainable parameters in this subgroup.
    pub params: u64,
}

impl Subgroup {
    /// Bytes of FP32 optimizer state (master params, momentum, variance).
    pub fn state_bytes(&self) -> u64 {
        self.params * OPTIM_STATE_BYTES_PER_PARAM
    }

    /// Bytes of FP32 gradients.
    pub fn fp32_grad_bytes(&self) -> u64 {
        self.params * FP32_BYTES
    }

    /// Bytes of FP16 gradients.
    pub fn fp16_grad_bytes(&self) -> u64 {
        self.params * FP16_BYTES
    }

    /// Bytes of FP16 parameters.
    pub fn fp16_param_bytes(&self) -> u64 {
        self.params * FP16_BYTES
    }
}

/// How a model is partitioned across data-parallel ranks (ZeRO-3: optimizer
/// state, gradients, and parameters are all sharded).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ShardLayout {
    /// Total trainable parameters.
    pub total_params: u64,
    /// Number of data-parallel ranks (one per GPU).
    pub world_size: usize,
}

impl ShardLayout {
    /// Shards `model` across `world_size` ranks.
    pub fn new(model: &ModelConfig, world_size: usize) -> Self {
        assert!(world_size > 0, "world size must be positive");
        ShardLayout {
            total_params: model.param_count(),
            world_size,
        }
    }

    /// Parameters owned by `rank` (earlier ranks absorb the remainder).
    pub fn params_for_rank(&self, rank: usize) -> u64 {
        assert!(rank < self.world_size, "rank out of range");
        let base = self.total_params / self.world_size as u64;
        let rem = self.total_params % self.world_size as u64;
        base + u64::from((rank as u64) < rem)
    }

    /// The subgroup decomposition of `rank`'s shard.
    pub fn subgroups_for_rank(&self, rank: usize, subgroup_params: u64) -> SubgroupLayout {
        SubgroupLayout::new(self.params_for_rank(rank), subgroup_params)
    }
}

/// A rank's shard decomposed into subgroups.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SubgroupLayout {
    subgroups: Vec<Subgroup>,
    shard_params: u64,
}

impl SubgroupLayout {
    /// Splits `shard_params` into subgroups of `subgroup_params` (the last
    /// subgroup takes the remainder).
    pub fn new(shard_params: u64, subgroup_params: u64) -> Self {
        assert!(subgroup_params > 0, "subgroup size must be positive");
        let mut subgroups = Vec::new();
        let mut remaining = shard_params;
        let mut id = 0;
        while remaining > 0 {
            let p = remaining.min(subgroup_params);
            subgroups.push(Subgroup { id, params: p });
            remaining -= p;
            id += 1;
        }
        SubgroupLayout {
            subgroups,
            shard_params,
        }
    }

    /// All subgroups in ascending id order.
    pub fn subgroups(&self) -> &[Subgroup] {
        &self.subgroups
    }

    /// Number of subgroups.
    pub fn len(&self) -> usize {
        self.subgroups.len()
    }

    /// Whether the shard is empty.
    pub fn is_empty(&self) -> bool {
        self.subgroups.is_empty()
    }

    /// Total parameters across all subgroups.
    pub fn shard_params(&self) -> u64 {
        self.shard_params
    }

    /// Total FP32 optimizer-state bytes across all subgroups.
    pub fn total_state_bytes(&self) -> u64 {
        self.subgroups.iter().map(Subgroup::state_bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo;
    use proptest::prelude::*;

    #[test]
    fn rank_params_sum_to_total() {
        let m = zoo::model_40b();
        let layout = ShardLayout::new(&m, 4);
        let total: u64 = (0..4).map(|r| layout.params_for_rank(r)).sum();
        assert_eq!(total, m.param_count());
    }

    #[test]
    fn subgroups_cover_shard_exactly() {
        let layout = SubgroupLayout::new(1_050, 100);
        assert_eq!(layout.len(), 11);
        assert_eq!(layout.subgroups()[10].params, 50);
        let sum: u64 = layout.subgroups().iter().map(|s| s.params).sum();
        assert_eq!(sum, 1_050);
    }

    #[test]
    fn forty_b_on_four_gpus_has_about_a_hundred_subgroups() {
        // 40B over 4 ranks at 100M params/subgroup → ~101 subgroups each.
        let m = zoo::model_40b();
        let layout = ShardLayout::new(&m, 4);
        let subs = layout.subgroups_for_rank(0, DEFAULT_SUBGROUP_PARAMS);
        assert!((100..=105).contains(&subs.len()), "got {}", subs.len());
    }

    #[test]
    fn state_bytes_are_twelve_per_param() {
        let s = Subgroup { id: 0, params: 10 };
        assert_eq!(s.state_bytes(), 120);
        assert_eq!(s.fp32_grad_bytes(), 40);
        assert_eq!(s.fp16_grad_bytes(), 20);
    }

    #[test]
    fn empty_shard_has_no_subgroups() {
        let layout = SubgroupLayout::new(0, 100);
        assert!(layout.is_empty());
    }

    proptest! {
        #[test]
        fn sharding_is_exact_partition(
            total in 1u64..10_000_000_000,
            world in 1usize..64,
        ) {
            let layout = ShardLayout {
                total_params: total,
                world_size: world,
            };
            let sum: u64 = (0..world).map(|r| layout.params_for_rank(r)).sum();
            prop_assert_eq!(sum, total);
            // Balanced within one parameter.
            let max = (0..world).map(|r| layout.params_for_rank(r)).max().unwrap();
            let min = (0..world).map(|r| layout.params_for_rank(r)).min().unwrap();
            prop_assert!(max - min <= 1);
        }

        #[test]
        fn subgrouping_is_exact_partition(
            shard in 0u64..20_000_000_000,
            sub in 1u64..2_000_000_000,
        ) {
            let layout = SubgroupLayout::new(shard, sub);
            let sum: u64 = layout.subgroups().iter().map(|s| s.params).sum();
            prop_assert_eq!(sum, shard);
            // All but the last subgroup are full-size.
            for s in layout.subgroups().iter().rev().skip(1) {
                prop_assert_eq!(s.params, sub);
            }
            // Ids are consecutive from zero.
            for (i, s) in layout.subgroups().iter().enumerate() {
                prop_assert_eq!(s.id, i);
            }
        }
    }
}
