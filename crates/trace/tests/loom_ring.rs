//! Model-checked event-ring producer/consumer protocol
//! (`RUSTFLAGS="--cfg loom" cargo test -p mlp-trace --test loom_ring`).
//!
//! The ring's fast path is a Vyukov-style sequence protocol: producers
//! claim a slot with one CAS on the tail cursor and publish with a
//! release store of the slot sequence; consumers mirror it on the head
//! cursor. The explorer drives every reachable interleaving and fails
//! on lost events, duplicated events, torn slots (an event observed
//! with fields from two different pushes), and non-termination.

#![cfg(loom)]

use mlp_sync::thread;
use mlp_sync::Arc;
use mlp_trace::{EventKind, EventRing, Phase, TraceEvent};

/// An event whose fields are all derived from `tag`, so a torn slot
/// (fields from two different writers) is detectable on read.
fn ev(tag: u64) -> TraceEvent {
    TraceEvent {
        seq: tag,
        kind: EventKind::Instant,
        phase: Phase::Fetch,
        pid: tag as u32,
        tid: (tag * 3) as u32,
        tier: -1,
        subgroup: tag as i64,
        bytes: tag * 7,
        ts_ns: tag * 11,
        dur_ns: 0,
    }
}

fn check_integrity(e: &TraceEvent) {
    let tag = e.seq;
    assert_eq!(e.pid as u64, tag, "torn slot");
    assert_eq!(e.bytes, tag * 7, "torn slot");
    assert_eq!(e.ts_ns, tag * 11, "torn slot");
}

#[test]
fn concurrent_producers_never_lose_or_duplicate() {
    mlp_sync::model::model(|| {
        let ring = Arc::new(EventRing::with_capacity(4));
        let r2 = Arc::clone(&ring);
        let t = thread::spawn(move || {
            r2.push(ev(1));
            r2.push(ev(2));
        });
        ring.push(ev(3));
        let _ = t.join();
        let drained = ring.drain();
        let mut tags: Vec<u64> = drained.iter().map(|e| e.seq).collect();
        tags.sort_unstable();
        assert_eq!(tags, vec![1, 2, 3], "every push visible exactly once");
        for e in &drained {
            check_integrity(e);
        }
    });
}

#[test]
fn producer_and_consumer_run_concurrently() {
    mlp_sync::model::model(|| {
        let ring = Arc::new(EventRing::with_capacity(2));
        let r2 = Arc::clone(&ring);
        let t = thread::spawn(move || {
            r2.push(ev(1));
            r2.push(ev(2));
        });
        // Concurrent pops: each returns either nothing (not yet
        // published) or a fully published, untorn event.
        let mut seen = Vec::new();
        for _ in 0..2 {
            if let Some(e) = ring.pop() {
                check_integrity(&e);
                seen.push(e.seq);
            }
        }
        let _ = t.join();
        for e in ring.drain() {
            check_integrity(&e);
            seen.push(e.seq);
        }
        seen.sort_unstable();
        assert_eq!(seen, vec![1, 2], "no event lost or duplicated");
    });
}

#[test]
fn overflow_archives_under_contention() {
    // Capacity 2, three pushes with no consumer: at least one push must
    // take the archive path, and drain still yields all three.
    mlp_sync::model::model(|| {
        let ring = Arc::new(EventRing::with_capacity(2));
        let r2 = Arc::clone(&ring);
        let t = thread::spawn(move || {
            r2.push(ev(1));
            r2.push(ev(2));
        });
        ring.push(ev(3));
        let _ = t.join();
        assert!(ring.overflow_count() >= 1, "third push must archive");
        let mut tags: Vec<u64> = ring.drain().iter().map(|e| e.seq).collect();
        tags.sort_unstable();
        assert_eq!(tags, vec![1, 2, 3], "archived events are not lost");
    });
}
