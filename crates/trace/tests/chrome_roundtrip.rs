//! Property tests for the Chrome `trace_event` exporter: for arbitrary
//! event streams the export must parse back to identical spans, re-emit
//! byte-identically, keep its records in monotone timestamp order, and
//! keep every span's begin/end balanced.

use proptest::prelude::*;

use mlp_trace::{chrome_trace_json, parse_chrome_trace, EventKind, TraceEvent, ALL_PHASES};

/// SplitMix64: one u64 seed → a stream of independent field values.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministically expands one seed into a valid event. `seq` is the
/// index in the stream (unique, as the sink guarantees).
fn event_from_seed(seq: u64, seed: u64) -> TraceEvent {
    let f = |salt: u64| mix(seed ^ salt.wrapping_mul(0xA24B_AED4_963E_E407));
    let phase = ALL_PHASES[(f(1) % ALL_PHASES.len() as u64) as usize];
    let kind = if f(2) % 3 == 0 { EventKind::Instant } else { EventKind::Span };
    TraceEvent {
        seq,
        kind,
        phase,
        pid: (f(3) % 4) as u32,
        tid: (f(4) % 8) as u32,
        tier: (f(5) % 3) as i32 - 1,
        subgroup: (f(6) % 100) as i64 - 1,
        bytes: f(7) % (1 << 40),
        // Hundreds of virtual seconds, nanosecond resolution.
        ts_ns: f(8) % 500_000_000_000,
        dur_ns: if kind == EventKind::Span { f(9) % 10_000_000_000 } else { 0 },
    }
}

fn events_from_seeds(seeds: &[u64]) -> Vec<TraceEvent> {
    seeds
        .iter()
        .enumerate()
        .map(|(i, &s)| event_from_seed(i as u64, s))
        .collect()
}

/// Timestamps of the exported records, in file order.
fn record_timestamps(json: &str) -> Vec<f64> {
    json.lines()
        .filter(|l| l.contains("\"ts\":"))
        .map(|l| {
            let rest = &l[l.find("\"ts\":").expect("ts") + 5..];
            let end = rest
                .find(|c: char| !(c.is_ascii_digit() || c == '.'))
                .unwrap_or(rest.len());
            rest[..end].parse::<f64>().expect("ts number")
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// parse(emit(events)) == events, exactly.
    #[test]
    fn export_round_trips_to_identical_spans(seeds in proptest::collection::vec(any::<u64>(), 0..60)) {
        let events = events_from_seeds(&seeds);
        let json = chrome_trace_json(&events);
        let parsed = parse_chrome_trace(&json).expect("exported trace must parse");
        prop_assert_eq!(parsed, events);
    }

    /// emit(parse(emit(events))) is byte-identical to emit(events).
    #[test]
    fn re_emission_is_byte_identical(seeds in proptest::collection::vec(any::<u64>(), 0..60)) {
        let events = events_from_seeds(&seeds);
        let first = chrome_trace_json(&events);
        let reparsed = parse_chrome_trace(&first).expect("first export must parse");
        let second = chrome_trace_json(&reparsed);
        prop_assert_eq!(second, first);
    }

    /// Exported records appear in monotone (non-decreasing) timestamp
    /// order, and begin/end marks are balanced for every span.
    #[test]
    fn output_is_time_ordered_and_balanced(seeds in proptest::collection::vec(any::<u64>(), 1..60)) {
        let events = events_from_seeds(&seeds);
        let json = chrome_trace_json(&events);

        let ts = record_timestamps(&json);
        prop_assert!(ts.windows(2).all(|w| w[0] <= w[1]),
            "timestamps must be non-decreasing: {ts:?}");

        let begins = json.matches("\"ph\":\"B\"").count();
        let ends = json.matches("\"ph\":\"E\"").count();
        let spans = events.iter().filter(|e| e.kind == EventKind::Span).count();
        prop_assert_eq!(begins, spans);
        prop_assert_eq!(begins, ends);
    }

    /// Corrupting any single span's end record breaks the balance and
    /// the parser says so (the validator actually validates).
    #[test]
    fn parser_rejects_unbalanced_streams(seed in any::<u64>()) {
        let events = vec![event_from_seed(0, seed | 1)];
        // Force a span so there is an E record to delete.
        let mut ev = events[0];
        ev.kind = EventKind::Span;
        let json = chrome_trace_json(&[ev]);
        let without_end: String = json
            .lines()
            .filter(|l| !l.contains("\"ph\":\"E\""))
            .collect::<Vec<_>>()
            .join("\n")
            // Drop a trailing comma left before the closing bracket.
            .replace(",\n]", "\n]");
        let err = parse_chrome_trace(&without_end).expect_err("must reject");
        prop_assert!(err.contains("begin without end"), "{}", err);
    }
}

#[test]
fn phase_names_survive_the_chrome_name_field() {
    // Every phase in the taxonomy must be expressible and recoverable.
    let events: Vec<TraceEvent> = ALL_PHASES
        .iter()
        .enumerate()
        .map(|(i, &p)| TraceEvent {
            seq: i as u64,
            kind: EventKind::Span,
            phase: p,
            ts_ns: i as u64 * 100,
            dur_ns: 50,
            ..TraceEvent::EMPTY
        })
        .collect();
    let parsed = parse_chrome_trace(&chrome_trace_json(&events)).expect("valid");
    assert_eq!(parsed, events);
}
