//! Plain-text end-of-run summary: per-tier bytes moved and mean
//! bandwidth, derived from the drained event stream.
//!
//! The Chrome export answers "what happened when"; this module answers
//! the two numbers the paper's tables lead with — how many bytes each
//! storage tier moved in each direction, and at what mean bandwidth
//! (bytes over the *busy* time of that tier/direction, i.e. the sum of
//! span durations, not the wall time of the run).

use std::collections::BTreeMap;

use crate::event::{EventKind, IoDirection, TraceEvent};

/// Aggregated I/O for one `(tier, direction)` pair.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct TierIo {
    /// Number of I/O spans.
    pub ops: u64,
    /// Total payload bytes.
    pub bytes: u64,
    /// Summed span durations in nanoseconds.
    pub busy_ns: u64,
}

impl TierIo {
    /// Mean bandwidth in bytes/second over busy time (0 if never busy).
    pub fn mean_bw(&self) -> f64 {
        if self.busy_ns == 0 {
            0.0
        } else {
            self.bytes as f64 / (self.busy_ns as f64 / 1e9)
        }
    }
}

/// Per-tier, per-direction I/O totals for one event stream.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct IoSummary {
    /// `(tier, direction) -> totals`, sorted by tier then direction.
    pub per_tier: BTreeMap<(i32, u8), TierIo>,
}

/// Internal direction key: reads sort before writes.
fn dir_key(d: IoDirection) -> u8 {
    match d {
        IoDirection::Read => 0,
        IoDirection::Write => 1,
    }
}

impl IoSummary {
    /// Aggregates every tier-touching I/O span in `events`.
    pub fn from_events(events: &[TraceEvent]) -> IoSummary {
        let mut per_tier: BTreeMap<(i32, u8), TierIo> = BTreeMap::new();
        for ev in events {
            if ev.kind != EventKind::Span || ev.tier < 0 {
                continue;
            }
            let Some(dir) = ev.phase.direction() else {
                continue;
            };
            let slot = per_tier.entry((ev.tier, dir_key(dir))).or_default();
            slot.ops += 1;
            slot.bytes += ev.bytes;
            slot.busy_ns += ev.dur_ns;
        }
        IoSummary { per_tier }
    }

    /// Totals for one tier and direction.
    pub fn tier(&self, tier: i32, dir: IoDirection) -> TierIo {
        self.per_tier.get(&(tier, dir_key(dir))).copied().unwrap_or_default()
    }

    /// Total bytes moved across all tiers and directions.
    pub fn total_bytes(&self) -> u64 {
        self.per_tier.values().map(|t| t.bytes).sum()
    }

    /// Renders the summary as an aligned text table. `tier_names` maps
    /// a tier index to a label (indexes past the slice print as
    /// `tier<N>`).
    pub fn render(&self, tier_names: &[&str]) -> String {
        let mut rows: Vec<[String; 5]> = vec![[
            "tier".into(),
            "dir".into(),
            "ops".into(),
            "bytes".into(),
            "mean bandwidth".into(),
        ]];
        for (&(tier, dk), io) in &self.per_tier {
            let name = tier_names
                .get(tier as usize)
                .map(|s| (*s).to_owned())
                .unwrap_or_else(|| format!("tier{tier}"));
            let dir = if dk == 0 { "read" } else { "write" };
            rows.push([
                name,
                dir.into(),
                io.ops.to_string(),
                human_bytes(io.bytes),
                format!("{}/s", human_bytes(io.mean_bw() as u64)),
            ]);
        }
        render_table(&rows)
    }
}

/// `1536 -> "1.5 KiB"`, `0 -> "0 B"`; two significant decimals.
pub fn human_bytes(n: u64) -> String {
    const UNITS: &[&str] = &["B", "KiB", "MiB", "GiB", "TiB", "PiB"];
    let mut v = n as f64;
    let mut unit = 0;
    while v >= 1024.0 && unit + 1 < UNITS.len() {
        v /= 1024.0;
        unit += 1;
    }
    if unit == 0 {
        format!("{n} B")
    } else {
        format!("{v:.2} {}", UNITS[unit])
    }
}

/// Left-aligns every column to its widest cell, two-space separated.
fn render_table(rows: &[[String; 5]]) -> String {
    let mut widths = [0usize; 5];
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    for (i, row) in rows.iter().enumerate() {
        let line: Vec<String> = row
            .iter()
            .zip(widths)
            .map(|(cell, w)| format!("{cell:<w$}"))
            .collect();
        out.push_str(line.join("  ").trim_end());
        out.push('\n');
        if i == 0 {
            let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
            out.push_str(&"-".repeat(total));
            out.push('\n');
        }
    }
    out
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use crate::event::{Attrs, Phase};
    use crate::sink::TraceSink;

    fn sample() -> Vec<TraceEvent> {
        let s = TraceSink::with_capacity(16);
        // Tier 0: two reads totalling 3000 bytes over 2 µs busy.
        s.complete_span(Phase::Fetch, Attrs { tier: 0, ..Attrs::bytes(1000) }, 0, 1_000);
        s.complete_span(Phase::Fetch, Attrs { tier: 0, ..Attrs::bytes(2000) }, 1_000, 2_000);
        // Tier 1: one write of 5000 bytes over 5 µs busy.
        s.complete_span(Phase::Flush, Attrs { tier: 1, ..Attrs::bytes(5000) }, 0, 5_000);
        // Compute span and instants are excluded from I/O totals.
        s.complete_span(Phase::Backward, Attrs::NONE, 0, 9_000);
        s.instant(Phase::AioRetry, Attrs { tier: 0, ..Attrs::NONE }, 10);
        s.events()
    }

    #[test]
    fn aggregates_per_tier_and_direction() {
        let sum = IoSummary::from_events(&sample());
        let r0 = sum.tier(0, IoDirection::Read);
        assert_eq!((r0.ops, r0.bytes, r0.busy_ns), (2, 3000, 2_000));
        assert!((r0.mean_bw() - 1.5e9).abs() < 1.0, "{}", r0.mean_bw());
        let w1 = sum.tier(1, IoDirection::Write);
        assert_eq!((w1.ops, w1.bytes), (1, 5000));
        assert_eq!(sum.tier(1, IoDirection::Read), TierIo::default());
        assert_eq!(sum.total_bytes(), 8000);
    }

    #[test]
    fn render_uses_tier_names_and_aligns() {
        let sum = IoSummary::from_events(&sample());
        let table = sum.render(&["nvme", "pfs"]);
        assert!(table.contains("nvme"), "{table}");
        assert!(table.contains("pfs"), "{table}");
        assert!(table.contains("read"), "{table}");
        assert!(table.contains("write"), "{table}");
        assert!(table.lines().count() >= 4, "{table}");
    }

    #[test]
    fn human_bytes_picks_sane_units() {
        assert_eq!(human_bytes(0), "0 B");
        assert_eq!(human_bytes(512), "512 B");
        assert_eq!(human_bytes(1536), "1.50 KiB");
        assert_eq!(human_bytes(3 * 1024 * 1024 * 1024), "3.00 GiB");
    }
}
