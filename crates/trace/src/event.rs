//! The structured event record and its phase taxonomy.
//!
//! Every instrumented operation in the pipeline — an I/O op inside
//! [`AioEngine`](../../mlp_aio/index.html), a subgroup fetch in the
//! virtual-time engines, a fused optimizer kernel — is recorded as one
//! [`TraceEvent`]: a fixed-size, `Copy` record carrying a global sequence
//! number, the [`Phase`] taxonomy tag, a `(pid, tid)` track coordinate
//! for timeline rendering, and the tier / subgroup / byte-count
//! attributes the figure pipeline aggregates over.

/// Whether an event is a duration span or a point-in-time marker.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A duration: `ts_ns .. ts_ns + dur_ns`.
    Span,
    /// A point event (`dur_ns` is zero and meaningless).
    Instant,
}

/// The event taxonomy — every instrumented operation maps onto exactly
/// one of these tags (see `OBSERVABILITY.md` for the full catalogue and
/// which component emits which tag).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Phase {
    /// One full training iteration (trainer-level umbrella span).
    Iteration,
    /// Forward pass compute.
    Forward,
    /// Backward pass compute (per micro-step or whole pass).
    Backward,
    /// Gradient shard written toward a storage tier.
    GradFlush,
    /// Gradient shard read back from a storage tier.
    GradFetch,
    /// Optimizer-state subgroup read from a tier into host memory.
    Fetch,
    /// Optimizer-state subgroup written from host memory to a tier.
    Flush,
    /// The update phase of one iteration (umbrella span).
    Update,
    /// One fused (or multi-pass) optimizer kernel invocation.
    UpdateKernel,
    /// An `AioEngine` read op, submit-to-completion.
    AioRead,
    /// An `AioEngine` write op, submit-to-completion.
    AioWrite,
    /// An `AioEngine` delete op, submit-to-completion.
    AioDelete,
    /// One batched submission by an `IoEngine` driver (io_uring): the
    /// span covers `io_uring_enter` for a group of SQEs; `bytes` is the
    /// batch size in ops, not payload bytes.
    AioBatch,
    /// A retry re-issued by the `AioEngine` backoff policy (instant).
    AioRetry,
    /// A fault injected by `FaultInjectBackend` (instant).
    FaultInject,
    /// A pinned buffer checked out of the pool (instant).
    PoolAcquire,
    /// A pinned buffer returned to the pool (instant).
    PoolRelease,
    /// A raw storage-backend read (`TracedBackend` decorator).
    TierRead,
    /// A raw storage-backend write (`TracedBackend` decorator).
    TierWrite,
    /// An adaptive-planner re-plan decision (instant): the estimator fold
    /// that produces the next iteration's tier split. `bytes` carries the
    /// number of migration steps the decision scheduled.
    Replan,
    /// One durable-copy migration between tiers (span): read from the
    /// source tier, write to the destination, delete the source copy.
    /// `tier` is the destination; the source is recoverable from the
    /// paired `AioRead`/`AioDelete` events.
    Migrate,
    /// One subgroup of a checkpoint flushed to the fast durable tier
    /// (span). Overlaps the next backward pass when the checkpoint
    /// pipeline runs asynchronously.
    CkptFlush,
    /// One checkpointed subgroup trickled from the fast durable tier to
    /// the object store (span): the slow second hop of the multi-tier
    /// checkpoint pipeline, fully off the critical path.
    CkptTrickle,
    /// A tier's circuit breaker latched permanently open (instant):
    /// from here on the tier is excluded from placement and its durable
    /// copies are evacuated. `tier` identifies the quarantined tier.
    Quarantine,
    /// One durable subgroup copy evacuated off a quarantined tier
    /// (span): read from the dying tier, write to a survivor, update the
    /// placement, best-effort delete of the source. `tier` is the
    /// destination; `bytes` the copy size.
    Drain,
}

/// All phases, in a fixed order (used by exporters and tests).
pub const ALL_PHASES: &[Phase] = &[
    Phase::Iteration,
    Phase::Forward,
    Phase::Backward,
    Phase::GradFlush,
    Phase::GradFetch,
    Phase::Fetch,
    Phase::Flush,
    Phase::Update,
    Phase::UpdateKernel,
    Phase::AioRead,
    Phase::AioWrite,
    Phase::AioDelete,
    Phase::AioBatch,
    Phase::AioRetry,
    Phase::FaultInject,
    Phase::PoolAcquire,
    Phase::PoolRelease,
    Phase::TierRead,
    Phase::TierWrite,
    Phase::Replan,
    Phase::Migrate,
    Phase::CkptFlush,
    Phase::CkptTrickle,
    Phase::Quarantine,
    Phase::Drain,
];

impl Phase {
    /// Stable string name (the `name` field of exported Chrome events).
    pub fn as_str(self) -> &'static str {
        match self {
            Phase::Iteration => "iteration",
            Phase::Forward => "forward",
            Phase::Backward => "backward",
            Phase::GradFlush => "grad_flush",
            Phase::GradFetch => "grad_fetch",
            Phase::Fetch => "fetch",
            Phase::Flush => "flush",
            Phase::Update => "update",
            Phase::UpdateKernel => "update_kernel",
            Phase::AioRead => "aio_read",
            Phase::AioWrite => "aio_write",
            Phase::AioDelete => "aio_delete",
            Phase::AioBatch => "aio_batch",
            Phase::AioRetry => "aio_retry",
            Phase::FaultInject => "fault_inject",
            Phase::PoolAcquire => "pool_acquire",
            Phase::PoolRelease => "pool_release",
            Phase::TierRead => "tier_read",
            Phase::TierWrite => "tier_write",
            Phase::Replan => "replan",
            Phase::Migrate => "migrate",
            Phase::CkptFlush => "ckpt_flush",
            Phase::CkptTrickle => "ckpt_trickle",
            Phase::Quarantine => "quarantine",
            Phase::Drain => "drain",
        }
    }

    /// Inverse of [`Phase::as_str`] (used by the Chrome-JSON parser).
    pub fn from_str(s: &str) -> Option<Phase> {
        ALL_PHASES.iter().copied().find(|p| p.as_str() == s)
    }

    /// Which way this phase moves bytes through storage, if it does.
    /// Drives the per-tier read/write split in the summary table.
    pub fn direction(self) -> Option<IoDirection> {
        match self {
            Phase::GradFetch | Phase::Fetch | Phase::AioRead | Phase::TierRead => {
                Some(IoDirection::Read)
            }
            Phase::GradFlush
            | Phase::Flush
            | Phase::AioWrite
            | Phase::TierWrite
            | Phase::CkptFlush
            | Phase::CkptTrickle => Some(IoDirection::Write),
            _ => None,
        }
    }
}

impl std::fmt::Display for Phase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Read or write, from the storage tier's point of view.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum IoDirection {
    /// Tier → host.
    Read,
    /// Host → tier.
    Write,
}

/// Track coordinates and data attributes attached to an event.
///
/// `pid` groups tracks into a Chrome "process" (one per engine or
/// worker); `tid` is the lane within it (compute, per-tier I/O, pool).
/// `tier`/`subgroup` are `-1` when not applicable.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Attrs {
    /// Chrome process id: engine / worker index.
    pub pid: u32,
    /// Chrome thread id: lane within the process.
    pub tid: u32,
    /// Storage-tier index, or `-1` if the event touches no tier.
    pub tier: i32,
    /// Parameter-subgroup index, or `-1` if not subgroup-scoped.
    pub subgroup: i64,
    /// Payload bytes moved by the operation (0 for pure compute).
    pub bytes: u64,
}

impl Attrs {
    /// No tier, no subgroup, no bytes, track `(0, 0)`.
    pub const NONE: Attrs = Attrs {
        pid: 0,
        tid: 0,
        tier: -1,
        subgroup: -1,
        bytes: 0,
    };

    /// `NONE` with a byte count.
    pub fn bytes(n: u64) -> Attrs {
        Attrs { bytes: n, ..Attrs::NONE }
    }
}

impl Default for Attrs {
    fn default() -> Self {
        Attrs::NONE
    }
}

/// One recorded event. Fixed-size and `Copy` so the ring can store it
/// inline and producers never allocate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Global sequence number (allocation order across all producers).
    pub seq: u64,
    /// Span or instant.
    pub kind: EventKind,
    /// Taxonomy tag.
    pub phase: Phase,
    /// Chrome process id (engine / worker index).
    pub pid: u32,
    /// Chrome thread id (lane within the process).
    pub tid: u32,
    /// Storage-tier index, `-1` if none.
    pub tier: i32,
    /// Parameter-subgroup index, `-1` if none.
    pub subgroup: i64,
    /// Payload bytes moved.
    pub bytes: u64,
    /// Start timestamp, nanoseconds (wall-clock since sink creation, or
    /// absolute virtual time for the simulation engines).
    pub ts_ns: u64,
    /// Duration in nanoseconds (0 for instants).
    pub dur_ns: u64,
}

impl TraceEvent {
    /// Placeholder record used to initialize ring slots.
    pub const EMPTY: TraceEvent = TraceEvent {
        seq: 0,
        kind: EventKind::Instant,
        phase: Phase::Iteration,
        pid: 0,
        tid: 0,
        tier: -1,
        subgroup: -1,
        bytes: 0,
        ts_ns: 0,
        dur_ns: 0,
    };

    /// End timestamp (`ts_ns + dur_ns`, saturating).
    pub fn end_ns(&self) -> u64 {
        self.ts_ns.saturating_add(self.dur_ns)
    }

    /// True if the two spans overlap in time for at least one nanosecond.
    pub fn overlaps(&self, other: &TraceEvent) -> bool {
        self.ts_ns < other.end_ns() && other.ts_ns < self.end_ns()
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    #[test]
    fn phase_names_round_trip() {
        for &p in ALL_PHASES {
            assert_eq!(Phase::from_str(p.as_str()), Some(p), "{p:?}");
        }
        assert_eq!(Phase::from_str("nonsense"), None);
    }

    #[test]
    fn directions_cover_the_io_phases() {
        assert_eq!(Phase::Fetch.direction(), Some(IoDirection::Read));
        assert_eq!(Phase::Flush.direction(), Some(IoDirection::Write));
        assert_eq!(Phase::GradFetch.direction(), Some(IoDirection::Read));
        assert_eq!(Phase::GradFlush.direction(), Some(IoDirection::Write));
        assert_eq!(Phase::CkptFlush.direction(), Some(IoDirection::Write));
        assert_eq!(Phase::CkptTrickle.direction(), Some(IoDirection::Write));
        assert_eq!(Phase::Backward.direction(), None);
        assert_eq!(Phase::PoolAcquire.direction(), None);
    }

    #[test]
    fn overlap_is_symmetric_and_strict() {
        let mk = |ts, dur| TraceEvent {
            kind: EventKind::Span,
            ts_ns: ts,
            dur_ns: dur,
            ..TraceEvent::EMPTY
        };
        let a = mk(0, 10);
        let b = mk(5, 10);
        let c = mk(10, 5); // abuts a, does not overlap
        assert!(a.overlaps(&b) && b.overlaps(&a));
        assert!(!a.overlaps(&c) && !c.overlaps(&a));
    }
}
