//! The shared recording handle threaded through engine configs.
//!
//! [`TraceSink`] is a cheap clone-able handle that is either *disabled*
//! (the default — a `None` inside, so every record call is one branch
//! and returns) or *enabled* (an `Arc` of ring + registry + clock
//! epoch). Engines store it in their config structs; instrumented
//! components clone it freely. Disabled sinks make instrumentation
//! zero-cost: no event is constructed, no atomic touched.
//!
//! Timestamps are nanoseconds relative to the sink's creation instant
//! ([`TraceSink::now_ns`]) for wall-clock components, while the
//! virtual-time simulation engines pass their own absolute virtual
//! timestamps — the exporters only care that all events recorded into
//! one sink share a timebase.

use std::time::Instant;

use mlp_sync::atomic::{AtomicU64, Ordering};
use mlp_sync::Arc;

use crate::event::{Attrs, EventKind, Phase, TraceEvent};
use crate::metrics::{Counter, Gauge, Histogram, MetricsRegistry, MetricsSnapshot};
use crate::ring::EventRing;

/// Default event-ring capacity (events, each ~80 bytes).
pub const DEFAULT_RING_CAPACITY: usize = 1 << 16;

struct SinkShared {
    ring: EventRing,
    seq: AtomicU64,
    metrics: MetricsRegistry,
    epoch: Instant,
}

/// Clone-able, possibly-disabled recording handle. See module docs.
#[derive(Clone, Default)]
pub struct TraceSink {
    inner: Option<Arc<SinkShared>>,
}

impl TraceSink {
    /// A sink that records nothing (every call is a single branch).
    pub fn disabled() -> TraceSink {
        TraceSink { inner: None }
    }

    /// An enabled sink with the default ring capacity.
    pub fn enabled() -> TraceSink {
        TraceSink::with_capacity(DEFAULT_RING_CAPACITY)
    }

    /// An enabled sink with at least `capacity` ring slots.
    pub fn with_capacity(capacity: usize) -> TraceSink {
        TraceSink {
            inner: Some(Arc::new(SinkShared {
                ring: EventRing::with_capacity(capacity),
                seq: AtomicU64::new(0),
                metrics: MetricsRegistry::new(),
                epoch: Instant::now(),
            })),
        }
    }

    /// True when this sink records events.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Nanoseconds since this sink was created (0 when disabled).
    /// Wall-clock components use this; virtual-time engines pass their
    /// own timestamps instead.
    #[inline]
    pub fn now_ns(&self) -> u64 {
        match &self.inner {
            Some(s) => s.epoch.elapsed().as_nanos() as u64,
            None => 0,
        }
    }

    /// Records a completed span `[start_ns, end_ns]`. No-op when
    /// disabled.
    pub fn complete_span(&self, phase: Phase, attrs: Attrs, start_ns: u64, end_ns: u64) {
        if let Some(s) = &self.inner {
            let ev = TraceEvent {
                seq: s.seq.fetch_add(1, Ordering::AcqRel),
                kind: EventKind::Span,
                phase,
                pid: attrs.pid,
                tid: attrs.tid,
                tier: attrs.tier,
                subgroup: attrs.subgroup,
                bytes: attrs.bytes,
                ts_ns: start_ns,
                dur_ns: end_ns.saturating_sub(start_ns),
            };
            s.ring.push(ev);
        }
    }

    /// Records a point event at `ts_ns`. No-op when disabled.
    pub fn instant(&self, phase: Phase, attrs: Attrs, ts_ns: u64) {
        if let Some(s) = &self.inner {
            let ev = TraceEvent {
                seq: s.seq.fetch_add(1, Ordering::AcqRel),
                kind: EventKind::Instant,
                phase,
                pid: attrs.pid,
                tid: attrs.tid,
                tier: attrs.tier,
                subgroup: attrs.subgroup,
                bytes: attrs.bytes,
                ts_ns,
                dur_ns: 0,
            };
            s.ring.push(ev);
        }
    }

    /// Starts a wall-clock span that records itself on drop. Returns an
    /// inert guard when disabled.
    pub fn span(&self, phase: Phase, attrs: Attrs) -> SpanGuard {
        SpanGuard {
            sink: if self.is_enabled() { Some(self.clone()) } else { None },
            phase,
            attrs,
            start_ns: self.now_ns(),
        }
    }

    /// Counter handle named `name` (detached, never exported, when the
    /// sink is disabled — increments still work but cost one atomic).
    pub fn counter(&self, name: &str) -> Counter {
        match &self.inner {
            Some(s) => s.metrics.counter(name),
            None => Counter::detached(),
        }
    }

    /// Gauge handle named `name` (detached when disabled).
    pub fn gauge(&self, name: &str) -> Gauge {
        match &self.inner {
            Some(s) => s.metrics.gauge(name),
            None => Gauge::detached(),
        }
    }

    /// Histogram handle named `name` (detached when disabled).
    pub fn histogram(&self, name: &str) -> Histogram {
        match &self.inner {
            Some(s) => s.metrics.histogram(name),
            None => Histogram::detached(),
        }
    }

    /// Drains every event recorded so far, sorted by sequence number.
    /// Call after producers quiesce (end of run). Empty when disabled.
    pub fn events(&self) -> Vec<TraceEvent> {
        match &self.inner {
            Some(s) => s.ring.drain(),
            None => Vec::new(),
        }
    }

    /// Snapshot of every registered metric. Empty when disabled.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        match &self.inner {
            Some(s) => s.metrics.snapshot(),
            None => MetricsSnapshot::default(),
        }
    }

    /// How many events took the ring's archive slow path (0 = the ring
    /// capacity was sufficient).
    pub fn overflow_count(&self) -> u64 {
        match &self.inner {
            Some(s) => s.ring.overflow_count(),
            None => 0,
        }
    }
}

impl std::fmt::Debug for TraceSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            Some(s) => write!(f, "TraceSink(enabled, ~{} buffered)", s.ring.len()),
            None => write!(f, "TraceSink(disabled)"),
        }
    }
}

/// Two sinks are equal when both are disabled or both are handles to
/// the same shared state. (Config structs derive `PartialEq`; a config
/// carrying a default sink compares equal to another default config.)
impl PartialEq for TraceSink {
    fn eq(&self, other: &Self) -> bool {
        match (&self.inner, &other.inner) {
            (None, None) => true,
            (Some(a), Some(b)) => Arc::ptr_eq(a, b),
            _ => false,
        }
    }
}

/// RAII wall-clock span: records `phase` from construction to drop.
/// Returned by [`TraceSink::span`].
pub struct SpanGuard {
    sink: Option<TraceSink>,
    phase: Phase,
    attrs: Attrs,
    start_ns: u64,
}

impl SpanGuard {
    /// Updates the byte count attributed to the span (e.g. once the
    /// transfer size is known).
    pub fn set_bytes(&mut self, bytes: u64) {
        self.attrs.bytes = bytes;
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(sink) = &self.sink {
            let end = sink.now_ns();
            sink.complete_span(self.phase, self.attrs, self.start_ns, end);
        }
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    #[test]
    fn disabled_sink_records_nothing_and_costs_nothing() {
        let s = TraceSink::disabled();
        assert!(!s.is_enabled());
        assert_eq!(s.now_ns(), 0);
        s.complete_span(Phase::Fetch, Attrs::bytes(10), 0, 5);
        s.instant(Phase::AioRetry, Attrs::NONE, 3);
        drop(s.span(Phase::Update, Attrs::NONE));
        s.counter("x").inc();
        assert!(s.events().is_empty());
        assert!(s.metrics_snapshot().is_empty());
        assert_eq!(s, TraceSink::default());
    }

    #[test]
    fn enabled_sink_assigns_monotone_seq() {
        let s = TraceSink::with_capacity(16);
        s.complete_span(Phase::Fetch, Attrs::bytes(100), 10, 30);
        s.instant(Phase::AioRetry, Attrs::NONE, 40);
        s.complete_span(Phase::Flush, Attrs { tier: 1, ..Attrs::bytes(200) }, 50, 90);
        let evs = s.events();
        assert_eq!(evs.len(), 3);
        assert_eq!(evs[0].seq, 0);
        assert_eq!(evs[1].seq, 1);
        assert_eq!(evs[2].seq, 2);
        assert_eq!(evs[0].dur_ns, 20);
        assert_eq!(evs[1].kind, EventKind::Instant);
        assert_eq!(evs[2].tier, 1);
        // Drained: a second read is empty.
        assert!(s.events().is_empty());
    }

    #[test]
    fn span_guard_records_on_drop() {
        let s = TraceSink::with_capacity(16);
        {
            let mut g = s.span(Phase::UpdateKernel, Attrs::NONE);
            g.set_bytes(4096);
        }
        let evs = s.events();
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].phase, Phase::UpdateKernel);
        assert_eq!(evs[0].bytes, 4096);
    }

    #[test]
    fn clones_share_state_and_compare_equal() {
        let a = TraceSink::with_capacity(16);
        let b = a.clone();
        b.complete_span(Phase::Forward, Attrs::NONE, 0, 1);
        assert_eq!(a.events().len(), 1);
        assert_eq!(a, b);
        assert_ne!(a, TraceSink::with_capacity(16));
        assert_ne!(a, TraceSink::disabled());
    }

    #[test]
    fn metrics_reach_the_shared_registry() {
        let s = TraceSink::with_capacity(16);
        let c = s.counter("tier0.write_bytes");
        c.add(123);
        s.clone().counter("tier0.write_bytes").add(1);
        assert_eq!(s.metrics_snapshot().counter("tier0.write_bytes"), Some(124));
    }
}
