//! CSV export for the figure pipeline.
//!
//! Two flat files: one row per event (for timeline/overlap figures) and
//! one row per metric (for bandwidth/counter tables). Both are plain
//! RFC-4180-without-quoting CSV — every emitted field is numeric or a
//! `[a-z_.]` identifier, so no escaping is needed.

use crate::event::{EventKind, TraceEvent};
use crate::metrics::MetricsSnapshot;

/// One row per event:
/// `seq,kind,phase,pid,tid,tier,subgroup,bytes,ts_ns,dur_ns`.
pub fn events_csv(events: &[TraceEvent]) -> String {
    let mut out = String::from("seq,kind,phase,pid,tid,tier,subgroup,bytes,ts_ns,dur_ns\n");
    for ev in events {
        let kind = match ev.kind {
            EventKind::Span => "span",
            EventKind::Instant => "instant",
        };
        out.push_str(&format!(
            "{},{kind},{},{},{},{},{},{},{},{}\n",
            ev.seq,
            ev.phase.as_str(),
            ev.pid,
            ev.tid,
            ev.tier,
            ev.subgroup,
            ev.bytes,
            ev.ts_ns,
            ev.dur_ns
        ));
    }
    out
}

/// One row per metric: `kind,name,value` (histograms contribute their
/// count, sum, and mean as three rows).
pub fn metrics_csv(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::from("kind,name,value\n");
    for (name, v) in &snapshot.counters {
        out.push_str(&format!("counter,{name},{v}\n"));
    }
    for (name, v) in &snapshot.gauges {
        out.push_str(&format!("gauge,{name},{v}\n"));
    }
    for (name, h) in &snapshot.histograms {
        out.push_str(&format!("histogram,{name}.count,{}\n", h.count));
        out.push_str(&format!("histogram,{name}.sum,{}\n", h.sum));
        out.push_str(&format!("histogram,{name}.mean,{}\n", h.mean()));
    }
    out
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use crate::event::{Attrs, Phase};
    use crate::sink::TraceSink;

    #[test]
    fn events_csv_has_one_row_per_event() {
        let s = TraceSink::with_capacity(8);
        s.complete_span(Phase::Fetch, Attrs { tier: 0, ..Attrs::bytes(64) }, 10, 20);
        s.instant(Phase::AioRetry, Attrs::NONE, 30);
        let csv = events_csv(&s.events());
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], "seq,kind,phase,pid,tid,tier,subgroup,bytes,ts_ns,dur_ns");
        assert_eq!(lines[1], "0,span,fetch,0,0,0,-1,64,10,10");
        assert_eq!(lines[2], "1,instant,aio_retry,0,0,-1,-1,0,30,0");
    }

    #[test]
    fn metrics_csv_lists_every_metric() {
        let s = TraceSink::with_capacity(8);
        s.counter("reads").add(3);
        s.gauge("pending").set(2);
        s.histogram("lat").record(8);
        let csv = metrics_csv(&s.metrics_snapshot());
        assert!(csv.contains("counter,reads,3\n"), "{csv}");
        assert!(csv.contains("gauge,pending,2\n"), "{csv}");
        assert!(csv.contains("histogram,lat.count,1\n"), "{csv}");
        assert!(csv.contains("histogram,lat.mean,8\n"), "{csv}");
    }
}
