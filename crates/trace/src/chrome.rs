//! Chrome `trace_event` JSON export (and re-import).
//!
//! [`chrome_trace_json`] renders drained events in the Trace Event
//! Format understood by `chrome://tracing` and [Perfetto]: spans become
//! balanced `"B"`/`"E"` pairs on their `(pid, tid)` track, instants
//! become `"i"` marks, and optional process/thread names are emitted as
//! `"M"` metadata records. Timestamps are microseconds with three
//! decimals, preserving the events' nanosecond resolution exactly.
//!
//! [`parse_chrome_trace`] is the inverse: a minimal, dependency-free
//! JSON reader that re-builds [`TraceEvent`]s from an exported file,
//! verifying on the way that every `"B"` has a matching `"E"`. It
//! exists so tests can prove the export round-trips (parse → re-emit →
//! byte-identical) and so downstream tooling can post-process traces
//! without a JSON dependency.
//!
//! [Perfetto]: https://ui.perfetto.dev

use std::collections::HashMap;

use crate::event::{EventKind, Phase, TraceEvent};

// ---------------------------------------------------------------------------
// Emission
// ---------------------------------------------------------------------------

/// Nanoseconds → microseconds with exactly three decimals (lossless).
fn fmt_us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1000, ns % 1000)
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Exports `events` as a Chrome trace (object form, `traceEvents` key).
pub fn chrome_trace_json(events: &[TraceEvent]) -> String {
    chrome_trace_json_named(events, &[], &[])
}

/// [`chrome_trace_json`] plus `process_name` / `thread_name` metadata
/// records: `process_names` maps a pid to a label, `thread_names` maps
/// a `(pid, tid)` pair to a lane label.
pub fn chrome_trace_json_named(
    events: &[TraceEvent],
    process_names: &[(u32, &str)],
    thread_names: &[(u32, u32, &str)],
) -> String {
    // Each entry sorts by (timestamp, event seq, begin-before-end) so
    // the output is deterministic and replays in time order.
    let mut entries: Vec<(u64, u64, u8, String)> = Vec::with_capacity(events.len() * 2);
    for ev in events {
        let name = ev.phase.as_str();
        let common_args = format!(
            "\"seq\":{},\"tier\":{},\"subgroup\":{},\"bytes\":{}",
            ev.seq, ev.tier, ev.subgroup, ev.bytes
        );
        match ev.kind {
            EventKind::Span => {
                entries.push((
                    ev.ts_ns,
                    ev.seq,
                    0,
                    format!(
                        "{{\"name\":\"{name}\",\"cat\":\"mlp\",\"ph\":\"B\",\"ts\":{},\
                         \"pid\":{},\"tid\":{},\"args\":{{{common_args}}}}}",
                        fmt_us(ev.ts_ns),
                        ev.pid,
                        ev.tid
                    ),
                ));
                entries.push((
                    ev.end_ns(),
                    ev.seq,
                    1,
                    format!(
                        "{{\"name\":\"{name}\",\"cat\":\"mlp\",\"ph\":\"E\",\"ts\":{},\
                         \"pid\":{},\"tid\":{},\"args\":{{\"seq\":{}}}}}",
                        fmt_us(ev.end_ns()),
                        ev.pid,
                        ev.tid,
                        ev.seq
                    ),
                ));
            }
            EventKind::Instant => {
                entries.push((
                    ev.ts_ns,
                    ev.seq,
                    0,
                    format!(
                        "{{\"name\":\"{name}\",\"cat\":\"mlp\",\"ph\":\"i\",\"s\":\"t\",\
                         \"ts\":{},\"pid\":{},\"tid\":{},\"args\":{{{common_args}}}}}",
                        fmt_us(ev.ts_ns),
                        ev.pid,
                        ev.tid
                    ),
                ));
            }
        }
    }
    entries.sort_by(|a, b| (a.0, a.1, a.2).cmp(&(b.0, b.1, b.2)));

    let mut parts: Vec<String> = Vec::with_capacity(entries.len() + 8);
    for (pid, name) in process_names {
        parts.push(format!(
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\
             \"args\":{{\"name\":\"{}\"}}}}",
            escape_json(name)
        ));
    }
    for (pid, tid, name) in thread_names {
        parts.push(format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\
             \"args\":{{\"name\":\"{}\"}}}}",
            escape_json(name)
        ));
    }
    parts.extend(entries.into_iter().map(|(_, _, _, s)| s));

    let mut out = String::from("{\"traceEvents\":[\n");
    out.push_str(&parts.join(",\n"));
    out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
    out
}

// ---------------------------------------------------------------------------
// Minimal JSON reader
// ---------------------------------------------------------------------------

/// A parsed JSON value (just enough structure for trace files).
#[derive(Clone, Debug, PartialEq)]
enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(Vec<(String, Value)>),
}

impl Value {
    fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> String {
        format!("chrome trace parse error at byte {}: {msg}", self.pos)
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, String> {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        self.skip_ws();
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while self.bytes.get(self.pos).is_some_and(|b| {
            b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-')
        }) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("non-UTF-8 number"))?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.err(&format!("bad number `{text}`")))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos).copied() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos).copied() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(b) => {
                    // Consume one UTF-8 scalar (multi-byte sequences pass
                    // through unchanged).
                    let len = match b {
                        b if b < 0x80 => 1,
                        b if b >= 0xF0 => 4,
                        b if b >= 0xE0 => 3,
                        _ => 2,
                    };
                    let chunk = self
                        .bytes
                        .get(self.pos..self.pos + len)
                        .and_then(|c| std::str::from_utf8(c).ok())
                        .ok_or_else(|| self.err("invalid UTF-8 in string"))?;
                    out.push_str(chunk);
                    self.pos += len;
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            fields.push((key, self.value()?));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }
}

fn parse_json(text: &str) -> Result<Value, String> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data after JSON document"));
    }
    Ok(v)
}

// ---------------------------------------------------------------------------
// Re-import
// ---------------------------------------------------------------------------

/// Microseconds (fractional) → nanoseconds, rounding to the nearest.
fn us_to_ns(us: f64) -> u64 {
    (us * 1000.0).round() as u64
}

fn field_u64(v: &Value, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(Value::as_f64)
        .map(|n| n as u64)
        .ok_or_else(|| format!("event missing numeric `{key}`"))
}

fn field_i64(v: &Value, key: &str) -> Result<i64, String> {
    v.get(key)
        .and_then(Value::as_f64)
        .map(|n| n as i64)
        .ok_or_else(|| format!("event missing numeric `{key}`"))
}

/// Parses an exported Chrome trace back into [`TraceEvent`]s, sorted by
/// sequence number.
///
/// Accepts both the object form (`{"traceEvents": [...]}`) and a bare
/// array. Metadata (`"M"`) records are skipped. Fails when a span's
/// begin/end records are unbalanced, when a phase name is unknown, or
/// when the file is not valid JSON — so this doubles as a validator.
pub fn parse_chrome_trace(text: &str) -> Result<Vec<TraceEvent>, String> {
    let doc = parse_json(text)?;
    let entries = match &doc {
        Value::Arr(items) => items.as_slice(),
        Value::Obj(_) => match doc.get("traceEvents") {
            Some(Value::Arr(items)) => items.as_slice(),
            _ => return Err("missing `traceEvents` array".into()),
        },
        _ => return Err("top level must be an array or object".into()),
    };

    let mut out: Vec<TraceEvent> = Vec::new();
    // Open B records keyed by (pid, tid, seq), awaiting their E.
    let mut open: HashMap<(u32, u32, u64), TraceEvent> = HashMap::new();
    for entry in entries {
        let ph = entry
            .get("ph")
            .and_then(Value::as_str)
            .ok_or("event missing `ph`")?;
        if ph == "M" {
            continue;
        }
        let name = entry
            .get("name")
            .and_then(Value::as_str)
            .ok_or("event missing `name`")?;
        let phase = Phase::from_str(name).ok_or_else(|| format!("unknown phase `{name}`"))?;
        let pid = field_u64(entry, "pid")? as u32;
        let tid = field_u64(entry, "tid")? as u32;
        let ts_ns = us_to_ns(
            entry
                .get("ts")
                .and_then(Value::as_f64)
                .ok_or("event missing `ts`")?,
        );
        let args = entry.get("args").ok_or("event missing `args`")?;
        let seq = field_u64(args, "seq")?;
        match ph {
            "B" | "i" | "I" => {
                let ev = TraceEvent {
                    seq,
                    kind: if ph == "B" { EventKind::Span } else { EventKind::Instant },
                    phase,
                    pid,
                    tid,
                    tier: field_i64(args, "tier")? as i32,
                    subgroup: field_i64(args, "subgroup")?,
                    bytes: field_u64(args, "bytes")?,
                    ts_ns,
                    dur_ns: 0,
                };
                if ph == "B" {
                    if open.insert((pid, tid, seq), ev).is_some() {
                        return Err(format!("duplicate begin for seq {seq} on {pid}/{tid}"));
                    }
                } else {
                    out.push(ev);
                }
            }
            "E" => {
                let mut ev = open.remove(&(pid, tid, seq)).ok_or_else(|| {
                    format!("end without begin for seq {seq} on {pid}/{tid}")
                })?;
                if ts_ns < ev.ts_ns {
                    return Err(format!("span seq {seq} ends before it begins"));
                }
                ev.dur_ns = ts_ns - ev.ts_ns;
                out.push(ev);
            }
            other => return Err(format!("unsupported ph `{other}`")),
        }
    }
    if let Some((pid, tid, seq)) = open.keys().next() {
        return Err(format!("begin without end for seq {seq} on {pid}/{tid}"));
    }
    out.sort_by_key(|e| e.seq);
    Ok(out)
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    fn sample_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent {
                seq: 0,
                kind: EventKind::Span,
                phase: Phase::Backward,
                pid: 1,
                tid: 0,
                ts_ns: 1_000,
                dur_ns: 5_500,
                ..TraceEvent::EMPTY
            },
            TraceEvent {
                seq: 1,
                kind: EventKind::Span,
                phase: Phase::Flush,
                pid: 1,
                tid: 2,
                tier: 1,
                subgroup: 7,
                bytes: 4096,
                ts_ns: 2_001,
                dur_ns: 10_000,
            },
            TraceEvent {
                seq: 2,
                kind: EventKind::Instant,
                phase: Phase::AioRetry,
                pid: 1,
                tid: 2,
                tier: 0,
                ts_ns: 3_333,
                ..TraceEvent::EMPTY
            },
        ]
    }

    #[test]
    fn export_parses_back_to_the_same_events() {
        let events = sample_events();
        let json = chrome_trace_json(&events);
        let parsed = parse_chrome_trace(&json).expect("valid trace");
        assert_eq!(parsed, events);
    }

    #[test]
    fn re_emission_is_byte_identical() {
        let json = chrome_trace_json(&sample_events());
        let parsed = parse_chrome_trace(&json).expect("valid trace");
        assert_eq!(chrome_trace_json(&parsed), json);
    }

    #[test]
    fn metadata_records_are_emitted_and_skipped_on_parse() {
        let events = sample_events();
        let json = chrome_trace_json_named(
            &events,
            &[(1, "mlp-offload")],
            &[(1, 0, "compute"), (1, 2, "pfs")],
        );
        assert!(json.contains("process_name"));
        assert!(json.contains("thread_name"));
        assert_eq!(parse_chrome_trace(&json).expect("valid"), events);
    }

    #[test]
    fn unbalanced_spans_are_rejected() {
        let json = r#"{"traceEvents":[
            {"name":"flush","cat":"mlp","ph":"B","ts":1.000,"pid":0,"tid":0,
             "args":{"seq":0,"tier":0,"subgroup":-1,"bytes":8}}
        ]}"#;
        let err = parse_chrome_trace(json).unwrap_err();
        assert!(err.contains("begin without end"), "{err}");

        let json = r#"[{"name":"flush","ph":"E","ts":2.000,"pid":0,"tid":0,"args":{"seq":0}}]"#;
        let err = parse_chrome_trace(json).unwrap_err();
        assert!(err.contains("end without begin"), "{err}");
    }

    #[test]
    fn garbage_is_rejected_not_panicked() {
        for bad in ["", "{", "[{]", "{\"traceEvents\":3}", "[1,2,", "nul"] {
            assert!(parse_chrome_trace(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn timestamps_preserve_nanosecond_resolution() {
        assert_eq!(fmt_us(0), "0.000");
        assert_eq!(fmt_us(1), "0.001");
        assert_eq!(fmt_us(1_234_567), "1234.567");
        assert_eq!(us_to_ns(1234.567), 1_234_567);
        // A large virtual timestamp (hundreds of seconds) survives the
        // f64 round trip.
        let big = 987_654_321_012_345u64;
        let us: f64 = fmt_us(big).parse().expect("number");
        assert_eq!(us_to_ns(us), big);
    }
}
