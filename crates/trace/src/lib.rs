#![warn(missing_docs)]
#![deny(unsafe_code)]

//! Unified observability layer for the offload pipeline
//! (DESIGN.md §10).
//!
//! Every headline result in the MLP-Offload paper — the Figure 5
//! per-phase iteration timelines, the tier-bandwidth utilization
//! curves, the overlap-efficiency breakdowns — is an observability
//! artifact. This crate is the single place those artifacts come from:
//!
//! * [`TraceSink`] — a clone-able, zero-cost-when-disabled recording
//!   handle threaded through `EngineConfig`/`AioConfig`. Instrumented
//!   components (the aio engine, the pinned pool, the storage tiers,
//!   the fused optimizer kernels, the engines and trainer) record
//!   [`TraceEvent`]s and update metrics through it.
//! * [`EventRing`] — the lock-cheap bounded MPMC ring behind the sink,
//!   built on the `mlp-sync` facade so `--cfg loom` model-checks its
//!   producer/consumer protocol (`tests/loom_ring.rs`).
//! * [`MetricsRegistry`] — typed counters, gauges, and fixed
//!   log2-bucket histograms, unifying the ad-hoc counters that
//!   previously lived in `core::stats`, `AioEngine`, and the storage
//!   tiers.
//! * Exporters — [`chrome_trace_json`] for `chrome://tracing` /
//!   Perfetto timelines (with [`parse_chrome_trace`] as the verified
//!   inverse), [`events_csv`]/[`metrics_csv`] for the figure pipeline,
//!   and [`IoSummary`] for the plain-text per-tier bytes/bandwidth
//!   table printed at the end of a run.
//!
//! The only runtime dependency is `mlp-sync`; everything else —
//! including the Chrome JSON writer *and reader* — is implemented
//! in-tree. See `OBSERVABILITY.md` at the workspace root for the event
//! taxonomy and a worked Figure 5 example.
//!
//! # Example
//!
//! ```
//! use mlp_trace::{Attrs, Phase, TraceSink};
//!
//! let sink = TraceSink::with_capacity(1024);
//! // An instrumented component records a fetch span...
//! let t0 = sink.now_ns();
//! // ... perform the 4 KiB read ...
//! sink.complete_span(
//!     Phase::Fetch,
//!     Attrs { tier: 0, subgroup: 3, ..Attrs::bytes(4096) },
//!     t0,
//!     sink.now_ns(),
//! );
//! sink.counter("tier0.read_bytes").add(4096);
//!
//! // ...and the driver exports at end of run.
//! let events = sink.events();
//! let json = mlp_trace::chrome_trace_json(&events);
//! let back = mlp_trace::parse_chrome_trace(&json).unwrap();
//! assert_eq!(back, events);
//! ```

pub mod chrome;
pub mod csv;
pub mod event;
pub mod metrics;
pub mod ring;
pub mod sink;
pub mod summary;

pub use chrome::{chrome_trace_json, chrome_trace_json_named, parse_chrome_trace};
pub use csv::{events_csv, metrics_csv};
pub use event::{Attrs, EventKind, IoDirection, Phase, TraceEvent, ALL_PHASES};
pub use metrics::{
    Counter, Gauge, Histogram, HistogramSnapshot, MetricsRegistry, MetricsSnapshot,
};
pub use ring::EventRing;
pub use sink::{SpanGuard, TraceSink, DEFAULT_RING_CAPACITY};
pub use summary::{human_bytes, IoSummary, TierIo};
