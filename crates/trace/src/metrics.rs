//! Typed metrics: counters, gauges, and fixed-log2-bucket histograms
//! behind a named registry.
//!
//! This unifies the ad-hoc counters that previously lived in three
//! places — `core::stats`' byte tallies, `AioEngine`'s retry/error
//! stats, and the storage tiers' bandwidth accounting — under one
//! snapshot/export path. Handles ([`Counter`], [`Gauge`],
//! [`Histogram`]) are cheap `Arc` clones; updating one is a single
//! atomic RMW with no lock and no allocation, so they are safe to hold
//! on the I/O hot path. The registry itself is only locked on
//! registration and snapshot.
//!
//! Ordering contract: metric cells are pure monotonic tallies (or
//! last-write-wins gauges) read only by [`MetricsRegistry::snapshot`]
//! for reporting; nothing synchronizes *through* them. They still use
//! `AcqRel`/`Acquire` because the cost is irrelevant off the
//! nanosecond-scale paths and it keeps the crate free of
//! `Ordering::Relaxed` audits.

use std::collections::BTreeMap;

use mlp_sync::atomic::{AtomicU64, Ordering};
use mlp_sync::{Arc, Mutex};

/// Number of histogram buckets: bucket 0 holds zero-valued samples,
/// bucket `k >= 1` holds samples in `[2^(k-1), 2^k)`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A monotonically increasing counter.
#[derive(Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A counter not attached to any registry (used by disabled sinks).
    pub fn detached() -> Counter {
        Counter::default()
    }

    /// Adds 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::AcqRel);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Acquire)
    }
}

/// A last-write-wins instantaneous value (e.g. outstanding buffers).
#[derive(Clone, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// A gauge not attached to any registry (used by disabled sinks).
    pub fn detached() -> Gauge {
        Gauge::default()
    }

    /// Overwrites the value.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Release);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::AcqRel);
    }

    /// Subtracts `n` (wrapping like the underlying atomic; callers keep
    /// add/sub balanced).
    pub fn sub(&self, n: u64) {
        self.0.fetch_sub(n, Ordering::AcqRel);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Acquire)
    }
}

struct HistogramCells {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
}

/// A histogram over `u64` samples with fixed log2 buckets (see
/// [`HISTOGRAM_BUCKETS`]). Suited to byte counts and nanosecond
/// latencies, where order-of-magnitude resolution is what the summary
/// tables report.
#[derive(Clone)]
pub struct Histogram(Arc<HistogramCells>);

impl Default for Histogram {
    fn default() -> Self {
        Histogram(Arc::new(HistogramCells {
            buckets: (0..HISTOGRAM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }))
    }
}

/// Bucket index for a sample: 0 for 0, else `floor(log2(v)) + 1`.
pub fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// Inclusive upper bound of bucket `i` (`0` for bucket 0, else
/// `2^i - 1`), for rendering.
pub fn bucket_upper_bound(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

impl Histogram {
    /// A histogram not attached to any registry (used by disabled sinks).
    pub fn detached() -> Histogram {
        Histogram::default()
    }

    /// Records one sample.
    pub fn record(&self, v: u64) {
        // lint:allow(transitive-panic): bucket_index is < BUCKETS by construction (tested)
        self.0.buckets[bucket_index(v)].fetch_add(1, Ordering::AcqRel);
        self.0.count.fetch_add(1, Ordering::AcqRel);
        self.0.sum.fetch_add(v, Ordering::AcqRel);
    }

    /// Consistent-enough snapshot for reporting (fields are read
    /// independently; concurrent recording can skew them by in-flight
    /// samples, which is fine at export time when producers quiesce).
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self.0.buckets.iter().map(|b| b.load(Ordering::Acquire)).collect(),
            count: self.0.count.load(Ordering::Acquire),
            sum: self.0.sum.load(Ordering::Acquire),
        }
    }
}

/// Point-in-time copy of a [`Histogram`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts (length [`HISTOGRAM_BUCKETS`]).
    pub buckets: Vec<u64>,
    /// Total samples recorded.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
}

impl HistogramSnapshot {
    /// Mean sample value (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper bound of the bucket containing quantile `q` in `[0, 1]`
    /// (a log2-resolution approximation; 0 if empty).
    pub fn quantile_upper_bound(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target.max(1) {
                return bucket_upper_bound(i);
            }
        }
        bucket_upper_bound(HISTOGRAM_BUCKETS - 1)
    }
}

#[derive(Default)]
struct RegistryInner {
    counters: BTreeMap<String, Counter>,
    gauges: BTreeMap<String, Gauge>,
    histograms: BTreeMap<String, Histogram>,
}

/// Named home for every metric a run produces. Lookup creates on first
/// use; handles are cached by the instrumented component, not looked up
/// per operation.
#[derive(Default)]
pub struct MetricsRegistry {
    inner: Mutex<RegistryInner>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Returns the counter named `name`, creating it if absent.
    pub fn counter(&self, name: &str) -> Counter {
        let mut g = self.inner.lock();
        g.counters.entry(name.to_owned()).or_default().clone()
    }

    /// Returns the gauge named `name`, creating it if absent.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut g = self.inner.lock();
        g.gauges.entry(name.to_owned()).or_default().clone()
    }

    /// Returns the histogram named `name`, creating it if absent.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut g = self.inner.lock();
        g.histograms.entry(name.to_owned()).or_default().clone()
    }

    /// Copies every metric's current value, sorted by name.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let g = self.inner.lock();
        MetricsSnapshot {
            counters: g.counters.iter().map(|(k, v)| (k.clone(), v.get())).collect(),
            gauges: g.gauges.iter().map(|(k, v)| (k.clone(), v.get())).collect(),
            histograms: g
                .histograms
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }
}

/// Point-in-time copy of a whole [`MetricsRegistry`], name-sorted.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// `(name, value)` for every counter.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` for every gauge.
    pub gauges: Vec<(String, u64)>,
    /// `(name, snapshot)` for every histogram.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl MetricsSnapshot {
    /// True when no metric was ever registered.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Looks up a counter value by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| *v)
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_accumulate() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("io.reads");
        c.inc();
        c.add(4);
        // Same name returns the same cell.
        assert_eq!(reg.counter("io.reads").get(), 5);

        let g = reg.gauge("pool.outstanding");
        g.add(3);
        g.sub(1);
        assert_eq!(g.get(), 2);
        g.set(7);
        assert_eq!(reg.gauge("pool.outstanding").get(), 7);
    }

    #[test]
    fn bucket_index_is_log2() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        for i in 0..HISTOGRAM_BUCKETS {
            // Every sample at a bucket's upper bound stays in that bucket.
            assert!(bucket_index(bucket_upper_bound(i)) <= i, "bucket {i}");
        }
    }

    #[test]
    fn histogram_mean_and_quantiles() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("fetch.bytes");
        for v in [0u64, 1, 2, 4, 1024] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 1031);
        assert!((s.mean() - 206.2).abs() < 1e-9);
        assert_eq!(s.quantile_upper_bound(0.0), 0);
        assert_eq!(s.quantile_upper_bound(1.0), 2047);
        // Snapshot is reflected by the registry snapshot too.
        let snap = reg.snapshot();
        assert_eq!(snap.histograms.len(), 1);
        assert_eq!(snap.histograms[0].0, "fetch.bytes");
        assert_eq!(snap.histograms[0].1, s);
    }

    #[test]
    fn snapshot_is_name_sorted_and_queryable() {
        let reg = MetricsRegistry::new();
        reg.counter("b").add(2);
        reg.counter("a").add(1);
        let s = reg.snapshot();
        let names: Vec<&str> = s.counters.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(names, vec!["a", "b"]);
        assert_eq!(s.counter("b"), Some(2));
        assert_eq!(s.counter("missing"), None);
        assert!(!s.is_empty());
        assert!(MetricsSnapshot::default().is_empty());
    }
}
