//! Lock-cheap bounded event ring (Vyukov-style MPMC over the `mlp-sync`
//! facade) with a lossless archive slow path.
//!
//! Producers on the I/O hot path claim a slot with one
//! `compare_exchange` on the tail cursor, copy the fixed-size
//! [`TraceEvent`] into the slot under a per-slot mutex (uncontended by
//! construction — the sequence protocol gives each claimant exclusive
//! ownership of its slot until it publishes), and publish with one
//! release store. No allocation, no global lock on the fast path.
//!
//! When the ring fills faster than the exporter drains it, `push` falls
//! back to appending under the archive mutex instead of dropping or
//! overwriting: traces must be complete for the figure pipeline, and a
//! full ring is an end-of-run / burst condition where a brief lock is
//! acceptable. The `overflowed` counter reports how often that happened
//! so capacity can be tuned.
//!
//! Because the atomics come from the [`mlp_sync`] facade, compiling with
//! `RUSTFLAGS="--cfg loom"` swaps them for the in-tree model checker's
//! instrumented types; `crates/trace/tests/loom_ring.rs` drives the
//! producer/consumer protocol through every explored schedule.

use mlp_sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use mlp_sync::Mutex;

use crate::event::TraceEvent;

/// One ring slot: the Vyukov sequence cell plus the payload.
///
/// `seq == index` means free for the producer whose tail position is
/// `index`; `seq == index + 1` means occupied for the consumer whose
/// head position is `index`. The mutex is never contended: the sequence
/// protocol hands exclusive slot ownership to one thread at a time, so
/// `lock()` is a fast uncontended path that keeps the code `unsafe`-free.
struct Slot {
    seq: AtomicUsize,
    data: Mutex<TraceEvent>,
}

/// Bounded MPMC ring of [`TraceEvent`]s with lossless overflow.
pub struct EventRing {
    slots: Box<[Slot]>,
    mask: usize,
    /// Next position to pop (consumer cursor).
    head: AtomicUsize,
    /// Next position to push (producer cursor).
    tail: AtomicUsize,
    /// Events that arrived while the ring was full.
    archive: Mutex<Vec<TraceEvent>>,
    /// How many pushes took the archive slow path.
    overflowed: AtomicU64,
}

impl EventRing {
    /// Creates a ring with at least `capacity` slots (rounded up to a
    /// power of two, minimum 2).
    pub fn with_capacity(capacity: usize) -> Self {
        let cap = capacity.max(2).next_power_of_two();
        let slots: Vec<Slot> = (0..cap)
            .map(|i| Slot {
                seq: AtomicUsize::new(i),
                data: Mutex::new(TraceEvent::EMPTY),
            })
            .collect();
        EventRing {
            slots: slots.into_boxed_slice(),
            mask: cap - 1,
            head: AtomicUsize::new(0),
            tail: AtomicUsize::new(0),
            archive: Mutex::new(Vec::new()),
            overflowed: AtomicU64::new(0),
        }
    }

    /// Number of slots.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Records one event. Never fails and never drops: if the ring is
    /// full the event goes to the archive (see module docs).
    pub fn push(&self, ev: TraceEvent) {
        let mut pos = self.tail.load(Ordering::Acquire);
        loop {
            let slot = &self.slots[pos & self.mask];
            let seq = slot.seq.load(Ordering::Acquire);
            if seq == pos {
                // Slot free at our position: claim it by advancing tail.
                match self.tail.compare_exchange(
                    pos,
                    pos.wrapping_add(1),
                    Ordering::AcqRel,
                    Ordering::Acquire,
                ) {
                    Ok(_) => {
                        *slot.data.lock() = ev;
                        // Publish: consumers at head == pos may now take it.
                        slot.seq.store(pos.wrapping_add(1), Ordering::Release);
                        return;
                    }
                    Err(actual) => pos = actual,
                }
            } else if (seq.wrapping_sub(pos) as isize) < 0 {
                // The slot still holds an unconsumed event from one lap
                // ago: the ring is full. Archive instead of dropping.
                self.overflowed.fetch_add(1, Ordering::AcqRel);
                self.archive.lock().push(ev);
                return;
            } else {
                // Another producer claimed `pos` but has not published
                // yet, or tail moved on; reload and retry.
                pos = self.tail.load(Ordering::Acquire);
            }
        }
    }

    /// Takes the oldest event out of the ring, if any. (Archive events
    /// are only surfaced by [`EventRing::drain`].)
    pub fn pop(&self) -> Option<TraceEvent> {
        let mut pos = self.head.load(Ordering::Acquire);
        loop {
            // lint:allow(transitive-panic): slot index masked to the power-of-two ring capacity
            let slot = &self.slots[pos & self.mask];
            let seq = slot.seq.load(Ordering::Acquire);
            let expected = pos.wrapping_add(1);
            if seq == expected {
                match self.head.compare_exchange(
                    pos,
                    pos.wrapping_add(1),
                    Ordering::AcqRel,
                    Ordering::Acquire,
                ) {
                    Ok(_) => {
                        let ev = *slot.data.lock();
                        // Free the slot for the producer one lap ahead.
                        slot.seq
                            .store(pos.wrapping_add(self.slots.len()), Ordering::Release);
                        return Some(ev);
                    }
                    Err(actual) => pos = actual,
                }
            } else if (seq.wrapping_sub(expected) as isize) < 0 {
                // Slot not yet published at this position: ring empty
                // (or a producer mid-publish; callers drain at export
                // time, after producers quiesce, so treat as empty).
                return None;
            } else {
                pos = self.head.load(Ordering::Acquire);
            }
        }
    }

    /// Drains everything recorded so far — ring and archive — sorted by
    /// global sequence number. Called at export time.
    pub fn drain(&self) -> Vec<TraceEvent> {
        let mut out = Vec::new();
        while let Some(ev) = self.pop() {
            out.push(ev);
        }
        out.append(&mut self.archive.lock());
        out.sort_by_key(|e| e.seq);
        out
    }

    /// How many pushes were routed to the archive because the ring was
    /// full. Nonzero means `with_capacity` should be raised (events are
    /// still complete — this is a performance signal, not data loss).
    pub fn overflow_count(&self) -> u64 {
        self.overflowed.load(Ordering::Acquire)
    }

    /// Events currently buffered (ring + archive), approximate under
    /// concurrent pushes.
    pub fn len(&self) -> usize {
        let tail = self.tail.load(Ordering::Acquire);
        let head = self.head.load(Ordering::Acquire);
        tail.wrapping_sub(head) + self.archive.lock().len()
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use crate::event::{EventKind, Phase};

    fn ev(seq: u64) -> TraceEvent {
        TraceEvent {
            seq,
            kind: EventKind::Instant,
            phase: Phase::Fetch,
            ts_ns: seq * 10,
            ..TraceEvent::EMPTY
        }
    }

    #[test]
    fn fifo_within_capacity() {
        let r = EventRing::with_capacity(8);
        for i in 0..8 {
            r.push(ev(i));
        }
        for i in 0..8 {
            assert_eq!(r.pop().map(|e| e.seq), Some(i));
        }
        assert_eq!(r.pop(), None);
        assert_eq!(r.overflow_count(), 0);
    }

    #[test]
    fn capacity_rounds_up_to_power_of_two() {
        assert_eq!(EventRing::with_capacity(0).capacity(), 2);
        assert_eq!(EventRing::with_capacity(5).capacity(), 8);
        assert_eq!(EventRing::with_capacity(8).capacity(), 8);
    }

    #[test]
    fn overflow_archives_instead_of_dropping() {
        let r = EventRing::with_capacity(4);
        for i in 0..10 {
            r.push(ev(i));
        }
        assert_eq!(r.overflow_count(), 6);
        let drained = r.drain();
        assert_eq!(drained.len(), 10, "no event lost");
        let seqs: Vec<u64> = drained.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, (0..10).collect::<Vec<_>>(), "drain sorts by seq");
    }

    #[test]
    fn ring_is_reusable_after_drain() {
        let r = EventRing::with_capacity(4);
        for round in 0..3u64 {
            for i in 0..4 {
                r.push(ev(round * 4 + i));
            }
            assert_eq!(r.drain().len(), 4);
        }
        assert_eq!(r.overflow_count(), 0);
    }

    #[test]
    fn concurrent_producers_lose_nothing() {
        use std::sync::Arc;
        let r = Arc::new(EventRing::with_capacity(64));
        let threads: Vec<_> = (0..4u64)
            .map(|t| {
                let r = Arc::clone(&r);
                std::thread::spawn(move || {
                    for i in 0..1000 {
                        r.push(ev(t * 1000 + i));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().expect("producer thread");
        }
        let drained = r.drain();
        assert_eq!(drained.len(), 4000);
        let mut seqs: Vec<u64> = drained.iter().map(|e| e.seq).collect();
        seqs.sort_unstable();
        seqs.dedup();
        assert_eq!(seqs.len(), 4000, "no duplicates, no losses");
    }
}
