//! Fixture-driven proof that each semantic rule fires — and only on its
//! seed. Every tree under `fixtures/` follows the workspace layout
//! (`crates/<dir>/src/*.rs` + optional `OBSERVABILITY.md`), so the same
//! walker and analyses the binary runs are exercised end to end.

use std::path::PathBuf;
use xtask::rules::{FileCtx, Violation};
use xtask::semantic::{parse_observability, Workspace};
use xtask::{lint_targets, parser, rel_path};

fn analyze(fixture: &str) -> Vec<Violation> {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(fixture);
    let targets = lint_targets(&root);
    assert!(!targets.is_empty(), "fixture `{fixture}` has no .rs files");
    let mut parsed = Vec::new();
    for (path, crate_dir) in &targets {
        let src = std::fs::read_to_string(path).expect("fixture file is readable");
        let ctx = FileCtx::from_source(&rel_path(&root, path), crate_dir, &src);
        parsed.push(parser::parse(&ctx));
    }
    let ws = Workspace::build(parsed);
    let doc = std::fs::read_to_string(root.join("OBSERVABILITY.md"))
        .ok()
        .map(|text| parse_observability("OBSERVABILITY.md", &text));
    ws.analyze(doc.as_ref())
}

fn rendered(violations: &[Violation]) -> String {
    violations
        .iter()
        .map(Violation::to_string)
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn lock_cycle_fixture_fires() {
    let v = analyze("lock_cycle");
    assert!(
        v.iter().any(|v| v.rule == "lock-order"
            && v.msg.contains("cycle")
            && v.msg.contains("storage/lib.l1")
            && v.msg.contains("storage/lib.l2")),
        "expected a lock-order cycle over l1/l2, got:\n{}",
        rendered(&v)
    );
    assert!(
        v.iter().all(|v| v.rule == "lock-order"),
        "unexpected extra rules:\n{}",
        rendered(&v)
    );
}

#[test]
fn transitive_panic_fixture_fires_three_deep() {
    let v = analyze("transitive_panic");
    assert!(
        v.iter().any(|v| v.rule == "transitive-panic"
            && v.msg.contains("submit → stage_one → stage_two")),
        "expected the 3-deep chain, got:\n{}",
        rendered(&v)
    );
    assert!(
        v.iter().all(|v| v.rule == "transitive-panic"),
        "unexpected extra rules:\n{}",
        rendered(&v)
    );
}

#[test]
fn undocumented_meter_fixture_fires_both_directions() {
    let v = analyze("undocumented_meter");
    assert!(
        v.iter()
            .any(|v| v.rule == "metric-drift" && v.msg.contains("`fix.ghost`")),
        "expected emit-but-undocumented for fix.ghost, got:\n{}",
        rendered(&v)
    );
    assert!(
        v.iter()
            .any(|v| v.rule == "metric-drift" && v.msg.contains("`fix.documented`")),
        "expected documented-but-gone for fix.documented, got:\n{}",
        rendered(&v)
    );
    assert!(
        v.iter().all(|v| v.rule == "metric-drift"),
        "unexpected extra rules:\n{}",
        rendered(&v)
    );
}

#[test]
fn blocking_under_lock_fixture_fires() {
    let v = analyze("blocking_under_lock");
    assert!(
        v.iter()
            .any(|v| v.rule == "blocking-under-lock" && v.msg.contains("std::fs::")),
        "expected blocking file I/O under the guard, got:\n{}",
        rendered(&v)
    );
    assert!(
        v.iter().all(|v| v.rule == "blocking-under-lock"),
        "unexpected extra rules:\n{}",
        rendered(&v)
    );
}

#[test]
fn clean_fixture_is_silent() {
    let v = analyze("clean");
    assert!(v.is_empty(), "clean fixture must not fire:\n{}", rendered(&v));
}
