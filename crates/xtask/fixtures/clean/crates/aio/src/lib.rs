//! Negative fixture: exercises every shape the four analyses look at —
//! a hot root, nested guards, a meter registration — without violating
//! anything. The whole tree must lint clean.

use mlp_sync::Mutex;

pub struct Engine {
    order_a: Mutex<u32>,
    order_b: Mutex<u32>,
}

impl Engine {
    // lint:hot-root — fixture clean path
    pub fn submit(&self) -> u32 {
        let a = self.order_a.lock();
        let b = self.order_b.lock();
        saturating(*a, *b)
    }

    /// Same acquisition order as `submit`: consistent, no cycle.
    pub fn other(&self) -> u32 {
        let a = self.order_a.lock();
        let b = self.order_b.lock();
        *a + *b
    }
}

fn saturating(a: u32, b: u32) -> u32 {
    a.checked_add(b).unwrap_or(u32::MAX)
}

pub struct Sink;

impl Sink {
    pub fn counter(&self, _name: &str) -> u32 {
        0
    }
}

pub fn init(sink: &Sink) -> u32 {
    sink.counter("fix.documented")
}
