//! Seeded fixture: ABBA lock-order inversion. `a` acquires `l1` then
//! `l2`; `b` acquires them in the opposite order — the global ordering
//! graph must contain the 2-cycle and the lint must fire.

use mlp_sync::Mutex;

pub struct S {
    l1: Mutex<u32>,
    l2: Mutex<u32>,
}

impl S {
    pub fn a(&self) -> u32 {
        let g1 = self.l1.lock();
        let g2 = self.l2.lock();
        *g1 + *g2
    }

    pub fn b(&self) -> u32 {
        let g2 = self.l2.lock();
        let g1 = self.l1.lock();
        *g1 + *g2
    }
}
