//! Seeded fixture: metric-name drift in both directions. The code
//! registers `fix.ghost`, which the fixture OBSERVABILITY.md does not
//! document; the doc lists `fix.documented`, which nothing emits.

pub struct Sink;

impl Sink {
    pub fn counter(&self, _name: &str) -> u32 {
        0
    }
}

pub fn init(sink: &Sink) -> u32 {
    sink.counter("fix.ghost")
}
