//! Seeded fixture: a panic three calls deep under an annotated hot
//! root. The reachability analysis must report the `.unwrap()` in
//! `stage_two` with the full `submit → stage_one → stage_two` chain.

// lint:hot-root — fixture submit path
pub fn submit(v: &[u32]) -> u32 {
    stage_one(v)
}

fn stage_one(v: &[u32]) -> u32 {
    stage_two(v)
}

fn stage_two(v: &[u32]) -> u32 {
    v.first().copied().unwrap()
}
