//! Seeded fixture: file I/O issued while a facade guard is live on an
//! engine-side path — the blocking-under-lock analysis must fire on the
//! `std::fs::write` under `state`'s guard.

use mlp_sync::Mutex;

pub struct Store {
    state: Mutex<u32>,
}

impl Store {
    pub fn persist(&self, path: &std::path::Path) -> std::io::Result<()> {
        let g = self.state.lock();
        std::fs::write(path, g.to_string())
    }
}
