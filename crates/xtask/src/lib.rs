//! Workspace invariant analysis, used by the `xtask` binary and by the
//! fixture-driven integration tests under `tests/`.
//!
//! Two layers:
//!
//! * **Textual rules** ([`rules`]) — per-file, per-line checks over the
//!   lexed channels ([`lexer`]): panic discipline, unsafe confinement,
//!   facade usage, `Relaxed` audits, trace-sink discipline.
//! * **Semantic pass** ([`parser`] + [`semantic`]) — a workspace-wide
//!   item-level parse producing a call graph, lock-acquisition scopes,
//!   and meter-name literals, on which four global analyses run:
//!   transitive panic reachability from annotated hot roots, lock-order
//!   inversion (cycle) detection, blocking-under-lock, and
//!   metric-name drift against OBSERVABILITY.md.
//!
//! Everything is dependency-free except the workspace's own `mlp-sync`
//! facade (used for the scoped-thread fan-out in the binary), matching
//! the linter's original philosophy: the tool that checks the build
//! must not complicate the build.

#![deny(unsafe_code)]

pub mod lexer;
pub mod parser;
pub mod rules;
pub mod semantic;

use std::path::{Path, PathBuf};

/// Walk up from the current directory to the first `Cargo.toml`
/// containing a `[workspace]` section.
pub fn find_workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// Every `.rs` file under each crate's `src/`, tagged with the crate's
/// directory name, plus the workspace-root suite package (`src/`).
/// Fixture trees (used by the xtask tests) follow the same layout, so
/// this walker serves both the real workspace and the seeded fixtures.
pub fn lint_targets(root: &Path) -> Vec<(PathBuf, String)> {
    let mut out = Vec::new();
    let crates = root.join("crates");
    if let Ok(entries) = std::fs::read_dir(&crates) {
        let mut dirs: Vec<PathBuf> = entries
            .filter_map(Result::ok)
            .map(|e| e.path())
            .filter(|p| p.is_dir())
            .collect();
        dirs.sort();
        for dir in dirs {
            let name = dir
                .file_name()
                .map(|f| f.to_string_lossy().into_owned())
                .unwrap_or_default();
            collect_rs(&dir.join("src"), &name, &mut out);
        }
    }
    collect_rs(&root.join("src"), ".", &mut out);
    out
}

fn collect_rs(dir: &Path, crate_dir: &str, out: &mut Vec<(PathBuf, String)>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut paths: Vec<PathBuf> = entries.filter_map(Result::ok).map(|e| e.path()).collect();
    paths.sort();
    for p in paths {
        if p.is_dir() {
            collect_rs(&p, crate_dir, out);
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push((p, crate_dir.to_owned()));
        }
    }
}

/// Workspace-relative display path for `path` under `root`.
pub fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}
