//! Workspace automation. Currently one subcommand:
//!
//! ```text
//! cargo run -p xtask -- lint [--root <dir>] [--semantic] [--json]
//! ```
//!
//! walks every crate's `src/` (plus the root suite package) and enforces
//! the concurrency/safety invariants described in [`xtask::rules`].
//! `--semantic` additionally runs the workspace-wide analyses in
//! [`xtask::semantic`] (call/lock graphs, transitive panic
//! reachability, lock-order cycles, blocking-under-lock, metric drift).
//! `--json` swaps the line-oriented text report for a JSON array of
//! GitHub-annotation-compatible findings; text stays the default and
//! byte-stable. Exits non-zero if any violation is found, so CI can
//! gate on it.
//!
//! File lexing/linting/parsing fans out over `mlp_sync::thread::scope`
//! workers; results are reassembled in file order so output is
//! deterministic regardless of parallelism.

#![deny(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;
use xtask::rules::{check_file, FileCtx, Violation};
use xtask::{find_workspace_root, lint_targets, parser, rel_path, semantic};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(&args[1..]),
        Some(other) => {
            eprintln!("unknown subcommand `{other}`; try `lint`");
            ExitCode::from(2)
        }
        None => {
            eprintln!("usage: cargo run -p xtask -- lint [--root <dir>] [--semantic] [--json]");
            ExitCode::from(2)
        }
    }
}

struct Options {
    root: PathBuf,
    semantic: bool,
    json: bool,
}

fn lint(args: &[String]) -> ExitCode {
    let opts = match parse_args(args) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };

    let targets = lint_targets(&opts.root);
    let files = targets.len();

    // Per-file work (read + lex + textual rules + optional parse) is
    // embarrassingly parallel: chunk the target list round-robin over
    // scoped workers, each writing its own pre-allocated slot so the
    // reassembled order is the file order, independent of scheduling.
    let workers = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
        .min(targets.len().max(1));
    type FileResult = Result<(Vec<Violation>, Option<parser::ParsedFile>), String>;
    let mut slots: Vec<Option<FileResult>> = Vec::new();
    slots.resize_with(targets.len(), || None);

    {
        let slot_refs: Vec<&mut Option<FileResult>> = slots.iter_mut().collect();
        let mut work: Vec<(usize, &std::path::Path, &str, &mut Option<FileResult>)> = targets
            .iter()
            .zip(slot_refs)
            .enumerate()
            .map(|(i, ((p, c), s))| (i, p.as_path(), c.as_str(), s))
            .collect();
        let mut chunks: Vec<Vec<_>> = Vec::new();
        chunks.resize_with(workers, Vec::new);
        for item in work.drain(..) {
            let w = item.0 % workers;
            chunks[w].push(item);
        }
        mlp_sync::thread::scope(|s| {
            for chunk in chunks.drain(..) {
                let root = &opts.root;
                let want_parse = opts.semantic;
                s.spawn(move || {
                    for (_, path, crate_dir, slot) in chunk {
                        let rel = rel_path(root, path);
                        *slot = Some(match std::fs::read_to_string(path) {
                            Ok(src) => {
                                let ctx = FileCtx::from_source(&rel, crate_dir, &src);
                                let v = check_file(&ctx);
                                let parsed = want_parse.then(|| parser::parse(&ctx));
                                Ok((v, parsed))
                            }
                            Err(e) => Err(format!("cannot read {}: {e}", path.display())),
                        });
                    }
                });
            }
        });
    }

    let mut violations: Vec<Violation> = Vec::new();
    let mut parsed: Vec<parser::ParsedFile> = Vec::new();
    for slot in slots {
        match slot.expect("every lint slot is filled by its worker") {
            Ok((v, p)) => {
                violations.extend(v);
                parsed.extend(p);
            }
            Err(msg) => {
                eprintln!("error: {msg}");
                return ExitCode::from(2);
            }
        }
    }

    if opts.semantic {
        let ws = semantic::Workspace::build(parsed);
        let obs = opts.root.join("OBSERVABILITY.md");
        let doc = std::fs::read_to_string(&obs)
            .ok()
            .map(|text| semantic::parse_observability(&rel_path(&opts.root, &obs), &text));
        violations.extend(ws.analyze(doc.as_ref()));
    }

    violations.sort_by(|a, b| (&a.rel_path, a.line, a.rule).cmp(&(&b.rel_path, b.line, b.rule)));

    if opts.json {
        print!("{}", render_json(&violations));
    } else {
        for v in &violations {
            println!("{v}");
        }
        if violations.is_empty() {
            println!("lint: {files} files clean");
        } else {
            println!("lint: {} violation(s) across {files} files", violations.len());
        }
    }
    if violations.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// GitHub-annotation-compatible findings: one object per violation with
/// the fields the annotation action expects (`file`, `line`,
/// `annotation_level`, `title`, `message`).
fn render_json(violations: &[Violation]) -> String {
    let mut out = String::from("[");
    for (i, v) in violations.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n  {{\"file\": {}, \"line\": {}, \"end_line\": {}, \
             \"annotation_level\": \"failure\", \"title\": {}, \"message\": {}}}",
            json_str(&v.rel_path),
            v.line,
            v.line,
            json_str(v.rule),
            json_str(&v.msg)
        ));
    }
    if !violations.is_empty() {
        out.push('\n');
    }
    out.push_str("]\n");
    out
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut it = args.iter();
    let mut root = None;
    let mut semantic = false;
    let mut json = false;
    while let Some(a) = it.next() {
        match a.as_str() {
            "--root" => {
                root = Some(PathBuf::from(
                    it.next().ok_or("--root requires a directory argument")?,
                ));
            }
            "--semantic" => semantic = true,
            "--json" => json = true,
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    let root = match root {
        Some(r) => r,
        None => find_workspace_root().ok_or_else(|| {
            "could not find workspace root (no Cargo.toml with [workspace]); pass --root"
                .to_string()
        })?,
    };
    Ok(Options {
        root,
        semantic,
        json,
    })
}
