//! Workspace automation. Currently one subcommand:
//!
//! ```text
//! cargo run -p xtask -- lint [--root <dir>]
//! ```
//!
//! walks every crate's `src/` (plus the root suite package) and enforces
//! the concurrency/safety invariants described in [`rules`]. Exits
//! non-zero if any violation is found, so CI can gate on it.

#![deny(unsafe_code)]

mod lexer;
mod rules;

use rules::{check_file, FileCtx, Violation};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(&args[1..]),
        Some(other) => {
            eprintln!("unknown subcommand `{other}`; try `lint`");
            ExitCode::from(2)
        }
        None => {
            eprintln!("usage: cargo run -p xtask -- lint [--root <dir>]");
            ExitCode::from(2)
        }
    }
}

fn lint(args: &[String]) -> ExitCode {
    let root = match parse_root(args) {
        Ok(r) => r,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };

    let mut violations: Vec<Violation> = Vec::new();
    let mut files = 0usize;
    for (path, crate_dir) in lint_targets(&root) {
        let src = match std::fs::read_to_string(&path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: cannot read {}: {e}", path.display());
                return ExitCode::from(2);
            }
        };
        let rel = path
            .strip_prefix(&root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        files += 1;
        violations.extend(check_file(&FileCtx::from_source(&rel, &crate_dir, &src)));
    }

    violations.sort_by(|a, b| (&a.rel_path, a.line).cmp(&(&b.rel_path, b.line)));
    for v in &violations {
        println!("{v}");
    }
    if violations.is_empty() {
        println!("lint: {files} files clean");
        ExitCode::SUCCESS
    } else {
        println!("lint: {} violation(s) across {files} files", violations.len());
        ExitCode::FAILURE
    }
}

fn parse_root(args: &[String]) -> Result<PathBuf, String> {
    let mut it = args.iter();
    let mut root = None;
    while let Some(a) = it.next() {
        match a.as_str() {
            "--root" => {
                root = Some(PathBuf::from(
                    it.next().ok_or("--root requires a directory argument")?,
                ));
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    match root {
        Some(r) => Ok(r),
        None => find_workspace_root()
            .ok_or_else(|| "could not find workspace root (no Cargo.toml with [workspace]); pass --root".into()),
    }
}

/// Walk up from the current directory to the first `Cargo.toml`
/// containing a `[workspace]` section.
fn find_workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// Every `.rs` file under each crate's `src/`, tagged with the crate's
/// directory name, plus the workspace-root suite package (`src/`).
fn lint_targets(root: &Path) -> Vec<(PathBuf, String)> {
    let mut out = Vec::new();
    let crates = root.join("crates");
    if let Ok(entries) = std::fs::read_dir(&crates) {
        let mut dirs: Vec<PathBuf> = entries
            .filter_map(Result::ok)
            .map(|e| e.path())
            .filter(|p| p.is_dir())
            .collect();
        dirs.sort();
        for dir in dirs {
            let name = dir
                .file_name()
                .map(|f| f.to_string_lossy().into_owned())
                .unwrap_or_default();
            collect_rs(&dir.join("src"), &name, &mut out);
        }
    }
    collect_rs(&root.join("src"), ".", &mut out);
    out
}

fn collect_rs(dir: &Path, crate_dir: &str, out: &mut Vec<(PathBuf, String)>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut paths: Vec<PathBuf> = entries.filter_map(Result::ok).map(|e| e.path()).collect();
    paths.sort();
    for p in paths {
        if p.is_dir() {
            collect_rs(&p, crate_dir, out);
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push((p, crate_dir.to_owned()));
        }
    }
}
