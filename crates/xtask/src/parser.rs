//! Item-level parser for the semantic pass.
//!
//! Built on the channel lexer ([`crate::lexer`]): no external
//! dependencies, no full grammar. From the code channel of one file it
//! extracts the facts the workspace analyses ([`crate::semantic`])
//! need:
//!
//! * function/method definitions with their body line ranges and the
//!   impl/trait type they belong to,
//! * call sites (free calls, `Type::assoc` calls, `.method(` calls)
//!   with a best-effort qualifier for later name resolution,
//! * panic sites (`panic!`-family macros, `.unwrap()`, `.expect(`,
//!   and slice/array indexing),
//! * lock-guard acquisition scopes (`.lock()` on the `mlp-sync`
//!   facade), with canonical lock identities and `drop()`-aware scope
//!   ends,
//! * potentially-blocking operations (file I/O, `Condvar::wait`,
//!   channel/thread joins, backend calls),
//! * trace meter registrations (`counter(` / `gauge(` / `histogram(`),
//!   including the one-line meter-closure idiom
//!   (`let c = |m: &str| trace.counter(&format!("aio.{b}.{m}"));`).
//!
//! Everything is a *best-effort, over-approximating* extraction; the
//! blind spots (trait-object dispatch targets, macro-generated code,
//! non-lexical guard lifetimes) are documented in DESIGN.md §13.

use crate::lexer::Literal;
use crate::rules::{annotated, is_ident_byte, waived, word_positions, FileCtx};

/// One parsed source file.
pub struct ParsedFile {
    pub rel_path: String,
    pub crate_dir: String,
    pub fns: Vec<FnDef>,
    /// Meter names registered by non-test code, `{...}` → `*`.
    pub meters: Vec<MeterSite>,
    /// Meter names *asserted* inside test regions (drift corroboration).
    pub asserted_meters: Vec<MeterSite>,
    /// All string literals (the semantic pass reads `Phase::as_str`
    /// span names out of these).
    pub literals: Vec<Literal>,
    /// Per-line test-region flags, kept for the analyses.
    pub in_test: Vec<bool>,
    /// Crate directories this file references through `mlp_*` paths
    /// (`use mlp_sync::Mutex` → `"sync"`). Call resolution only follows
    /// edges into the caller's own crate or a referenced one, so a
    /// same-named method in an unrelated crate cannot alias.
    pub ext_crates: Vec<String>,
}

/// One `fn` item: a definition with a body, or a bodiless trait decl.
pub struct FnDef {
    /// Bare name (`submit`).
    pub name: String,
    /// Qualified display name (`crates/aio/src/engine.rs::AioEngine::submit`).
    pub qual: String,
    /// 0-based line of the `fn` keyword.
    pub line: usize,
    /// 0-based last line of the body (== `line` for bodiless decls).
    pub end: usize,
    pub has_body: bool,
    pub is_test: bool,
    /// `// lint:hot-root` annotation above the signature.
    pub hot_root: bool,
    /// Rules waived for the entire body via `lint:allow(rule)` above
    /// the signature.
    pub waivers: Vec<String>,
    pub calls: Vec<Call>,
    pub panics: Vec<PanicSite>,
    pub guards: Vec<GuardScope>,
    pub blocking: Vec<BlockSite>,
}

/// One call site inside a function body.
pub struct Call {
    pub callee: String,
    /// `Type` for `Type::callee(`, the receiver path for `.callee(`.
    pub qualifier: Option<String>,
    pub method: bool,
    pub line: usize,
    pub in_test: bool,
    /// `lint:allow(lock-order)` at the call site: drop interprocedural
    /// ordering edges through this call.
    pub waived_lock_order: bool,
}

/// One potential panic site.
pub struct PanicSite {
    pub line: usize,
    /// Human label: `panic!`, `.unwrap()`, `indexing`...
    pub what: &'static str,
    /// Waived via `lint:allow(hot-path-panic)` or
    /// `lint:allow(transitive-panic)` at the site.
    pub waived: bool,
    pub in_test: bool,
}

/// One facade-guard acquisition and the lines it may be live.
pub struct GuardScope {
    /// Canonical lock identity: `crate/file_stem.receiver_tail`.
    pub lock: String,
    /// The raw receiver expression (`self.shared.state`), kept to tell
    /// true re-entrant acquisition apart from two instances whose
    /// receivers merely share a field name.
    pub recv: String,
    pub line: usize,
    pub col: usize,
    /// 0-based last line the guard can be live (inclusive).
    pub end: usize,
    pub waived: bool,
    pub in_test: bool,
}

/// One potentially-blocking operation.
pub struct BlockSite {
    pub line: usize,
    pub what: String,
    /// A condvar wait (flagged only when a *second* guard is live:
    /// waiting with one guard is the normal condvar protocol).
    pub condvar: bool,
    pub waived: bool,
    pub in_test: bool,
}

/// One meter registration site (name already wildcarded).
pub struct MeterSite {
    pub name: String,
    pub line: usize,
    pub kind: &'static str,
    pub waived: bool,
}

const KEYWORDS: &[&str] = &[
    "as", "async", "await", "box", "break", "const", "continue", "crate", "dyn", "else", "enum",
    "extern", "false", "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move",
    "mut", "pub", "ref", "return", "self", "Self", "static", "struct", "super", "trait", "true",
    "type", "union", "unsafe", "use", "where", "while",
];

/// Parse one lexed file into items and sites.
pub fn parse(ctx: &FileCtx) -> ParsedFile {
    let code = &ctx.code;
    let impls = impl_ranges(code);
    let mut fns = collect_fns(ctx, &impls);
    attribute_sites(ctx, &mut fns);
    // File-level waivers (`lint:allow` + `-file(rule): reason` spelled
    // as one token in a comment) extend every fn in the file — the
    // escape for whole files that are deliberate non-production paths,
    // like the model checker whose schedule aborts *are* panics.
    for rule in file_waivers(ctx) {
        for f in fns.iter_mut() {
            if !f.waivers.contains(&rule) {
                f.waivers.push(rule.clone());
            }
        }
    }
    propagate_fn_waivers(&mut fns);
    let (meters, asserted_meters) = collect_meters(ctx);
    ParsedFile {
        rel_path: ctx.rel_path.clone(),
        crate_dir: ctx.crate_dir.clone(),
        fns,
        meters,
        asserted_meters,
        literals: ctx.literals.clone(),
        in_test: ctx.in_test.clone(),
        ext_crates: ext_crates(ctx),
    }
}

/// Rules waived for the whole file via `lint:allow-file(rule): reason`
/// in any comment line.
fn file_waivers(ctx: &FileCtx) -> Vec<String> {
    let mut out = Vec::new();
    for line in &ctx.comments {
        let mut rest = line.as_str();
        while let Some(p) = rest.find("lint:allow-file(") {
            rest = &rest[p + "lint:allow-file(".len()..];
            if let Some(q) = rest.find(')') {
                let rule = rest[..q].trim().to_owned();
                if !rule.is_empty() && !out.contains(&rule) {
                    out.push(rule);
                }
            }
        }
    }
    out
}

/// Workspace crates referenced via `mlp_*` paths, as crate directory
/// names (the `mlp-offload` library lives in `crates/core`).
fn ext_crates(ctx: &FileCtx) -> Vec<String> {
    let mut out: Vec<String> = Vec::new();
    for line in &ctx.code {
        let bytes = line.as_bytes();
        let mut from = 0;
        while let Some(p) = line[from..].find("mlp_").map(|p| p + from) {
            let start = p + 4;
            let mut end = start;
            while end < bytes.len() && is_ident_byte(bytes[end]) {
                end += 1;
            }
            from = end;
            if p > 0 && is_ident_byte(bytes[p - 1]) {
                continue;
            }
            let dir = match &line[start..end] {
                "offload" => "core",
                other => other,
            };
            if !dir.is_empty() && !out.iter().any(|d| d == dir) {
                out.push(dir.to_owned());
            }
        }
    }
    out
}

/// A fn-level waiver covers every site in the body, so the analyses
/// (including transitive ones like the lock graph) can rely on the
/// per-site flags alone.
fn propagate_fn_waivers(fns: &mut [FnDef]) {
    for f in fns.iter_mut() {
        for w in &f.waivers {
            match w.as_str() {
                "lock-order" => {
                    f.guards.iter_mut().for_each(|g| g.waived = true);
                    f.calls.iter_mut().for_each(|c| c.waived_lock_order = true);
                }
                "blocking-under-lock" => {
                    f.blocking.iter_mut().for_each(|b| b.waived = true);
                }
                "transitive-panic" => {
                    f.panics.iter_mut().for_each(|p| p.waived = true);
                }
                _ => {}
            }
        }
    }
}

// ---- items -------------------------------------------------------------

/// `impl`/`trait` blocks: (start line, end line, type name).
fn impl_ranges(code: &[String]) -> Vec<(usize, usize, String)> {
    let mut out = Vec::new();
    for (i, line) in code.iter().enumerate() {
        let t = line.trim_start();
        let header = if let Some(rest) = t.strip_prefix("unsafe impl") {
            Some(("impl", rest))
        } else if let Some(rest) = t.strip_prefix("impl") {
            Some(("impl", rest))
        } else if let Some(p) = t.find("trait ") {
            // `pub trait Backend`, `pub(crate) unsafe trait ...`
            let lead = &t[..p];
            let lead_ok = lead
                .split_whitespace()
                .all(|w| w == "pub" || w.starts_with("pub(") || w == "unsafe");
            if lead_ok {
                Some(("trait", &t[p + "trait ".len()..]))
            } else {
                None
            }
        } else {
            None
        };
        let Some((kind, rest)) = header else { continue };
        if kind == "impl" && !rest.starts_with(['<', ' ']) {
            continue; // `impl_helper(...)` or similar identifier
        }
        let Some(name) = impl_type_name(kind, rest) else {
            continue;
        };
        if let Some(end) = match_block(code, i, line.len() - t.len()) {
            out.push((i, end, name));
        }
    }
    out
}

/// Extract the type name from an impl/trait header remainder
/// (everything after the keyword on the same line).
fn impl_type_name(kind: &str, rest: &str) -> Option<String> {
    let mut s = rest.trim_start();
    // Skip the generic-parameter list right after the keyword.
    if s.starts_with('<') {
        let mut depth = 0i32;
        let mut cut = s.len();
        for (i, c) in s.char_indices() {
            match c {
                '<' => depth += 1,
                '>' => {
                    depth -= 1;
                    if depth == 0 {
                        cut = i + 1;
                        break;
                    }
                }
                _ => {}
            }
        }
        s = s[cut..].trim_start();
    }
    // `impl Trait for Type {` → the Type side names the methods.
    if kind == "impl" {
        if let Some(pos) = word_positions(s, "for").into_iter().next_back() {
            s = s[pos + 3..].trim_start();
        }
    }
    // Strip up to the body/where-clause, then take the last path
    // segment without generic args: `&'a mut vec::Vec<T>` → `Vec`.
    let stop = s
        .find('{')
        .or_else(|| word_positions(s, "where").into_iter().next())
        .unwrap_or(s.len());
    s = s[..stop].trim();
    for pre in ["&", "'", "mut ", "dyn "] {
        while let Some(r) = s.strip_prefix(pre) {
            s = r.trim_start();
        }
    }
    let seg = s.split("::").last().unwrap_or(s);
    let name: String = seg
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect();
    if name.is_empty() {
        None
    } else {
        Some(name)
    }
}

/// Line of the `}` matching the first `{` at/after (line, col).
/// Returns `None` for `;`-terminated (bodiless) items.
fn match_block(code: &[String], line: usize, col: usize) -> Option<usize> {
    let mut depth = 0i32;
    // Square/paren depth: a `;` inside `[u8; N]` or `(a; b)` does not
    // terminate the item header.
    let mut nest = 0i32;
    let mut l = line;
    let mut c = col;
    while l < code.len() {
        let bytes = code[l].as_bytes();
        while c < bytes.len() {
            match bytes[c] {
                b'{' => depth += 1,
                b'}' => {
                    depth -= 1;
                    if depth == 0 {
                        return Some(l);
                    }
                }
                b'[' | b'(' => nest += 1,
                b']' | b')' => nest -= 1,
                b';' if depth == 0 && nest <= 0 => return None,
                _ => {}
            }
            c += 1;
        }
        l += 1;
        c = 0;
    }
    None
}

/// Every `fn` item in the file, with body ranges and context types.
fn collect_fns(ctx: &FileCtx, impls: &[(usize, usize, String)]) -> Vec<FnDef> {
    let code = &ctx.code;
    let mut out = Vec::new();
    for (i, line) in code.iter().enumerate() {
        for pos in word_positions(line, "fn") {
            let rest = &line[pos + 2..];
            let name: String = rest
                .trim_start()
                .chars()
                .take_while(|c| c.is_alphanumeric() || *c == '_')
                .collect();
            if name.is_empty() {
                continue; // `fn` in `Fn()` is excluded by word bounds; `fn(` ptr types land here
            }
            // Closures/`fn` pointer types never carry a name directly
            // after the keyword, so this is a real item. Find its body.
            let body_end = match_block(code, i, pos);
            let (end, has_body) = match body_end {
                Some(e) => (e, true),
                None => (i, false),
            };
            let owner = impls
                .iter()
                .filter(|(s, e, _)| *s <= i && i <= *e)
                .max_by_key(|(s, _, _)| *s)
                .map(|(_, _, n)| n.clone());
            let qual = match &owner {
                Some(t) => format!("{}::{}::{}", ctx.rel_path, t, name),
                None => format!("{}::{}", ctx.rel_path, name),
            };
            let mut waivers = Vec::new();
            for rule in [
                "transitive-panic",
                "lock-order",
                "blocking-under-lock",
                "metric-drift",
            ] {
                if annotated(ctx, i, &format!("lint:allow({rule})")) {
                    waivers.push(rule.to_owned());
                }
            }
            out.push(FnDef {
                name,
                qual,
                line: i,
                end,
                has_body,
                is_test: ctx.in_test[i],
                hot_root: annotated(ctx, i, "lint:hot-root"),
                waivers,
                calls: Vec::new(),
                panics: Vec::new(),
                guards: Vec::new(),
                blocking: Vec::new(),
            });
        }
    }
    out
}

// ---- sites -------------------------------------------------------------

/// Scan the whole file for call/panic/guard/blocking sites and attach
/// each to the innermost containing function.
fn attribute_sites(ctx: &FileCtx, fns: &mut Vec<FnDef>) {
    // Innermost containing fn per site line: smallest enclosing range.
    let owner_of = |line: usize, fns: &Vec<FnDef>| -> Option<usize> {
        fns.iter()
            .enumerate()
            .filter(|(_, f)| f.has_body && f.line <= line && line <= f.end)
            .min_by_key(|(_, f)| f.end - f.line)
            .map(|(k, _)| k)
    };
    // Definition lines: `fn name(` must not read as a call to `name`.
    let def_sites: Vec<(usize, String)> = fns.iter().map(|f| (f.line, f.name.clone())).collect();

    for i in 0..ctx.code.len() {
        let Some(k) = owner_of(i, fns) else { continue };
        let line = ctx.code[i].clone();
        let in_test = ctx.in_test[i];

        scan_calls(ctx, i, &line, in_test, &def_sites, &mut fns[k].calls);
        scan_panics(ctx, i, &line, in_test, &mut fns[k].panics);
        scan_blocking(ctx, i, &line, in_test, &mut fns[k].blocking);
        scan_guards(ctx, i, &line, in_test, &mut fns[k].guards);
    }
}

fn scan_calls(
    ctx: &FileCtx,
    i: usize,
    line: &str,
    in_test: bool,
    def_sites: &[(usize, String)],
    out: &mut Vec<Call>,
) {
    let bytes = line.as_bytes();
    let mut at = 0usize;
    while at < bytes.len() {
        if !is_ident_byte(bytes[at]) || (at > 0 && is_ident_byte(bytes[at - 1])) {
            at += 1;
            continue;
        }
        let mut end = at;
        while end < bytes.len() && is_ident_byte(bytes[end]) {
            end += 1;
        }
        let ident = &line[at..end];
        // Next non-space char decides: `(` call, `!` macro (skip).
        let mut n = end;
        while n < bytes.len() && bytes[n] == b' ' {
            n += 1;
        }
        if n >= bytes.len() || bytes[n] != b'(' {
            at = end;
            continue;
        }
        if KEYWORDS.contains(&ident)
            || ident.starts_with(|c: char| c.is_ascii_uppercase() || c.is_ascii_digit())
        {
            at = end; // variants/tuple-structs (`Some(`, `Ok(`) and keywords
            continue;
        }
        if def_sites.iter().any(|(l, nm)| *l == i && nm == ident) {
            at = end; // this is the definition, not a call
            continue;
        }
        // Qualifier: `recv.ident(` or `Path::ident(`.
        let (qualifier, method) = if at >= 1 && bytes[at - 1] == b'.' {
            (Some(path_before(line, at - 1)), true)
        } else if at >= 2 && &line[at - 2..at] == "::" {
            let q = path_before(line, at - 2);
            let seg = q.rsplit("::").next().unwrap_or(&q).to_owned();
            (Some(seg), false)
        } else {
            (None, false)
        };
        out.push(Call {
            callee: ident.to_owned(),
            qualifier: qualifier.filter(|q| !q.is_empty()),
            method,
            line: i,
            in_test,
            waived_lock_order: waived(ctx, i, "lock-order"),
        });
        at = end;
    }
}

/// The dotted/`::` path expression ending just before byte `end`
/// (exclusive): for `self.shared.state.lock` with `end` at the last
/// `.`, returns `self.shared.state`.
fn path_before(line: &str, end: usize) -> String {
    let bytes = line.as_bytes();
    let mut s = end;
    while s > 0 {
        let b = bytes[s - 1];
        if is_ident_byte(b) || b == b'.' || b == b':' {
            s -= 1;
        } else {
            break;
        }
    }
    line[s..end].trim_matches(|c| c == '.' || c == ':').to_owned()
}

fn scan_panics(ctx: &FileCtx, i: usize, line: &str, in_test: bool, out: &mut Vec<PanicSite>) {
    let site_waived = waived(ctx, i, "hot-path-panic") || waived(ctx, i, "transitive-panic");
    let mut push = |what: &'static str| {
        out.push(PanicSite {
            line: i,
            what,
            waived: site_waived,
            in_test,
        })
    };
    for (pat, what) in [(".unwrap()", "`.unwrap()`"), (".expect(", "`.expect()`")] {
        if line.contains(pat) {
            push(what);
        }
    }
    for (mac, what) in [
        ("panic!", "`panic!`"),
        ("unreachable!", "`unreachable!`"),
        ("todo!", "`todo!`"),
        ("unimplemented!", "`unimplemented!`"),
    ] {
        if word_positions(line, &mac[..mac.len() - 1])
            .iter()
            .any(|&p| line[p..].starts_with(mac))
        {
            push(what);
        }
    }
    // Indexing `expr[...]`: `[` directly after an ident, `)` or `]`.
    // `[..]` (full-range slicing) is infallible and skipped.
    let bytes = line.as_bytes();
    for (p, b) in bytes.iter().enumerate() {
        if *b == b'[' && p > 0 && (is_ident_byte(bytes[p - 1]) || bytes[p - 1] == b')' || bytes[p - 1] == b']')
        {
            if line[p..].starts_with("[..]") {
                continue;
            }
            push("indexing");
        }
    }
}

/// Blocking-operation tokens: substring patterns over the code channel.
const BLOCKING_TOKENS: &[&str] = &[
    "std::fs::",
    "File::open(",
    "File::create(",
    "OpenOptions::new",
    ".sync_all(",
    ".sync_data(",
    ".read_to_end(",
    ".read_to_string(",
    ".write_all(",
    "thread::sleep",
    ".recv()",
    ".join()",
    ".wait()",
    ".take_blocking(",
    ".acquire(",
    ".read_into(",
];
/// Condvar waits; only a problem with a *second* guard live.
const CONDVAR_TOKENS: &[&str] = &[".wait(&mut", ".wait_while(", ".wait_timeout("];
/// Backend trait calls: blocking tier I/O when the receiver is a
/// backend handle.
const BACKEND_METHODS: &[&str] = &[".read(", ".write(", ".delete(", ".contains("];

fn scan_blocking(ctx: &FileCtx, i: usize, line: &str, in_test: bool, out: &mut Vec<BlockSite>) {
    let site_waived = waived(ctx, i, "blocking-under-lock");
    for tok in CONDVAR_TOKENS {
        if line.contains(tok) {
            out.push(BlockSite {
                line: i,
                what: format!("`{}`", tok.trim_end_matches("&mut")),
                condvar: true,
                waived: site_waived,
                in_test,
            });
        }
    }
    for tok in BLOCKING_TOKENS {
        if line.contains(tok) {
            out.push(BlockSite {
                line: i,
                what: format!("`{tok}`"),
                condvar: false,
                waived: site_waived,
                in_test,
            });
        }
    }
    for tok in BACKEND_METHODS {
        for (p, _) in line.match_indices(tok) {
            let recv = path_before(line, p);
            let tail = recv.rsplit(['.', ':']).next().unwrap_or("");
            if tail == "backend" || tail.ends_with("_backend") || tail == "inner" && ctx.crate_dir == "storage" {
                out.push(BlockSite {
                    line: i,
                    what: format!("backend call `{tok})`"),
                    condvar: false,
                    waived: site_waived,
                    in_test,
                });
            }
        }
    }
}

fn scan_guards(ctx: &FileCtx, i: usize, line: &str, in_test: bool, out: &mut Vec<GuardScope>) {
    for (p, _) in line.match_indices(".lock()") {
        let recv = path_before(line, p);
        let lock = lock_identity(ctx, &recv, i);
        // Scope: a `let`-bound guard lives to the end of the enclosing
        // block (or an explicit `drop(binding)`); a temporary lives to
        // the end of its statement — approximated as its line, except
        // `match expr.lock()` temporaries which live for the whole arm
        // block.
        let has_let = line[..p].contains("let ");
        let is_match = word_positions(&line[..p], "match").first().is_some();
        let end = if has_let || is_match {
            let block_close = enclosing_block_end(&ctx.code, i, p);
            let binding = has_let.then(|| binding_name(&line[..p])).flatten();
            match binding {
                Some(b) => drop_line(&ctx.code, i, block_close, &b).unwrap_or(block_close),
                None => block_close,
            }
        } else {
            i
        };
        out.push(GuardScope {
            lock,
            recv,
            line: i,
            col: p,
            end,
            waived: waived(ctx, i, "lock-order"),
            in_test,
        });
    }
}

/// Canonical lock identity: `crate_dir/file_stem.receiver_tail`, so the
/// same field locked from several methods of one type maps to one node.
/// Unknown receivers (e.g. a guard returned by a helper call) get a
/// line-unique identity: they can extend chains but never falsely merge.
fn lock_identity(ctx: &FileCtx, recv: &str, lineno: usize) -> String {
    let stem = std::path::Path::new(&ctx.rel_path)
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_default();
    let segs: Vec<&str> = recv
        .split(['.', ':'])
        .filter(|s| !s.is_empty() && *s != "self")
        .collect();
    let tail = match segs.as_slice() {
        [] => return format!("{}/{stem}.expr@{}", ctx.crate_dir, lineno + 1),
        // Tuple-field access (`state.0`): keep the named parent too.
        [.., a, b] if b.chars().all(|c| c.is_ascii_digit()) => format!("{a}.{b}"),
        [.., a] => (*a).to_owned(),
    };
    format!("{}/{stem}.{tail}", ctx.crate_dir)
}

/// First ident of the pattern in `let <pat> = ...` (the text before the
/// `=`). Tuple patterns return `None`.
fn binding_name(before: &str) -> Option<String> {
    let p = before.rfind("let ")?;
    let pat = before[p + 4..].split('=').next()?.trim();
    let pat = pat.trim_start_matches("mut ").trim_start();
    if pat.starts_with('(') {
        return None;
    }
    let name: String = pat
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect();
    (!name.is_empty()).then_some(name)
}

/// Last line of the block enclosing position (line, col): scan forward
/// tracking depth; the `}` that takes depth negative closes the block.
fn enclosing_block_end(code: &[String], line: usize, col: usize) -> usize {
    let mut depth = 0i32;
    let mut l = line;
    let mut c = col;
    while l < code.len() {
        let bytes = code[l].as_bytes();
        while c < bytes.len() {
            match bytes[c] {
                b'{' => depth += 1,
                b'}' => {
                    depth -= 1;
                    if depth < 0 {
                        return l;
                    }
                }
                _ => {}
            }
            c += 1;
        }
        l += 1;
        c = 0;
    }
    code.len().saturating_sub(1)
}

/// Line of an explicit `drop(<binding>)` between `from` and `to`.
fn drop_line(code: &[String], from: usize, to: usize, binding: &str) -> Option<usize> {
    let needle = format!("drop({binding})");
    (from..=to.min(code.len() - 1)).find(|&l| code[l].contains(&needle))
}

// ---- meters ------------------------------------------------------------

/// Meter-name extraction: direct `counter("x")` / `gauge(&format!(..))`
/// registrations plus the meter-closure idiom. Returns
/// `(non_test_sites, test_asserted_sites)`.
fn collect_meters(ctx: &FileCtx) -> (Vec<MeterSite>, Vec<MeterSite>) {
    let mut out = Vec::new();
    let mut asserted = Vec::new();
    // File-local meter closures: name → (format string, kind).
    let mut closures: std::collections::HashMap<String, (String, String, &'static str)> =
        std::collections::HashMap::new();

    for (i, line) in ctx.code.iter().enumerate() {
        let site_waived = waived(ctx, i, "metric-drift");
        for (kind_tok, kind) in [
            ("counter", "counter"),
            ("gauge", "gauge"),
            ("histogram", "histogram"),
        ] {
            for p in word_positions(line, kind_tok) {
                // Registration is a method call: `.counter(`.
                if p == 0 || line.as_bytes()[p - 1] != b'.' {
                    continue;
                }
                if !line[p + kind_tok.len()..].trim_start().starts_with('(') {
                    continue;
                }
                let Some(lit) = ctx
                    .literals
                    .iter()
                    .find(|l| l.line == i && l.col > p)
                else {
                    continue;
                };
                // Meter-closure definition: `let c = |m: &str| t.counter(&format!("fmt"))`
                // registers a template instead of emitting a name.
                let before = &line[..p];
                if let (Some(lp), true) = (before.find("let "), before.contains('|')) {
                    let cname: String = before[lp + 4..]
                        .trim_start()
                        .chars()
                        .take_while(|c| c.is_alphanumeric() || *c == '_')
                        .collect();
                    let param: String = before
                        .find('|')
                        .map(|bp| {
                            before[bp + 1..]
                                .trim_start()
                                .chars()
                                .take_while(|c| c.is_alphanumeric() || *c == '_')
                                .collect()
                        })
                        .unwrap_or_default();
                    if !cname.is_empty() && !param.is_empty() {
                        closures.insert(cname, (lit.text.clone(), param, kind));
                        continue;
                    }
                }
                let site = MeterSite {
                    name: wildcard(&lit.text),
                    line: i,
                    kind,
                    waived: site_waived,
                };
                if ctx.in_test[i] {
                    asserted.push(site);
                } else {
                    out.push(site);
                }
            }
        }
        // Closure application sites: `c("reads")`.
        for (cname, (fmt, param, kind)) in &closures {
            for p in word_positions(line, cname) {
                if !line[p + cname.len()..].starts_with('(') {
                    continue;
                }
                if p > 0 && line.as_bytes()[p - 1] == b'.' {
                    continue;
                }
                let Some(lit) = ctx
                    .literals
                    .iter()
                    .find(|l| l.line == i && l.col > p)
                else {
                    continue;
                };
                let name = wildcard(&fmt.replace(&format!("{{{param}}}"), &lit.text));
                let site = MeterSite {
                    name,
                    line: i,
                    kind,
                    waived: site_waived,
                };
                if ctx.in_test[i] {
                    asserted.push(site);
                } else {
                    out.push(site);
                }
            }
        }
    }
    (out, asserted)
}

/// Replace every `{...}` / `{}` format placeholder with `*`.
pub fn wildcard(fmt: &str) -> String {
    let mut out = String::with_capacity(fmt.len());
    let mut depth = 0u32;
    for c in fmt.chars() {
        match c {
            '{' => {
                if depth == 0 {
                    out.push('*');
                }
                depth += 1;
            }
            '}' => depth = depth.saturating_sub(1),
            _ if depth == 0 => out.push(c),
            _ => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parsed(crate_dir: &str, src: &str) -> ParsedFile {
        parse(&FileCtx::from_source(
            &format!("crates/{crate_dir}/src/file.rs"),
            crate_dir,
            src,
        ))
    }

    #[test]
    fn fns_and_impl_context_are_extracted() {
        let src = "\
impl Engine {
    pub fn submit(&self) -> u8 {
        self.run()
    }
}
fn free() {}
trait T {
    fn decl(&self);
    fn dflt(&self) { helper() }
}
";
        let p = parsed("aio", src);
        let names: Vec<&str> = p.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["submit", "free", "decl", "dflt"]);
        assert_eq!(p.fns[0].qual, "crates/aio/src/file.rs::Engine::submit");
        assert!(p.fns[0].has_body);
        assert_eq!(p.fns[0].end, 3);
        assert!(!p.fns[2].has_body);
        assert_eq!(p.fns[3].qual, "crates/aio/src/file.rs::T::dflt");
        // `submit` calls `run`; the definition line is not a self-call.
        assert_eq!(p.fns[0].calls.len(), 1);
        assert_eq!(p.fns[0].calls[0].callee, "run");
        assert!(p.fns[0].calls[0].method);
        assert_eq!(p.fns[3].calls[0].callee, "helper");
    }

    #[test]
    fn panic_sites_and_waivers() {
        let src = "\
fn f(v: &[u8], x: Option<u8>) -> u8 {
    let a = v[0];
    let b = x.unwrap();
    // lint:allow(transitive-panic): bounded by caller contract
    let c = v[1];
    let d = &v[..];
    panic!(\"boom\")
}
";
        let p = parsed("aio", src);
        let f = &p.fns[0];
        let live: Vec<_> = f.panics.iter().filter(|s| !s.waived).collect();
        assert_eq!(live.len(), 3, "{:?}", live.iter().map(|s| (s.line, s.what)).collect::<Vec<_>>());
        assert!(f.panics.iter().any(|s| s.waived && s.line == 4));
        // `&v[..]` is infallible full-range slicing — line 5 clean.
        assert!(!f.panics.iter().any(|s| s.line == 5));
    }

    #[test]
    fn guard_scopes_track_let_drop_and_temporaries() {
        let src = "\
fn f(&self) {
    let mut st = self.shared.state.lock();
    st.n += 1;
    drop(st);
    self.other.lock().touch();
    {
        let g = self.inner.lock();
        g.use_it();
    }
}
";
        let p = parsed("aio", src);
        let g = &p.fns[0].guards;
        assert_eq!(g.len(), 3, "{:?}", g.iter().map(|x| &x.lock).collect::<Vec<_>>());
        assert_eq!(g[0].lock, "aio/file.state");
        assert_eq!((g[0].line, g[0].end), (1, 3)); // ends at drop(st)
        assert_eq!((g[1].line, g[1].end), (4, 4)); // temporary: one line
        assert_eq!((g[2].line, g[2].end), (6, 8)); // inner block close
    }

    #[test]
    fn meters_direct_format_and_closure_idiom() {
        let src = "\
fn wire(trace: &TraceSink, backend: &str) {
    let c = |meter: &str| trace.counter(&format!(\"aio.{backend}.{meter}\"));
    c(\"reads\");
    c(\"writes\");
    trace.gauge(&format!(\"aio.{backend}.inflight\"));
    trace.counter(\"planner.replans\");
}
#[cfg(test)]
mod tests {
    fn t(trace: &TraceSink) { trace.counter(\"aio.mem.reads\"); }
}
";
        let p = parsed("aio", src);
        let names: Vec<&str> = p.meters.iter().map(|m| m.name.as_str()).collect();
        assert_eq!(
            names,
            vec!["aio.*.reads", "aio.*.writes", "aio.*.inflight", "planner.replans"]
        );
        assert_eq!(p.asserted_meters.len(), 1);
        assert_eq!(p.asserted_meters[0].name, "aio.mem.reads");
    }

    #[test]
    fn blocking_sites_and_condvar_waits() {
        let src = "\
fn f(&self, cv: &Condvar) {
    let mut st = self.state.lock();
    cv.wait(&mut st);
    std::fs::write(\"x\", b\"y\");
    self.backend.read(key);
    handle.wait();
}
";
        let p = parsed("aio", src);
        let b = &p.fns[0].blocking;
        assert!(b.iter().any(|s| s.condvar && s.line == 2));
        assert!(b.iter().any(|s| !s.condvar && s.line == 3));
        assert!(b.iter().any(|s| s.what.starts_with("backend call") && s.line == 4));
        assert!(b.iter().any(|s| s.what == "`.wait()`" && s.line == 5));
    }

    #[test]
    fn hot_root_annotation_and_fn_waivers() {
        let src = "\
// lint:hot-root — entry of the submit path
fn submit() { go() }

// lint:allow(transitive-panic): init-time only, bounded input
fn setup(v: &[u8]) -> u8 { v[0] }
";
        let p = parsed("aio", src);
        assert!(p.fns[0].hot_root);
        assert!(p.fns[1].waivers.iter().any(|w| w == "transitive-panic"));
    }

    #[test]
    fn wildcard_handles_nested_and_positional() {
        assert_eq!(wildcard("aio.{backend}.reads"), "aio.*.reads");
        assert_eq!(wildcard("tier.{}.{meter}"), "tier.*.*");
        assert_eq!(wildcard("plain.name"), "plain.name");
    }
}
