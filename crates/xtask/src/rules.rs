//! Invariant rules for the offload I/O stack.
//!
//! Each rule is a pure function from a lexed file ([`FileCtx`]) to a
//! list of [`Violation`]s, so every rule is unit-testable against small
//! seeded-violation fixtures (see the tests at the bottom). The rules:
//!
//! * `hot-path-panic` — no `unwrap()`/`expect()`/`panic!`-family calls
//!   outside `#[cfg(test)]` in the I/O hot-path crates. A worker thread
//!   that panics tears down an op silently; hot paths must return
//!   `io::Error` (or publish a poisoned completion) instead. Waivable
//!   per-site with `// lint:allow(hot-path-panic): <reason>` for
//!   documented API-misuse panics.
//! * `safety-comment` — every `unsafe` keyword must be preceded by a
//!   `// SAFETY:` comment explaining the proof obligation.
//! * `unsafe-confinement` — `unsafe` may appear only in `mlp-tensor`
//!   (the pinned-buffer FFI layer) and the sanctioned syscall shim
//!   `crates/aio/src/io_engine/sys.rs` (the io_uring/mmap kernel
//!   interface, module-scoped `#![allow(unsafe_code)]`); every other
//!   crate root must carry `#![deny(unsafe_code)]` so the compiler
//!   enforces it too.
//! * `raw-io-confinement` — raw kernel I/O (`syscall`, `io_uring_*`,
//!   `mmap`/`munmap`, `O_DIRECT` opens via `custom_flags`, `libc`) may
//!   appear only inside `crates/aio` (where the `IoEngine` trait owns
//!   dispatch) and `mlp-tensor`'s FFI layer. Every other crate must go
//!   through `AioEngine`/`Backend`, so engine backends stay reachable
//!   only through the trait.
//! * `facade-only` — the crates ported onto the `mlp-sync` facade must
//!   not reach around it to `parking_lot`/`std::sync` primitives
//!   (except `Arc`), otherwise the loom model checker silently loses
//!   coverage of those operations.
//! * `relaxed-audit` — every `Ordering::Relaxed` must carry a
//!   `// relaxed-ok: <reason>` annotation asserting the atomic is a
//!   pure counter (never used to publish cross-thread state).
//! * `trace-sink` — no direct `println!`/`eprintln!`/`print!`/`eprint!`/
//!   `dbg!` in the instrumented hot-path crates: diagnostics on the I/O
//!   path must go through the `mlp-trace` sink (a stray print stalls
//!   submission threads on terminal I/O and bypasses the timeline).
//!   Waivable per-site with `// lint:allow(trace-sink): <reason>` for
//!   genuine CLI surfaces.

use crate::lexer::{mask, test_regions, Literal};

/// Crates whose `src/` is an I/O hot path (panics are lint errors).
pub const HOT_PATH_CRATES: &[&str] = &["aio", "storage", "tensor", "core", "zero3"];
/// Crates ported onto the `mlp-sync` facade (direct primitives banned).
pub const FACADE_CRATES: &[&str] = &["aio", "tensor", "trace"];
/// The only crate allowed to contain `unsafe` code.
pub const UNSAFE_ALLOWED_CRATES: &[&str] = &["tensor"];
/// Individually sanctioned `unsafe` files outside those crates: the
/// aio syscall shim that every raw engine driver funnels through.
pub const UNSAFE_ALLOWED_FILES: &[&str] = &["crates/aio/src/io_engine/sys.rs"];
/// Crates allowed to touch raw kernel I/O interfaces (see
/// `raw-io-confinement`): the engine subsystem and the FFI layer.
pub const RAW_IO_ALLOWED_CRATES: &[&str] = &["aio", "tensor"];

/// A lexed source file plus the workspace context the rules need.
pub struct FileCtx {
    /// Workspace-relative path, for reporting.
    pub rel_path: String,
    /// The crate's directory name under `crates/` (e.g. `"aio"`), or
    /// `"."` for the workspace-root suite package.
    pub crate_dir: String,
    /// True for `src/lib.rs` / `src/main.rs` (crate-root attr checks).
    pub is_crate_root: bool,
    /// Code channel (comments/literals blanked), per line.
    pub code: Vec<String>,
    /// Comment channel, per line.
    pub comments: Vec<String>,
    /// Per-line flag: inside a `#[cfg(test)]` / `#[test]` region.
    pub in_test: Vec<bool>,
    /// String literals with positions (the semantic pass reads meter
    /// names out of these; the textual rules never look at them).
    pub literals: Vec<Literal>,
}

impl FileCtx {
    /// Lex `src` into a context (used by `main` and the fixtures).
    pub fn from_source(rel_path: &str, crate_dir: &str, src: &str) -> Self {
        let masked = mask(src);
        let in_test = test_regions(&masked.code);
        let file = std::path::Path::new(rel_path);
        let is_crate_root = matches!(
            file.file_name().and_then(|f| f.to_str()),
            Some("lib.rs") | Some("main.rs")
        ) && file
            .parent()
            .and_then(|p| p.file_name())
            .and_then(|f| f.to_str())
            == Some("src");
        FileCtx {
            rel_path: rel_path.to_owned(),
            crate_dir: crate_dir.to_owned(),
            is_crate_root,
            code: masked.code,
            comments: masked.comments,
            in_test,
            literals: masked.literals,
        }
    }
}

/// One finding: `path:line: [rule] message`.
#[derive(Debug)]
pub struct Violation {
    pub rel_path: String,
    /// 1-based line number.
    pub line: usize,
    pub rule: &'static str,
    pub msg: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.rel_path, self.line, self.rule, self.msg
        )
    }
}

/// Run every rule over one file.
pub fn check_file(ctx: &FileCtx) -> Vec<Violation> {
    let mut v = Vec::new();
    v.extend(hot_path_panic(ctx));
    v.extend(safety_comment(ctx));
    v.extend(unsafe_confinement(ctx));
    v.extend(raw_io_confinement(ctx));
    v.extend(facade_only(ctx));
    v.extend(relaxed_audit(ctx));
    v.extend(trace_sink(ctx));
    v
}

/// Is line `i` (0-based) waived for `rule` by a
/// `// lint:allow(<rule>): reason` on the same line or in the comment
/// block directly above it?
pub(crate) fn waived(ctx: &FileCtx, i: usize, rule: &str) -> bool {
    annotated(ctx, i, &format!("lint:allow({rule})"))
}

/// True if `needle` appears in the comment channel on line `i` or in
/// the contiguous run of comment-only lines directly above it (a
/// multi-line `//` block counts as one annotation site).
pub(crate) fn annotated(ctx: &FileCtx, i: usize, needle: &str) -> bool {
    if ctx.comments[i].contains(needle) {
        return true;
    }
    let mut p = i;
    while p > 0 {
        p -= 1;
        // Stop at the first line that carries code; a comment-only line
        // has a blank code channel.
        if !ctx.code[p].trim().is_empty() {
            return false;
        }
        if ctx.comments[p].contains(needle) {
            return true;
        }
        if ctx.comments[p].trim().is_empty() {
            return false; // blank line ends the comment block
        }
    }
    false
}

/// Find `needle` in `hay` at positions where it is not embedded in a
/// larger identifier (char before and after must not be ident chars).
pub(crate) fn word_positions(hay: &str, needle: &str) -> Vec<usize> {
    let bytes = hay.as_bytes();
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(p) = hay[from..].find(needle) {
        let at = from + p;
        let before_ok = at == 0 || !is_ident_byte(bytes[at - 1]);
        let end = at + needle.len();
        let after_ok = end >= bytes.len() || !is_ident_byte(bytes[end]);
        if before_ok && after_ok {
            out.push(at);
        }
        from = at + needle.len().max(1);
    }
    out
}

pub(crate) fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

fn hot_path_panic(ctx: &FileCtx) -> Vec<Violation> {
    if !HOT_PATH_CRATES.contains(&ctx.crate_dir.as_str()) {
        return Vec::new();
    }
    // Method-call patterns match literally; macro names get word-boundary
    // checks so e.g. a `my_panic!` helper is not flagged as `panic!`.
    const METHODS: &[(&str, &str)] = &[
        (".unwrap()", "`.unwrap()` on a hot path"),
        (".expect(", "`.expect()` on a hot path"),
    ];
    const MACROS: &[&str] = &["panic!", "unreachable!", "todo!", "unimplemented!"];
    let mut out = Vec::new();
    for (i, line) in ctx.code.iter().enumerate() {
        if ctx.in_test[i] || waived(ctx, i, "hot-path-panic") {
            continue;
        }
        for (pat, what) in METHODS {
            if line.contains(pat) {
                out.push(Violation {
                    rel_path: ctx.rel_path.clone(),
                    line: i + 1,
                    rule: "hot-path-panic",
                    msg: format!(
                        "{what}: return io::Error (or publish a poisoned \
                         completion) instead, or waive with \
                         `// lint:allow(hot-path-panic): <reason>`"
                    ),
                });
            }
        }
        for mac in MACROS {
            // `mac` ends in '!', so only the left boundary needs a check.
            if !word_positions(line, &mac[..mac.len() - 1])
                .iter()
                .any(|&p| line[p..].starts_with(mac))
            {
                continue;
            }
            out.push(Violation {
                rel_path: ctx.rel_path.clone(),
                line: i + 1,
                rule: "hot-path-panic",
                msg: format!(
                    "`{mac}` on a hot path: return a typed error instead, or \
                     waive with `// lint:allow(hot-path-panic): <reason>`"
                ),
            });
        }
    }
    out
}

fn safety_comment(ctx: &FileCtx) -> Vec<Violation> {
    let mut out = Vec::new();
    for (i, line) in ctx.code.iter().enumerate() {
        if word_positions(line, "unsafe").is_empty() {
            continue;
        }
        // Accept `SAFETY:` on the same line or anywhere in the comment
        // block directly above the site (multi-line proofs are common).
        if !annotated(ctx, i, "SAFETY:") {
            out.push(Violation {
                rel_path: ctx.rel_path.clone(),
                line: i + 1,
                rule: "safety-comment",
                msg: "`unsafe` without a preceding `// SAFETY:` comment \
                      stating the proof obligation"
                    .into(),
            });
        }
    }
    out
}

fn unsafe_confinement(ctx: &FileCtx) -> Vec<Violation> {
    let mut out = Vec::new();
    let allowed = UNSAFE_ALLOWED_CRATES.contains(&ctx.crate_dir.as_str())
        || UNSAFE_ALLOWED_FILES.contains(&ctx.rel_path.as_str());
    if !allowed {
        for (i, line) in ctx.code.iter().enumerate() {
            if word_positions(line, "unsafe").is_empty() {
                continue;
            }
            // `#![deny(unsafe_code)]` itself mentions no `unsafe` token
            // (word boundary: `unsafe_code` is one identifier), so any
            // hit here is a real unsafe block/fn/impl.
            out.push(Violation {
                rel_path: ctx.rel_path.clone(),
                line: i + 1,
                rule: "unsafe-confinement",
                msg: format!(
                    "`unsafe` outside mlp-tensor (crate `{}`): pinned-buffer \
                     FFI is the only sanctioned unsafe surface",
                    ctx.crate_dir
                ),
            });
        }
    }
    if ctx.is_crate_root && !allowed {
        let has_deny = ctx.code.iter().any(|l| {
            l.contains("#![deny(unsafe_code)]") || l.contains("#![forbid(unsafe_code)]")
        });
        if !has_deny {
            out.push(Violation {
                rel_path: ctx.rel_path.clone(),
                line: 1,
                rule: "unsafe-confinement",
                msg: "crate root missing `#![deny(unsafe_code)]` (required \
                      everywhere except mlp-tensor)"
                    .into(),
            });
        }
    }
    out
}

fn raw_io_confinement(ctx: &FileCtx) -> Vec<Violation> {
    if RAW_IO_ALLOWED_CRATES.contains(&ctx.crate_dir.as_str()) {
        return Vec::new();
    }
    // Tokens that mark a direct kernel I/O interface. `mmap`/`munmap`
    // and `syscall` are word-bounded so identifiers like `mmap_like`
    // or prose in string literals don't trip; `custom_flags(` is the
    // only stable std doorway to O_DIRECT opens.
    const WORD_TOKENS: &[&str] = &["syscall", "mmap", "munmap", "libc", "io_uring_setup", "io_uring_enter"];
    const LITERAL_TOKENS: &[&str] = &[".custom_flags(", "O_DIRECT"];
    let mut out = Vec::new();
    for (i, line) in ctx.code.iter().enumerate() {
        if ctx.in_test[i] || waived(ctx, i, "raw-io-confinement") {
            continue;
        }
        let hit = WORD_TOKENS
            .iter()
            .find(|t| !word_positions(line, t).is_empty())
            .or_else(|| LITERAL_TOKENS.iter().find(|t| line.contains(*t)));
        if let Some(tok) = hit {
            out.push(Violation {
                rel_path: ctx.rel_path.clone(),
                line: i + 1,
                rule: "raw-io-confinement",
                msg: format!(
                    "`{tok}` outside the engine subsystem (crate `{}`): raw \
                     kernel I/O must stay behind the `IoEngine` trait in \
                     crates/aio — submit through `AioEngine` or add a \
                     `Backend::raw_target` coordinate instead; waive with \
                     `// lint:allow(raw-io-confinement): <reason>`",
                    ctx.crate_dir
                ),
            });
        }
    }
    out
}

fn facade_only(ctx: &FileCtx) -> Vec<Violation> {
    if !FACADE_CRATES.contains(&ctx.crate_dir.as_str()) {
        return Vec::new();
    }
    // `std::sync::Arc` and channels are fine (the model checker does not
    // instrument them); locks, condvars, atomics, and thread-spawning
    // must come from `mlp_sync` so `--cfg loom` sees every operation.
    const BANNED: &[&str] = &[
        "parking_lot",
        "std::sync::Mutex",
        "std::sync::RwLock",
        "std::sync::Condvar",
        "std::sync::Barrier",
        "std::sync::atomic",
        "std::thread::",
    ];
    let mut out = Vec::new();
    for (i, line) in ctx.code.iter().enumerate() {
        if ctx.in_test[i] || waived(ctx, i, "facade-only") {
            continue;
        }
        for pat in BANNED {
            if line.contains(pat) {
                out.push(Violation {
                    rel_path: ctx.rel_path.clone(),
                    line: i + 1,
                    rule: "facade-only",
                    msg: format!(
                        "`{pat}` bypasses the mlp-sync facade: the loom \
                         model would not see this operation; use \
                         `mlp_sync::{{Mutex, Condvar, atomic, thread}}`"
                    ),
                });
            }
        }
    }
    out
}

fn relaxed_audit(ctx: &FileCtx) -> Vec<Violation> {
    if !HOT_PATH_CRATES.contains(&ctx.crate_dir.as_str()) {
        return Vec::new();
    }
    let mut out = Vec::new();
    for (i, line) in ctx.code.iter().enumerate() {
        if ctx.in_test[i] || word_positions(line, "Relaxed").is_empty() {
            continue;
        }
        if !annotated(ctx, i, "relaxed-ok:") {
            out.push(Violation {
                rel_path: ctx.rel_path.clone(),
                line: i + 1,
                rule: "relaxed-audit",
                msg: "`Ordering::Relaxed` without a `// relaxed-ok: <reason>` \
                      annotation: Relaxed is sound only for pure counters \
                      that never publish cross-thread state; use \
                      Release/Acquire if another thread reads this to \
                      observe data written before the store"
                    .into(),
            });
        }
    }
    out
}

fn trace_sink(ctx: &FileCtx) -> Vec<Violation> {
    if !HOT_PATH_CRATES.contains(&ctx.crate_dir.as_str()) {
        return Vec::new();
    }
    const MACROS: &[&str] = &["println!", "eprintln!", "print!", "eprint!", "dbg!"];
    let mut out = Vec::new();
    for (i, line) in ctx.code.iter().enumerate() {
        if ctx.in_test[i] || waived(ctx, i, "trace-sink") {
            continue;
        }
        for mac in MACROS {
            // `mac` ends in '!'; word_positions checks the left boundary,
            // so `my_println!` or `sprint!` are not flagged.
            if !word_positions(line, &mac[..mac.len() - 1])
                .iter()
                .any(|&p| line[p..].starts_with(mac))
            {
                continue;
            }
            out.push(Violation {
                rel_path: ctx.rel_path.clone(),
                line: i + 1,
                rule: "trace-sink",
                msg: format!(
                    "`{mac}` on an instrumented hot path: emit through the \
                     mlp-trace sink (span/instant/counter) instead — a \
                     direct print stalls I/O threads on the terminal and \
                     bypasses the timeline; waive with \
                     `// lint:allow(trace-sink): <reason>` for genuine CLI \
                     output"
                ),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(crate_dir: &str, src: &str) -> FileCtx {
        FileCtx::from_source("crates/x/src/file.rs", crate_dir, src)
    }

    fn rules_of(v: &[Violation]) -> Vec<&'static str> {
        v.iter().map(|x| x.rule).collect()
    }

    // ---- hot-path-panic ------------------------------------------------

    #[test]
    fn hot_path_panic_flags_seeded_violations() {
        let src = "fn f(x: Option<u8>) -> u8 {\n    let v = x.unwrap();\n    let w = x.expect(\"gone\");\n    panic!(\"boom\");\n}\n";
        let v = hot_path_panic(&ctx("aio", src));
        assert_eq!(v.len(), 3, "{v:?}");
        assert_eq!(v[0].line, 2);
        assert_eq!(v[1].line, 3);
        assert_eq!(v[2].line, 4);
    }

    #[test]
    fn hot_path_panic_skips_tests_waivers_and_cold_crates() {
        let tested = "#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\n";
        assert!(hot_path_panic(&ctx("aio", tested)).is_empty());

        let waived = "// lint:allow(hot-path-panic): documented API-misuse panic\nlet v = x.unwrap();\n";
        assert!(hot_path_panic(&ctx("aio", waived)).is_empty());

        let cold = "fn f() { x.unwrap(); }\n";
        assert!(hot_path_panic(&ctx("sim", cold)).is_empty());
    }

    #[test]
    fn multi_line_waiver_blocks_cover_the_next_code_line() {
        let src = "// lint:allow(hot-path-panic): documented API-misuse panic (see\n// the `# Panics` section), not an I/O failure path\nlet v = x.unwrap();\n";
        assert!(hot_path_panic(&ctx("aio", src)).is_empty());

        // A blank line ends the comment block: the waiver must sit
        // directly above the site it excuses.
        let detached = "// lint:allow(hot-path-panic): stale waiver\n\nlet v = x.unwrap();\n";
        assert_eq!(hot_path_panic(&ctx("aio", detached)).len(), 1);
    }

    #[test]
    fn hot_path_panic_ignores_lookalikes() {
        let src = "let a = x.unwrap_or(0);\nlet b = y.unwrap_or_else(f);\nmy_panic!(z);\nlet s = \"panic! in a string\";\n// panic! in a comment\n";
        assert!(hot_path_panic(&ctx("aio", src)).is_empty());
    }

    // ---- safety-comment ------------------------------------------------

    #[test]
    fn safety_comment_required_before_unsafe() {
        let bad = "fn f(p: *const u8) -> u8 {\n    unsafe { *p }\n}\n";
        let v = safety_comment(&ctx("tensor", bad));
        assert_eq!(rules_of(&v), vec!["safety-comment"]);

        let good = "fn f(p: *const u8) -> u8 {\n    // SAFETY: caller guarantees p is valid for reads.\n    unsafe { *p }\n}\n";
        assert!(safety_comment(&ctx("tensor", good)).is_empty());
    }

    #[test]
    fn safety_comment_not_fooled_by_unsafe_code_attr() {
        let src = "#![deny(unsafe_code)]\nfn f() {}\n";
        assert!(safety_comment(&ctx("aio", src)).is_empty());
    }

    // ---- unsafe-confinement --------------------------------------------

    #[test]
    fn unsafe_outside_tensor_is_flagged() {
        let src = "fn f(p: *const u8) -> u8 {\n    // SAFETY: fine.\n    unsafe { *p }\n}\n";
        let v = unsafe_confinement(&ctx("aio", src));
        assert_eq!(rules_of(&v), vec!["unsafe-confinement"]);
        assert!(unsafe_confinement(&ctx("tensor", src)).is_empty());
    }

    #[test]
    fn crate_root_must_deny_unsafe_code() {
        let bare = FileCtx::from_source("crates/aio/src/lib.rs", "aio", "pub mod a;\n");
        let v = unsafe_confinement(&bare);
        assert_eq!(rules_of(&v), vec!["unsafe-confinement"]);

        let denied = FileCtx::from_source(
            "crates/aio/src/lib.rs",
            "aio",
            "#![deny(unsafe_code)]\npub mod a;\n",
        );
        assert!(unsafe_confinement(&denied).is_empty());

        // Non-root files are not subject to the attribute check.
        let inner = FileCtx::from_source("crates/aio/src/engine.rs", "aio", "pub fn f() {}\n");
        assert!(unsafe_confinement(&inner).is_empty());

        // mlp-tensor is the sanctioned unsafe surface.
        let tensor_root =
            FileCtx::from_source("crates/tensor/src/lib.rs", "tensor", "pub mod buffer;\n");
        assert!(unsafe_confinement(&tensor_root).is_empty());
    }

    #[test]
    fn aio_syscall_shim_is_individually_sanctioned() {
        let src = "fn f(p: *const u8) -> u8 {\n    // SAFETY: fine.\n    unsafe { *p }\n}\n";
        let shim = FileCtx::from_source("crates/aio/src/io_engine/sys.rs", "aio", src);
        assert!(unsafe_confinement(&shim).is_empty());

        // Only that exact path is sanctioned: a sibling engine driver
        // with unsafe code is still a violation.
        let driver = FileCtx::from_source("crates/aio/src/io_engine/uring.rs", "aio", src);
        assert_eq!(rules_of(&unsafe_confinement(&driver)), vec!["unsafe-confinement"]);
    }

    // ---- raw-io-confinement --------------------------------------------

    #[test]
    fn raw_io_outside_the_engine_subsystem_is_flagged() {
        let src = "let fd = syscall(425, 8, &mut p, 0, 0, 0, 0);\nopts.custom_flags(O_DIRECT);\nlet m = mmap(core::ptr::null_mut(), len, 3, 2, fd, 0);\n";
        let v = raw_io_confinement(&ctx("storage", src));
        assert_eq!(v.len(), 3, "{v:?}");
        assert!(v.iter().all(|x| x.rule == "raw-io-confinement"));

        // The engine subsystem and the FFI layer own these interfaces.
        assert!(raw_io_confinement(&ctx("aio", src)).is_empty());
        assert!(raw_io_confinement(&ctx("tensor", src)).is_empty());
    }

    #[test]
    fn raw_io_confinement_skips_lookalikes_tests_and_waivers() {
        // Word boundaries: identifiers embedding the tokens are fine,
        // and comments/strings are blanked before the rule runs.
        let ok = "let mmap_plan = remap_syscalls();\nlet s = \"uses mmap and O_DIRECT\";\n// a comment about io_uring_setup\n";
        assert!(raw_io_confinement(&ctx("storage", ok)).is_empty());

        let tested = "#[cfg(test)]\nmod tests {\n    fn t() { let _ = mmap(p, n, 3, 2, fd, 0); }\n}\n";
        assert!(raw_io_confinement(&ctx("storage", tested)).is_empty());

        let waived = "// lint:allow(raw-io-confinement): documented probe utility\nlet fd = syscall(425, 8, &mut p, 0, 0, 0, 0);\n";
        assert!(raw_io_confinement(&ctx("storage", waived)).is_empty());
    }

    // ---- facade-only ---------------------------------------------------

    #[test]
    fn direct_primitives_in_ported_crates_are_flagged() {
        let src = "use parking_lot::Mutex;\nuse std::sync::Condvar;\nlet t = std::thread::spawn(f);\n";
        let v = facade_only(&ctx("aio", src));
        assert_eq!(v.len(), 3, "{v:?}");
        // Unported crates may still use them directly.
        assert!(facade_only(&ctx("storage", src)).is_empty());
    }

    #[test]
    fn facade_only_allows_arc_tests_and_waivers() {
        let ok = "use std::sync::Arc;\nuse mlp_sync::{Mutex, Condvar};\n";
        assert!(facade_only(&ctx("aio", ok)).is_empty());

        let tested = "#[cfg(test)]\nmod tests {\n    use std::sync::atomic::AtomicUsize;\n}\n";
        assert!(facade_only(&ctx("aio", tested)).is_empty());

        let waived =
            "// lint:allow(facade-only): FFI callback cannot use the facade\nuse std::sync::Mutex;\n";
        assert!(facade_only(&ctx("aio", waived)).is_empty());
    }

    // ---- relaxed-audit -------------------------------------------------

    #[test]
    fn unannotated_relaxed_is_flagged() {
        let bad = "counter.fetch_add(1, Ordering::Relaxed);\n";
        let v = relaxed_audit(&ctx("storage", bad));
        assert_eq!(rules_of(&v), vec!["relaxed-audit"]);

        let good = "// relaxed-ok: monotonic stats counter, read only for reporting\ncounter.fetch_add(1, Ordering::Relaxed);\n";
        assert!(relaxed_audit(&ctx("storage", good)).is_empty());

        let inline = "counter.fetch_add(1, Ordering::Relaxed); // relaxed-ok: stats\n";
        assert!(relaxed_audit(&ctx("storage", inline)).is_empty());
    }

    #[test]
    fn relaxed_in_tests_or_cold_crates_is_fine() {
        let tested = "#[cfg(test)]\nmod tests {\n    fn t() { c.load(Ordering::Relaxed); }\n}\n";
        assert!(relaxed_audit(&ctx("storage", tested)).is_empty());
        let cold = "c.load(Ordering::Relaxed);\n";
        assert!(relaxed_audit(&ctx("sync", cold)).is_empty());
    }

    // ---- trace-sink ----------------------------------------------------

    #[test]
    fn direct_prints_on_hot_paths_are_flagged() {
        let src = "fn f() {\n    println!(\"submitted\");\n    eprintln!(\"retry {n}\");\n    dbg!(op);\n}\n";
        let v = trace_sink(&ctx("aio", src));
        assert_eq!(v.len(), 3, "{v:?}");
        assert!(v.iter().all(|x| x.rule == "trace-sink"));
        // Crates outside the instrumented hot path may print freely
        // (bench renderers, the repro CLI).
        assert!(trace_sink(&ctx("bench", src)).is_empty());
        assert!(trace_sink(&ctx("train", src)).is_empty());
    }

    #[test]
    fn trace_sink_skips_tests_waivers_and_lookalikes() {
        let tested = "#[cfg(test)]\nmod tests {\n    fn t() { println!(\"debugging a test\"); }\n}\n";
        assert!(trace_sink(&ctx("aio", tested)).is_empty());

        let waived = "// lint:allow(trace-sink): operator-facing CLI summary, not I/O-path\nprintln!(\"{summary}\");\n";
        assert!(trace_sink(&ctx("core", waived)).is_empty());

        let lookalikes =
            "my_println!(x);\nlet s = \"println! in a string\";\n// println! in a comment\n";
        assert!(trace_sink(&ctx("aio", lookalikes)).is_empty());
    }

    // ---- integration: check_file over a multi-violation fixture --------

    #[test]
    fn check_file_reports_all_rules_on_a_seeded_fixture() {
        let src = "use parking_lot::Mutex;\n\
                   fn f(x: Option<u8>, p: *const u8) -> u8 {\n\
                   \x20   stats.fetch_add(1, Ordering::Relaxed);\n\
                   \x20   let v = x.unwrap();\n\
                   \x20   eprintln!(\"v = {v}\");\n\
                   \x20   unsafe { *p }\n\
                   }\n";
        let v = check_file(&FileCtx::from_source("crates/aio/src/bad.rs", "aio", src));
        let mut rules: Vec<_> = rules_of(&v);
        rules.sort_unstable();
        assert_eq!(
            rules,
            vec![
                "facade-only",
                "hot-path-panic",
                "relaxed-audit",
                "safety-comment",
                "trace-sink",
                "unsafe-confinement",
            ]
        );
    }
}
