//! A minimal Rust lexer for the invariant linter.
//!
//! The rules in [`crate::rules`] are textual, so they need source text
//! with the two classic false-positive channels separated out:
//!
//! * the **code channel** — the source with comment text and
//!   string/char-literal *contents* blanked to spaces (delimiters are
//!   kept so column positions line up with the original), and
//! * the **comment channel** — only comment text, everything else
//!   blanked — where `// SAFETY:`, `// relaxed-ok:`, and
//!   `// lint:allow(...)` annotations live.
//!
//! The lexer understands line comments, nested block comments, string
//! and byte-string literals with escapes, raw (byte) strings with any
//! number of `#`s, char/byte-char literals, and the char-vs-lifetime
//! ambiguity (`'a'` vs `&'a`). It does not attempt full tokenization —
//! masking is all the rules need.
//!
//! The semantic pass ([`crate::parser`]) additionally needs the *text*
//! of string literals (meter names like `"aio.{backend}.reads"` live
//! there), so [`mask`] also records every string literal it blanks as a
//! [`Literal`] with its opening position.

/// One string literal captured during masking: the line/column of its
/// opening `"` (0-based) and its raw content (escapes unprocessed,
/// delimiters and any `r#` prefix excluded).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Literal {
    pub line: usize,
    pub col: usize,
    pub text: String,
}

/// Per-line views of a source file, split into channels.
pub struct Masked {
    /// Code channel: comments and literal contents replaced by spaces.
    pub code: Vec<String>,
    /// Comment channel: comment text only (markers kept), rest spaces.
    pub comments: Vec<String>,
    /// Every string literal, in source order (char literals excluded).
    pub literals: Vec<Literal>,
}

#[derive(Clone, Copy, PartialEq)]
enum State {
    Code,
    LineComment,
    /// Block comments nest in Rust; the payload is the current depth.
    BlockComment(u32),
    Str,
    RawStr(u32),
    Char,
}

/// Split `src` into the code and comment channels, line by line.
pub fn mask(src: &str) -> Masked {
    let chars: Vec<char> = src.chars().collect();
    let mut code = String::with_capacity(src.len());
    let mut comments = String::with_capacity(src.len());
    let mut literals: Vec<Literal> = Vec::new();
    // Current string literal under construction: (line, col, text).
    let mut cur_lit: Option<(usize, usize, String)> = None;
    let mut state = State::Code;
    let mut i = 0usize;
    // 0-based position of the *next* char to emit, for literal capture.
    let mut line = 0usize;
    let mut col = 0usize;

    // Push one source char to the right channel, a space to the other.
    // Newlines go to both so the line structures stay aligned.
    macro_rules! emit {
        (code $c:expr) => {{
            code.push($c);
            comments.push(if $c == '\n' { '\n' } else { ' ' });
            emit!(@advance $c);
        }};
        (blank $c:expr) => {{
            let fill = if $c == '\n' { '\n' } else { ' ' };
            code.push(fill);
            comments.push(fill);
            emit!(@advance $c);
        }};
        (comment $c:expr) => {{
            comments.push($c);
            code.push(if $c == '\n' { '\n' } else { ' ' });
            emit!(@advance $c);
        }};
        (@advance $c:expr) => {{
            if $c == '\n' {
                line += 1;
                col = 0;
            } else {
                col += 1;
            }
        }};
    }

    while i < chars.len() {
        let c = chars[i];
        let next = chars.get(i + 1).copied();
        match state {
            State::Code => match c {
                '/' if next == Some('/') => {
                    state = State::LineComment;
                    emit!(comment '/');
                    emit!(comment '/');
                    i += 2;
                }
                '/' if next == Some('*') => {
                    state = State::BlockComment(1);
                    emit!(comment '/');
                    emit!(comment '*');
                    i += 2;
                }
                '"' => {
                    state = State::Str;
                    cur_lit = Some((line, col, String::new()));
                    emit!(code '"');
                    i += 1;
                }
                'r' | 'b' if starts_raw_string(&chars, i) => {
                    let (hashes, consumed) = raw_string_open(&chars, i);
                    state = State::RawStr(hashes);
                    cur_lit = Some((line, col, String::new()));
                    for k in 0..consumed {
                        emit!(code chars[i + k]);
                    }
                    i += consumed;
                }
                'b' if next == Some('"') && !ident_tail(&chars, i) => {
                    state = State::Str;
                    cur_lit = Some((line, col, String::new()));
                    emit!(code 'b');
                    emit!(code '"');
                    i += 2;
                }
                'b' if next == Some('\'') && !ident_tail(&chars, i) => {
                    state = State::Char;
                    emit!(code 'b');
                    emit!(code '\'');
                    i += 2;
                }
                '\'' => {
                    if is_char_literal(&chars, i) {
                        state = State::Char;
                        emit!(code '\'');
                        i += 1;
                    } else {
                        // Lifetime (`'a`) or label (`'outer:`): plain code.
                        emit!(code '\'');
                        i += 1;
                    }
                }
                _ => {
                    emit!(code c);
                    i += 1;
                }
            },
            State::LineComment => {
                if c == '\n' {
                    state = State::Code;
                    emit!(comment '\n');
                } else {
                    emit!(comment c);
                }
                i += 1;
            }
            State::BlockComment(depth) => {
                if c == '/' && next == Some('*') {
                    state = State::BlockComment(depth + 1);
                    emit!(comment '/');
                    emit!(comment '*');
                    i += 2;
                } else if c == '*' && next == Some('/') {
                    state = if depth == 1 {
                        State::Code
                    } else {
                        State::BlockComment(depth - 1)
                    };
                    emit!(comment '*');
                    emit!(comment '/');
                    i += 2;
                } else {
                    emit!(comment c);
                    i += 1;
                }
            }
            State::Str => match c {
                '\\' => {
                    // Skip the escaped char (covers \" and \\).
                    if let Some(l) = cur_lit.as_mut() {
                        l.2.push('\\');
                        l.2.extend(next);
                    }
                    emit!(blank '\\');
                    if let Some(n) = next {
                        emit!(blank n);
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                '"' => {
                    state = State::Code;
                    if let Some((ll, lc, text)) = cur_lit.take() {
                        literals.push(Literal { line: ll, col: lc, text });
                    }
                    emit!(code '"');
                    i += 1;
                }
                _ => {
                    if let Some(l) = cur_lit.as_mut() {
                        l.2.push(c);
                    }
                    emit!(blank c);
                    i += 1;
                }
            },
            State::RawStr(hashes) => {
                if c == '"' && closes_raw(&chars, i, hashes) {
                    if let Some((ll, lc, text)) = cur_lit.take() {
                        literals.push(Literal { line: ll, col: lc, text });
                    }
                    emit!(code '"');
                    for k in 0..hashes as usize {
                        emit!(code chars[i + 1 + k]);
                    }
                    i += 1 + hashes as usize;
                    state = State::Code;
                } else {
                    if let Some(l) = cur_lit.as_mut() {
                        l.2.push(c);
                    }
                    emit!(blank c);
                    i += 1;
                }
            }
            State::Char => match c {
                '\\' => {
                    emit!(blank '\\');
                    if let Some(n) = next {
                        emit!(blank n);
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                '\'' => {
                    state = State::Code;
                    emit!(code '\'');
                    i += 1;
                }
                _ => {
                    emit!(blank c);
                    i += 1;
                }
            },
        }
    }

    // An unterminated literal at EOF still gets captured, so a truncated
    // file degrades gracefully instead of losing its last literal.
    if let Some((ll, lc, text)) = cur_lit.take() {
        literals.push(Literal { line: ll, col: lc, text });
    }

    Masked {
        code: code.lines().map(str::to_owned).collect(),
        comments: comments.lines().map(str::to_owned).collect(),
        literals,
    }
}

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// True if the char *before* `i` continues an identifier (so `chars[i]`
/// cannot start a literal prefix like `r"` / `b'`).
fn ident_tail(chars: &[char], i: usize) -> bool {
    i > 0 && is_ident_char(chars[i - 1])
}

/// Does `chars[i..]` start a raw (byte) string: `r"`, `r#"`, `br"`, ...?
fn starts_raw_string(chars: &[char], i: usize) -> bool {
    if ident_tail(chars, i) {
        return false;
    }
    // `'r` is a lifetime, so a following `"` opens a *plain* string:
    // `f::<'r>("x")`-style code must not be read as a raw-string opener.
    if i > 0 && chars[i - 1] == '\'' {
        return false;
    }
    let mut j = i;
    if chars[j] == 'b' {
        j += 1;
    }
    if chars.get(j) != Some(&'r') {
        return false;
    }
    j += 1;
    while chars.get(j) == Some(&'#') {
        j += 1;
    }
    chars.get(j) == Some(&'"')
}

/// Length of the raw-string opener at `i` and its `#` count.
fn raw_string_open(chars: &[char], i: usize) -> (u32, usize) {
    let mut j = i;
    if chars[j] == 'b' {
        j += 1;
    }
    j += 1; // 'r'
    let mut hashes = 0u32;
    while chars.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    j += 1; // '"'
    (hashes, j - i)
}

/// Does the `"` at `i` close a raw string with `hashes` trailing `#`s?
fn closes_raw(chars: &[char], i: usize, hashes: u32) -> bool {
    (1..=hashes as usize).all(|k| chars.get(i + k) == Some(&'#'))
}

/// Disambiguate `'` at `i`: char literal (`'x'`, `'\n'`) vs lifetime
/// (`'a`, `'static`). A lifetime is `'` + identifier with no closing `'`.
fn is_char_literal(chars: &[char], i: usize) -> bool {
    match chars.get(i + 1) {
        Some('\\') => true,
        Some(&c) if is_ident_char(c) => chars.get(i + 2) == Some(&'\''),
        Some(_) => true, // e.g. '(' — punctuation chars are literals
        None => false,
    }
}

/// Mark the lines of `code` (the code channel) that belong to
/// test-gated regions: the item following `#[cfg(test)]` /
/// `#[cfg(all(test, ...))]` or `#[test]`, tracked by brace matching.
pub fn test_regions(code: &[String]) -> Vec<bool> {
    let mut in_test = vec![false; code.len()];
    let mut line = 0usize;
    while line < code.len() {
        let l = &code[line];
        if l.contains("#[cfg(test)]")
            || l.contains("#[cfg(all(test")
            || l.contains("#[cfg(any(test")
            || l.trim() == "#[test]"
            || l.contains("#[test]")
        {
            let end = region_end(code, line);
            for flag in in_test.iter_mut().take(end + 1).skip(line) {
                *flag = true;
            }
            line = end + 1;
        } else {
            line += 1;
        }
    }
    in_test
}

/// Find the last line of the item starting at `start`: scan forward to
/// the first `{` and return the line of its matching `}`. Items with no
/// brace before a `;` (e.g. `#[cfg(test)] mod tests;`) end at the `;`.
fn region_end(code: &[String], start: usize) -> usize {
    let mut depth = 0i32;
    let mut seen_open = false;
    // Skip past the attribute itself (everything up to its closing `]`)
    // so `#[cfg(test)]` braces in attr args don't confuse matching.
    let mut line = start;
    let mut col = code[line].find("#[").map(|p| p + 1).unwrap_or(0);
    while line < code.len() {
        let chars: Vec<char> = code[line].chars().collect();
        while col < chars.len() {
            match chars[col] {
                '{' => {
                    depth += 1;
                    seen_open = true;
                }
                '}' => {
                    depth -= 1;
                    if seen_open && depth == 0 {
                        return line;
                    }
                }
                ';' if !seen_open => return line,
                _ => {}
            }
            col += 1;
        }
        line += 1;
        col = 0;
    }
    code.len().saturating_sub(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_are_blanked_from_code() {
        let m = mask("let s = \"unsafe // not code\"; // unwrap() here\n");
        assert!(!m.code[0].contains("unsafe"));
        assert!(!m.code[0].contains("unwrap"));
        assert!(m.code[0].contains("let s ="));
        assert!(m.comments[0].contains("unwrap() here"));
        assert!(!m.comments[0].contains("let s"));
    }

    #[test]
    fn nested_block_comments_terminate_correctly() {
        let m = mask("a /* x /* y */ z */ b\n");
        assert!(m.code[0].contains('a'));
        assert!(m.code[0].contains('b'));
        assert!(!m.code[0].contains('y'));
        assert!(!m.code[0].contains('z'));
    }

    #[test]
    fn raw_strings_with_hashes_are_opaque() {
        let m = mask("let r = r#\"panic!(\"inner\")\"#; after\n");
        assert!(!m.code[0].contains("panic"));
        assert!(m.code[0].contains("after"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let m = mask("fn f<'a>(x: &'a str) -> &'a str { x } // 'c'\n");
        assert!(m.code[0].contains("'a str"));
        let m2 = mask("let c = 'x'; let esc = '\\''; keep\n");
        assert!(!m2.code[0].contains('x'));
        assert!(m2.code[0].contains("keep"));
    }

    #[test]
    fn raw_string_edge_cases() {
        // Multiple hashes: the closer needs the exact hash count.
        let m = mask("let r = r##\"a \"# b unwrap()\"##; tail\n");
        assert!(!m.code[0].contains("unwrap"));
        assert!(m.code[0].contains("tail"));
        assert_eq!(m.literals[0].text, "a \"# b unwrap()");

        // Raw *byte* strings take the same path.
        let m2 = mask("let b = br#\"x // y\"#; after\n");
        assert!(!m2.code[0].contains("x // y"));
        assert!(m2.comments[0].trim().is_empty());
        assert!(m2.code[0].contains("after"));

        // An identifier ending in `r` followed by `"` is NOT a raw
        // string: `var"` never occurs in valid Rust, but a lexer that
        // mis-fires here would swallow the rest of the file.
        let m3 = mask("let r = 1; for_r\"plain\"; after\n");
        assert!(m3.code[0].contains("after"));

        // A lifetime named 'r directly before a plain string must not
        // look like a raw-string opener (`'r` + `"` != `r"`).
        let m4 = mask("m!{'r\"one\"}; two(\"second\"); end\n");
        assert!(m4.code[0].contains("end"));
        assert_eq!(m4.literals.len(), 2);
        assert_eq!(m4.literals[1].text, "second");

        // Multi-line raw string: content spans lines, code resumes after.
        let m5 = mask("let s = r#\"line1\nline2\"#;\nnext();\n");
        assert!(!m5.code[0].contains("line1"));
        assert!(!m5.code[1].contains("line2"));
        assert!(m5.code[2].contains("next()"));
        assert_eq!(m5.literals[0].text, "line1\nline2");
    }

    #[test]
    fn nested_block_comment_edge_cases() {
        // Three levels deep, with decoy `*/`-less openers in between.
        let m = mask("a /* 1 /* 2 /* 3 */ 2 */ 1 */ b\n");
        assert!(m.code[0].contains('a'));
        assert!(m.code[0].contains('b'));
        assert!(!m.code[0].contains('3'));

        // A `/*` inside a line comment does not open a block.
        let m2 = mask("x(); // note: /* not a block\ny();\n");
        assert!(m2.code[1].contains("y()"));

        // A `//` inside a block comment does not extend it to line end.
        let m3 = mask("a /* c1 // c2 */ b\n");
        assert!(m3.code[0].contains('b'));

        // Multi-line nesting: still inside after one `*/`.
        let m4 = mask("/* outer /* inner\n*/ still comment */ code\n");
        assert!(!m4.code[1].contains("still"));
        assert!(m4.code[1].contains("code"));
    }

    #[test]
    fn lifetime_vs_char_edge_cases() {
        // Generic params, bounds, and labels are code, not literals.
        let m = mask("impl<'a, 'b: 'a> S<'a, 'b> { fn f(&'a self) {} }\n");
        assert!(m.code[0].contains("'a, 'b: 'a"));

        // `'a'` (char) right next to `'a` (lifetime) on one line.
        let m2 = mask("let c: char = 'a'; let r: &'a str = s;\n");
        assert!(!m2.code[0].contains("= 'a';"));
        assert!(m2.code[0].contains("&'a str"));

        // Escaped quote and escaped backslash chars terminate correctly.
        let m3 = mask("let q = '\\''; let bs = '\\\\'; done\n");
        assert!(m3.code[0].contains("done"));

        // Byte chars `b'x'` vs an identifier ending in `b` before a quote.
        let m4 = mask("let x = b'\\n'; let grab = ident_b; done\n");
        assert!(m4.code[0].contains("done"));

        // Loop labels are lifetimes syntactically: `'outer: loop`.
        let m5 = mask("'outer: loop { break 'outer; } after\n");
        assert!(m5.code[0].contains("'outer: loop"));
        assert!(m5.code[0].contains("after"));

        // `'_'` is a char literal; `'_` alone is the wildcard lifetime.
        let m6 = mask("let u = '_'; fn g(x: &'_ str) {} tail\n");
        assert!(m6.code[0].contains("&'_ str"));
        assert!(m6.code[0].contains("tail"));
    }

    #[test]
    fn literals_are_captured_with_positions() {
        let m = mask("emit(\"first\");\nlet c = 'x';\nemit(\"sec\\\"ond\");\n");
        assert_eq!(m.literals.len(), 2, "{:?}", m.literals);
        assert_eq!(m.literals[0], Literal { line: 0, col: 5, text: "first".into() });
        // Char literals are not captured; escapes stay raw.
        assert_eq!(m.literals[1].line, 2);
        assert_eq!(m.literals[1].text, "sec\\\"ond");
    }

    #[test]
    fn cfg_test_region_covers_module_body() {
        let src = "fn hot() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn after() {}\n";
        let m = mask(src);
        let regions = test_regions(&m.code);
        assert_eq!(regions, vec![false, true, true, true, true, false]);
    }

    #[test]
    fn test_attribute_covers_single_function() {
        let src = "#[test]\nfn t() {\n    y.unwrap();\n}\nfn hot() {}\n";
        let m = mask(src);
        let regions = test_regions(&m.code);
        assert_eq!(regions, vec![true, true, true, true, false]);
    }
}
