//! Workspace-wide semantic analyses over the [`crate::parser`] output.
//!
//! Four global checks run on the assembled workspace (DESIGN.md §13):
//!
//! * **`transitive-panic`** — graph reachability from `lint:hot-root`
//!   annotated functions to any unwaived panic site (`panic!`-family,
//!   `.unwrap()`, `.expect(`, indexing), through the resolved call
//!   graph. The textual `hot-path-panic` rule checks each *line* of the
//!   hot crates; this check follows the hot paths wherever they lead,
//!   including into cold crates.
//! * **`lock-order`** — a global lock-ordering digraph from nested
//!   guard scopes (direct nesting and acquisitions made by callees
//!   while a guard is live). Any strongly-connected component is a
//!   potential ABBA deadlock and fails the pass; same-receiver nested
//!   acquisition is reported as re-entrant locking (the `mlp-sync`
//!   mutexes are not re-entrant).
//! * **`blocking-under-lock`** — file I/O, handle waits, channel
//!   receives, or backend tier calls while a facade guard is live on an
//!   engine-side path; `Condvar::wait` only counts with a *second*
//!   guard live (waiting releases just its own mutex).
//! * **`metric-drift`** — every meter name registered in non-test code
//!   must appear in OBSERVABILITY.md and vice versa (`{...}`
//!   placeholders match as wildcards); every `Phase::as_str` span name
//!   must be in the taxonomy table and vice versa; every meter name
//!   asserted by a test must be emitted by some code path.
//!
//! All analyses are best-effort over-approximations; known blind spots
//! and the waiver policy are documented in DESIGN.md §13.

use crate::parser::{wildcard, ParsedFile};
use crate::rules::Violation;
use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};

/// Crates whose code runs on the engine side of the I/O stack: the
/// blocking-under-lock rule applies here (a stalled worker stalls the
/// submit→complete→reclaim pipeline).
pub const ENGINE_SIDE_CRATES: &[&str] = &["aio", "storage", "tensor", "core", "zero3", "trace"];

/// Callee names never resolved through the call graph: std-predominant
/// names where by-name resolution would wire unrelated code together.
const SKIP_RESOLVE: &[&str] = &[
    "as_bytes", "as_mut", "as_ref", "borrow", "borrow_mut", "clone", "cmp", "collect", "cols",
    "contains", "default", "deref", "deref_mut", "drop", "entry", "eq", "extend", "fill", "filter",
    "flush", "fmt", "from", "get", "hash", "insert", "into", "into_iter", "is_empty", "iter",
    "iter_mut", "len", "map", "ne", "next", "partial_cmp", "push", "remove", "rows", "serialize",
    "to_owned", "to_string", "to_vec", "try_from", "try_into", "with_capacity",
];

/// The assembled workspace: every parsed file plus flattened indices.
pub struct Workspace {
    pub files: Vec<ParsedFile>,
    /// Flattened function references: `(file index, fn index)`.
    fns: Vec<(usize, usize)>,
    /// Bare name → flattened indices (test fns excluded).
    by_name: HashMap<String, Vec<usize>>,
}

/// Meter/span names harvested from OBSERVABILITY.md tables.
pub struct DocNames {
    pub rel_path: String,
    /// Dotted meter names (wildcarded), with 0-based doc line.
    pub meters: Vec<(String, usize)>,
    /// Span (phase) names, with 0-based doc line.
    pub spans: Vec<(String, usize)>,
}

impl Workspace {
    pub fn build(files: Vec<ParsedFile>) -> Self {
        let mut fns = Vec::new();
        let mut by_name: HashMap<String, Vec<usize>> = HashMap::new();
        for (fi, file) in files.iter().enumerate() {
            for (gi, f) in file.fns.iter().enumerate() {
                let idx = fns.len();
                fns.push((fi, gi));
                if !f.is_test {
                    by_name.entry(f.name.clone()).or_default().push(idx);
                }
            }
        }
        Workspace {
            files,
            fns,
            by_name,
        }
    }

    fn fn_at(&self, idx: usize) -> &crate::parser::FnDef {
        let (fi, gi) = self.fns[idx];
        &self.files[fi].fns[gi]
    }

    fn file_of(&self, idx: usize) -> &ParsedFile {
        &self.files[self.fns[idx].0]
    }

    /// Short display name for messages: `Type::name` or `name`.
    fn short(&self, idx: usize) -> String {
        let q = &self.fn_at(idx).qual;
        match q.find(".rs::") {
            Some(p) => q[p + 5..].to_owned(),
            None => q.clone(),
        }
    }

    /// Resolve one call to candidate workspace functions, best-effort:
    /// by bare name, narrowed by an uppercase `Type::` qualifier when
    /// present. Method calls (`x.f(`) resolve to any same-named method
    /// (an over-approximation of trait-object dispatch).
    fn resolve(&self, caller_file: usize, call: &crate::parser::Call) -> Vec<usize> {
        if SKIP_RESOLVE.contains(&call.callee.as_str()) {
            return Vec::new();
        }
        let Some(cands) = self.by_name.get(&call.callee) else {
            return Vec::new();
        };
        // A call can only land in the caller's own crate or one it
        // references through an `mlp_*` path — a same-named method in an
        // unrelated crate is not a candidate.
        let caller = &self.files[caller_file];
        let cands: Vec<usize> = cands
            .iter()
            .copied()
            .filter(|&k| {
                let cd = &self.file_of(k).crate_dir;
                *cd == caller.crate_dir || caller.ext_crates.contains(cd)
            })
            .collect();
        let cands = &cands;
        if let (Some(q), false) = (&call.qualifier, call.method) {
            if q.starts_with(|c: char| c.is_ascii_uppercase()) {
                let needle = format!("::{q}::");
                return cands
                    .iter()
                    .copied()
                    .filter(|&k| self.fn_at(k).qual.contains(&needle))
                    .collect();
                // Empty result = a std/foreign type: resolves to nothing.
            }
            // A lowercase module qualifier (`fs::write`, `mem::take`)
            // resolves only into files whose path contains that module
            // name; std/foreign modules thus resolve to nothing instead
            // of aliasing every same-named workspace fn. `self`/`super`/
            // `crate` paths stay broad (same-crate, unknown file).
            if !matches!(q.as_str(), "self" | "super" | "crate") {
                let seg_dir = format!("/{q}/");
                let seg_file = format!("/{q}.rs");
                return cands
                    .iter()
                    .copied()
                    .filter(|&k| {
                        let p = &self.file_of(k).rel_path;
                        p.contains(&seg_dir) || p.contains(&seg_file)
                    })
                    .collect();
            }
        }
        if call.method {
            // `.f(` must hit a method (some `Type::f`), not a free fn.
            return cands
                .iter()
                .copied()
                .filter(|&k| {
                    let q = &self.fn_at(k).qual;
                    q.find(".rs::").is_some_and(|p| q[p + 5..].contains("::"))
                })
                .collect();
        }
        cands.clone()
    }

    /// Run every analysis. `doc` is the parsed OBSERVABILITY.md (absent
    /// in doc-less fixture trees: the doc-drift checks are skipped, the
    /// test-assertion check still runs).
    pub fn analyze(&self, doc: Option<&DocNames>) -> Vec<Violation> {
        let mut out = Vec::new();
        out.extend(self.transitive_panic());
        out.extend(self.lock_order());
        out.extend(self.blocking_under_lock());
        out.extend(self.metric_drift(doc));
        out
    }

    // ---- transitive panic reachability ---------------------------------

    fn adjacency(&self) -> Vec<Vec<usize>> {
        let mut adj = vec![Vec::new(); self.fns.len()];
        for idx in 0..self.fns.len() {
            let f = self.fn_at(idx);
            if f.is_test {
                continue;
            }
            let mut seen = HashSet::new();
            for call in &f.calls {
                if call.in_test {
                    continue;
                }
                for k in self.resolve(self.fns[idx].0, call) {
                    if k != idx && seen.insert(k) {
                        adj[idx].push(k);
                    }
                }
            }
        }
        adj
    }

    fn transitive_panic(&self) -> Vec<Violation> {
        let adj = self.adjacency();
        // Multi-source BFS from every hot root, keeping parents so each
        // finding can print the call chain that reaches it.
        let mut parent: Vec<Option<usize>> = vec![None; self.fns.len()];
        let mut visited = vec![false; self.fns.len()];
        let mut queue = VecDeque::new();
        for idx in 0..self.fns.len() {
            if self.fn_at(idx).hot_root && !self.fn_at(idx).is_test {
                visited[idx] = true;
                queue.push_back(idx);
            }
        }
        let mut order = Vec::new();
        while let Some(u) = queue.pop_front() {
            order.push(u);
            for &v in &adj[u] {
                if !visited[v] {
                    visited[v] = true;
                    parent[v] = Some(u);
                    queue.push_back(v);
                }
            }
        }

        let mut out = Vec::new();
        let mut reported: HashSet<(usize, usize, &str)> = HashSet::new();
        for &idx in &order {
            let f = self.fn_at(idx);
            if f.waivers.iter().any(|w| w == "transitive-panic") {
                continue; // fn-level waiver covers every site in the body
            }
            let path = {
                let mut chain = vec![self.short(idx)];
                let mut at = idx;
                while let Some(p) = parent[at] {
                    chain.push(self.short(p));
                    at = p;
                }
                chain.reverse();
                chain.join(" → ")
            };
            for site in &f.panics {
                if site.in_test || site.waived {
                    continue;
                }
                // One report per (line, kind): a line with three index
                // expressions is one finding, not three.
                if !reported.insert((self.fns[idx].0, site.line, site.what)) {
                    continue;
                }
                out.push(Violation {
                    rel_path: self.file_of(idx).rel_path.clone(),
                    line: site.line + 1,
                    rule: "transitive-panic",
                    msg: format!(
                        "{} reachable from hot root via {path}: return a typed \
                         error or waive with `// lint:allow(transitive-panic): \
                         <reason>`",
                        site.what
                    ),
                });
            }
        }
        out
    }

    // ---- lock-order inversion ------------------------------------------

    /// Transitive lock-acquisition sets per function (fixpoint).
    fn trans_locks(&self, adj: &[Vec<usize>]) -> Vec<HashSet<String>> {
        let mut sets: Vec<HashSet<String>> = self
            .fns
            .iter()
            .enumerate()
            .map(|(idx, _)| {
                self.fn_at(idx)
                    .guards
                    .iter()
                    .filter(|g| !g.in_test && !g.waived)
                    .map(|g| g.lock.clone())
                    .collect()
            })
            .collect();
        loop {
            let mut changed = false;
            for idx in 0..self.fns.len() {
                for &k in &adj[idx] {
                    if sets[k].is_empty() {
                        continue;
                    }
                    let add: Vec<String> = sets[k]
                        .iter()
                        .filter(|l| !sets[idx].contains(*l))
                        .cloned()
                        .collect();
                    if !add.is_empty() {
                        sets[idx].extend(add);
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        sets
    }

    fn lock_order(&self) -> Vec<Violation> {
        let adj = self.adjacency();
        let trans = self.trans_locks(&adj);
        let mut out = Vec::new();
        // Edge map: (from, to) → first example site "file:line".
        let mut edges: BTreeMap<(String, String), (String, usize)> = BTreeMap::new();

        for idx in 0..self.fns.len() {
            let f = self.fn_at(idx);
            if f.is_test {
                continue;
            }
            let file = self.file_of(idx);
            for g in &f.guards {
                if g.in_test || g.waived {
                    continue;
                }
                // Direct nesting: another acquisition inside g's scope.
                for h in &f.guards {
                    if h.in_test || h.waived {
                        continue;
                    }
                    let after = (h.line, h.col) > (g.line, g.col);
                    if !after || h.line > g.end {
                        continue;
                    }
                    if g.lock == h.lock {
                        // Same lock id: re-entrant only if the receiver
                        // text matches (else likely two instances).
                        if g.recv == h.recv {
                            out.push(Violation {
                                rel_path: file.rel_path.clone(),
                                line: h.line + 1,
                                rule: "lock-order",
                                msg: format!(
                                    "re-entrant acquisition of `{}` (first taken at \
                                     line {}): mlp-sync mutexes are not re-entrant — \
                                     this deadlocks",
                                    g.lock,
                                    g.line + 1
                                ),
                            });
                        }
                        continue;
                    }
                    edges
                        .entry((g.lock.clone(), h.lock.clone()))
                        .or_insert_with(|| (file.rel_path.clone(), h.line + 1));
                }
                // Interprocedural: callee acquisitions while g is live.
                for call in &f.calls {
                    if call.in_test || call.waived_lock_order {
                        continue;
                    }
                    if call.line < g.line || call.line > g.end {
                        continue;
                    }
                    for k in self.resolve(self.fns[idx].0, call) {
                        for l in &trans[k] {
                            if *l == g.lock {
                                continue; // instance-ambiguous; see DESIGN.md §13
                            }
                            edges
                                .entry((g.lock.clone(), l.clone()))
                                .or_insert_with(|| (file.rel_path.clone(), call.line + 1));
                        }
                    }
                }
            }
        }

        // Any SCC with ≥ 2 locks is a potential ABBA inversion.
        for scc in sccs(&edges) {
            if scc.len() < 2 {
                continue;
            }
            let mut cyc_edges: Vec<String> = edges
                .iter()
                .filter(|((a, b), _)| scc.contains(a) && scc.contains(b))
                .map(|((a, b), (f, l))| format!("{a} → {b} at {f}:{l}"))
                .collect();
            cyc_edges.sort();
            let (file, line) = edges
                .iter()
                .find(|((a, b), _)| scc.contains(a) && scc.contains(b))
                .map(|(_, (f, l))| (f.clone(), *l))
                .unwrap_or_default();
            out.push(Violation {
                rel_path: file,
                line,
                rule: "lock-order",
                msg: format!(
                    "lock-order cycle over {{{}}}: {}; establish one global \
                     order or waive an edge with `// lint:allow(lock-order): \
                     <reason>`",
                    scc.join(", "),
                    cyc_edges.join("; ")
                ),
            });
        }
        out
    }

    // ---- blocking under a live guard -----------------------------------

    fn blocking_under_lock(&self) -> Vec<Violation> {
        let mut out = Vec::new();
        for idx in 0..self.fns.len() {
            let f = self.fn_at(idx);
            let file = self.file_of(idx);
            if f.is_test || !ENGINE_SIDE_CRATES.contains(&file.crate_dir.as_str()) {
                continue;
            }
            if f.waivers.iter().any(|w| w == "blocking-under-lock") {
                continue;
            }
            for b in &f.blocking {
                if b.in_test || b.waived {
                    continue;
                }
                let live: Vec<&str> = f
                    .guards
                    .iter()
                    .filter(|g| !g.in_test && g.line <= b.line && b.line <= g.end)
                    .map(|g| g.lock.as_str())
                    .collect();
                let threshold = if b.condvar { 2 } else { 1 };
                if live.len() < threshold {
                    continue;
                }
                let msg = if b.condvar {
                    format!(
                        "{} with {} facade guards live ({}): the wait releases \
                         only its own mutex — every other guard is held across \
                         the sleep",
                        b.what,
                        live.len(),
                        live.join(", ")
                    )
                } else {
                    format!(
                        "{} while facade guard on `{}` is live: a blocked \
                         engine thread holding a lock stalls the \
                         submit→complete→reclaim pipeline; waive with \
                         `// lint:allow(blocking-under-lock): <reason>`",
                        b.what,
                        live.join("`, `")
                    )
                };
                out.push(Violation {
                    rel_path: file.rel_path.clone(),
                    line: b.line + 1,
                    rule: "blocking-under-lock",
                    msg,
                });
            }
        }
        out
    }

    // ---- metric-name drift ---------------------------------------------

    fn metric_drift(&self, doc: Option<&DocNames>) -> Vec<Violation> {
        let mut out = Vec::new();
        // Emitted meter patterns (non-test, unwaived) across the tree.
        let mut emitted: Vec<(&str, &str, usize)> = Vec::new(); // (name, file, line)
        let mut emitted_all: Vec<&str> = Vec::new(); // incl. waived, for doc-side checks
        for file in &self.files {
            for m in &file.meters {
                emitted_all.push(&m.name);
                if !m.waived {
                    emitted.push((&m.name, &file.rel_path, m.line));
                }
            }
        }
        // Span names: literals inside `Phase::as_str`.
        let mut span_names: Vec<(&str, &str, usize)> = Vec::new();
        for file in &self.files {
            for f in &file.fns {
                if f.name == "as_str" && f.qual.contains("::Phase::") {
                    for lit in &file.literals {
                        if lit.line >= f.line && lit.line <= f.end {
                            span_names.push((&lit.text, &file.rel_path, lit.line));
                        }
                    }
                }
            }
        }

        if let Some(doc) = doc {
            for (name, file, line) in &emitted {
                if !doc.meters.iter().any(|(d, _)| compatible(name, d)) {
                    out.push(Violation {
                        rel_path: (*file).to_owned(),
                        line: line + 1,
                        rule: "metric-drift",
                        msg: format!(
                            "meter `{name}` is emitted but not documented in \
                             {}: add it to the metrics tables (the drift-lint \
                             contract is documented ⇔ emitted)",
                            doc.rel_path
                        ),
                    });
                }
            }
            for (dname, dline) in &doc.meters {
                if !emitted_all.iter().any(|e| compatible(e, dname)) {
                    out.push(Violation {
                        rel_path: doc.rel_path.clone(),
                        line: dline + 1,
                        rule: "metric-drift",
                        msg: format!(
                            "documented meter `{dname}` is not registered \
                             anywhere in the workspace: fix the doc or restore \
                             the meter"
                        ),
                    });
                }
            }
            for (name, file, line) in &span_names {
                if !doc.spans.iter().any(|(d, _)| d == name) {
                    out.push(Violation {
                        rel_path: (*file).to_owned(),
                        line: line + 1,
                        rule: "metric-drift",
                        msg: format!(
                            "span/phase name `{name}` is emitted but missing \
                             from the {} event taxonomy",
                            doc.rel_path
                        ),
                    });
                }
            }
            for (dname, dline) in &doc.spans {
                if !span_names.iter().any(|(n, _, _)| n == dname) {
                    out.push(Violation {
                        rel_path: doc.rel_path.clone(),
                        line: dline + 1,
                        rule: "metric-drift",
                        msg: format!(
                            "documented span/phase `{dname}` has no \
                             `Phase::as_str` arm: fix the doc or restore the \
                             phase"
                        ),
                    });
                }
            }
        }

        // Test-asserted names must exist in code regardless of the doc.
        // The `trace` crate is exempt: it *is* the metrics registry, and
        // its unit tests necessarily register synthetic names (`a`, `b`,
        // `fetch.bytes`) to exercise the machinery — those are not
        // observations of production meters. See DESIGN.md §13.
        for file in &self.files {
            if file.crate_dir == "trace" {
                continue;
            }
            for m in &file.asserted_meters {
                if m.waived {
                    continue;
                }
                if !emitted_all.iter().any(|e| compatible(&m.name, e)) {
                    out.push(Violation {
                        rel_path: file.rel_path.clone(),
                        line: m.line + 1,
                        rule: "metric-drift",
                        msg: format!(
                            "test asserts meter `{}` which no non-test code \
                             registers",
                            m.name
                        ),
                    });
                }
            }
        }
        out
    }
}

/// Segment-wise wildcard compatibility: `aio.*.reads` ~ `aio.{b}.reads`.
fn compatible(a: &str, b: &str) -> bool {
    let sa: Vec<&str> = a.split('.').collect();
    let sb: Vec<&str> = b.split('.').collect();
    sa.len() == sb.len()
        && sa
            .iter()
            .zip(&sb)
            .all(|(x, y)| x == y || *x == "*" || *y == "*")
}

/// Tarjan's strongly-connected components over the edge map.
fn sccs(edges: &BTreeMap<(String, String), (String, usize)>) -> Vec<Vec<String>> {
    let mut nodes: Vec<&str> = Vec::new();
    let mut index_of: HashMap<&str, usize> = HashMap::new();
    for (a, b) in edges.keys() {
        for n in [a.as_str(), b.as_str()] {
            if !index_of.contains_key(n) {
                index_of.insert(n, nodes.len());
                nodes.push(n);
            }
        }
    }
    let mut adj = vec![Vec::new(); nodes.len()];
    for (a, b) in edges.keys() {
        adj[index_of[a.as_str()]].push(index_of[b.as_str()]);
    }

    // Iterative Tarjan (explicit stack; recursion depth is unbounded
    // on pathological graphs).
    let n = nodes.len();
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut out = Vec::new();
    for start in 0..n {
        if index[start] != usize::MAX {
            continue;
        }
        // (node, next child position)
        let mut call: Vec<(usize, usize)> = vec![(start, 0)];
        while let Some(&mut (v, ref mut ci)) = call.last_mut() {
            if *ci == 0 {
                index[v] = next_index;
                low[v] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            if *ci < adj[v].len() {
                let w = adj[v][*ci];
                *ci += 1;
                if index[w] == usize::MAX {
                    call.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                if low[v] == index[v] {
                    let mut comp = Vec::new();
                    while let Some(w) = stack.pop() {
                        on_stack[w] = false;
                        comp.push(nodes[w].to_owned());
                        if w == v {
                            break;
                        }
                    }
                    comp.sort();
                    out.push(comp);
                }
                call.pop();
                if let Some(&mut (u, _)) = call.last_mut() {
                    low[u] = low[u].min(low[v]);
                }
            }
        }
    }
    out
}

/// Parse OBSERVABILITY.md (or a fixture equivalent): backticked names
/// in the *first cell* of markdown table rows, outside code fences.
/// Dotted names are meters, dotless names are span/phase names. A row
/// like `` `aio.{b}.reads` / `writes` `` expands dotless siblings as
/// last-segment variants of the first dotted name.
pub fn parse_observability(rel_path: &str, text: &str) -> DocNames {
    let mut meters = Vec::new();
    let mut spans = Vec::new();
    let mut in_fence = false;
    for (i, line) in text.lines().enumerate() {
        let t = line.trim_start();
        if t.starts_with("```") {
            in_fence = !in_fence;
            continue;
        }
        if in_fence || !t.starts_with('|') {
            continue;
        }
        let Some(first_cell) = t.trim_start_matches('|').split('|').next() else {
            continue;
        };
        let tokens: Vec<String> = backticked(first_cell)
            .into_iter()
            .filter(|tok|

                tok.chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || "_.{}".contains(c))
                    && tok.chars().any(|c| c.is_ascii_lowercase()))
            .collect();
        let Some(firstt) = tokens.first() else { continue };
        if firstt.contains('.') {
            let base = wildcard(firstt);
            meters.push((base.clone(), i));
            for tok in &tokens[1..] {
                if tok.contains('.') {
                    meters.push((wildcard(tok), i));
                } else {
                    // Last-segment sibling: `aio.*.reads` + `writes`.
                    let mut segs: Vec<&str> = base.split('.').collect();
                    let w = wildcard(tok);
                    if let Some(last) = segs.last_mut() {
                        *last = &w;
                    }
                    meters.push((segs.join("."), i));
                }
            }
        } else {
            for tok in &tokens {
                spans.push((wildcard(tok), i));
            }
        }
    }
    DocNames {
        rel_path: rel_path.to_owned(),
        meters,
        spans,
    }
}

/// The `...` spans of one markdown cell.
fn backticked(cell: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut rest = cell;
    while let Some(open) = rest.find('`') {
        let after = &rest[open + 1..];
        let Some(close) = after.find('`') else { break };
        out.push(after[..close].to_owned());
        rest = &after[close + 1..];
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::rules::FileCtx;

    fn ws(files: &[(&str, &str, &str)]) -> Workspace {
        Workspace::build(
            files
                .iter()
                .map(|(path, crate_dir, src)| parse(&FileCtx::from_source(path, crate_dir, src)))
                .collect(),
        )
    }

    #[test]
    fn transitive_panic_follows_the_call_chain() {
        let src = "\
// lint:hot-root
fn submit() { step_one() }
fn step_one() { step_two() }
fn step_two(v: &[u8]) -> u8 { v.first().copied().unwrap() }
fn unrelated(v: &[u8]) -> u8 { v[0] }
";
        let v = ws(&[("crates/aio/src/e.rs", "aio", src)]).analyze(None);
        let tp: Vec<_> = v.iter().filter(|x| x.rule == "transitive-panic").collect();
        assert_eq!(tp.len(), 1, "{tp:?}");
        assert_eq!(tp[0].line, 4);
        assert!(tp[0].msg.contains("submit → step_one → step_two"), "{}", tp[0].msg);
    }

    #[test]
    fn lock_order_cycle_across_files_is_detected() {
        let a = "\
pub fn ab(x: &S, y: &T) {
    let g = x.alpha.lock();
    let h = y.beta.lock();
    g.use_with(h);
}
";
        let b = "\
pub fn ba(x: &S, y: &T) {
    let h = y.beta.lock();
    let g = x.alpha.lock();
    h.use_with(g);
}
";
        let w = ws(&[
            ("crates/aio/src/m.rs", "aio", a),
            ("crates/aio/src/m.rs", "aio", b),
        ]);
        // Same file stem so both receivers canonicalize into one pair
        // of lock identities with opposite ordering.
        let v = w.analyze(None);
        let lo: Vec<_> = v.iter().filter(|x| x.rule == "lock-order").collect();
        assert_eq!(lo.len(), 1, "{lo:?}");
        assert!(lo[0].msg.contains("cycle"), "{}", lo[0].msg);
    }

    #[test]
    fn reentrant_acquisition_is_flagged() {
        let src = "\
pub fn f(s: &S) {
    let g = s.state.lock();
    let h = s.state.lock();
    g.merge(h);
}
";
        let v = ws(&[("crates/aio/src/r.rs", "aio", src)]).analyze(None);
        assert!(
            v.iter().any(|x| x.rule == "lock-order" && x.msg.contains("re-entrant")),
            "{v:?}"
        );
    }

    #[test]
    fn blocking_under_lock_fires_and_condvar_needs_two_guards() {
        let src = "\
pub fn bad(s: &S) {
    let g = s.state.lock();
    std::fs::write(\"p\", b\"x\");
    drop(g);
}
pub fn normal_wait(s: &S, cv: &Condvar) {
    let mut g = s.state.lock();
    cv.wait(&mut g);
}
pub fn double_wait(s: &S, cv: &Condvar) {
    let a = s.state.lock();
    let mut b = s.other.lock();
    cv.wait(&mut b);
}
";
        let v = ws(&[("crates/aio/src/b.rs", "aio", src)]).analyze(None);
        let bl: Vec<_> = v.iter().filter(|x| x.rule == "blocking-under-lock").collect();
        assert_eq!(bl.len(), 2, "{bl:?}");
        assert_eq!(bl[0].line, 3);
        assert_eq!(bl[1].line, 13);
    }

    #[test]
    fn metric_drift_both_directions() {
        let code = "\
pub fn wire(t: &TraceSink) {
    t.counter(\"aio.mem.reads\");
    t.gauge(\"pool.main.outstanding\");
}
#[cfg(test)]
mod tests {
    fn t(s: &TraceSink) { s.counter(\"aio.mem.ghost\"); }
}
";
        let doc = "\
| metric | kind |
|---|---|
| `aio.{backend}.reads` | counter |
| `gone.metric.name` | counter |
";
        let w = ws(&[("crates/aio/src/m.rs", "aio", code)]);
        let d = parse_observability("OBSERVABILITY.md", doc);
        assert_eq!(d.meters.len(), 2);
        let v = w.analyze(Some(&d));
        let md: Vec<_> = v.iter().filter(|x| x.rule == "metric-drift").collect();
        // pool.main.outstanding undocumented; gone.metric.name gone;
        // test-asserted aio.mem.ghost never emitted.
        assert_eq!(md.len(), 3, "{md:?}");
        assert!(md.iter().any(|x| x.msg.contains("pool.main.outstanding")));
        assert!(md.iter().any(|x| x.msg.contains("gone.metric.name")));
        assert!(md.iter().any(|x| x.msg.contains("aio.mem.ghost")));
    }

    #[test]
    fn doc_sibling_suffixes_expand() {
        let doc = "\
| phase | kind |
|---|---|
| `tier_read` / `tier_write` | span |
| `aio.{backend}.reads` / `writes` | counter |
";
        let d = parse_observability("OBSERVABILITY.md", doc);
        assert_eq!(
            d.spans.iter().map(|(s, _)| s.as_str()).collect::<Vec<_>>(),
            vec!["tier_read", "tier_write"]
        );
        assert_eq!(
            d.meters.iter().map(|(s, _)| s.as_str()).collect::<Vec<_>>(),
            vec!["aio.*.reads", "aio.*.writes"]
        );
    }

    #[test]
    fn compatible_is_segmentwise() {
        assert!(compatible("aio.*.reads", "aio.*.reads"));
        assert!(compatible("aio.mem.reads", "aio.*.reads"));
        assert!(!compatible("aio.mem.reads", "aio.*.writes"));
        assert!(!compatible("aio.mem", "aio.mem.reads"));
    }
}
