//! A virtual-time storage tier: two fluid-flow links (read and write) plus
//! per-op latency, capacity accounting, and mixed-I/O degradation.
//!
//! Single-direction concurrent streaming shares the link fairly at full
//! capacity (the flat aggregate of Fig. 4). While reads and writes are in
//! flight *simultaneously*, both links run at the spec's
//! `mixed_rw_efficiency` — the interleaving penalty that uncoordinated
//! multi-process training I/O pays (Fig. 9) and that the paper's
//! tier-exclusive concurrency control avoids (§3.2).

use std::cell::Cell;
use std::rc::Rc;

use mlp_sim::bandwidth::BwLink;
use mlp_sim::Sim;

use crate::spec::TierSpec;

struct TierShared {
    active_reads: Cell<usize>,
    active_writes: Cell<usize>,
    mixed: Cell<bool>,
    used_bytes: Cell<u64>,
    /// External-load multiplier on both links (1.0 = unloaded).
    load_factor: Cell<f64>,
}

/// A simulated storage tier. Cheap to clone; clones share links and stats.
#[derive(Clone)]
pub struct SimTier {
    spec: TierSpec,
    sim: Sim,
    read_link: BwLink,
    write_link: BwLink,
    shared: Rc<TierShared>,
}

enum Dir {
    Read,
    Write,
}

/// Restores direction counts if a transfer future is dropped mid-flight.
struct DirGuard<'a> {
    tier: &'a SimTier,
    dir: Dir,
}

impl Drop for DirGuard<'_> {
    fn drop(&mut self) {
        let c = match self.dir {
            Dir::Read => &self.tier.shared.active_reads,
            Dir::Write => &self.tier.shared.active_writes,
        };
        c.set(c.get() - 1);
        self.tier.sync_mixed_mode();
    }
}

impl SimTier {
    /// Creates a tier from its spec.
    pub fn new(sim: &Sim, spec: &TierSpec) -> Self {
        let read_link = BwLink::new(sim, format!("{}:read", spec.name), spec.read_bps);
        let write_link = BwLink::new(sim, format!("{}:write", spec.name), spec.write_bps);
        SimTier {
            spec: spec.clone(),
            sim: sim.clone(),
            read_link,
            write_link,
            shared: Rc::new(TierShared {
                active_reads: Cell::new(0),
                active_writes: Cell::new(0),
                mixed: Cell::new(false),
                used_bytes: Cell::new(0),
                load_factor: Cell::new(1.0),
            }),
        }
    }

    /// The tier's specification.
    pub fn spec(&self) -> &TierSpec {
        &self.spec
    }

    fn begin(&self, dir: Dir) -> DirGuard<'_> {
        let c = match dir {
            Dir::Read => &self.shared.active_reads,
            Dir::Write => &self.shared.active_writes,
        };
        c.set(c.get() + 1);
        let guard = DirGuard { tier: self, dir };
        self.sync_mixed_mode();
        guard
    }

    /// Applies or lifts the mixed-I/O penalty when the direction mix
    /// changes. Tiers with a per-stream cap re-point on *every* change
    /// of the stream counts (their effective bandwidth is the
    /// concurrency-efficiency curve, not a constant).
    fn sync_mixed_mode(&self) {
        let mixed = self.shared.active_reads.get() > 0 && self.shared.active_writes.get() > 0;
        let changed = mixed != self.shared.mixed.get();
        if changed {
            self.shared.mixed.set(mixed);
        }
        if changed || self.spec.per_stream_bps > 0.0 {
            self.apply_rates();
        }
    }

    /// The concurrency-efficiency curve: aggregate link bandwidth capped
    /// at `streams × per_stream_bps` when the spec declares a per-stream
    /// cap (object stores). `streams` is clamped to ≥ 1 so an arriving
    /// op always finds capacity.
    fn curve(&self, aggregate_bps: f64, streams: usize) -> f64 {
        if self.spec.per_stream_bps > 0.0 {
            aggregate_bps.min(streams.max(1) as f64 * self.spec.per_stream_bps)
        } else {
            aggregate_bps
        }
    }

    /// Re-points both links from the spec, the concurrency curve, the
    /// mixed-mode penalty, and the external load factor.
    fn apply_rates(&self) {
        let eff = if self.shared.mixed.get() {
            self.spec.mixed_rw_efficiency
        } else {
            1.0
        };
        let factor = self.shared.load_factor.get() * eff;
        self.read_link.set_capacity_bps(
            self.curve(self.spec.read_bps, self.shared.active_reads.get()) * factor,
        );
        self.write_link.set_capacity_bps(
            self.curve(self.spec.write_bps, self.shared.active_writes.get()) * factor,
        );
    }

    /// Reads `bytes` from the tier (latency + bandwidth share).
    pub async fn read(&self, bytes: u64) {
        self.sim.sleep(self.spec.op_latency_s).await;
        let _guard = self.begin(Dir::Read);
        self.read_link.transfer(bytes).await;
    }

    /// Writes `bytes` to the tier and accounts the capacity.
    pub async fn write(&self, bytes: u64) {
        self.sim.sleep(self.spec.op_latency_s).await;
        {
            let _guard = self.begin(Dir::Write);
            self.write_link.transfer(bytes).await;
        }
        self.shared
            .used_bytes
            .set(self.shared.used_bytes.get() + bytes);
    }

    /// Accounts `bytes` of capacity without timing a transfer (used when
    /// pre-populating tiers with the initial optimizer state before the
    /// measured iterations start).
    pub fn account(&self, bytes: u64) {
        self.shared
            .used_bytes
            .set(self.shared.used_bytes.get() + bytes);
    }

    /// Releases `bytes` of accounted capacity (object deleted/overwritten).
    pub fn release(&self, bytes: u64) {
        self.shared
            .used_bytes
            .set(self.shared.used_bytes.get().saturating_sub(bytes));
    }

    /// Bytes currently accounted against the tier's capacity.
    pub fn used_bytes(&self) -> u64 {
        self.shared.used_bytes.get()
    }

    /// Whether `bytes` more would exceed the tier's capacity.
    pub fn would_overflow(&self, bytes: u64) -> bool {
        self.shared.used_bytes.get() + bytes > self.spec.capacity_bytes
    }

    /// Whether the tier is currently in (penalized) mixed read/write mode.
    pub fn is_mixed_mode(&self) -> bool {
        self.shared.mixed.get()
    }

    /// Total bytes read so far (fluid-model accounting).
    pub fn bytes_read(&self) -> f64 {
        self.read_link.total_bytes()
    }

    /// Total bytes written so far.
    pub fn bytes_written(&self) -> f64 {
        self.write_link.total_bytes()
    }

    /// Seconds the read link was busy.
    pub fn read_busy_seconds(&self) -> f64 {
        self.read_link.busy_seconds()
    }

    /// Seconds the write link was busy.
    pub fn write_busy_seconds(&self) -> f64 {
        self.write_link.busy_seconds()
    }

    /// In-flight reads + writes.
    pub fn active_ops(&self) -> usize {
        self.shared.active_reads.get() + self.shared.active_writes.get()
    }

    /// Scales both link capacities (models external PFS load, §3.3).
    /// The factor persists across mixed-mode transitions and composes
    /// with the interleaving penalty.
    pub fn set_load_factor(&self, factor: f64) {
        assert!(factor > 0.0, "load factor must be positive");
        self.shared.load_factor.set(factor);
        self.apply_rates();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{testbed1_nvme, testbed1_pfs};
    use mlp_sim::time::to_secs;

    fn approx(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "expected {b} ± {tol}, got {a}");
    }

    #[test]
    fn single_read_takes_bytes_over_read_bandwidth() {
        let sim = Sim::new();
        let tier = SimTier::new(&sim, &testbed1_nvme());
        let t = tier.clone();
        let s = sim.clone();
        let end = sim.block_on(async move {
            t.read(6_900_000_000).await; // 6.9 GB at 6.9 GB/s
            s.now()
        });
        approx(to_secs(end), 1.0 + 100e-6, 1e-4);
    }

    #[test]
    fn write_uses_write_bandwidth_and_accounts_capacity() {
        let sim = Sim::new();
        let tier = SimTier::new(&sim, &testbed1_nvme());
        let t = tier.clone();
        let s = sim.clone();
        let end = sim.block_on(async move {
            t.write(5_300_000_000).await;
            s.now()
        });
        approx(to_secs(end), 1.0 + 100e-6, 1e-4);
        assert_eq!(tier.used_bytes(), 5_300_000_000);
        tier.release(5_300_000_000);
        assert_eq!(tier.used_bytes(), 0);
    }

    #[test]
    fn single_direction_concurrency_keeps_aggregate_flat() {
        // Fig. 4: N concurrent write streams, aggregate stays at peak.
        let sim = Sim::new();
        let tier = SimTier::new(&sim, &testbed1_nvme());
        for _ in 0..4 {
            let t = tier.clone();
            sim.spawn(async move { t.write(5_300_000_000).await });
        }
        sim.run();
        let aggregate = 4.0 * 5.3e9 / sim.now_secs();
        approx(aggregate / 1e9, 5.3, 0.05);
    }

    #[test]
    fn mixed_read_write_pays_the_interleaving_penalty() {
        // One reader and one writer concurrently: both run at 43%.
        let sim = Sim::new();
        let tier = SimTier::new(&sim, &testbed1_nvme());
        let r = sim.spawn({
            let t = tier.clone();
            let s = sim.clone();
            async move {
                t.read(2_967_000_000).await; // 2.967 GB at 6.9·0.43 GB/s → 1 s
                s.now_secs()
            }
        });
        let w = sim.spawn({
            let t = tier.clone();
            let s = sim.clone();
            async move {
                t.write(2_279_000_000).await; // 2.279 GB at 5.3·0.43 GB/s → 1 s
                s.now_secs()
            }
        });
        sim.run();
        approx(r.try_take().unwrap(), 1.0, 0.01);
        approx(w.try_take().unwrap(), 1.0, 0.01);
        assert!(!tier.is_mixed_mode(), "penalty lifted once idle");
    }

    #[test]
    fn penalty_lifts_when_one_direction_finishes() {
        let sim = Sim::new();
        let tier = SimTier::new(&sim, &testbed1_nvme());
        // Short write overlaps the start of a long read.
        let w = sim.spawn({
            let t = tier.clone();
            let s = sim.clone();
            async move {
                t.write(227_900_000).await; // 0.1 s at degraded 2.279 GB/s
                s.now_secs()
            }
        });
        let r = sim.spawn({
            let t = tier.clone();
            let s = sim.clone();
            async move {
                t.read(6_513_000_000).await;
                s.now_secs()
            }
        });
        sim.run();
        approx(w.try_take().unwrap(), 0.1, 0.01);
        // Read: 0.1 s at 2.967 GB/s (0.297 GB) then the rest at 6.9 GB/s:
        // (6.513 − 0.297)/6.9 = 0.90 s → ends ≈ 1.0 s.
        approx(r.try_take().unwrap(), 1.0, 0.02);
    }

    #[test]
    fn pfs_penalty_is_milder() {
        let sim = Sim::new();
        let tier = SimTier::new(&sim, &testbed1_pfs());
        let r = sim.spawn({
            let t = tier.clone();
            let s = sim.clone();
            async move {
                t.read(2_700_000_000).await; // 3.6·0.75 = 2.7 GB/s → 1 s
                s.now_secs()
            }
        });
        sim.spawn({
            let t = tier.clone();
            async move { t.write(2_700_000_000).await }
        });
        sim.run();
        approx(r.try_take().unwrap(), 1.0, 0.01);
    }

    #[test]
    fn load_factor_survives_mixed_mode_transitions() {
        // Regression: the load factor used to be wiped by the next
        // direction-mix change.
        let sim = Sim::new();
        let tier = SimTier::new(&sim, &testbed1_nvme());
        tier.set_load_factor(0.5);
        // Trigger a mixed-mode transition (read overlapping a write),
        // then time a lone read afterwards: still at the loaded rate.
        let r = sim.spawn({
            let t = tier.clone();
            let s = sim.clone();
            async move {
                t.write(100_000_000).await; // brief write
                t.read(3_450_000_000).await; // 6.9 x 0.5 GB/s -> 1 s
                s.now_secs()
            }
        });
        sim.spawn({
            let t = tier.clone();
            async move { t.read(10_000_000).await } // overlaps the write
        });
        sim.run();
        let end = r.try_take().unwrap();
        assert!((0.9..1.3).contains(&end), "got {end}");
    }

    #[test]
    fn object_store_bandwidth_follows_the_concurrency_curve() {
        use crate::spec::object_store;
        // One stream runs at the per-stream cap, not the aggregate.
        let sim = Sim::new();
        let tier = SimTier::new(&sim, &object_store());
        let spec = object_store();
        let t = tier.clone();
        let s = sim.clone();
        let end = sim.block_on(async move {
            t.write(400_000_000).await; // 0.4 GB at 0.4 GB/s/stream → 1 s
            s.now()
        });
        approx(to_secs(end), 1.0 + spec.op_latency_s, 1e-3);

        // Sixteen parallel streams saturate the 5 GB/s aggregate: 16 ×
        // 0.4 GB at min(5, 16·0.4) = 5 GB/s → 1.28 s, far better than the
        // 16 s a per-stream serial drain would take.
        let sim = Sim::new();
        let tier = SimTier::new(&sim, &object_store());
        for _ in 0..16 {
            let t = tier.clone();
            sim.spawn(async move { t.write(400_000_000).await });
        }
        sim.run();
        let aggregate = 16.0 * 0.4e9 / (sim.now_secs() - spec.op_latency_s);
        approx(aggregate / 1e9, 5.0, 0.1);
    }

    #[test]
    fn per_stream_cap_zero_leaves_single_stream_at_aggregate() {
        // The default (0.0) spec keeps the original flat-aggregate model.
        let sim = Sim::new();
        let tier = SimTier::new(&sim, &testbed1_nvme());
        let t = tier.clone();
        let s = sim.clone();
        let end = sim.block_on(async move {
            t.read(6_900_000_000).await;
            s.now()
        });
        approx(to_secs(end), 1.0 + 100e-6, 1e-4);
    }

    #[test]
    fn load_factor_slows_tier() {
        let sim = Sim::new();
        let tier = SimTier::new(&sim, &testbed1_pfs());
        tier.set_load_factor(0.5);
        let t = tier.clone();
        let s = sim.clone();
        let end = sim.block_on(async move {
            t.read(3_600_000_000).await;
            s.now()
        });
        approx(to_secs(end), 2.0, 1e-2);
    }
}
