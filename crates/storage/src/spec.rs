//! Tier specifications, parameterised from Table 1 of the paper.

use serde::{Deserialize, Serialize};

/// Gigabytes/second in bytes/second.
pub const GBPS: f64 = 1e9;

/// What kind of storage a tier is.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TierKind {
    /// Host DRAM (second-level tier).
    HostMemory,
    /// Node-local NVMe SSD.
    Nvme,
    /// Remote parallel file system (VAST, Lustre, ...).
    Pfs,
    /// Remote object store (DAOS, S3-like).
    ObjectStore,
}

impl TierKind {
    /// Whether the tier survives node failure (used by the checkpoint
    /// pre-staging integration, §3.3).
    pub fn is_persistent(self) -> bool {
        !matches!(self, TierKind::HostMemory)
    }

    /// Whether the tier is shared across compute nodes.
    pub fn is_shared(self) -> bool {
        matches!(self, TierKind::Pfs | TierKind::ObjectStore)
    }
}

/// Measured characteristics of one storage tier.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TierSpec {
    /// Display name, e.g. `"nvme"`.
    pub name: String,
    /// Tier kind.
    pub kind: TierKind,
    /// Sequential read throughput, bytes/second.
    pub read_bps: f64,
    /// Sequential write throughput, bytes/second.
    pub write_bps: f64,
    /// Capacity in bytes (effectively unbounded for a PFS).
    pub capacity_bytes: u64,
    /// Efficiency of both links while reads and writes are in flight
    /// simultaneously (interleaved mixed I/O). Single-direction streaming
    /// keeps full bandwidth regardless of concurrency (the flat aggregate
    /// of Fig. 4); uncoordinated training I/O overlaps prefetch reads with
    /// flush writes and pays this penalty. Calibrated jointly against the
    /// paper's 40B/Testbed-1 numbers: a ~213 s DeepSpeed update phase and
    /// ~3 GB/s effective I/O under interleaved access (Fig. 9), while
    /// keeping write-only backward flushes at the full 5.3 GB/s (≈28 s).
    /// Tier-exclusive locking (the paper's "Process Atomic R/W") avoids
    /// mixed mode entirely (§3.2), trading r/w overlap for full-rate
    /// sequential access — a net win below ≈0.55 efficiency.
    pub mixed_rw_efficiency: f64,
    /// Fixed per-operation latency in seconds (submission + seek).
    pub op_latency_s: f64,
    /// Per-stream bandwidth cap in bytes/second; `0.0` (the default)
    /// means a single stream can saturate the link. Object stores are the
    /// motivating case: one GET/PUT stream moves a small fraction of the
    /// aggregate, so effective bandwidth follows the concurrency-
    /// efficiency curve `min(aggregate, streams × per_stream)` — modelled
    /// by [`crate::sim_tier::SimTier`] from the live stream counts.
    #[serde(default)]
    pub per_stream_bps: f64,
}

impl TierSpec {
    /// The bandwidth the §3.3 performance model uses for subgroup
    /// allocation: the minimum of read and write throughput.
    pub fn model_bandwidth_bps(&self) -> f64 {
        self.read_bps.min(self.write_bps)
    }
}

const TIB: u64 = 1 << 40;

/// Testbed-1 (JLSE, 4×H100) node-local NVMe: 6.9 GB/s read, 5.3 GB/s write.
pub fn testbed1_nvme() -> TierSpec {
    TierSpec {
        name: "nvme".into(),
        kind: TierKind::Nvme,
        read_bps: 6.9 * GBPS,
        write_bps: 5.3 * GBPS,
        capacity_bytes: 3 * TIB, // 2× 1.6 TB RAID
        mixed_rw_efficiency: 0.43,
        op_latency_s: 100e-6,
        per_stream_bps: 0.0,
    }
}

/// Testbed-1 VAST PFS: 3.6 GB/s read and write.
pub fn testbed1_pfs() -> TierSpec {
    TierSpec {
        name: "pfs".into(),
        kind: TierKind::Pfs,
        read_bps: 3.6 * GBPS,
        write_bps: 3.6 * GBPS,
        capacity_bytes: 1024 * TIB, // 1 PB
        mixed_rw_efficiency: 0.75,
        op_latency_s: 500e-6,
        per_stream_bps: 0.0,
    }
}

/// Testbed-2 (Polaris, 4×A100) node-local NVMe: 13.5 GB/s read,
/// 4.8 GB/s write.
pub fn testbed2_nvme() -> TierSpec {
    TierSpec {
        name: "nvme".into(),
        kind: TierKind::Nvme,
        read_bps: 13.5 * GBPS,
        write_bps: 4.8 * GBPS,
        capacity_bytes: 3 * TIB,
        mixed_rw_efficiency: 0.43,
        op_latency_s: 100e-6,
        per_stream_bps: 0.0,
    }
}

/// Testbed-2 Lustre (HPE ClusterStor E1000): 6.9 GB/s read,
/// 13.7 GB/s write per node.
pub fn testbed2_pfs() -> TierSpec {
    TierSpec {
        name: "pfs".into(),
        kind: TierKind::Pfs,
        read_bps: 6.9 * GBPS,
        write_bps: 13.7 * GBPS,
        capacity_bytes: 100 * 1024 * TIB, // 100 PB
        mixed_rw_efficiency: 0.75,
        op_latency_s: 500e-6,
        per_stream_bps: 0.0,
    }
}

/// An S3-like object store as the slowest, widest rung of the hierarchy:
/// high per-request latency and a per-stream cap far below the aggregate,
/// so bandwidth must be earned through concurrency (the defining
/// object-store curve, emulated on the functional path by
/// [`crate::object::ObjectBackend`]). Reads and writes take separate
/// server paths, so the mixed-I/O penalty is mild. Capacity is
/// effectively unbounded.
pub fn object_store() -> TierSpec {
    TierSpec {
        name: "object".into(),
        kind: TierKind::ObjectStore,
        read_bps: 5.0 * GBPS,
        write_bps: 5.0 * GBPS,
        capacity_bytes: 1024 * 1024 * TIB, // 1 EB
        mixed_rw_efficiency: 0.9,
        op_latency_s: 30e-3,
        per_stream_bps: 0.4 * GBPS,
    }
}

/// A next-generation CXL memory-pool tier (§5 future work): byte-
/// addressable far memory behind a CXL 3.x switch — far faster than any
/// disk, slower and larger than local DRAM, immune to read/write
/// interleaving penalties (it is memory, not flash).
pub fn cxl_pool() -> TierSpec {
    TierSpec {
        name: "cxl".into(),
        kind: TierKind::HostMemory,
        read_bps: 30.0 * GBPS,
        write_bps: 25.0 * GBPS,
        capacity_bytes: TIB, // 1 TB pooled expansion
        mixed_rw_efficiency: 1.0,
        op_latency_s: 2e-6,
        per_stream_bps: 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_values() {
        let t1n = testbed1_nvme();
        assert_eq!(t1n.read_bps, 6.9e9);
        assert_eq!(t1n.write_bps, 5.3e9);
        let t2p = testbed2_pfs();
        assert_eq!(t2p.read_bps, 6.9e9);
        assert_eq!(t2p.write_bps, 13.7e9);
    }

    #[test]
    fn model_bandwidth_is_min_of_read_write() {
        assert_eq!(testbed1_nvme().model_bandwidth_bps(), 5.3e9);
        assert_eq!(testbed2_nvme().model_bandwidth_bps(), 4.8e9);
        assert_eq!(testbed1_pfs().model_bandwidth_bps(), 3.6e9);
    }

    #[test]
    fn paper_2_to_1_split_on_testbed1() {
        // §4.3 / Fig. 10: NVMe:PFS subgroup split is ~2:1, consistent with
        // the min-bandwidth ratio 5.3 : 3.6.
        let ratio = testbed1_nvme().model_bandwidth_bps() / testbed1_pfs().model_bandwidth_bps();
        assert!((1.3..=2.2).contains(&ratio));
    }

    #[test]
    fn cxl_is_memory_class() {
        let c = cxl_pool();
        assert_eq!(c.mixed_rw_efficiency, 1.0);
        assert!(!c.kind.is_persistent());
        assert!(c.read_bps > testbed1_nvme().read_bps);
    }

    #[test]
    fn persistence_and_sharing_flags() {
        assert!(!TierKind::HostMemory.is_persistent());
        assert!(TierKind::Nvme.is_persistent());
        assert!(!TierKind::Nvme.is_shared());
        assert!(TierKind::Pfs.is_shared());
        assert!(TierKind::ObjectStore.is_persistent());
        assert!(TierKind::ObjectStore.is_shared());
    }

    #[test]
    fn object_store_is_latency_bound_and_stream_capped() {
        let o = object_store();
        assert_eq!(o.kind, TierKind::ObjectStore);
        // Orders of magnitude above disk latencies; far below aggregate
        // bandwidth per stream (the concurrency-efficiency curve).
        assert!(o.op_latency_s >= 10.0 * testbed1_pfs().op_latency_s);
        assert!(o.per_stream_bps > 0.0 && o.per_stream_bps < o.read_bps / 10.0);
        // Older serialized specs (no per_stream_bps field) stay loadable:
        // the field carries `#[serde(default)]`, and 0.0 means "single
        // stream saturates", i.e. the pre-object flat-aggregate model.
        assert_eq!(testbed1_pfs().per_stream_bps, 0.0);
    }

    #[test]
    fn calibrated_nvme_mixed_efficiency_reproduces_ds_update_time() {
        // 40B on Testbed-1: DeepSpeed reads 640 GB (state+grads) and
        // writes 480 GB per update. With mixed-I/O overlap at efficiency e
        // the phase takes max(640/(e·6.9), 480/(e·5.3)) seconds; the paper
        // reports 213 s.
        let spec = testbed1_nvme();
        let e = spec.mixed_rw_efficiency;
        let secs = (640.0 / (e * 6.9)).max(480.0 / (e * 5.3));
        assert!((195.0..230.0).contains(&secs), "update model gives {secs}s");
        // And exclusive (serialized, full-rate) access must beat it:
        let locked = 640.0 / 6.9 + 480.0 / 5.3;
        assert!(locked < secs, "locking must win: {locked} vs {secs}");
    }
}
