//! Tier-level I/O tracing: a [`Backend`] decorator that records every
//! read and write as a [`Phase::TierRead`]/[`Phase::TierWrite`] span.
//!
//! The decorator sits *outside* any fault injection or checksumming
//! decorators and *below* the `mlp-aio` engine, so its spans measure the
//! storage medium itself — including injected latency spikes and retry
//! re-reads — while the engine's `aio_read`/`aio_write` spans measure
//! the op end to end. The per-tier bandwidth summary
//! ([`mlp_trace::IoSummary`]) is computed from exactly these spans.

use std::io;
use std::sync::Arc;

use mlp_trace::{Attrs, Counter, Phase, TraceSink};

use crate::backend::Backend;

/// Wraps a [`Backend`] so every data-moving call lands on the timeline
/// as a tier-attributed span, and byte totals accumulate on
/// `tier.<name>.read_bytes` / `tier.<name>.write_bytes` counters.
///
/// With a disabled sink the wrapper is pass-through: one `is_enabled`
/// check per call and no timestamps, allocations, or events.
pub struct TracedBackend {
    inner: Arc<dyn Backend>,
    trace: TraceSink,
    tier: i32,
    read_bytes: Counter,
    write_bytes: Counter,
}

impl TracedBackend {
    /// Wraps `inner`, stamping `tier` on every recorded span.
    pub fn new(inner: Arc<dyn Backend>, tier: i32, trace: TraceSink) -> Self {
        let c = |meter: &str| trace.counter(&format!("tier.{}.{meter}", inner.name()));
        TracedBackend {
            read_bytes: c("read_bytes"),
            write_bytes: c("write_bytes"),
            inner,
            trace,
            tier,
        }
    }

    /// The tier index stamped on this backend's spans.
    pub fn tier(&self) -> i32 {
        self.tier
    }

    fn record(&self, phase: Phase, bytes: u64, start_ns: u64) {
        let attrs = Attrs {
            tier: self.tier,
            bytes,
            ..Attrs::NONE
        };
        self.trace
            .complete_span(phase, attrs, start_ns, self.trace.now_ns());
    }
}

impl Backend for TracedBackend {
    fn write(&self, key: &str, data: &[u8]) -> io::Result<()> {
        if !self.trace.is_enabled() {
            return self.inner.write(key, data);
        }
        let start = self.trace.now_ns();
        let result = self.inner.write(key, data);
        if result.is_ok() {
            self.record(Phase::TierWrite, data.len() as u64, start);
            self.write_bytes.add(data.len() as u64);
        }
        result
    }

    fn read(&self, key: &str) -> io::Result<Vec<u8>> {
        if !self.trace.is_enabled() {
            return self.inner.read(key);
        }
        let start = self.trace.now_ns();
        let result = self.inner.read(key);
        if let Ok(data) = &result {
            self.record(Phase::TierRead, data.len() as u64, start);
            self.read_bytes.add(data.len() as u64);
        }
        result
    }

    fn read_into(&self, key: &str, dst: &mut [u8]) -> io::Result<usize> {
        if !self.trace.is_enabled() {
            return self.inner.read_into(key, dst);
        }
        let start = self.trace.now_ns();
        let result = self.inner.read_into(key, dst);
        if let Ok(n) = &result {
            self.record(Phase::TierRead, *n as u64, start);
            self.read_bytes.add(*n as u64);
        }
        result
    }

    fn delete(&self, key: &str) -> io::Result<()> {
        self.inner.delete(key)
    }

    fn contains(&self, key: &str) -> bool {
        self.inner.contains(key)
    }

    fn name(&self) -> &str {
        self.inner.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::MemBackend;
    use mlp_trace::{EventKind, IoDirection};

    #[test]
    fn disabled_sink_is_pass_through() {
        let b = TracedBackend::new(
            Arc::new(MemBackend::new("mem")),
            0,
            TraceSink::disabled(),
        );
        b.write("k", &[1, 2, 3]).unwrap();
        assert_eq!(b.read("k").unwrap(), vec![1, 2, 3]);
        assert_eq!(b.name(), "mem");
    }

    #[test]
    fn io_becomes_tier_spans_and_counters() {
        let sink = TraceSink::enabled();
        let b = TracedBackend::new(Arc::new(MemBackend::new("mem")), 1, sink.clone());
        b.write("k", &[7u8; 100]).unwrap();
        assert_eq!(b.read("k").unwrap().len(), 100);
        let mut dst = [0u8; 128];
        assert_eq!(b.read_into("k", &mut dst).unwrap(), 100);

        let events = sink.events();
        let writes: Vec<_> = events
            .iter()
            .filter(|e| e.phase == Phase::TierWrite)
            .collect();
        let reads: Vec<_> = events
            .iter()
            .filter(|e| e.phase == Phase::TierRead)
            .collect();
        assert_eq!(writes.len(), 1);
        assert_eq!(reads.len(), 2);
        for e in writes.iter().chain(&reads) {
            assert_eq!(e.kind, EventKind::Span);
            assert_eq!(e.tier, 1);
            assert_eq!(e.bytes, 100);
        }

        let metrics = sink.metrics_snapshot();
        assert_eq!(metrics.counter("tier.mem.write_bytes"), Some(100));
        assert_eq!(metrics.counter("tier.mem.read_bytes"), Some(200));

        let summary = mlp_trace::IoSummary::from_events(&events);
        assert_eq!(summary.tier(1, IoDirection::Write).bytes, 100);
        assert_eq!(summary.tier(1, IoDirection::Read).bytes, 200);
    }

    #[test]
    fn failed_io_records_no_span() {
        let sink = TraceSink::enabled();
        let b = TracedBackend::new(Arc::new(MemBackend::new("mem")), 0, sink.clone());
        assert!(b.read("missing").is_err());
        assert!(sink.events().is_empty());
    }
}
