//! Bandwidth microbenchmarks: the B_i measurement step of §3.3.
//!
//! "Initially, B_i for each alternative storage is measured using
//! microbenchmarks." This module measures real backends with wall-clock
//! timing, and simulated tiers with virtual-clock timing (including the
//! concurrency sweep behind Fig. 4).

use std::io;
use std::sync::Arc;

use mlp_sim::Sim;

use crate::backend::Backend;
use crate::sim_tier::SimTier;
use crate::spec::TierSpec;

/// Result of one bandwidth measurement.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BandwidthSample {
    /// Measured read throughput, bytes/second.
    pub read_bps: f64,
    /// Measured write throughput, bytes/second.
    pub write_bps: f64,
}

impl BandwidthSample {
    /// The value the performance model uses: min(read, write).
    pub fn model_bandwidth_bps(&self) -> f64 {
        self.read_bps.min(self.write_bps)
    }
}

/// Measures a real backend by writing then reading `blocks` objects of
/// `block_bytes` each. The objects are deleted afterwards.
pub fn measure_backend(
    backend: &dyn Backend,
    block_bytes: usize,
    blocks: usize,
) -> io::Result<BandwidthSample> {
    assert!(blocks > 0 && block_bytes > 0, "need data to measure");
    let data = vec![0xA5u8; block_bytes];
    let keys: Vec<String> = (0..blocks).map(|i| format!("__microbench/{i}")).collect();

    let t0 = std::time::Instant::now();
    for k in &keys {
        backend.write(k, &data)?;
    }
    let write_secs = t0.elapsed().as_secs_f64().max(1e-9);

    let t0 = std::time::Instant::now();
    for k in &keys {
        let back = backend.read(k)?;
        std::hint::black_box(back.len());
    }
    let read_secs = t0.elapsed().as_secs_f64().max(1e-9);

    for k in &keys {
        let _ = backend.delete(k);
    }

    let total = (block_bytes * blocks) as f64;
    Ok(BandwidthSample {
        read_bps: total / read_secs,
        write_bps: total / write_secs,
    })
}

// ---------------------------------------------------------------------------
// Driver-parameterized harness (engine × queue-depth sweeps)
// ---------------------------------------------------------------------------

/// One operation of a driver workload: what to do to a key.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DriveOp {
    /// Store a synthetic payload of this many bytes under the key.
    Write(usize),
    /// Fetch the object stored under the key (and discard it).
    Read,
    /// Remove the key.
    Delete,
}

/// Shape of one measured configuration for the driver harness.
#[derive(Clone, Copy, Debug)]
pub struct DrivePlan {
    /// Payload bytes per object.
    pub block_bytes: usize,
    /// Number of objects per phase.
    pub blocks: usize,
    /// In-flight window the driver must sustain (1 = strictly serial).
    pub queue_depth: usize,
}

/// Something that can execute a batch of storage operations while keeping
/// up to `queue_depth` of them in flight.
///
/// Two families implement this: [`BackendDriver`] (direct blocking
/// backend calls, queue depth collapses to 1) and `mlp-aio`'s
/// `AioEngine` (asynchronous submission through whichever `IoEngine` is
/// selected). The same harness therefore drives both the
/// engine-comparison bench (`BENCH_io_engines.json`) and ad-hoc tier
/// measurements, so numbers across engines are directly comparable.
pub trait OpDriver {
    /// Display name, e.g. `"backend:mem"` or `"uring[dir]"`.
    fn driver_name(&self) -> String;
    /// Executes every op, keeping at most `queue_depth` in flight, and
    /// returns once all have completed. The first op failure aborts the
    /// batch (pending ops may still complete).
    fn drive(&self, ops: &[(String, DriveOp)], queue_depth: usize) -> io::Result<()>;
}

/// The trivial [`OpDriver`]: serial blocking calls straight into a
/// [`Backend`] (the pre-engine behaviour, and the queue-depth-1 baseline
/// every engine is compared against).
pub struct BackendDriver<'a>(pub &'a dyn Backend);

impl OpDriver for BackendDriver<'_> {
    fn driver_name(&self) -> String {
        format!("backend:{}", self.0.name())
    }

    fn drive(&self, ops: &[(String, DriveOp)], _queue_depth: usize) -> io::Result<()> {
        for (key, op) in ops {
            match op {
                DriveOp::Write(bytes) => self.0.write(key, &vec![0xA5u8; *bytes])?,
                DriveOp::Read => {
                    let back = self.0.read(key)?;
                    std::hint::black_box(back.len());
                }
                DriveOp::Delete => self.0.delete(key)?,
            }
        }
        Ok(())
    }
}

fn plan_keys(plan: &DrivePlan) -> Vec<String> {
    (0..plan.blocks).map(|i| format!("__microbench/{i}")).collect()
}

fn ops_for(keys: &[String], op: DriveOp) -> Vec<(String, DriveOp)> {
    keys.iter().map(|k| (k.clone(), op)).collect()
}

/// Measures a driver with separate flush (all-writes) and fetch
/// (all-reads) phases — the driver-parameterized generalization of
/// [`measure_backend`]. Objects are deleted afterwards.
pub fn measure_driver(driver: &dyn OpDriver, plan: DrivePlan) -> io::Result<BandwidthSample> {
    assert!(
        plan.blocks > 0 && plan.block_bytes > 0 && plan.queue_depth > 0,
        "need data to measure"
    );
    let keys = plan_keys(&plan);

    let t0 = std::time::Instant::now();
    driver.drive(&ops_for(&keys, DriveOp::Write(plan.block_bytes)), plan.queue_depth)?;
    let write_secs = t0.elapsed().as_secs_f64().max(1e-9);

    let t0 = std::time::Instant::now();
    driver.drive(&ops_for(&keys, DriveOp::Read), plan.queue_depth)?;
    let read_secs = t0.elapsed().as_secs_f64().max(1e-9);

    let _ = driver.drive(&ops_for(&keys, DriveOp::Delete), plan.queue_depth);

    let total = (plan.block_bytes * plan.blocks) as f64;
    Ok(BandwidthSample {
        read_bps: total / read_secs,
        write_bps: total / write_secs,
    })
}

/// Measures a mixed 50/50 fetch/flush workload: after an untimed
/// pre-population pass, the timed batch alternates reads and writes over
/// the key set, which is the pattern the offload engines see in steady
/// state (fetch subgroup *i+1* while flushing subgroup *i*). Returns
/// aggregate throughput in bytes/second.
pub fn measure_driver_mixed(driver: &dyn OpDriver, plan: DrivePlan) -> io::Result<f64> {
    assert!(
        plan.blocks > 0 && plan.block_bytes > 0 && plan.queue_depth > 0,
        "need data to measure"
    );
    let keys = plan_keys(&plan);
    driver.drive(&ops_for(&keys, DriveOp::Write(plan.block_bytes)), plan.queue_depth)?;

    let mixed: Vec<(String, DriveOp)> = keys
        .iter()
        .enumerate()
        .map(|(i, k)| {
            let op = if i % 2 == 0 { DriveOp::Read } else { DriveOp::Write(plan.block_bytes) };
            (k.clone(), op)
        })
        .collect();
    let t0 = std::time::Instant::now();
    driver.drive(&mixed, plan.queue_depth)?;
    let secs = t0.elapsed().as_secs_f64().max(1e-9);

    let _ = driver.drive(&ops_for(&keys, DriveOp::Delete), plan.queue_depth);
    Ok((plan.block_bytes * plan.blocks) as f64 / secs)
}

/// Concurrent measurement of a real backend from `procs` threads (the
/// Fig. 4 setup): returns the aggregate sample plus mean per-op latency.
pub fn measure_backend_concurrent(
    backend: Arc<dyn Backend>,
    block_bytes: usize,
    blocks_per_proc: usize,
    procs: usize,
) -> io::Result<(BandwidthSample, f64)> {
    assert!(procs > 0, "need at least one process");
    let t0 = std::time::Instant::now();
    let mut handles = Vec::new();
    for p in 0..procs {
        let backend = Arc::clone(&backend);
        handles.push(std::thread::spawn(move || -> io::Result<f64> {
            let data = vec![0x5Au8; block_bytes];
            let mut op_secs = 0.0;
            for i in 0..blocks_per_proc {
                let key = format!("__mb{p}/{i}");
                let t = std::time::Instant::now();
                backend.write(&key, &data)?;
                let back = backend.read(&key)?;
                std::hint::black_box(back.len());
                op_secs += t.elapsed().as_secs_f64();
                let _ = backend.delete(&key);
            }
            Ok(op_secs / blocks_per_proc as f64)
        }));
    }
    let mut latency_sum = 0.0;
    for h in handles {
        latency_sum += h.join().map_err(|_| {
            io::Error::new(io::ErrorKind::Other, "microbench thread panicked")
        })??;
    }
    let mean_latency = latency_sum / procs as f64;
    let wall = t0.elapsed().as_secs_f64().max(1e-9);
    let total = (block_bytes * blocks_per_proc * procs) as f64;
    Ok((
        BandwidthSample {
            read_bps: total / wall,
            write_bps: total / wall,
        },
        mean_latency,
    ))
}

/// One point of the Fig. 4 concurrency sweep on a simulated tier:
/// `procs` simulated processes each stream `bytes_per_proc` of writes then
/// reads. Returns (aggregate sample, per-process mean op latency seconds).
pub fn measure_sim_tier_concurrent(
    spec: &TierSpec,
    bytes_per_proc: u64,
    procs: usize,
) -> (BandwidthSample, f64) {
    assert!(procs > 0, "need at least one process");
    let sim = Sim::new();
    let tier = SimTier::new(&sim, spec);

    // Writes phase.
    let mut write_handles = Vec::new();
    for _ in 0..procs {
        let t = tier.clone();
        let s = sim.clone();
        write_handles.push(sim.spawn(async move {
            let start = s.now_secs();
            t.write(bytes_per_proc).await;
            s.now_secs() - start
        }));
    }
    sim.run();
    let write_secs = sim.now_secs();
    let write_latency: f64 = write_handles
        .iter()
        // lint:allow(hot-path-panic): virtual-time simulation — sim.run()
        // returns only once every spawned task completed, so the result is
        // always present; an empty take is a simulator bug
        .map(|h| h.try_take().expect("write done"))
        .sum::<f64>()
        / procs as f64;

    // Reads phase.
    let read_start = sim.now_secs();
    let mut read_handles = Vec::new();
    for _ in 0..procs {
        let t = tier.clone();
        let s = sim.clone();
        read_handles.push(sim.spawn(async move {
            let start = s.now_secs();
            t.read(bytes_per_proc).await;
            s.now_secs() - start
        }));
    }
    sim.run();
    let read_secs = sim.now_secs() - read_start;
    let read_latency: f64 = read_handles
        .iter()
        // lint:allow(hot-path-panic): virtual-time simulation — sim.run()
        // returns only once every spawned task completed, so the result is
        // always present; an empty take is a simulator bug
        .map(|h| h.try_take().expect("read done"))
        .sum::<f64>()
        / procs as f64;

    let total = (bytes_per_proc * procs as u64) as f64;
    (
        BandwidthSample {
            read_bps: total / read_secs,
            write_bps: total / write_secs,
        },
        (read_latency + write_latency) / 2.0,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::MemBackend;
    use crate::spec::{testbed1_nvme, testbed1_pfs};

    #[test]
    fn backend_measurement_orders_throttled_tiers() {
        let fast = MemBackend::throttled("fast", 400e6, 400e6);
        let slow = MemBackend::throttled("slow", 50e6, 50e6);
        let f = measure_backend(&fast, 1 << 20, 4).expect("measure fast");
        let s = measure_backend(&slow, 1 << 20, 4).expect("measure slow");
        assert!(f.read_bps > s.read_bps);
        assert!(f.write_bps > s.write_bps);
        // Within a factor ~2 of the configured throttle.
        assert!(
            s.write_bps < 100e6 && s.write_bps > 25e6,
            "got {}",
            s.write_bps
        );
    }

    #[test]
    fn model_bandwidth_is_min() {
        let s = BandwidthSample {
            read_bps: 10.0,
            write_bps: 4.0,
        };
        assert_eq!(s.model_bandwidth_bps(), 4.0);
    }

    #[test]
    fn sim_sweep_aggregate_flat_latency_grows() {
        // The Fig. 4 shape on the simulated NVMe.
        let spec = testbed1_nvme();
        let (s1, l1) = measure_sim_tier_concurrent(&spec, 1 << 30, 1);
        let (s8, l8) = measure_sim_tier_concurrent(&spec, 1 << 30, 8);
        // Aggregate stays within a few percent.
        assert!((s8.write_bps / s1.write_bps - 1.0).abs() < 0.05);
        assert!((s8.read_bps / s1.read_bps - 1.0).abs() < 0.05);
        // Per-process latency grows ~8×.
        assert!(l8 / l1 > 6.0, "latency ratio {}", l8 / l1);
    }

    #[test]
    fn sim_measurement_recovers_spec_bandwidths() {
        for spec in [testbed1_nvme(), testbed1_pfs()] {
            let (s, _) = measure_sim_tier_concurrent(&spec, 4 << 30, 1);
            assert!(
                (s.read_bps / spec.read_bps - 1.0).abs() < 0.02,
                "{}",
                spec.name
            );
            assert!(
                (s.write_bps / spec.write_bps - 1.0).abs() < 0.02,
                "{}",
                spec.name
            );
        }
    }

    #[test]
    fn backend_driver_matches_direct_measurement_shape() {
        let b = MemBackend::throttled("m", 200e6, 200e6);
        let plan = DrivePlan { block_bytes: 1 << 18, blocks: 8, queue_depth: 1 };
        let s = measure_driver(&BackendDriver(&b), plan).expect("measure");
        assert!(s.read_bps > 0.0 && s.write_bps > 0.0);
        assert_eq!(b.object_count(), 0, "harness must clean up its keys");
        assert!(BackendDriver(&b).driver_name().starts_with("backend:"));
    }

    #[test]
    fn mixed_measurement_cleans_up_and_reports_positive_bandwidth() {
        let b = MemBackend::new("m");
        let plan = DrivePlan { block_bytes: 4096, blocks: 10, queue_depth: 4 };
        let bps = measure_driver_mixed(&BackendDriver(&b), plan).expect("measure");
        assert!(bps > 0.0);
        assert_eq!(b.object_count(), 0);
    }

    #[test]
    fn concurrent_backend_measurement_runs() {
        let backend: Arc<dyn Backend> = Arc::new(MemBackend::new("mem"));
        let (sample, latency) =
            measure_backend_concurrent(backend, 1 << 16, 4, 3).expect("measure");
        assert!(sample.read_bps > 0.0);
        assert!(latency >= 0.0);
    }
}
