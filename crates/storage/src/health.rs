//! Per-tier health supervision: circuit breakers over the error
//! taxonomy and latency SLOs.
//!
//! Retries (PR 2) absorb *transient* faults and re-planning (PR 7)
//! absorbs *slow* tiers — but neither handles a tier that keeps failing
//! after retry exhaustion or keeps blowing its latency budget. This
//! module closes that gap with a classic circuit breaker per tier:
//!
//! ```text
//!            failures ≥ threshold                cooldown elapsed
//!  Closed ───────────────────────────▶ Open ───────────────────────▶ HalfOpen
//!    ▲                                  ▲                               │
//!    │    probe successes ≥ threshold   │      any probe failure        │
//!    └──────────────────────────────────┼───────────────────────────────┘
//!                                       │
//!                    trips ≥ max_trips  ▼
//!                                  Quarantined   (permanently open)
//! ```
//!
//! Every transition is **deterministic in the op stream**: trips are
//! driven by consecutive-failure and consecutive-SLO-violation counts,
//! and the open→half-open cooldown is counted in *rejected ops*, not
//! wall-clock time — so seeded fault tests reproduce the same breaker
//! trajectory on every run. When a breaker reaches [`Quarantined`] the
//! engines evacuate the tier's durable copies (quarantine-and-drain,
//! DESIGN.md §15) instead of retrying into it forever.
//!
//! [`Quarantined`]: BreakerState::Quarantined

use std::io;
use std::sync::Arc;
use std::time::{Duration, Instant};

use mlp_trace::TraceSink;
use parking_lot::Mutex;

use crate::backend::{Backend, RawFileTarget};

/// The breaker state machine's position.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BreakerState {
    /// Healthy: every op is allowed; failures and SLO violations are
    /// being counted.
    Closed,
    /// Tripped: ops are rejected while the tier cools down.
    Open,
    /// Probing: a limited number of ops are let through; enough
    /// successes close the breaker, any failure re-opens it.
    HalfOpen,
    /// Permanently open: the tier has tripped too many times in a row
    /// and is quarantined — no op will ever be allowed again and its
    /// durable state should be drained to surviving tiers.
    Quarantined,
}

impl BreakerState {
    /// Stable name for logs and meters.
    pub fn as_str(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half_open",
            BreakerState::Quarantined => "quarantined",
        }
    }

    /// Numeric encoding for the `health.{tier}.state` gauge
    /// (0 closed, 1 half-open, 2 open, 3 quarantined — ordered by
    /// severity so the gauge reads as "how broken").
    pub fn as_gauge(self) -> u64 {
        match self {
            BreakerState::Closed => 0,
            BreakerState::HalfOpen => 1,
            BreakerState::Open => 2,
            BreakerState::Quarantined => 3,
        }
    }
}

/// Breaker thresholds. Every knob is a count, not a duration (except
/// the SLO itself), keeping the state machine deterministic under
/// seeded fault injection.
#[derive(Clone, Debug, PartialEq)]
pub struct HealthConfig {
    /// Consecutive post-retry failures that trip a closed breaker.
    pub failure_threshold: u32,
    /// Per-op latency budget; `None` disables SLO-driven trips.
    pub latency_slo: Option<Duration>,
    /// Consecutive SLO violations that trip a closed breaker (a slow
    /// tier is a failing tier, just politer about it).
    pub slo_violation_threshold: u32,
    /// Rejected ops an open breaker absorbs before letting probe
    /// traffic through (the deterministic stand-in for a cooldown
    /// timer).
    pub cooldown_rejections: u32,
    /// Probe successes required in half-open to close the breaker.
    pub probe_successes: u32,
    /// Consecutive trips (without an intervening close) after which the
    /// breaker latches [`BreakerState::Quarantined`].
    pub max_trips: u32,
}

impl Default for HealthConfig {
    fn default() -> Self {
        HealthConfig {
            failure_threshold: 3,
            latency_slo: None,
            slo_violation_threshold: 8,
            cooldown_rejections: 4,
            probe_successes: 2,
            max_trips: 3,
        }
    }
}

impl HealthConfig {
    /// Adds a latency SLO: `violations` consecutive ops over `slo` trip
    /// the breaker.
    pub fn with_latency_slo(mut self, slo: Duration, violations: u32) -> Self {
        self.latency_slo = Some(slo);
        self.slo_violation_threshold = violations.max(1);
        self
    }

    /// A hair-trigger preset for tests: one failure trips, one trip
    /// quarantines.
    pub fn hair_trigger() -> Self {
        HealthConfig {
            failure_threshold: 1,
            latency_slo: None,
            slo_violation_threshold: 1,
            cooldown_rejections: 1,
            probe_successes: 1,
            max_trips: 1,
        }
    }
}

/// Counter snapshot for assertions and reports.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HealthCounts {
    /// Post-retry failures recorded.
    pub failures: u64,
    /// Latency-SLO violations recorded.
    pub slo_violations: u64,
    /// Closed/half-open → open transitions.
    pub trips: u64,
    /// Ops rejected while open or quarantined.
    pub rejected: u64,
    /// Probe ops admitted in half-open.
    pub probes: u64,
}

struct Inner {
    state: BreakerState,
    consecutive_failures: u32,
    consecutive_slo_violations: u32,
    /// Rejections absorbed since the breaker last opened.
    rejections_since_open: u32,
    /// Probe successes since entering half-open.
    probe_successes: u32,
    /// Trips since the breaker last closed.
    trips_since_close: u32,
    counts: HealthCounts,
}

/// One tier's circuit breaker. Thread-safe; clone the [`Arc`] into
/// every layer that observes the tier (the AIO engine records op
/// outcomes, the planner reads the state at iteration boundaries).
pub struct TierHealth {
    name: String,
    cfg: HealthConfig,
    inner: Mutex<Inner>,
    trace: TraceSink,
}

impl TierHealth {
    /// A closed breaker for the tier named `name` (the meter-family
    /// key: `health.{name}.*`).
    pub fn new(name: impl Into<String>, cfg: HealthConfig) -> Arc<TierHealth> {
        Arc::new(TierHealth {
            name: name.into(),
            cfg,
            inner: Mutex::new(Inner {
                state: BreakerState::Closed,
                consecutive_failures: 0,
                consecutive_slo_violations: 0,
                rejections_since_open: 0,
                probe_successes: 0,
                trips_since_close: 0,
                counts: HealthCounts::default(),
            }),
            trace: TraceSink::disabled(),
        })
    }

    /// As [`TierHealth::new`] with an observability sink: state changes
    /// and counts land on `health.{tier}.*` meters.
    pub fn with_trace(
        name: impl Into<String>,
        cfg: HealthConfig,
        trace: TraceSink,
    ) -> Arc<TierHealth> {
        let name = name.into();
        let h = TierHealth {
            name,
            cfg,
            inner: Mutex::new(Inner {
                state: BreakerState::Closed,
                consecutive_failures: 0,
                consecutive_slo_violations: 0,
                rejections_since_open: 0,
                probe_successes: 0,
                trips_since_close: 0,
                counts: HealthCounts::default(),
            }),
            trace,
        };
        h.publish_state(BreakerState::Closed);
        Arc::new(h)
    }

    /// The tier name this breaker supervises.
    pub fn tier_name(&self) -> &str {
        &self.name
    }

    /// The configured thresholds.
    pub fn config(&self) -> &HealthConfig {
        &self.cfg
    }

    fn publish_state(&self, state: BreakerState) {
        if self.trace.is_enabled() {
            self.trace
                .gauge(&format!("health.{}.state", self.name))
                .set(state.as_gauge());
        }
    }

    fn bump(&self, meter: &str, by: u64) {
        if self.trace.is_enabled() {
            self.trace
                .counter(&format!("health.{}.{meter}", self.name))
                .add(by);
        }
    }

    fn trip(&self, inner: &mut Inner) {
        inner.counts.trips += 1;
        inner.trips_since_close += 1;
        inner.consecutive_failures = 0;
        inner.consecutive_slo_violations = 0;
        inner.rejections_since_open = 0;
        inner.probe_successes = 0;
        inner.state = if inner.trips_since_close >= self.cfg.max_trips {
            BreakerState::Quarantined
        } else {
            BreakerState::Open
        };
        self.bump("trips", 1);
        self.publish_state(inner.state);
    }

    /// Asks whether the next op against this tier should be issued.
    /// While open, each rejection counts toward the cooldown; once the
    /// budget is absorbed the breaker moves to half-open and admits
    /// probe traffic.
    pub fn allow(&self) -> bool {
        let mut inner = self.inner.lock();
        match inner.state {
            BreakerState::Closed => true,
            BreakerState::HalfOpen => {
                inner.counts.probes += 1;
                self.bump("probes", 1);
                true
            }
            BreakerState::Quarantined => {
                inner.counts.rejected += 1;
                self.bump("rejected", 1);
                false
            }
            BreakerState::Open => {
                inner.rejections_since_open += 1;
                inner.counts.rejected += 1;
                self.bump("rejected", 1);
                if inner.rejections_since_open >= self.cfg.cooldown_rejections {
                    inner.state = BreakerState::HalfOpen;
                    inner.probe_successes = 0;
                    self.publish_state(BreakerState::HalfOpen);
                }
                false
            }
        }
    }

    /// Records a successful op and its observed latency. In half-open,
    /// enough successes close the breaker; in closed, an SLO violation
    /// streak trips it.
    pub fn record_success(&self, latency: Duration) {
        let mut inner = self.inner.lock();
        match inner.state {
            BreakerState::Quarantined => {}
            BreakerState::HalfOpen => {
                inner.probe_successes += 1;
                if inner.probe_successes >= self.cfg.probe_successes {
                    inner.state = BreakerState::Closed;
                    inner.trips_since_close = 0;
                    inner.consecutive_failures = 0;
                    inner.consecutive_slo_violations = 0;
                    self.publish_state(BreakerState::Closed);
                }
            }
            BreakerState::Closed | BreakerState::Open => {
                inner.consecutive_failures = 0;
                let violated = self
                    .cfg
                    .latency_slo
                    .is_some_and(|slo| latency > slo);
                if violated {
                    inner.consecutive_slo_violations += 1;
                    inner.counts.slo_violations += 1;
                    self.bump("slo_violations", 1);
                    if inner.state == BreakerState::Closed
                        && inner.consecutive_slo_violations >= self.cfg.slo_violation_threshold
                    {
                        self.trip(&mut inner);
                    }
                } else {
                    inner.consecutive_slo_violations = 0;
                }
            }
        }
    }

    /// Records a post-retry failure. The caller reports the error *after*
    /// the retry layer resolved it — a transient error that exhausted its
    /// retry budget is just as much a failure as a permanent one; the
    /// class only flavors accounting.
    pub fn record_failure(&self, _e: &io::Error) {
        let mut inner = self.inner.lock();
        inner.counts.failures += 1;
        self.bump("failures", 1);
        match inner.state {
            BreakerState::Quarantined | BreakerState::Open => {}
            BreakerState::HalfOpen => {
                // A failed probe re-opens immediately (and may latch
                // quarantine via the trip counter).
                self.trip(&mut inner);
            }
            BreakerState::Closed => {
                inner.consecutive_failures += 1;
                if inner.consecutive_failures >= self.cfg.failure_threshold {
                    self.trip(&mut inner);
                }
            }
        }
    }

    /// Latches the breaker permanently open, as if it had exhausted its
    /// trip budget (operator-driven quarantine, or an engine reacting to
    /// unrecoverable data loss).
    pub fn quarantine(&self) {
        let mut inner = self.inner.lock();
        if inner.state != BreakerState::Quarantined {
            inner.counts.trips += 1;
            inner.state = BreakerState::Quarantined;
            self.bump("trips", 1);
            self.publish_state(BreakerState::Quarantined);
        }
    }

    /// Current state.
    pub fn state(&self) -> BreakerState {
        self.inner.lock().state
    }

    /// Whether the breaker has latched permanently open.
    pub fn is_quarantined(&self) -> bool {
        self.state() == BreakerState::Quarantined
    }

    /// Counter snapshot.
    pub fn counts(&self) -> HealthCounts {
        self.inner.lock().counts
    }
}

/// The breakers for one engine's tier set, indexed like its tiers.
#[derive(Clone)]
pub struct TierHealthSet {
    tiers: Vec<Arc<TierHealth>>,
}

impl TierHealthSet {
    /// One breaker per tier name, all sharing `cfg` and `trace`.
    pub fn new(names: &[&str], cfg: HealthConfig, trace: TraceSink) -> TierHealthSet {
        TierHealthSet {
            tiers: names
                .iter()
                .map(|n| TierHealth::with_trace(*n, cfg.clone(), trace.clone()))
                .collect(),
        }
    }

    /// Wraps pre-built breakers (e.g. shared with per-tier AIO engines).
    pub fn from_tiers(tiers: Vec<Arc<TierHealth>>) -> TierHealthSet {
        TierHealthSet { tiers }
    }

    /// The breaker for tier `i`, if the index is in range.
    pub fn tier(&self, i: usize) -> Option<&Arc<TierHealth>> {
        self.tiers.get(i)
    }

    /// Number of supervised tiers.
    pub fn len(&self) -> usize {
        self.tiers.len()
    }

    /// Whether the set supervises no tiers.
    pub fn is_empty(&self) -> bool {
        self.tiers.is_empty()
    }

    /// Indices of tiers whose breakers have latched permanently open.
    pub fn quarantined_indices(&self) -> Vec<usize> {
        self.tiers
            .iter()
            .enumerate()
            .filter(|(_, t)| t.is_quarantined())
            .map(|(i, _)| i)
            .collect()
    }

    /// Iterates the breakers in tier order.
    pub fn iter(&self) -> impl Iterator<Item = &Arc<TierHealth>> {
        self.tiers.iter()
    }
}

/// The typed rejection an open or quarantined breaker returns in place
/// of issuing the op. Deliberately **permanent** under [`classify`]
/// (crate::classify): retrying into an open breaker is pointless — the
/// open→half-open cooldown is counted in *fresh* ops hitting
/// [`TierHealth::allow`], not in retry spins of one op.
pub fn breaker_rejection(tier: &str, state: BreakerState) -> io::Error {
    io::Error::new(
        io::ErrorKind::ConnectionRefused,
        format!("tier {tier} circuit breaker is {}: op rejected", state.as_str()),
    )
}

/// A [`Backend`] decorator that routes every data op through the tier's
/// circuit breaker: ops are refused with a typed
/// [`breaker_rejection`] while the breaker is open or quarantined, and
/// every completed op feeds the breaker back — successes with their
/// observed latency (driving the SLO trip), failures as-is.
///
/// Layering (see DESIGN.md §15): the gate sits *under* the AIO retry
/// layer, so each backend attempt is accounted — a retry storm against a
/// dying tier reaches the failure threshold faster, which is the point.
/// Metadata ops (`contains`) and the raw-file escape hatch are not
/// gated: `contains` serves verification/drain bookkeeping, and
/// declining `raw_target` keeps kernel-backed engines on the gated
/// portable path.
pub struct HealthGatedBackend {
    inner: Arc<dyn Backend>,
    health: Arc<TierHealth>,
}

impl HealthGatedBackend {
    /// Gates `inner` behind `health`.
    pub fn new(inner: Arc<dyn Backend>, health: Arc<TierHealth>) -> HealthGatedBackend {
        HealthGatedBackend { inner, health }
    }

    /// The breaker this gate consults.
    pub fn health(&self) -> &Arc<TierHealth> {
        &self.health
    }

    /// The ungated backend — the evacuation path: quarantine-and-drain
    /// reads a dying tier's surviving copies through this even though
    /// the gate refuses normal traffic.
    pub fn inner(&self) -> &Arc<dyn Backend> {
        &self.inner
    }

    fn gate(&self) -> io::Result<()> {
        if self.health.allow() {
            Ok(())
        } else {
            Err(breaker_rejection(self.health.tier_name(), self.health.state()))
        }
    }

    fn observe<T>(&self, started: Instant, result: io::Result<T>) -> io::Result<T> {
        match &result {
            Ok(_) => self.health.record_success(started.elapsed()),
            Err(e) => self.health.record_failure(e),
        }
        result
    }
}

impl Backend for HealthGatedBackend {
    fn write(&self, key: &str, data: &[u8]) -> io::Result<()> {
        self.gate()?;
        let started = Instant::now();
        self.observe(started, self.inner.write(key, data))
    }

    fn read(&self, key: &str) -> io::Result<Vec<u8>> {
        self.gate()?;
        let started = Instant::now();
        self.observe(started, self.inner.read(key))
    }

    fn read_into(&self, key: &str, dst: &mut [u8]) -> io::Result<usize> {
        self.gate()?;
        let started = Instant::now();
        let result = self.inner.read_into(key, dst);
        self.observe(started, result)
    }

    fn delete(&self, key: &str) -> io::Result<()> {
        self.gate()?;
        let started = Instant::now();
        self.observe(started, self.inner.delete(key))
    }

    fn contains(&self, key: &str) -> bool {
        self.inner.contains(key)
    }

    fn name(&self) -> &str {
        self.inner.name()
    }

    fn raw_target(&self, _key: &str) -> Option<RawFileTarget> {
        None // decorators stay on the data path (see Backend docs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn failure() -> io::Error {
        io::Error::new(io::ErrorKind::PermissionDenied, "dead tier")
    }

    #[test]
    fn stays_closed_under_success() {
        let h = TierHealth::new("nvme", HealthConfig::default());
        for _ in 0..100 {
            assert!(h.allow());
            h.record_success(Duration::from_micros(50));
        }
        assert_eq!(h.state(), BreakerState::Closed);
        assert_eq!(h.counts().trips, 0);
    }

    #[test]
    fn consecutive_failures_trip_then_cooldown_then_probe_closes() {
        let cfg = HealthConfig {
            failure_threshold: 3,
            cooldown_rejections: 2,
            probe_successes: 2,
            max_trips: 5,
            ..HealthConfig::default()
        };
        let h = TierHealth::new("pfs", cfg);
        // Two failures with a success in between: no trip (consecutive).
        h.record_failure(&failure());
        h.record_failure(&failure());
        h.record_success(Duration::ZERO);
        h.record_failure(&failure());
        h.record_failure(&failure());
        assert_eq!(h.state(), BreakerState::Closed);
        h.record_failure(&failure());
        assert_eq!(h.state(), BreakerState::Open, "third consecutive trips");
        // Cooldown: two rejections, then half-open.
        assert!(!h.allow());
        assert_eq!(h.state(), BreakerState::Open);
        assert!(!h.allow());
        assert_eq!(h.state(), BreakerState::HalfOpen);
        // Probe successes close it.
        assert!(h.allow());
        h.record_success(Duration::ZERO);
        assert!(h.allow());
        h.record_success(Duration::ZERO);
        assert_eq!(h.state(), BreakerState::Closed);
        let c = h.counts();
        assert_eq!(c.trips, 1);
        assert_eq!(c.rejected, 2);
        assert_eq!(c.probes, 2);
    }

    #[test]
    fn failed_probe_reopens_and_repeated_trips_quarantine() {
        let cfg = HealthConfig {
            failure_threshold: 1,
            cooldown_rejections: 1,
            probe_successes: 1,
            max_trips: 2,
            ..HealthConfig::default()
        };
        let h = TierHealth::new("s3", cfg);
        h.record_failure(&failure());
        assert_eq!(h.state(), BreakerState::Open);
        assert!(!h.allow()); // cooldown absorbed → half-open
        assert_eq!(h.state(), BreakerState::HalfOpen);
        assert!(h.allow()); // probe admitted
        h.record_failure(&failure()); // probe fails → second trip → latch
        assert_eq!(h.state(), BreakerState::Quarantined);
        assert!(h.is_quarantined());
        // Quarantine is permanent: successes cannot revive it.
        assert!(!h.allow());
        h.record_success(Duration::ZERO);
        assert_eq!(h.state(), BreakerState::Quarantined);
    }

    #[test]
    fn latency_slo_streak_trips_like_failures() {
        let cfg = HealthConfig::default().with_latency_slo(Duration::from_millis(1), 3);
        let h = TierHealth::new("pfs", cfg);
        let slow = Duration::from_millis(50);
        h.record_success(slow);
        h.record_success(slow);
        // A fast op resets the streak.
        h.record_success(Duration::from_micros(10));
        h.record_success(slow);
        h.record_success(slow);
        assert_eq!(h.state(), BreakerState::Closed);
        h.record_success(slow);
        assert_eq!(h.state(), BreakerState::Open, "3 consecutive SLO misses");
        assert_eq!(h.counts().slo_violations, 5);
    }

    #[test]
    fn explicit_quarantine_latches() {
        let h = TierHealth::new("nvme", HealthConfig::default());
        h.quarantine();
        assert!(h.is_quarantined());
        assert!(!h.allow());
        assert_eq!(h.counts().trips, 1);
        h.quarantine(); // idempotent
        assert_eq!(h.counts().trips, 1);
    }

    #[test]
    fn health_set_reports_quarantined_indices() {
        let set = TierHealthSet::new(
            &["nvme", "pfs", "s3"],
            HealthConfig::hair_trigger(),
            TraceSink::disabled(),
        );
        assert!(set.quarantined_indices().is_empty());
        set.tier(1).unwrap().record_failure(&failure());
        assert_eq!(
            set.tier(1).unwrap().state(),
            BreakerState::Quarantined,
            "hair trigger: one failure, one trip, immediate latch"
        );
        assert_eq!(set.quarantined_indices(), vec![1]);
        assert_eq!(set.len(), 3);
    }

    #[test]
    fn gated_backend_feeds_the_breaker_and_rejects_once_tripped() {
        use crate::backend::MemBackend;
        use crate::fault::{classify, ErrorClass};

        let inner: Arc<dyn Backend> = Arc::new(MemBackend::new("nvme"));
        let cfg = HealthConfig {
            failure_threshold: 2,
            max_trips: 1,
            ..HealthConfig::default()
        };
        let health = TierHealth::new("nvme", cfg);
        let gated = HealthGatedBackend::new(inner, Arc::clone(&health));

        // Successful ops pass through and keep the breaker closed.
        gated.write("k", b"payload").unwrap();
        assert_eq!(gated.read("k").unwrap(), b"payload");
        assert_eq!(health.state(), BreakerState::Closed);

        // Two real failures (missing key) trip it; one trip latches
        // quarantine under max_trips = 1.
        assert!(gated.read("missing").is_err());
        assert!(gated.read("missing").is_err());
        assert!(health.is_quarantined());
        assert_eq!(health.counts().failures, 2);

        // From here every data op is refused with the typed rejection —
        // permanent under the taxonomy, so retry layers stop dead — and
        // the inner backend is never touched.
        let err = gated.write("k2", b"x").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::ConnectionRefused);
        assert_eq!(classify(&err), ErrorClass::Permanent);
        assert!(!gated.inner().contains("k2"));
    }

    #[test]
    fn gated_backend_leaves_metadata_and_salvage_paths_open() {
        use crate::backend::MemBackend;

        let inner: Arc<dyn Backend> = Arc::new(MemBackend::new("nvme"));
        let health = TierHealth::new("nvme", HealthConfig::default());
        let gated = HealthGatedBackend::new(Arc::clone(&inner), Arc::clone(&health));
        gated.write("sub0", b"copy").unwrap();
        health.quarantine();

        // `contains` is not gated (verification bookkeeping) and the
        // ungated inner handle still serves evacuation reads.
        assert!(gated.contains("sub0"));
        assert!(gated.read("sub0").is_err(), "data path is refused");
        assert_eq!(gated.inner().read("sub0").unwrap(), b"copy");
        // Decorators decline the raw-file escape hatch.
        assert!(gated.raw_target("sub0").is_none());
        assert_eq!(gated.name(), "nvme");
    }

    #[test]
    fn meters_track_state_and_counts() {
        let sink = TraceSink::enabled();
        let h = TierHealth::with_trace("nvme", HealthConfig::hair_trigger(), sink.clone());
        h.record_failure(&failure());
        assert!(!h.allow());
        let snap = sink.metrics_snapshot();
        assert_eq!(snap.counter("health.nvme.failures"), Some(1));
        assert_eq!(snap.counter("health.nvme.trips"), Some(1));
        assert_eq!(snap.counter("health.nvme.rejected"), Some(1));
        let state = snap
            .gauges
            .iter()
            .find(|(k, _)| k == "health.nvme.state")
            .map(|(_, v)| *v);
        assert_eq!(state, Some(BreakerState::Quarantined.as_gauge()));
    }
}
