//! Deterministic fault injection and the transient/permanent error
//! taxonomy.
//!
//! Real NVMe and parallel-file-system tiers return transient `EIO`,
//! `EAGAIN`, and `ENOSPC` under contention; an offload engine that panics
//! on the first such error cannot run at the paper's scale. This module
//! provides the two halves of the failure-semantics layer:
//!
//! * [`classify`] / [`ErrorClass`] — the error taxonomy shared by the
//!   retry layer in `mlp-aio` and by engine-level recovery: *transient*
//!   errors are worth re-issuing, *permanent* errors must surface to the
//!   caller.
//! * [`FaultInjectBackend`] — a decorator around any [`Backend`] that
//!   injects transient errors, permanent errors, latency spikes, and
//!   short reads, **deterministically**: every decision is a pure hash of
//!   `(seed, key, per-key op sequence)`, so a seeded test run injects the
//!   same faults at the same logical points regardless of I/O-worker
//!   interleaving.

use std::collections::HashMap;
use std::error::Error as StdError;
use std::fmt;
use std::io;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use mlp_trace::{Attrs, Phase, TraceSink};
use parking_lot::Mutex;

use crate::backend::Backend;
use crate::clock::{wall_clock, Sleeper};

// ---------------------------------------------------------------------------
// Error taxonomy
// ---------------------------------------------------------------------------

/// Whether an I/O error is worth retrying.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorClass {
    /// The operation may succeed if re-issued (contention, interruption,
    /// exhausted-but-recovering resources). The retry layer backs off and
    /// re-submits these.
    Transient,
    /// Retrying cannot help (missing object, corruption, bad arguments,
    /// permission). These surface to the engine immediately.
    Permanent,
}

/// Classifies an I/O error as transient or permanent.
///
/// Transient: `Interrupted`, `TimedOut`, `WouldBlock`, connection
/// resets/aborts, and the raw POSIX codes storage stacks return under
/// contention — `EIO` (5), `EAGAIN` (11), `ENOSPC` (28). Everything else
/// (not found, invalid data, permission denied, …) is permanent.
pub fn classify(e: &io::Error) -> ErrorClass {
    use io::ErrorKind::*;
    if matches!(
        e.kind(),
        Interrupted | TimedOut | WouldBlock | ConnectionReset | ConnectionAborted
    ) {
        return ErrorClass::Transient;
    }
    if let Some(code) = e.raw_os_error() {
        // EIO, EAGAIN, ENOSPC: the kinds std leaves uncategorized but the
        // paper's tiers (node-local NVMe, Lustre/GPFS) produce routinely.
        if matches!(code, 5 | 11 | 28) {
            return ErrorClass::Transient;
        }
    }
    // Object-store failure modes (throttling, failed multipart parts,
    // stale reads) are retried by every real S3 client.
    if object_fault(e).is_some() {
        return ErrorClass::Transient;
    }
    ErrorClass::Permanent
}

/// Shorthand for `classify(e) == ErrorClass::Transient`.
pub fn is_transient(e: &io::Error) -> bool {
    classify(e) == ErrorClass::Transient
}

/// Object-store-specific failure modes, carried as the payload of an
/// `io::Error` so [`classify`] can recognize them without string
/// matching. All three are *transient* by the taxonomy: an S3-style
/// client retries a `SlowDown`, re-uploads a failed part, and re-reads
/// until the PUT becomes visible.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ObjectFault {
    /// Request-rate throttling (HTTP 503 `SlowDown`): the store sheds
    /// load; back off and retry.
    Throttle,
    /// One part of a multipart upload failed mid-stream; the upload as a
    /// whole never became visible, so a retry re-drives the whole PUT.
    MultipartPartFailed,
    /// Read-after-PUT returned a stale or not-yet-visible version
    /// (eventual-consistency lag); re-reading converges.
    StaleRead,
}

impl ObjectFault {
    /// Stable short name (used in error messages and test assertions).
    pub fn as_str(self) -> &'static str {
        match self {
            ObjectFault::Throttle => "throttle",
            ObjectFault::MultipartPartFailed => "multipart_part_failed",
            ObjectFault::StaleRead => "stale_read",
        }
    }
}

/// The typed error payload wrapping an [`ObjectFault`].
#[derive(Debug)]
pub struct ObjectFaultError {
    fault: ObjectFault,
    detail: String,
}

impl ObjectFaultError {
    /// Builds the carrying `io::Error` for a fault on `key`.
    pub fn io_error(fault: ObjectFault, detail: impl Into<String>) -> io::Error {
        io::Error::other(ObjectFaultError {
            fault,
            detail: detail.into(),
        })
    }

    /// Which object-store failure mode this is.
    pub fn fault(&self) -> ObjectFault {
        self.fault
    }
}

impl fmt::Display for ObjectFaultError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "object-store {}: {}", self.fault.as_str(), self.detail)
    }
}

impl StdError for ObjectFaultError {}

/// Extracts the object-store failure mode from an `io::Error`, if it
/// carries one.
pub fn object_fault(e: &io::Error) -> Option<ObjectFault> {
    e.get_ref()
        .and_then(|inner| inner.downcast_ref::<ObjectFaultError>())
        .map(|o| o.fault)
}

// ---------------------------------------------------------------------------
// Fault plan
// ---------------------------------------------------------------------------

/// Per-operation fault probabilities and the seed that makes them
/// deterministic.
#[derive(Clone, Debug)]
pub struct FaultConfig {
    /// Seed for the per-decision hash; two backends with the same seed and
    /// the same per-key op sequences inject identical faults.
    pub seed: u64,
    /// Probability that an op fails with a transient error before touching
    /// the inner backend (the previous object, if any, stays intact).
    pub transient_error_p: f64,
    /// Probability that an op fails with a permanent error.
    pub permanent_error_p: f64,
    /// Probability that a read delivers fewer bytes than the object holds.
    /// The whole-object [`Backend`] API cannot return a partial payload,
    /// so a short read surfaces as a *transient* error after the partial
    /// bytes landed in the destination — exactly what a re-issued
    /// `pread` loop would observe.
    pub short_read_p: f64,
    /// Probability that an op stalls for [`FaultConfig::latency_spike`]
    /// before proceeding normally (a congested PFS).
    pub latency_spike_p: f64,
    /// Duration of an injected latency spike.
    pub latency_spike: Duration,
    /// Probability that an op is throttled (object-store 503 `SlowDown`).
    pub throttle_p: f64,
    /// Probability that a write fails as a broken multipart part
    /// (write-shaped ops only; the stored object stays untouched).
    pub multipart_part_fail_p: f64,
    /// Probability that a read observes eventual-consistency lag and
    /// fails as a stale read-after-PUT (read-shaped ops only).
    pub stale_read_p: f64,
    /// Which op directions faults apply to. Defaults to [`FaultOps::All`];
    /// [`FaultOps::WritesOnly`] models a tier that degrades on ingest
    /// while existing durable copies stay readable — the shape the
    /// quarantine-and-drain path evacuates.
    pub ops: FaultOps,
}

/// Direction filter for fault injection.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultOps {
    /// Faults may hit reads, writes, and deletes.
    All,
    /// Faults only hit writes and deletes; reads pass through.
    WritesOnly,
    /// Faults only hit reads; writes and deletes pass through.
    ReadsOnly,
}

impl FaultOps {
    fn applies(self, shape: OpShape) -> bool {
        match self {
            FaultOps::All => true,
            FaultOps::WritesOnly => matches!(shape, OpShape::Write | OpShape::Delete),
            FaultOps::ReadsOnly => matches!(shape, OpShape::Read),
        }
    }
}

/// The direction of one injected-against operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum OpShape {
    Read,
    Write,
    Delete,
}

impl FaultConfig {
    /// No faults at all (pass-through baseline).
    pub fn none(seed: u64) -> Self {
        FaultConfig {
            seed,
            transient_error_p: 0.0,
            permanent_error_p: 0.0,
            short_read_p: 0.0,
            latency_spike_p: 0.0,
            latency_spike: Duration::ZERO,
            throttle_p: 0.0,
            multipart_part_fail_p: 0.0,
            stale_read_p: 0.0,
            ops: FaultOps::All,
        }
    }

    /// Transient failures only, at probability `p` per operation.
    pub fn transient(seed: u64, p: f64) -> Self {
        FaultConfig {
            transient_error_p: p,
            ..FaultConfig::none(seed)
        }
    }

    /// Permanent failures only, at probability `p` per operation.
    pub fn permanent(seed: u64, p: f64) -> Self {
        FaultConfig {
            permanent_error_p: p,
            ..FaultConfig::none(seed)
        }
    }

    /// Adds short reads at probability `p`.
    pub fn with_short_reads(mut self, p: f64) -> Self {
        self.short_read_p = p;
        self
    }

    /// Adds latency spikes of `spike` at probability `p`.
    pub fn with_latency_spikes(mut self, p: f64, spike: Duration) -> Self {
        self.latency_spike_p = p;
        self.latency_spike = spike;
        self
    }

    /// Adds object-store throttling (`SlowDown`) at probability `p`.
    pub fn with_throttling(mut self, p: f64) -> Self {
        self.throttle_p = p;
        self
    }

    /// Adds multipart-part failures on writes at probability `p`.
    pub fn with_multipart_part_failures(mut self, p: f64) -> Self {
        self.multipart_part_fail_p = p;
        self
    }

    /// Adds stale read-after-PUT failures on reads at probability `p`.
    pub fn with_stale_reads(mut self, p: f64) -> Self {
        self.stale_read_p = p;
        self
    }

    /// Restricts injection to the given op directions.
    pub fn with_ops(mut self, ops: FaultOps) -> Self {
        self.ops = ops;
        self
    }
}

/// Injection counters (all monotonic).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultCounts {
    /// Transient errors injected (includes short reads, which are
    /// delivered as transient errors).
    pub transient: u64,
    /// Permanent errors injected.
    pub permanent: u64,
    /// Short reads injected (also counted in `transient`).
    pub short_reads: u64,
    /// Latency spikes injected.
    pub latency_spikes: u64,
    /// Object-store throttles injected (also counted in `transient`).
    pub throttles: u64,
    /// Multipart-part failures injected (also counted in `transient`).
    pub multipart_part_fails: u64,
    /// Stale read-after-PUT failures injected (also counted in
    /// `transient`).
    pub stale_reads: u64,
    /// Operations that reached the inner backend unharmed.
    pub passed: u64,
}

/// Injection counters.
///
/// Ordering contract: every field is a pure monotonic event counter —
/// incremented on the injection path, read only by [`FaultInjectBackend::counts`]
/// for reporting. Nothing synchronizes *through* these atomics (no thread
/// reads one to decide whether other memory is visible), so all accesses
/// use `Ordering::Relaxed`; each site carries a `// relaxed-ok:` note for
/// the `xtask lint` relaxed-audit rule.
#[derive(Default)]
struct FaultStats {
    transient: AtomicU64,
    permanent: AtomicU64,
    short_reads: AtomicU64,
    latency_spikes: AtomicU64,
    throttles: AtomicU64,
    multipart_part_fails: AtomicU64,
    stale_reads: AtomicU64,
    passed: AtomicU64,
}

// ---------------------------------------------------------------------------
// FaultInjectBackend
// ---------------------------------------------------------------------------

/// What the decision hash told us to do with one operation.
enum Verdict {
    Pass,
    Transient,
    Permanent,
    ShortRead,
    Throttle,
    MultipartPartFail,
    StaleRead,
}

/// Backend decorator injecting deterministic faults around any inner
/// [`Backend`].
///
/// Decisions are derived from `hash(seed, key, seq)` where `seq` is a
/// per-key operation counter, so they do not depend on thread scheduling:
/// engines serialize their accesses to any single key (write-after-evict
/// fences, flush barriers), which makes per-key sequences — and therefore
/// the whole injection pattern — reproducible.
pub struct FaultInjectBackend {
    inner: Arc<dyn Backend>,
    name: String,
    cfg: FaultConfig,
    /// Per-key op sequence numbers.
    seq: Mutex<HashMap<String, u64>>,
    stats: FaultStats,
    armed: AtomicBool,
    /// Delay source for latency spikes; [`crate::clock::WallClockSleeper`]
    /// by default, a recording fake under deterministic tests.
    sleeper: Arc<dyn Sleeper>,
    /// Observability sink: each injected fault drops a
    /// [`mlp_trace::Phase::FaultInject`] instant on the timeline, so a
    /// retry storm in the trace can be lined up with the injections that
    /// caused it. Disabled (zero-cost) unless set via
    /// [`FaultInjectBackend::with_trace`].
    trace: TraceSink,
}

impl FaultInjectBackend {
    /// Wraps `inner` with the given fault plan (armed immediately).
    pub fn new(inner: Arc<dyn Backend>, cfg: FaultConfig) -> Self {
        let name = format!("{}+faults", inner.name());
        FaultInjectBackend {
            inner,
            name,
            cfg,
            seq: Mutex::new(HashMap::new()),
            stats: FaultStats::default(),
            armed: AtomicBool::new(true),
            sleeper: wall_clock(),
            trace: TraceSink::disabled(),
        }
    }

    /// Attaches an observability sink; injected faults become
    /// [`mlp_trace::Phase::FaultInject`] instants.
    pub fn with_trace(mut self, trace: TraceSink) -> Self {
        self.trace = trace;
        self
    }

    /// Replaces the latency-spike delay source (a
    /// [`crate::clock::FakeSleeper`] keeps deterministic suites off the
    /// wall clock).
    pub fn with_sleeper(mut self, sleeper: Arc<dyn Sleeper>) -> Self {
        self.sleeper = sleeper;
        self
    }

    /// Marks one injected fault on the timeline.
    fn note_injection(&self) {
        if self.trace.is_enabled() {
            self.trace
                .instant(Phase::FaultInject, Attrs::NONE, self.trace.now_ns());
        }
    }

    /// Enables or disables injection at runtime (e.g. fault-free engine
    /// construction, then an armed training phase). Disarmed, the backend
    /// is a pure pass-through and does not advance sequence numbers.
    pub fn set_armed(&self, armed: bool) {
        self.armed.store(armed, Ordering::SeqCst);
    }

    /// Current injection counters.
    pub fn counts(&self) -> FaultCounts {
        FaultCounts {
            transient: self.stats.transient.load(Ordering::Relaxed), // relaxed-ok: stats snapshot
            permanent: self.stats.permanent.load(Ordering::Relaxed), // relaxed-ok: stats snapshot
            short_reads: self.stats.short_reads.load(Ordering::Relaxed), // relaxed-ok: stats snapshot
            latency_spikes: self.stats.latency_spikes.load(Ordering::Relaxed), // relaxed-ok: stats snapshot
            throttles: self.stats.throttles.load(Ordering::Relaxed), // relaxed-ok: stats snapshot
            multipart_part_fails: self.stats.multipart_part_fails.load(Ordering::Relaxed), // relaxed-ok: stats snapshot
            stale_reads: self.stats.stale_reads.load(Ordering::Relaxed), // relaxed-ok: stats snapshot
            passed: self.stats.passed.load(Ordering::Relaxed), // relaxed-ok: stats snapshot
        }
    }

    /// SplitMix64 finalizer: a well-mixed u64 from the decision inputs.
    fn mix(mut z: u64) -> u64 {
        z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform [0,1) roll number `salt` for this (key, seq) decision.
    fn roll(&self, key_hash: u64, seq: u64, salt: u64) -> f64 {
        let mut h = self.cfg.seed ^ key_hash;
        h = Self::mix(h ^ seq.wrapping_mul(0xA24B_AED4_963E_E407));
        h = Self::mix(h ^ salt.wrapping_mul(0x9FB2_1C65_1E98_DF25));
        (h >> 11) as f64 / (1u64 << 53) as f64
    }

    fn key_hash(key: &str) -> u64 {
        // FNV-1a.
        let mut h = 0xCBF2_9CE4_8422_2325u64;
        for b in key.as_bytes() {
            h = (h ^ *b as u64).wrapping_mul(0x1_0000_01B3);
        }
        h
    }

    /// Draws the verdict for one operation on `key`, applying any latency
    /// spike as a side effect. `shape` gates direction-specific faults
    /// (short/stale reads, multipart-part failures) and the
    /// [`FaultOps`] direction filter.
    fn decide(&self, key: &str, shape: OpShape) -> Verdict {
        if !self.armed.load(Ordering::SeqCst) || !self.cfg.ops.applies(shape) {
            self.stats.passed.fetch_add(1, Ordering::Relaxed); // relaxed-ok: monotonic stats counter
            return Verdict::Pass;
        }
        let kh = Self::key_hash(key);
        let seq = {
            let mut m = self.seq.lock();
            let c = m.entry(key.to_string()).or_insert(0);
            let s = *c;
            *c += 1;
            s
        };
        if self.cfg.latency_spike_p > 0.0 && self.roll(kh, seq, 1) < self.cfg.latency_spike_p {
            self.stats.latency_spikes.fetch_add(1, Ordering::Relaxed); // relaxed-ok: monotonic stats counter
            self.note_injection();
            self.sleeper.sleep(self.cfg.latency_spike);
        }
        let r = self.roll(kh, seq, 2);
        if r < self.cfg.permanent_error_p {
            self.stats.permanent.fetch_add(1, Ordering::Relaxed); // relaxed-ok: monotonic stats counter
            self.note_injection();
            return Verdict::Permanent;
        }
        if r < self.cfg.permanent_error_p + self.cfg.transient_error_p {
            self.stats.transient.fetch_add(1, Ordering::Relaxed); // relaxed-ok: monotonic stats counter
            self.note_injection();
            return Verdict::Transient;
        }
        if matches!(shape, OpShape::Read)
            && self.cfg.short_read_p > 0.0
            && self.roll(kh, seq, 3) < self.cfg.short_read_p
        {
            self.stats.short_reads.fetch_add(1, Ordering::Relaxed); // relaxed-ok: monotonic stats counter
            self.stats.transient.fetch_add(1, Ordering::Relaxed); // relaxed-ok: monotonic stats counter
            self.note_injection();
            return Verdict::ShortRead;
        }
        if self.cfg.throttle_p > 0.0 && self.roll(kh, seq, 4) < self.cfg.throttle_p {
            self.stats.throttles.fetch_add(1, Ordering::Relaxed); // relaxed-ok: monotonic stats counter
            self.stats.transient.fetch_add(1, Ordering::Relaxed); // relaxed-ok: monotonic stats counter
            self.note_injection();
            return Verdict::Throttle;
        }
        if matches!(shape, OpShape::Write)
            && self.cfg.multipart_part_fail_p > 0.0
            && self.roll(kh, seq, 5) < self.cfg.multipart_part_fail_p
        {
            self.stats.multipart_part_fails.fetch_add(1, Ordering::Relaxed); // relaxed-ok: monotonic stats counter
            self.stats.transient.fetch_add(1, Ordering::Relaxed); // relaxed-ok: monotonic stats counter
            self.note_injection();
            return Verdict::MultipartPartFail;
        }
        if matches!(shape, OpShape::Read)
            && self.cfg.stale_read_p > 0.0
            && self.roll(kh, seq, 6) < self.cfg.stale_read_p
        {
            self.stats.stale_reads.fetch_add(1, Ordering::Relaxed); // relaxed-ok: monotonic stats counter
            self.stats.transient.fetch_add(1, Ordering::Relaxed); // relaxed-ok: monotonic stats counter
            self.note_injection();
            return Verdict::StaleRead;
        }
        self.stats.passed.fetch_add(1, Ordering::Relaxed); // relaxed-ok: monotonic stats counter
        Verdict::Pass
    }

    fn transient_error(key: &str) -> io::Error {
        io::Error::new(
            io::ErrorKind::Interrupted,
            format!("injected transient I/O fault on {key}"),
        )
    }

    fn permanent_error(key: &str) -> io::Error {
        io::Error::new(
            io::ErrorKind::PermissionDenied,
            format!("injected permanent I/O fault on {key}"),
        )
    }

    fn throttle_error(key: &str) -> io::Error {
        ObjectFaultError::io_error(
            ObjectFault::Throttle,
            format!("injected 503 SlowDown on {key}"),
        )
    }

    fn multipart_error(key: &str) -> io::Error {
        ObjectFaultError::io_error(
            ObjectFault::MultipartPartFailed,
            format!("injected multipart part failure on {key}"),
        )
    }

    fn stale_read_error(key: &str) -> io::Error {
        ObjectFaultError::io_error(
            ObjectFault::StaleRead,
            format!("injected stale read-after-PUT on {key}"),
        )
    }
}

impl Backend for FaultInjectBackend {
    fn write(&self, key: &str, data: &[u8]) -> io::Result<()> {
        match self.decide(key, OpShape::Write) {
            // A failed write never tears the stored object: the fault
            // fires before the inner backend is touched, matching the
            // atomic write-then-rename guarantee of `DirBackend` and the
            // all-or-nothing multipart publish of `ObjectBackend`.
            Verdict::Transient => Err(Self::transient_error(key)),
            Verdict::Permanent => Err(Self::permanent_error(key)),
            Verdict::Throttle => Err(Self::throttle_error(key)),
            Verdict::MultipartPartFail => Err(Self::multipart_error(key)),
            _ => self.inner.write(key, data),
        }
    }

    fn read(&self, key: &str) -> io::Result<Vec<u8>> {
        match self.decide(key, OpShape::Read) {
            Verdict::Transient => Err(Self::transient_error(key)),
            Verdict::Permanent => Err(Self::permanent_error(key)),
            Verdict::Throttle => Err(Self::throttle_error(key)),
            Verdict::StaleRead => Err(Self::stale_read_error(key)),
            // Gated to write-shaped ops in `decide`; kept panic-free.
            Verdict::MultipartPartFail => Err(Self::transient_error(key)),
            Verdict::ShortRead => Err(io::Error::new(
                io::ErrorKind::Interrupted,
                format!("injected short read on {key}"),
            )),
            Verdict::Pass => self.inner.read(key),
        }
    }

    fn read_into(&self, key: &str, dst: &mut [u8]) -> io::Result<usize> {
        match self.decide(key, OpShape::Read) {
            Verdict::Transient => Err(Self::transient_error(key)),
            Verdict::Permanent => Err(Self::permanent_error(key)),
            Verdict::Throttle => Err(Self::throttle_error(key)),
            Verdict::StaleRead => Err(Self::stale_read_error(key)),
            // Gated to write-shaped ops in `decide`; kept panic-free.
            Verdict::MultipartPartFail => Err(Self::transient_error(key)),
            Verdict::ShortRead => {
                // Land a genuine partial prefix in the caller's buffer —
                // a retry must fully overwrite it.
                let data = self.inner.read(key)?;
                let partial = (data.len() / 2).min(dst.len());
                // lint:allow(transitive-panic): in-bounds — partial is min-clamped to both slice lengths
                dst[..partial].copy_from_slice(&data[..partial]);
                Err(io::Error::new(
                    io::ErrorKind::Interrupted,
                    format!(
                        "injected short read on {key}: {partial} of {} bytes delivered",
                        data.len()
                    ),
                ))
            }
            Verdict::Pass => self.inner.read_into(key, dst),
        }
    }

    fn delete(&self, key: &str) -> io::Result<()> {
        match self.decide(key, OpShape::Delete) {
            Verdict::Transient => Err(Self::transient_error(key)),
            Verdict::Permanent => Err(Self::permanent_error(key)),
            Verdict::Throttle => Err(Self::throttle_error(key)),
            _ => self.inner.delete(key),
        }
    }

    fn contains(&self, key: &str) -> bool {
        self.inner.contains(key)
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::MemBackend;

    fn faulty(cfg: FaultConfig) -> FaultInjectBackend {
        let inner = Arc::new(MemBackend::new("mem"));
        inner.write("k", &[7u8; 64]).unwrap();
        FaultInjectBackend::new(inner, cfg)
    }

    #[test]
    fn classification_matches_taxonomy() {
        assert_eq!(
            classify(&io::Error::new(io::ErrorKind::Interrupted, "x")),
            ErrorClass::Transient
        );
        assert_eq!(
            classify(&io::Error::new(io::ErrorKind::TimedOut, "x")),
            ErrorClass::Transient
        );
        for code in [5, 11, 28] {
            assert!(is_transient(&io::Error::from_raw_os_error(code)), "{code}");
        }
        assert_eq!(
            classify(&io::Error::new(io::ErrorKind::NotFound, "x")),
            ErrorClass::Permanent
        );
        assert_eq!(
            classify(&io::Error::new(io::ErrorKind::InvalidData, "x")),
            ErrorClass::Permanent
        );
        assert!(!is_transient(&io::Error::other("x")));
    }

    #[test]
    fn zero_probability_is_transparent() {
        let b = faulty(FaultConfig::none(1));
        for _ in 0..50 {
            assert_eq!(b.read("k").unwrap(), vec![7u8; 64]);
        }
        let c = b.counts();
        assert_eq!(c.transient + c.permanent + c.short_reads, 0);
        assert_eq!(c.passed, 50);
    }

    #[test]
    fn injected_transient_errors_classify_transient() {
        let b = faulty(FaultConfig::transient(42, 1.0));
        let e = b.read("k").unwrap_err();
        assert_eq!(classify(&e), ErrorClass::Transient);
        assert!(e.to_string().contains("injected"), "{e}");
        assert_eq!(b.counts().transient, 1);
    }

    #[test]
    fn injected_permanent_errors_classify_permanent() {
        let b = faulty(FaultConfig::permanent(42, 1.0));
        let e = b.write("k", &[1]).unwrap_err();
        assert_eq!(classify(&e), ErrorClass::Permanent);
        assert_eq!(b.counts().permanent, 1);
        // A failed write leaves the previous object intact.
        b.set_armed(false);
        assert_eq!(b.read("k").unwrap(), vec![7u8; 64]);
    }

    #[test]
    fn injection_is_deterministic_per_key_sequence() {
        let run = || {
            let b = faulty(FaultConfig::transient(99, 0.3).with_short_reads(0.2));
            let mut outcomes = Vec::new();
            for i in 0..40 {
                let key = format!("k{}", i % 4);
                b.inner.write(&key, &[i as u8; 16]).unwrap();
                outcomes.push(b.read(&key).is_ok());
            }
            (outcomes, b.counts())
        };
        let (a, ca) = run();
        let (b, cb) = run();
        assert_eq!(a, b, "same seed, same per-key sequence, same faults");
        assert_eq!(ca, cb);
        assert!(ca.transient > 0, "30% over 40 ops must fire");
    }

    #[test]
    fn short_read_lands_partial_prefix_then_errors() {
        let b = faulty(FaultConfig::none(7).with_short_reads(1.0));
        let mut dst = [0u8; 64];
        let e = b.read_into("k", &mut dst).unwrap_err();
        assert!(is_transient(&e), "{e}");
        assert!(e.to_string().contains("short read"), "{e}");
        assert_eq!(&dst[..32], &[7u8; 32], "partial prefix delivered");
        assert_eq!(&dst[32..], &[0u8; 32], "tail untouched");
        assert_eq!(b.counts().short_reads, 1);
        // Disarmed, the retry path sees the full object.
        b.set_armed(false);
        assert_eq!(b.read_into("k", &mut dst).unwrap(), 64);
        assert_eq!(dst, [7u8; 64]);
    }

    #[test]
    fn latency_spike_delays_but_succeeds() {
        let b = faulty(
            FaultConfig::none(3).with_latency_spikes(1.0, Duration::from_millis(15)),
        );
        let t0 = std::time::Instant::now();
        assert_eq!(b.read("k").unwrap().len(), 64);
        assert!(t0.elapsed() >= Duration::from_millis(10));
        assert_eq!(b.counts().latency_spikes, 1);
    }

    #[test]
    fn throttle_surfaces_typed_transient_slowdown() {
        let b = faulty(FaultConfig::none(11).with_throttling(1.0));
        let e = b.read("k").unwrap_err();
        assert_eq!(object_fault(&e), Some(ObjectFault::Throttle));
        assert!(is_transient(&e), "{e}");
        assert!(e.to_string().contains("SlowDown"), "{e}");
        let e = b.write("k", &[1]).unwrap_err();
        assert_eq!(object_fault(&e), Some(ObjectFault::Throttle));
        let e = b.delete("k").unwrap_err();
        assert_eq!(object_fault(&e), Some(ObjectFault::Throttle));
        assert_eq!(b.counts().throttles, 3);
        assert_eq!(b.counts().transient, 3, "throttles count as transient");
    }

    #[test]
    fn multipart_part_failure_hits_writes_only_and_never_tears() {
        let b = faulty(FaultConfig::none(12).with_multipart_part_failures(1.0));
        let e = b.write("k", &[9u8; 32]).unwrap_err();
        assert_eq!(object_fault(&e), Some(ObjectFault::MultipartPartFailed));
        assert!(is_transient(&e), "{e}");
        // Reads are not write-shaped: they pass.
        assert_eq!(b.read("k").unwrap(), vec![7u8; 64], "prior object intact");
        assert_eq!(b.counts().multipart_part_fails, 1);
    }

    #[test]
    fn stale_read_after_put_hits_reads_only() {
        let b = faulty(FaultConfig::none(13).with_stale_reads(1.0));
        b.write("k", &[1u8; 8]).unwrap();
        let e = b.read("k").unwrap_err();
        assert_eq!(object_fault(&e), Some(ObjectFault::StaleRead));
        assert!(is_transient(&e), "{e}");
        let mut dst = [0u8; 8];
        let e = b.read_into("k", &mut dst).unwrap_err();
        assert_eq!(object_fault(&e), Some(ObjectFault::StaleRead));
        assert_eq!(b.counts().stale_reads, 2);
        // A re-read converges once injection stops (the retry contract).
        b.set_armed(false);
        assert_eq!(b.read("k").unwrap(), vec![1u8; 8]);
    }

    #[test]
    fn object_faults_all_classify_transient() {
        for f in [
            ObjectFault::Throttle,
            ObjectFault::MultipartPartFailed,
            ObjectFault::StaleRead,
        ] {
            let e = ObjectFaultError::io_error(f, "x");
            assert_eq!(classify(&e), ErrorClass::Transient, "{f:?}");
            assert_eq!(object_fault(&e), Some(f));
        }
        // A bare Other error without the payload stays permanent.
        assert_eq!(classify(&io::Error::other("x")), ErrorClass::Permanent);
    }

    #[test]
    fn writes_only_faults_leave_reads_untouched() {
        let b = faulty(
            FaultConfig::permanent(21, 1.0).with_ops(FaultOps::WritesOnly),
        );
        for _ in 0..10 {
            assert_eq!(b.read("k").unwrap(), vec![7u8; 64]);
        }
        assert!(b.write("k", &[1]).is_err());
        assert!(b.delete("k").is_err());
        assert_eq!(b.counts().permanent, 2);
    }

    #[test]
    fn latency_spikes_route_through_injected_sleeper() {
        let sleeper = crate::clock::FakeSleeper::shared();
        let inner = Arc::new(MemBackend::new("mem"));
        inner.write("k", &[7u8; 64]).unwrap();
        let b = FaultInjectBackend::new(
            inner,
            FaultConfig::none(3).with_latency_spikes(1.0, Duration::from_secs(30)),
        )
        .with_sleeper(sleeper.clone());
        let t0 = std::time::Instant::now();
        assert_eq!(b.read("k").unwrap().len(), 64);
        assert!(
            t0.elapsed() < Duration::from_secs(1),
            "fake sleeper must not block"
        );
        assert_eq!(sleeper.sleeps(), 1);
        assert_eq!(sleeper.total_slept(), Duration::from_secs(30));
        assert_eq!(b.counts().latency_spikes, 1);
    }

    #[test]
    fn disarmed_backend_passes_everything() {
        let b = faulty(FaultConfig::transient(5, 1.0));
        b.set_armed(false);
        for _ in 0..20 {
            b.read("k").unwrap();
        }
        assert_eq!(b.counts().transient, 0);
    }
}
