//! Injectable sleep/clock abstraction for deterministic delay handling.
//!
//! Two call sites in the I/O stack block the calling thread on purpose:
//! the retry layer's exponential backoff (`mlp-aio`) and the fault
//! injector's latency spikes ([`crate::fault::FaultInjectBackend`]).
//! Both used to call `std::thread::sleep` directly, which meant seeded
//! deterministic fault tests paid real wall-clock delays for every
//! injected retry storm. Threading a [`Sleeper`] through instead keeps
//! production behaviour identical (the default is
//! [`WallClockSleeper`]) while tests swap in a [`FakeSleeper`] that
//! records the requested delays and returns immediately — virtual time
//! for the delay path, exactly like the simulation engines' virtual
//! clock, without a global.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A source of blocking delays. Implementations must be cheap to share
/// across I/O worker threads. (`Debug` is a supertrait so configs that
/// embed an `Arc<dyn Sleeper>` can keep deriving `Debug`.)
pub trait Sleeper: Send + Sync + std::fmt::Debug {
    /// Blocks the calling thread for (up to) `d` — or merely records the
    /// request, for virtual-time implementations.
    fn sleep(&self, d: Duration);
}

/// The production sleeper: a plain `std::thread::sleep`.
#[derive(Clone, Copy, Debug, Default)]
pub struct WallClockSleeper;

impl Sleeper for WallClockSleeper {
    fn sleep(&self, d: Duration) {
        if !d.is_zero() {
            std::thread::sleep(d);
        }
    }
}

/// A recording sleeper for deterministic tests: never blocks, counts
/// every request and accumulates the virtual nanoseconds that *would*
/// have been slept. Fault-injection suites assert backoff engaged via
/// [`FakeSleeper::total_slept`] instead of paying the delay.
#[derive(Debug, Default)]
pub struct FakeSleeper {
    count: AtomicU64,
    total_ns: AtomicU64,
}

impl FakeSleeper {
    /// A fresh recorder wrapped for sharing with engine config.
    pub fn shared() -> Arc<FakeSleeper> {
        Arc::new(FakeSleeper::default())
    }

    /// Number of sleep requests recorded.
    pub fn sleeps(&self) -> u64 {
        self.count.load(Ordering::Relaxed) // relaxed-ok: stats snapshot
    }

    /// Total virtual time requested across all sleeps.
    pub fn total_slept(&self) -> Duration {
        Duration::from_nanos(self.total_ns.load(Ordering::Relaxed)) // relaxed-ok: stats snapshot
    }
}

impl Sleeper for FakeSleeper {
    fn sleep(&self, d: Duration) {
        self.count.fetch_add(1, Ordering::Relaxed); // relaxed-ok: monotonic stats counter
        let ns = u64::try_from(d.as_nanos()).unwrap_or(u64::MAX);
        self.total_ns.fetch_add(ns, Ordering::Relaxed); // relaxed-ok: monotonic stats counter
    }
}

/// The default production sleeper, shared.
pub fn wall_clock() -> Arc<dyn Sleeper> {
    Arc::new(WallClockSleeper)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fake_sleeper_records_without_blocking() {
        let s = FakeSleeper::shared();
        let t0 = std::time::Instant::now();
        s.sleep(Duration::from_secs(3600));
        s.sleep(Duration::from_secs(1800));
        assert!(t0.elapsed() < Duration::from_millis(100), "fake slept for real");
        assert_eq!(s.sleeps(), 2);
        assert_eq!(s.total_slept(), Duration::from_secs(5400));
    }

    #[test]
    fn wall_clock_sleeper_actually_sleeps() {
        let s = WallClockSleeper;
        let t0 = std::time::Instant::now();
        s.sleep(Duration::from_millis(10));
        assert!(t0.elapsed() >= Duration::from_millis(5));
    }
}
