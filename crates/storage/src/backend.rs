//! Real byte-moving storage backends for the functional engines.
//!
//! The functional path moves actual optimizer state through these
//! backends, validating the engines' data handling end to end. Two
//! implementations:
//!
//! * [`MemBackend`] — an in-memory key/value disk with optional bandwidth
//!   throttling (sleeps proportional to bytes), used in tests to create
//!   realistic fast/slow tier asymmetries without touching the filesystem.
//! * [`DirBackend`] — one file per key under a root directory; what a real
//!   deployment would point at `/local/nvme` and `/lustre/project`.

use std::collections::HashMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

/// A blocking key/value storage target. Object keys are engine-chosen
/// strings (e.g. `"rank0/subgroup17"`).
pub trait Backend: Send + Sync + 'static {
    /// Stores `data` under `key`, replacing any previous value.
    fn write(&self, key: &str, data: &[u8]) -> io::Result<()>;
    /// Retrieves the value stored under `key`.
    fn read(&self, key: &str) -> io::Result<Vec<u8>>;
    /// Reads the object stored under `key` into the front of `dst`,
    /// returning the number of bytes read — the allocation-free fetch
    /// path: the caller recycles `dst` from a staging pool instead of
    /// receiving a fresh `Vec` per read.
    ///
    /// Errors with [`io::ErrorKind::InvalidInput`] if the object is
    /// larger than `dst`. The default implementation falls back to
    /// [`Backend::read`] plus a copy; backends should override it with a
    /// genuinely allocation-free read where possible.
    fn read_into(&self, key: &str, dst: &mut [u8]) -> io::Result<usize> {
        let data = self.read(key)?;
        if data.len() > dst.len() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "object {key} is {} bytes but the destination holds {}",
                    data.len(),
                    dst.len()
                ),
            ));
        }
        // lint:allow(transitive-panic): in-bounds — the typed-error guard above rejects data.len() > dst.len()
        dst[..data.len()].copy_from_slice(&data);
        Ok(data.len())
    }
    /// Removes `key` if present.
    fn delete(&self, key: &str) -> io::Result<()>;
    /// Whether `key` currently exists.
    fn contains(&self, key: &str) -> bool;
    /// A short display name for diagnostics.
    fn name(&self) -> &str;
    /// Raw-file escape hatch for kernel-backed I/O engines (io_uring,
    /// mmap): the filesystem coordinates of `key`, if this backend is
    /// plainly file-backed.
    ///
    /// The default returns `None`, which is the correct answer for
    /// in-memory backends **and for every decorator** (fault injection,
    /// checksumming, tracing): declining the escape hatch forces engines
    /// back onto the portable [`Backend::read`]/[`Backend::write`] calls,
    /// so decorators always stay on the data path. Engines treat a `Some`
    /// answer as an optimization opportunity, never a requirement — they
    /// must fall back to the portable calls per-op whenever the raw path
    /// cannot serve the operation.
    ///
    /// Raw writers must preserve the backend's publication protocol:
    /// write the payload to a unique sibling tmp file (see
    /// [`unique_tmp_sibling`]) and atomically rename it over
    /// [`RawFileTarget::path`], honouring [`RawFileTarget::fsync`].
    fn raw_target(&self, _key: &str) -> Option<RawFileTarget> {
        None
    }
}

/// Filesystem coordinates of one object, as reported by
/// [`Backend::raw_target`].
#[derive(Clone, Debug)]
pub struct RawFileTarget {
    /// The file storing the object. May not exist yet (raw writes create
    /// it via tmp-and-rename; raw reads of a missing object fail with
    /// `NotFound`, matching the portable path).
    pub path: PathBuf,
    /// Whether writes must `fsync` before renaming into place (the
    /// backend's durability contract, e.g. a checkpoint target).
    pub fsync: bool,
    /// Whether the backend permits `O_DIRECT` opens on this file. A hint:
    /// engines still probe the filesystem once and degrade to buffered
    /// I/O when the open fails.
    pub direct_io: bool,
}

/// Derives a unique tmp-file sibling of `path` (same directory, same full
/// file name plus a `.pid.counter.tmp` suffix).
///
/// Shared by [`DirBackend::write`] and the raw-write paths of the I/O
/// engines so every writer follows the same torn-write-proof protocol:
/// the pid + process-wide counter keep two concurrent writers of the same
/// key on distinct tmp files, and keeping the full file name avoids the
/// historical `with_extension` collision between dotted keys.
pub fn unique_tmp_sibling(path: &Path) -> io::Result<PathBuf> {
    let file_name = path
        .file_name()
        .ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("path {path:?} has no file name"),
            )
        })?
        .to_string_lossy()
        .into_owned();
    Ok(path.with_file_name(format!(
        "{}.{}.{}.tmp",
        file_name,
        std::process::id(),
        // relaxed-ok: uniqueness comes from the atomic RMW itself;
        // no other memory is published through this counter
        TMP_COUNTER.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
    )))
}

// ---------------------------------------------------------------------------
// MemBackend
// ---------------------------------------------------------------------------

/// In-memory backend with optional read/write throttling.
pub struct MemBackend {
    name: String,
    map: Mutex<HashMap<String, Arc<Vec<u8>>>>,
    read_bps: Option<f64>,
    write_bps: Option<f64>,
}

impl MemBackend {
    /// Unthrottled in-memory backend.
    pub fn new(name: impl Into<String>) -> Self {
        MemBackend {
            name: name.into(),
            map: Mutex::new(HashMap::new()),
            read_bps: None,
            write_bps: None,
        }
    }

    /// Throttled backend: reads/writes sleep `bytes / bps`. Use to model a
    /// slow NVMe or PFS in functional tests.
    pub fn throttled(name: impl Into<String>, read_bps: f64, write_bps: f64) -> Self {
        assert!(
            read_bps > 0.0 && write_bps > 0.0,
            "throughput must be positive"
        );
        MemBackend {
            name: name.into(),
            map: Mutex::new(HashMap::new()),
            read_bps: Some(read_bps),
            write_bps: Some(write_bps),
        }
    }

    /// Number of stored objects.
    pub fn object_count(&self) -> usize {
        self.map.lock().len()
    }

    /// Total stored bytes.
    pub fn total_bytes(&self) -> usize {
        self.map.lock().values().map(|v| v.len()).sum()
    }

    fn throttle(bps: Option<f64>, bytes: usize) {
        if let Some(bps) = bps {
            let secs = bytes as f64 / bps;
            if secs > 0.0 {
                std::thread::sleep(Duration::from_secs_f64(secs));
            }
        }
    }
}

impl Backend for MemBackend {
    fn write(&self, key: &str, data: &[u8]) -> io::Result<()> {
        Self::throttle(self.write_bps, data.len());
        self.map
            .lock()
            .insert(key.to_string(), Arc::new(data.to_vec()));
        Ok(())
    }

    fn read(&self, key: &str) -> io::Result<Vec<u8>> {
        let data =
            self.map.lock().get(key).cloned().ok_or_else(|| {
                io::Error::new(io::ErrorKind::NotFound, format!("no object {key}"))
            })?;
        Self::throttle(self.read_bps, data.len());
        Ok(data.as_ref().clone())
    }

    fn read_into(&self, key: &str, dst: &mut [u8]) -> io::Result<usize> {
        // One copy straight from the shared stored value into the
        // caller's buffer — `read` would clone the whole Vec a second
        // time only for the caller to deserialize and drop it.
        let data =
            self.map.lock().get(key).cloned().ok_or_else(|| {
                io::Error::new(io::ErrorKind::NotFound, format!("no object {key}"))
            })?;
        if data.len() > dst.len() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "object {key} is {} bytes but the destination holds {}",
                    data.len(),
                    dst.len()
                ),
            ));
        }
        Self::throttle(self.read_bps, data.len());
        // lint:allow(transitive-panic): in-bounds — the typed-error guard above rejects data.len() > dst.len()
        dst[..data.len()].copy_from_slice(&data);
        Ok(data.len())
    }

    fn delete(&self, key: &str) -> io::Result<()> {
        self.map.lock().remove(key);
        Ok(())
    }

    fn contains(&self, key: &str) -> bool {
        self.map.lock().contains_key(key)
    }

    fn name(&self) -> &str {
        &self.name
    }
}

// ---------------------------------------------------------------------------
// DirBackend
// ---------------------------------------------------------------------------

/// Filesystem-directory backend: each key becomes one file under the root
/// (path separators in keys map to subdirectories).
pub struct DirBackend {
    name: String,
    root: PathBuf,
    fsync: bool,
    direct_io: bool,
}

impl DirBackend {
    /// Creates the backend, creating `root` if needed.
    pub fn new(name: impl Into<String>, root: impl AsRef<Path>) -> io::Result<Self> {
        let root = root.as_ref().to_path_buf();
        std::fs::create_dir_all(&root)?;
        Ok(DirBackend {
            name: name.into(),
            root,
            fsync: false,
            direct_io: true,
        })
    }

    /// Forces an `fsync` after every write — required when the directory
    /// is a checkpoint target that must survive power loss, optional for
    /// offload staging (a crash loses the training run anyway).
    pub fn with_fsync(mut self, fsync: bool) -> Self {
        self.fsync = fsync;
        self
    }

    /// Whether raw I/O engines may try `O_DIRECT` on this directory
    /// (default `true`; engines probe and fall back on filesystems that
    /// reject the flag, so disabling is only needed to *force* buffered
    /// I/O, e.g. to keep a benchmark in page cache).
    pub fn with_direct_io(mut self, direct_io: bool) -> Self {
        self.direct_io = direct_io;
        self
    }

    /// The root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn path_for(&self, key: &str) -> io::Result<PathBuf> {
        // Reject path escapes; keys are engine-generated, so this is a
        // defensive check, not a sanitization layer.
        if key.split('/').any(|c| c == ".." || c.is_empty()) || key.starts_with('/') {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("invalid object key {key:?}"),
            ));
        }
        Ok(self.root.join(key))
    }
}

/// Process-wide counter making concurrent tmp-file names unique.
static TMP_COUNTER: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

impl Backend for DirBackend {
    fn write(&self, key: &str, data: &[u8]) -> io::Result<()> {
        let path = self.path_for(key)?;
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        // Write-then-rename for atomic replacement, as a real offloading
        // engine must not expose torn subgroup state to a concurrent fetch
        // (see `unique_tmp_sibling` for the tmp-naming rationale).
        let tmp = unique_tmp_sibling(&path)?;
        let result = (|| {
            if self.fsync {
                use std::io::Write;
                let mut f = std::fs::File::create(&tmp)?;
                f.write_all(data)?;
                f.sync_all()?;
            } else {
                std::fs::write(&tmp, data)?;
            }
            std::fs::rename(&tmp, &path)
        })();
        if result.is_err() {
            // Best-effort cleanup; the target object (old version) is
            // untouched either way.
            let _ = std::fs::remove_file(&tmp);
        }
        result
    }

    fn read(&self, key: &str) -> io::Result<Vec<u8>> {
        std::fs::read(self.path_for(key)?)
    }

    fn read_into(&self, key: &str, dst: &mut [u8]) -> io::Result<usize> {
        use std::io::Read;
        let mut f = std::fs::File::open(self.path_for(key)?)?;
        let len = f.metadata()?.len();
        if len > dst.len() as u64 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("object {key} is {len} bytes but the destination holds {}", dst.len()),
            ));
        }
        let len = len as usize;
        // lint:allow(transitive-panic): in-bounds — the typed-error guard above rejects len > dst.len()
        f.read_exact(&mut dst[..len])?;
        Ok(len)
    }

    fn delete(&self, key: &str) -> io::Result<()> {
        match std::fs::remove_file(self.path_for(key)?) {
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
            other => other,
        }
    }

    fn contains(&self, key: &str) -> bool {
        self.path_for(key).map(|p| p.exists()).unwrap_or(false)
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn raw_target(&self, key: &str) -> Option<RawFileTarget> {
        let path = self.path_for(key).ok()?;
        Some(RawFileTarget {
            path,
            fsync: self.fsync,
            direct_io: self.direct_io,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_backend_round_trip() {
        let b = MemBackend::new("mem");
        b.write("a/b", &[1, 2, 3]).unwrap();
        assert!(b.contains("a/b"));
        assert_eq!(b.read("a/b").unwrap(), vec![1, 2, 3]);
        b.delete("a/b").unwrap();
        assert!(!b.contains("a/b"));
        assert!(b.read("a/b").is_err());
    }

    #[test]
    fn mem_backend_read_into_fills_prefix() {
        let b = MemBackend::new("mem");
        b.write("k", &[5, 6, 7]).unwrap();
        let mut dst = [0u8; 8];
        assert_eq!(b.read_into("k", &mut dst).unwrap(), 3);
        assert_eq!(&dst[..3], &[5, 6, 7]);
        // Too-small destination is an error, missing key is NotFound.
        let mut tiny = [0u8; 2];
        assert_eq!(
            b.read_into("k", &mut tiny).unwrap_err().kind(),
            io::ErrorKind::InvalidInput
        );
        assert_eq!(
            b.read_into("gone", &mut dst).unwrap_err().kind(),
            io::ErrorKind::NotFound
        );
    }

    /// The default-impl fallback (read + copy) must agree with the
    /// native overrides.
    #[test]
    fn default_read_into_matches_native() {
        struct Wrap(MemBackend);
        impl Backend for Wrap {
            fn write(&self, k: &str, d: &[u8]) -> io::Result<()> {
                self.0.write(k, d)
            }
            fn read(&self, k: &str) -> io::Result<Vec<u8>> {
                self.0.read(k)
            }
            fn delete(&self, k: &str) -> io::Result<()> {
                self.0.delete(k)
            }
            fn contains(&self, k: &str) -> bool {
                self.0.contains(k)
            }
            fn name(&self) -> &str {
                "wrap"
            }
        }
        let w = Wrap(MemBackend::new("mem"));
        w.write("k", &[1, 2, 3, 4]).unwrap();
        let mut a = [9u8; 6];
        let mut b = [9u8; 6];
        assert_eq!(w.read_into("k", &mut a).unwrap(), 4);
        assert_eq!(w.0.read_into("k", &mut b).unwrap(), 4);
        assert_eq!(a[..4], b[..4]);
        let mut tiny = [0u8; 1];
        assert!(w.read_into("k", &mut tiny).is_err());
    }

    #[test]
    fn mem_backend_overwrites() {
        let b = MemBackend::new("mem");
        b.write("k", &[1]).unwrap();
        b.write("k", &[2, 3]).unwrap();
        assert_eq!(b.read("k").unwrap(), vec![2, 3]);
        assert_eq!(b.object_count(), 1);
        assert_eq!(b.total_bytes(), 2);
    }

    #[test]
    fn throttled_backend_is_slower() {
        let fast = MemBackend::new("fast");
        let slow = MemBackend::throttled("slow", 1e6, 1e6); // 1 MB/s
        let data = vec![0u8; 100_000]; // 0.1 s at 1 MB/s

        let t0 = std::time::Instant::now();
        fast.write("k", &data).unwrap();
        let fast_t = t0.elapsed();

        let t0 = std::time::Instant::now();
        slow.write("k", &data).unwrap();
        let slow_t = t0.elapsed();

        assert!(
            slow_t.as_secs_f64() >= 0.08,
            "throttle not applied: {slow_t:?}"
        );
        assert!(slow_t > fast_t);
    }

    fn temp_root(tag: &str) -> PathBuf {
        let p = std::env::temp_dir().join(format!(
            "mlp-storage-test-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&p);
        p
    }

    #[test]
    fn dir_backend_round_trip() {
        let root = temp_root("rt");
        let b = DirBackend::new("dir", &root).unwrap();
        b.write("rank0/sub3", &[9, 8, 7]).unwrap();
        assert!(b.contains("rank0/sub3"));
        assert_eq!(b.read("rank0/sub3").unwrap(), vec![9, 8, 7]);
        b.delete("rank0/sub3").unwrap();
        assert!(!b.contains("rank0/sub3"));
        b.delete("rank0/sub3").unwrap(); // idempotent
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn dir_backend_read_into_round_trips() {
        let root = temp_root("ri");
        let b = DirBackend::new("dir", &root).unwrap();
        b.write("rank0/sub0", &[1, 2, 3, 4, 5]).unwrap();
        let mut dst = [0u8; 16];
        assert_eq!(b.read_into("rank0/sub0", &mut dst).unwrap(), 5);
        assert_eq!(&dst[..5], &[1, 2, 3, 4, 5]);
        let mut tiny = [0u8; 4];
        assert_eq!(
            b.read_into("rank0/sub0", &mut tiny).unwrap_err().kind(),
            io::ErrorKind::InvalidInput
        );
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn dir_backend_fsync_round_trips() {
        let root = temp_root("fsync");
        let b = DirBackend::new("dir", &root).unwrap().with_fsync(true);
        b.write("durable", &[1, 2, 3]).unwrap();
        assert_eq!(b.read("durable").unwrap(), vec![1, 2, 3]);
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn dir_backend_rejects_escaping_keys() {
        let root = temp_root("esc");
        let b = DirBackend::new("dir", &root).unwrap();
        assert!(b.write("../evil", &[1]).is_err());
        assert!(b.write("/abs", &[1]).is_err());
        assert!(b.write("a//b", &[1]).is_err());
        std::fs::remove_dir_all(&root).unwrap();
    }

    /// Regression test for the torn-write bug: `with_extension("tmp")`
    /// mapped the dotted keys `model.bin` and `model.dat` to the *same*
    /// `model.tmp`, and two workers writing one key shared one tmp file —
    /// concurrent writes interleaved into the tmp and then renamed the
    /// corrupt result into place.
    #[test]
    fn dir_backend_concurrent_dotted_key_writes_never_tear() {
        let root = temp_root("torn");
        let b = Arc::new(DirBackend::new("dir", &root).unwrap());
        let keys = ["model.bin", "model.dat"];
        let mut handles = Vec::new();
        // Two writers per key, distinct fill patterns and lengths; every
        // observable object must be exactly one writer's payload.
        for (w, fill) in [(0u8, 0x11u8), (1, 0x22), (2, 0x33), (3, 0x44)] {
            let b = Arc::clone(&b);
            let key = keys[w as usize % 2].to_string();
            handles.push(std::thread::spawn(move || {
                let payload = vec![fill; 4096 + fill as usize];
                for _ in 0..50 {
                    b.write(&key, &payload).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        for key in keys {
            let got = b.read(key).unwrap();
            let fill = got[0];
            assert!(
                matches!(fill, 0x11 | 0x22 | 0x33 | 0x44),
                "unknown fill {fill:#x}"
            );
            assert_eq!(got.len(), 4096 + fill as usize, "torn length for {key}");
            assert!(
                got.iter().all(|&x| x == fill),
                "interleaved payloads in {key}"
            );
        }
        // No tmp files left behind.
        let leftovers: Vec<_> = std::fs::read_dir(&root)
            .unwrap()
            .filter_map(|e| {
                let name = e.unwrap().file_name().to_string_lossy().into_owned();
                name.ends_with(".tmp").then_some(name)
            })
            .collect();
        assert!(leftovers.is_empty(), "stale tmp files: {leftovers:?}");
        std::fs::remove_dir_all(&root).unwrap();
    }

    /// Distinct dotted keys must land in distinct files (they used to
    /// collide on `model.tmp` mid-write).
    #[test]
    fn dir_backend_dotted_keys_are_distinct_objects() {
        let root = temp_root("dotted");
        let b = DirBackend::new("dir", &root).unwrap();
        b.write("model.bin", &[1u8; 8]).unwrap();
        b.write("model.dat", &[2u8; 9]).unwrap();
        assert_eq!(b.read("model.bin").unwrap(), vec![1u8; 8]);
        assert_eq!(b.read("model.dat").unwrap(), vec![2u8; 9]);
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn raw_target_reports_dir_backend_coordinates() {
        let root = temp_root("raw");
        let b = DirBackend::new("dir", &root).unwrap().with_fsync(true);
        let t = b.raw_target("rank0/sub1").expect("file-backed");
        assert_eq!(t.path, root.join("rank0/sub1"));
        assert!(t.fsync);
        assert!(t.direct_io);
        let t = b
            .with_direct_io(false)
            .raw_target("rank0/sub1")
            .expect("file-backed");
        assert!(!t.direct_io);
        // Escaping keys get no raw coordinates either.
        let root2 = temp_root("raw2");
        let b2 = DirBackend::new("dir", &root2).unwrap();
        assert!(b2.raw_target("../evil").is_none());
        // MemBackend (and, via the default impl, every decorator) declines.
        assert!(MemBackend::new("mem").raw_target("k").is_none());
        let _ = std::fs::remove_dir_all(&root);
        let _ = std::fs::remove_dir_all(&root2);
    }

    #[test]
    fn unique_tmp_siblings_never_collide_and_keep_the_directory() {
        let path = Path::new("/x/y/model.bin");
        let a = unique_tmp_sibling(path).unwrap();
        let b = unique_tmp_sibling(path).unwrap();
        assert_ne!(a, b);
        for t in [&a, &b] {
            assert_eq!(t.parent(), path.parent());
            let name = t.file_name().unwrap().to_string_lossy().into_owned();
            assert!(name.starts_with("model.bin."), "{name}");
            assert!(name.ends_with(".tmp"), "{name}");
        }
        assert!(unique_tmp_sibling(Path::new("/")).is_err());
    }

    #[test]
    fn dir_backend_overwrite_is_atomic_replacement() {
        let root = temp_root("atomic");
        let b = DirBackend::new("dir", &root).unwrap();
        b.write("k", &vec![1u8; 1000]).unwrap();
        b.write("k", &vec![2u8; 500]).unwrap();
        let got = b.read("k").unwrap();
        assert_eq!(got.len(), 500);
        assert!(got.iter().all(|&x| x == 2));
        std::fs::remove_dir_all(&root).unwrap();
    }
}
