//! S3-like object-store backend, emulated locally (§3.3 third level).
//!
//! Object stores behave unlike both NVMe and a PFS: every request pays a
//! high first-byte latency, a *single* stream is capped well below the
//! aggregate bandwidth (throughput comes from concurrency), objects are
//! immutable blobs published atomically (there is no rename), large
//! uploads go through multipart PUTs, and partial reads are range GETs.
//! [`ObjectBackend`] emulates exactly those semantics over an in-memory
//! object map so the functional engines and the checkpoint pipeline can
//! be exercised against object-store behaviour without a network:
//!
//! * **First-byte latency** — every GET/PUT sleeps
//!   [`ObjectConfig::first_byte_latency`] before bytes move.
//! * **Per-stream bandwidth** — each request is throttled to
//!   [`ObjectConfig::stream_bps`]; parallel parts/ranges scale throughput
//!   (the concurrency-efficiency curve mirrored by
//!   [`TierSpec::object_store`](crate::spec::object_store) in sim mode).
//! * **Multipart upload** — payloads larger than
//!   [`ObjectConfig::part_size`] upload as concurrent parts and publish
//!   atomically at completion; readers never observe a partial object.
//! * **Range GETs with coalescing** — [`ObjectBackend::read_ranges`]
//!   merges ranges closer than [`ObjectConfig::coalesce_gap`] into one
//!   GET each ([`coalesce_ranges`]), trading wasted gap bytes for saved
//!   request round-trips (the light-speed-io strategy); results are
//!   byte-identical to issuing one GET per range.
//!
//! The backend declines [`Backend::raw_target`] (objects are not files),
//! so kernel-backed I/O engines serve it through the portable path —
//! exactly how a real S3 client library would sit under `mlp-aio`.

use std::collections::HashMap;
use std::io;
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

use mlp_trace::{Counter, Gauge, TraceSink};

use crate::backend::Backend;

/// Behavioural knobs of the emulated object store.
#[derive(Clone, Debug)]
pub struct ObjectConfig {
    /// Latency before the first byte of every request (GET, PUT, part
    /// upload, DELETE). Object stores sit at 10–100 ms; the deterministic
    /// test preset uses zero.
    pub first_byte_latency: Duration,
    /// Per-stream bandwidth cap in bytes/second (`None` = unthrottled).
    /// Aggregate throughput scales with concurrent parts/range GETs, the
    /// defining object-store curve.
    pub stream_bps: Option<f64>,
    /// Concurrent part uploads / range GETs issued per request.
    pub max_concurrency: usize,
    /// Payloads larger than this upload as multipart parts of this size.
    pub part_size: usize,
    /// Ranges whose gap is at most this many bytes are merged into one
    /// GET by [`ObjectBackend::read_ranges`].
    pub coalesce_gap: u64,
}

impl ObjectConfig {
    /// Zero-latency, unthrottled preset for deterministic tests: the
    /// semantics (multipart, coalescing, atomic publish) stay on, only
    /// the timing emulation is disabled.
    pub fn deterministic() -> Self {
        ObjectConfig {
            first_byte_latency: Duration::ZERO,
            stream_bps: None,
            max_concurrency: 4,
            part_size: 8 << 20,
            coalesce_gap: 1 << 20,
        }
    }

    /// An S3-like profile: 30 ms first byte, ~400 MB/s per stream, 16-way
    /// concurrency, 8 MiB parts, 4 MiB coalesce gap. Only for latency/
    /// bandwidth-sensitive experiments — tests should prefer
    /// [`ObjectConfig::deterministic`].
    pub fn emulated() -> Self {
        ObjectConfig {
            first_byte_latency: Duration::from_millis(30),
            stream_bps: Some(400e6),
            max_concurrency: 16,
            part_size: 8 << 20,
            coalesce_gap: 4 << 20,
        }
    }
}

impl Default for ObjectConfig {
    fn default() -> Self {
        ObjectConfig::deterministic()
    }
}

/// Merges byte ranges whose gap is at most `gap` into covering ranges.
///
/// Input ranges are `(offset, len)`; the result is sorted by offset,
/// non-overlapping, and covers every non-empty input range (empty ranges
/// contribute nothing). This is the planning half of coalesced range
/// reads: fewer GETs at the price of fetching up to `gap` wasted bytes
/// between merged neighbours.
pub fn coalesce_ranges(ranges: &[(u64, u64)], gap: u64) -> Vec<(u64, u64)> {
    let mut sorted: Vec<(u64, u64)> = ranges.iter().copied().filter(|&(_, len)| len > 0).collect();
    sorted.sort_unstable();
    let mut out: Vec<(u64, u64)> = Vec::new();
    for (start, len) in sorted {
        let end = start.saturating_add(len);
        match out.last_mut() {
            Some((cur_start, cur_len)) => {
                let cur_end = cur_start.saturating_add(*cur_len);
                if start <= cur_end.saturating_add(gap) {
                    *cur_len = end.max(cur_end) - *cur_start;
                } else {
                    out.push((start, len));
                }
            }
            None => out.push((start, len)),
        }
    }
    out
}

/// The emulated S3-like object store. Cheap to share behind an `Arc`;
/// all methods take `&self`.
pub struct ObjectBackend {
    name: String,
    cfg: ObjectConfig,
    map: Mutex<HashMap<String, Arc<Vec<u8>>>>,
    puts: Counter,
    gets: Counter,
    ranges_requested: Counter,
    range_gets: Counter,
    multipart_parts: Counter,
    multipart_uploads: Counter,
    inflight: Gauge,
}

impl ObjectBackend {
    /// An object store with the deterministic (zero-latency) config and a
    /// disabled trace sink.
    pub fn new(name: impl Into<String>) -> Self {
        Self::with_config(name, ObjectConfig::deterministic())
    }

    /// An object store with explicit behavioural knobs.
    pub fn with_config(name: impl Into<String>, cfg: ObjectConfig) -> Self {
        assert!(cfg.max_concurrency > 0, "concurrency must be positive");
        assert!(cfg.part_size > 0, "part size must be positive");
        Self::build(name.into(), cfg, TraceSink::disabled())
    }

    /// Attaches an observability sink; `object.{name}.*` meters register
    /// against it (no-ops when the sink is disabled). Stored objects are
    /// preserved.
    pub fn with_trace(self, trace: TraceSink) -> Self {
        let ObjectBackend { name, cfg, map, .. } = self;
        let mut b = Self::build(name, cfg, trace);
        b.map = map;
        b
    }

    fn build(name: String, cfg: ObjectConfig, trace: TraceSink) -> Self {
        let c = |meter: &str| trace.counter(&format!("object.{name}.{meter}"));
        ObjectBackend {
            puts: c("puts"),
            gets: c("gets"),
            ranges_requested: c("ranges_requested"),
            range_gets: c("range_gets"),
            multipart_parts: c("multipart_parts"),
            multipart_uploads: c("multipart_uploads"),
            inflight: trace.gauge(&format!("object.{name}.inflight")),
            name,
            cfg,
            map: Mutex::new(HashMap::new()),
        }
    }

    /// The backend's configuration.
    pub fn config(&self) -> &ObjectConfig {
        &self.cfg
    }

    /// Number of stored objects.
    pub fn object_count(&self) -> usize {
        self.map.lock().len()
    }

    /// Total stored bytes.
    pub fn total_bytes(&self) -> u64 {
        self.map.lock().values().map(|v| v.len() as u64).sum()
    }

    fn validate_key(key: &str) -> io::Result<()> {
        if key.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "empty object key",
            ));
        }
        Ok(())
    }

    /// Emulates one request stream moving `bytes`: first-byte latency
    /// plus the per-stream bandwidth share. Never called under the map
    /// lock.
    fn stream_delay(&self, bytes: u64) {
        let mut d = self.cfg.first_byte_latency;
        if let Some(bps) = self.cfg.stream_bps {
            d += Duration::from_secs_f64(bytes as f64 / bps);
        }
        if !d.is_zero() {
            std::thread::sleep(d);
        }
    }

    /// Runs one emulated stream-timing task per item, at most
    /// `max_concurrency` in flight. The items are pure delays (the data
    /// itself lives in the shared map), so "parallel upload" means the
    /// wall-clock cost is `ceil(n / concurrency)` waves, exactly the
    /// object-store concurrency curve.
    fn parallel_streams(&self, sizes: &[u64]) {
        let zero_cost = self.cfg.first_byte_latency.is_zero() && self.cfg.stream_bps.is_none();
        if zero_cost || sizes.is_empty() {
            return;
        }
        self.inflight.add(sizes.len() as u64);
        std::thread::scope(|scope| {
            for wave in sizes.chunks(self.cfg.max_concurrency) {
                let handles: Vec<_> = wave
                    .iter()
                    .map(|&bytes| scope.spawn(move || self.stream_delay(bytes)))
                    .collect();
                for h in handles {
                    // A sleeping closure cannot panic; a poisoned join
                    // here would mean the emulation thread was killed
                    // externally, which no error type can express.
                    // lint:allow(transitive-panic): join of a sleep-only thread
                    let _ = h.join();
                }
            }
        });
        self.inflight.sub(sizes.len() as u64);
    }

    fn stored(&self, key: &str) -> io::Result<Arc<Vec<u8>>> {
        self.map
            .lock()
            .get(key)
            .cloned()
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, format!("no object {key}")))
    }

    /// One range GET: `len` bytes at `offset`. Errors with
    /// [`io::ErrorKind::InvalidInput`] if the range exceeds the object.
    pub fn read_range(&self, key: &str, offset: u64, len: u64) -> io::Result<Vec<u8>> {
        let mut out = self.read_ranges(key, &[(offset, len)])?;
        out.pop().ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidInput,
                "range read produced no output",
            )
        })
    }

    /// Coalesced range GETs: merges ranges closer than the configured
    /// gap ([`coalesce_ranges`]), fetches the merged ranges as parallel
    /// streams, and returns each *requested* range's bytes in input
    /// order — byte-identical to issuing one GET per range.
    pub fn read_ranges(&self, key: &str, ranges: &[(u64, u64)]) -> io::Result<Vec<Vec<u8>>> {
        Self::validate_key(key)?;
        let data = self.stored(key)?;
        let plan = coalesce_ranges(ranges, self.cfg.coalesce_gap);
        self.ranges_requested.add(ranges.len() as u64);
        self.range_gets.add(plan.len() as u64);
        let sizes: Vec<u64> = plan.iter().map(|&(_, len)| len).collect();
        self.parallel_streams(&sizes);
        self.slice_ranges(key, &data, ranges)
    }

    /// Uncoalesced baseline: one GET per requested range. Same result
    /// bytes as [`ObjectBackend::read_ranges`], more request round
    /// trips; the conformance proptest holds the two paths identical.
    pub fn read_ranges_naive(&self, key: &str, ranges: &[(u64, u64)]) -> io::Result<Vec<Vec<u8>>> {
        Self::validate_key(key)?;
        let data = self.stored(key)?;
        self.ranges_requested.add(ranges.len() as u64);
        self.range_gets.add(ranges.len() as u64);
        let sizes: Vec<u64> = ranges.iter().map(|&(_, len)| len).collect();
        self.parallel_streams(&sizes);
        self.slice_ranges(key, &data, ranges)
    }

    fn slice_ranges(
        &self,
        key: &str,
        data: &[u8],
        ranges: &[(u64, u64)],
    ) -> io::Result<Vec<Vec<u8>>> {
        let mut out = Vec::with_capacity(ranges.len());
        for &(offset, len) in ranges {
            let end = offset.checked_add(len).filter(|&e| e <= data.len() as u64);
            let Some(end) = end else {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!(
                        "range {offset}+{len} exceeds object {key} ({} bytes)",
                        data.len()
                    ),
                ));
            };
            // lint:allow(transitive-panic): in-bounds — the typed-error guard above rejects end > data.len()
            out.push(data[offset as usize..end as usize].to_vec());
        }
        Ok(out)
    }
}

impl Backend for ObjectBackend {
    /// A PUT. Payloads above [`ObjectConfig::part_size`] upload as
    /// concurrent multipart parts; in either case the object becomes
    /// visible atomically at completion (object stores have no rename —
    /// the publish *is* the atomicity point), and a failed or dropped
    /// upload leaves the previous version intact.
    fn write(&self, key: &str, data: &[u8]) -> io::Result<()> {
        Self::validate_key(key)?;
        if data.len() > self.cfg.part_size {
            let sizes: Vec<u64> = data
                .chunks(self.cfg.part_size)
                .map(|c| c.len() as u64)
                .collect();
            self.multipart_parts.add(sizes.len() as u64);
            self.multipart_uploads.inc();
            self.parallel_streams(&sizes);
        } else {
            self.puts.inc();
            self.parallel_streams(&[data.len() as u64]);
        }
        // Atomic publish: assembled object swapped in under the lock.
        self.map
            .lock()
            .insert(key.to_string(), Arc::new(data.to_vec()));
        Ok(())
    }

    fn read(&self, key: &str) -> io::Result<Vec<u8>> {
        Self::validate_key(key)?;
        let data = self.stored(key)?;
        self.gets.inc();
        self.parallel_streams(&[data.len() as u64]);
        Ok(data.as_ref().clone())
    }

    fn read_into(&self, key: &str, dst: &mut [u8]) -> io::Result<usize> {
        Self::validate_key(key)?;
        let data = self.stored(key)?;
        if data.len() > dst.len() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "object {key} is {} bytes but the destination holds {}",
                    data.len(),
                    dst.len()
                ),
            ));
        }
        self.gets.inc();
        self.parallel_streams(&[data.len() as u64]);
        // lint:allow(transitive-panic): in-bounds — the typed-error guard above rejects data.len() > dst.len()
        dst[..data.len()].copy_from_slice(&data);
        Ok(data.len())
    }

    /// DELETE — idempotent, as in S3: deleting a missing key succeeds.
    fn delete(&self, key: &str) -> io::Result<()> {
        Self::validate_key(key)?;
        self.parallel_streams(&[0]);
        self.map.lock().remove(key);
        Ok(())
    }

    fn contains(&self, key: &str) -> bool {
        self.map.lock().contains_key(key)
    }

    fn name(&self) -> &str {
        &self.name
    }

    // raw_target: default `None` — objects are not files, so kernel
    // engines stay on the portable path, like a real S3 client.
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn round_trip_and_s3_semantics() {
        let b = ObjectBackend::new("obj");
        b.write("ckpt/a", &[1, 2, 3]).unwrap();
        assert!(b.contains("ckpt/a"));
        assert_eq!(b.read("ckpt/a").unwrap(), vec![1, 2, 3]);
        // Overwrite replaces atomically.
        b.write("ckpt/a", &[9; 5]).unwrap();
        assert_eq!(b.read("ckpt/a").unwrap(), vec![9; 5]);
        // DELETE is idempotent; missing GET is NotFound.
        b.delete("ckpt/a").unwrap();
        b.delete("ckpt/a").unwrap();
        assert_eq!(
            b.read("ckpt/a").unwrap_err().kind(),
            io::ErrorKind::NotFound
        );
        // Empty keys are rejected, objects are not files.
        assert!(b.write("", &[1]).is_err());
        assert!(b.raw_target("ckpt/a").is_none());
    }

    #[test]
    fn read_into_matches_read() {
        let b = ObjectBackend::new("obj");
        b.write("k", &[5, 6, 7]).unwrap();
        let mut dst = [0u8; 8];
        assert_eq!(b.read_into("k", &mut dst).unwrap(), 3);
        assert_eq!(&dst[..3], &[5, 6, 7]);
        let mut tiny = [0u8; 2];
        assert_eq!(
            b.read_into("k", &mut tiny).unwrap_err().kind(),
            io::ErrorKind::InvalidInput
        );
    }

    #[test]
    fn multipart_upload_counts_parts_and_stays_atomic() {
        let cfg = ObjectConfig {
            part_size: 1024,
            ..ObjectConfig::deterministic()
        };
        let b = ObjectBackend::with_config("obj", cfg);
        let payload: Vec<u8> = (0..5000u32).map(|i| (i % 251) as u8).collect();
        b.write("big", &payload).unwrap();
        assert_eq!(b.read("big").unwrap(), payload);
        assert_eq!(b.multipart_uploads.get(), 1);
        assert_eq!(b.multipart_parts.get(), 5); // ceil(5000 / 1024)
        assert_eq!(b.puts.get(), 0);
        // Small payloads stay single PUTs.
        b.write("small", &[1; 10]).unwrap();
        assert_eq!(b.puts.get(), 1);
    }

    #[test]
    fn range_gets_slice_the_object() {
        let b = ObjectBackend::new("obj");
        let payload: Vec<u8> = (0..100u8).collect();
        b.write("k", &payload).unwrap();
        assert_eq!(b.read_range("k", 10, 5).unwrap(), payload[10..15]);
        assert_eq!(b.read_range("k", 0, 0).unwrap(), Vec::<u8>::new());
        assert_eq!(
            b.read_range("k", 90, 20).unwrap_err().kind(),
            io::ErrorKind::InvalidInput
        );
        assert_eq!(
            b.read_range("missing", 0, 1).unwrap_err().kind(),
            io::ErrorKind::NotFound
        );
    }

    #[test]
    fn close_ranges_coalesce_into_fewer_gets() {
        let cfg = ObjectConfig {
            coalesce_gap: 8,
            ..ObjectConfig::deterministic()
        };
        let b = ObjectBackend::with_config("obj", cfg);
        let payload: Vec<u8> = (0..200u8).collect();
        b.write("k", &payload).unwrap();
        // Two close ranges + one far range → 2 GETs for 3 requests.
        let out = b.read_ranges("k", &[(0, 10), (15, 10), (100, 10)]).unwrap();
        assert_eq!(out[0], payload[0..10]);
        assert_eq!(out[1], payload[15..25]);
        assert_eq!(out[2], payload[100..110]);
        assert_eq!(b.ranges_requested.get(), 3);
        assert_eq!(b.range_gets.get(), 2);
    }

    #[test]
    fn coalesce_plan_merges_and_sorts() {
        assert_eq!(
            coalesce_ranges(&[(50, 10), (0, 10), (12, 4)], 2),
            vec![(0, 16), (50, 10)]
        );
        // Overlapping ranges merge regardless of gap.
        assert_eq!(coalesce_ranges(&[(0, 10), (5, 10)], 0), vec![(0, 15)]);
        // Zero-length ranges contribute nothing.
        assert_eq!(coalesce_ranges(&[(3, 0)], 0), Vec::<(u64, u64)>::new());
        assert_eq!(coalesce_ranges(&[], 5), Vec::<(u64, u64)>::new());
    }

    proptest! {
        // The acceptance property: coalesced reads are byte-identical
        // to naive one-GET-per-range reads, for arbitrary (possibly
        // overlapping, unsorted, empty) in-bounds ranges and any gap.
        #[test]
        fn coalesced_reads_match_naive(
            len in 1usize..2048,
            gap in 0u64..512,
            seed_ranges in proptest::collection::vec((0u64..2048, 0u64..512), 0..16),
        ) {
            let payload: Vec<u8> = (0..len).map(|i| (i * 31 % 251) as u8).collect();
            let ranges: Vec<(u64, u64)> = seed_ranges
                .into_iter()
                .map(|(o, l)| {
                    let o = o % len as u64;
                    (o, l.min(len as u64 - o))
                })
                .collect();
            let cfg = ObjectConfig { coalesce_gap: gap, ..ObjectConfig::deterministic() };
            let b = ObjectBackend::with_config("obj", cfg);
            b.write("k", &payload).unwrap();
            let coalesced = b.read_ranges("k", &ranges).unwrap();
            let naive = b.read_ranges_naive("k", &ranges).unwrap();
            prop_assert_eq!(coalesced, naive);
        }

        // The coalescing plan covers every non-empty input range and
        // never merges ranges farther apart than the gap.
        #[test]
        fn coalesce_plan_covers_inputs(
            ranges in proptest::collection::vec((0u64..4096, 0u64..256), 0..24),
            gap in 0u64..1024,
        ) {
            let plan = coalesce_ranges(&ranges, gap);
            // Sorted, non-overlapping, gap-respecting.
            for w in plan.windows(2) {
                prop_assert!(w[0].0 + w[0].1 + gap < w[1].0);
            }
            // Every non-empty input is covered by exactly one plan range.
            for &(o, l) in ranges.iter().filter(|&&(_, l)| l > 0) {
                prop_assert!(
                    plan.iter().any(|&(po, pl)| po <= o && o + l <= po + pl),
                    "range {o}+{l} not covered by {plan:?}"
                );
            }
        }
    }
}
