//! End-to-end integrity for offloaded state.
//!
//! A subgroup fetched from a tier becomes optimizer input with no further
//! validation, so silent corruption (torn write, bit rot on a long-lived
//! PFS object) would poison training undetectably. [`ChecksummedBackend`]
//! wraps any [`Backend`] and frames every object with a from-scratch
//! CRC-32 (IEEE 802.3 polynomial, table-driven), turning corruption into
//! an I/O error at fetch time.

use std::io;
use std::sync::Arc;

use crate::backend::Backend;

/// CRC-32 (IEEE) lookup table, generated at compile time.
const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc_table();

/// Computes the CRC-32 (IEEE 802.3) of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        // lint:allow(transitive-panic): index masked to the 256-entry table
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// Backend decorator adding a 4-byte CRC-32 trailer to every object.
pub struct ChecksummedBackend {
    inner: Arc<dyn Backend>,
    name: String,
}

impl ChecksummedBackend {
    /// Wraps `inner`; all reads verify, all writes append the checksum.
    pub fn new(inner: Arc<dyn Backend>) -> Self {
        let name = format!("{}+crc32", inner.name());
        ChecksummedBackend { inner, name }
    }
}

impl Backend for ChecksummedBackend {
    fn write(&self, key: &str, data: &[u8]) -> io::Result<()> {
        let mut framed = Vec::with_capacity(data.len() + 4);
        framed.extend_from_slice(data);
        framed.extend_from_slice(&crc32(data).to_le_bytes());
        self.inner.write(key, &framed)
    }

    fn read(&self, key: &str) -> io::Result<Vec<u8>> {
        let mut framed = self.inner.read(key)?;
        if framed.len() < 4 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("object {key} shorter than its checksum trailer"),
            ));
        }
        let trailer = framed.split_off(framed.len() - 4);
        // lint:allow(transitive-panic): trailer is exactly 4 bytes — split_off after the length guard
        let stored = u32::from_le_bytes([trailer[0], trailer[1], trailer[2], trailer[3]]);
        let computed = crc32(&framed);
        if stored != computed {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "checksum mismatch on {key}: stored {stored:#010x}, computed {computed:#010x}"
                ),
            ));
        }
        Ok(framed)
    }

    fn delete(&self, key: &str) -> io::Result<()> {
        self.inner.delete(key)
    }

    fn contains(&self, key: &str) -> bool {
        self.inner.contains(key)
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::MemBackend;

    #[test]
    fn crc32_known_vectors() {
        // Standard test vectors for CRC-32/IEEE.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn round_trip_is_transparent() {
        let b = ChecksummedBackend::new(Arc::new(MemBackend::new("mem")));
        b.write("k", &[1, 2, 3, 4, 5]).unwrap();
        assert_eq!(b.read("k").unwrap(), vec![1, 2, 3, 4, 5]);
        assert!(b.contains("k"));
        b.delete("k").unwrap();
        assert!(!b.contains("k"));
    }

    #[test]
    fn empty_payload_round_trips() {
        let b = ChecksummedBackend::new(Arc::new(MemBackend::new("mem")));
        b.write("e", &[]).unwrap();
        assert_eq!(b.read("e").unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn corruption_is_detected() {
        let inner = Arc::new(MemBackend::new("mem"));
        let b = ChecksummedBackend::new(inner.clone());
        b.write("k", &[9u8; 64]).unwrap();

        // Flip one payload bit behind the wrapper's back.
        let mut raw = inner.read("k").unwrap();
        raw[10] ^= 0x01;
        inner.write("k", &raw).unwrap();

        let err = b.read("k").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("checksum mismatch"));
    }

    #[test]
    fn truncated_object_is_rejected() {
        let inner = Arc::new(MemBackend::new("mem"));
        let b = ChecksummedBackend::new(inner.clone());
        inner.write("short", &[1, 2]).unwrap();
        assert_eq!(
            b.read("short").unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );
    }

    #[test]
    fn trailer_corruption_is_detected_too() {
        let inner = Arc::new(MemBackend::new("mem"));
        let b = ChecksummedBackend::new(inner.clone());
        b.write("k", &[7u8; 16]).unwrap();
        let mut raw = inner.read("k").unwrap();
        let n = raw.len();
        raw[n - 1] ^= 0xFF;
        inner.write("k", &raw).unwrap();
        assert!(b.read("k").is_err());
    }
}
