#![warn(missing_docs)]
#![deny(unsafe_code)]

//! Storage-tier substrate.
//!
//! The paper's third-level tier is a set of *alternative storages* —
//! node-local NVMe, a parallel file system, object stores — each with its
//! own read/write bandwidth and behaviour under concurrency (Table 1,
//! §3.1). This crate provides:
//!
//! * [`spec::TierSpec`] — a tier's measured characteristics, with constants
//!   for both paper testbeds.
//! * [`sim_tier::SimTier`] — a virtual-time tier backed by fluid-flow
//!   bandwidth links, used by the performance-reproduction engines.
//! * [`backend`] — real byte-moving backends (in-memory with optional
//!   throttling, filesystem directory), used by the functional engines and
//!   the real async I/O layer.
//! * [`microbench`] — the B_i measurement step of the paper's performance
//!   model (§3.3), for both real backends and simulated tiers.
//! * [`integrity`] — CRC-32 framing that turns silent corruption of
//!   offloaded state into an I/O error at fetch time.
//! * [`fault`] — the transient/permanent error taxonomy shared with the
//!   retry layer (including object-store failure modes: throttling,
//!   failed multipart parts, stale reads), and a deterministic (seeded)
//!   fault-injecting backend decorator for exercising it.
//! * [`clock`] — the injectable [`Sleeper`] behind every deliberate
//!   delay (retry backoff, latency spikes), so deterministic suites run
//!   off a fake instead of the wall clock.
//! * [`health`] — per-tier circuit breakers (closed/open/half-open/
//!   quarantined) over the error taxonomy and latency SLOs; the signal
//!   the quarantine-and-drain path reacts to.
//! * [`object`] — an emulated S3-like object store (first-byte latency,
//!   per-stream bandwidth, multipart upload, coalesced range GETs, no
//!   rename), the third-level tier behind NVMe and the PFS.

pub mod backend;
pub mod clock;
pub mod fault;
pub mod health;
pub mod integrity;
pub mod microbench;
pub mod object;
pub mod sim_tier;
pub mod spec;
pub mod traced;

pub use backend::{unique_tmp_sibling, Backend, DirBackend, MemBackend, RawFileTarget};
pub use clock::{wall_clock, FakeSleeper, Sleeper, WallClockSleeper};
pub use fault::{
    classify, is_transient, object_fault, ErrorClass, FaultConfig, FaultCounts, FaultInjectBackend,
    FaultOps, ObjectFault, ObjectFaultError,
};
pub use health::{
    breaker_rejection, BreakerState, HealthConfig, HealthGatedBackend, TierHealth, TierHealthSet,
};
pub use integrity::ChecksummedBackend;
pub use object::{coalesce_ranges, ObjectBackend, ObjectConfig};
pub use sim_tier::SimTier;
pub use spec::{TierKind, TierSpec};
pub use traced::TracedBackend;
