//! Real-bytes offloading engine over [`mlp_aio`] and storage backends.

use std::collections::{HashMap, VecDeque};
use std::io;
use std::sync::Arc;

use mlp_aio::engine::{AioConfig, AioEngine, OpHandle, ReclaimedWrite};
use mlp_aio::EngineKind;
use mlp_aio::lock::ProcessExclusiveLock;
use mlp_optim::optimizer::{fp16_grad_sq_norm, grad_clip_factor, OptimizerConfig};
use mlp_optim::{SubgroupState, SubgroupStateMut};
use mlp_storage::{Backend, HealthGatedBackend, TierHealth, TracedBackend};
use mlp_tensor::convert;
use mlp_tensor::pool::{PinnedPool, PooledBuffer};
use mlp_trace::{Attrs, Phase};

use crate::checkpoint::{CheckpointManifest, CheckpointStats, SubgroupLocation};
use crate::config::EngineConfig;
use crate::policy::allocation::{allocate_counts_excluding, assign_subgroups};
use crate::policy::cache::FramePlan;
use crate::policy::replan::AdaptivePlanner;
use crate::stats::TierDistribution;

/// Bookkeeping-invariant failure surfaced as a typed error instead of a
/// panic: a poisoned placement/residency table must fail the iteration
/// (callers re-drive or report it) rather than tear down the engine
/// mid-flight with unflushed state in the pipeline.
fn invariant_violation(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}


/// A storage tier shared by all worker engines on a node: the backend, the
/// node-level process-exclusive lock, and the allocation weight (measured
/// bandwidth or configured ratio component).
#[derive(Clone)]
pub struct SharedTier {
    /// The byte store.
    pub backend: Arc<dyn Backend>,
    /// Node-level tier lock ("Process Atomic R/W").
    pub lock: ProcessExclusiveLock,
    /// Eq. 1 weight (bytes/second or ratio component).
    pub weight: f64,
    /// I/O engine configuration for this tier (worker count, queue depth,
    /// transient-error retry policy).
    pub aio: AioConfig,
    /// Optional circuit breaker supervising the tier. When set, every
    /// data op is routed through the breaker gate, completed ops feed it
    /// back, and a quarantined breaker triggers quarantine-and-drain at
    /// the next update boundary (DESIGN.md §15).
    pub health: Option<Arc<TierHealth>>,
}

impl SharedTier {
    /// Creates a shared tier over `backend` with allocation `weight` and
    /// the default I/O configuration.
    pub fn new(backend: Arc<dyn Backend>, weight: f64) -> Self {
        SharedTier {
            backend,
            lock: ProcessExclusiveLock::new(),
            weight,
            aio: AioConfig::default(),
            health: None,
        }
    }

    /// Overrides the tier's I/O configuration (e.g. a tighter or looser
    /// [`mlp_aio::engine::RetryPolicy`] for a flaky tier).
    pub fn with_aio(mut self, aio: AioConfig) -> Self {
        self.aio = aio;
        self
    }

    /// Attaches a circuit breaker supervising this tier.
    pub fn with_health(mut self, health: Arc<TierHealth>) -> Self {
        self.health = Some(health);
        self
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Placement {
    Host,
    Tier(usize),
}

/// A host-resident subgroup. The fused pipeline keeps state in the pooled
/// staging buffer it was fetched into (`[params | momentum | variance]`,
/// mutated in place, flushed from the same buffer); the multi-pass path
/// keeps the deserialized owned form.
enum Resident {
    Owned(SubgroupState),
    Pooled { buf: PooledBuffer, n: usize },
}

impl Resident {
    /// FP32 master parameters (a copy; cold verification/checkpoint path).
    fn params_vec(&self) -> Vec<f32> {
        match self {
            Resident::Owned(st) => st.params.clone(),
            // Parameters are the leading `n` f32 words of the layout.
            Resident::Pooled { buf, n } => buf.as_f32(*n).to_vec(),
        }
    }

    /// Serialized `[params | momentum | variance]` bytes (a copy).
    fn state_bytes(&self) -> Vec<u8> {
        match self {
            Resident::Owned(st) => st.to_buffer().into_bytes(),
            Resident::Pooled { buf, n } => buf.as_bytes()[..n * 12].to_vec(),
        }
    }
}

struct TierRt {
    engine: AioEngine,
    /// The tier's backend *below* the health gate: the salvage path.
    /// Quarantine-and-drain evacuates surviving copies through this even
    /// though the gated engine refuses normal traffic (a write-dead tier
    /// usually still serves reads).
    raw: Arc<dyn Backend>,
    health: Option<Arc<TierHealth>>,
    lock: ProcessExclusiveLock,
    weight: f64,
}

/// Resume state of a failed update phase: which subgroups already carry
/// this iteration's gradient (their updated state survives host-resident
/// or on a tier). A re-driven [`MlpFuncEngine::update`] skips re-applying
/// those and only re-emits their FP16 image, so a retried iteration is
/// bit-identical to one that never failed.
struct IterProgress {
    updated: Vec<bool>,
}

/// Result of one update phase.
#[derive(Debug)]
pub struct UpdateOutcome {
    /// Updated FP16 parameters per subgroup id (what the GPU receives).
    pub fp16_params: Vec<Vec<u16>>,
    /// Subgroups served from the host cache.
    pub cache_hits: usize,
    /// Subgroups fetched from storage.
    pub fetches: usize,
    /// Subgroups flushed to storage.
    pub flushes: usize,
}

/// One worker's functional MLP-Offload engine.
///
/// The control flow mirrors the simulated engine: alternating (or
/// configured) subgroup order, host-frame retention of the order's tail,
/// Eq. 1 deficit-based flush placement, lookahead prefetching through the
/// per-tier asynchronous I/O engines, and delayed FP16→FP32 gradient
/// conversion at update time.
pub struct MlpFuncEngine {
    cfg: EngineConfig,
    optimizer: OptimizerConfig,
    worker_id: usize,
    tiers: Vec<TierRt>,
    plan: FramePlan,
    subgroup_lens: Vec<usize>,
    placement: Vec<Placement>,
    /// Host-resident subgroups in least-recently-updated order (front =
    /// next eviction victim).
    resident: Vec<(usize, Resident)>,
    /// Fixed pool of subgroup-state staging buffers: the fused pipeline's
    /// fetch targets, in-place update workspace, retention frames, and
    /// flush sources are all the same recycled buffers — zero per-subgroup
    /// heap allocation on the hot path.
    state_pool: PinnedPool,
    /// FP16 gradient accumulation buffers (host), one per subgroup.
    accum: mlp_optim::accum::GradAccumulator,
    step: u64,
    iter: u64,
    inv_loss_scale: f32,
    /// Optional global gradient-norm clipping threshold.
    grad_clip_max_norm: Option<f64>,
    /// Set when an update phase failed mid-flight; the next `update` call
    /// re-drives the same iteration instead of starting a new one.
    in_progress: Option<IterProgress>,
    /// Closed-loop §3.3 planner: folds the observed per-tier transfer
    /// rates and retry rates into live bandwidth estimates, re-splits the
    /// flush writes each iteration, and plans the bounded durable-copy
    /// migrations executed at iteration boundaries.
    planner: AdaptivePlanner,
    /// Per-tier cumulative `(bytes_moved, busy_seconds, retries)` counter
    /// snapshot from the tier I/O engines at the last planner feed, so
    /// each iteration records only its own deltas.
    io_snapshot: Vec<(u64, f64, u64)>,
    /// Durable-copy migrations executed so far.
    migrations_done: u64,
    /// Tiers whose breaker has latched [`mlp_storage::BreakerState::Quarantined`]
    /// and that the engine has excluded from placement (mirror of the
    /// planner's exclusion mask, consulted on the flush path).
    quarantined: Vec<bool>,
    /// Durable copies evacuated off quarantined tiers so far.
    drains_done: u64,
}

impl MlpFuncEngine {
    /// Creates the engine and offloads the initial optimizer state across
    /// the tiers per Eq. 1 (retaining nothing: the cache warms up during
    /// training, as in the paper's cold start).
    pub fn new(
        cfg: EngineConfig,
        optimizer: impl Into<OptimizerConfig>,
        shared_tiers: &[SharedTier],
        worker_id: usize,
        initial: Vec<SubgroupState>,
    ) -> io::Result<Self> {
        let optimizer = optimizer.into();
        assert!(!shared_tiers.is_empty(), "need at least one tier");
        if let Some(ratio) = &cfg.tier_ratio {
            assert_eq!(ratio.len(), shared_tiers.len(), "ratio/tier mismatch");
        }
        // With an enabled sink, each tier's I/O engine stamps its spans
        // with the tier index and the backend is wrapped so the storage
        // medium itself contributes tier_read/tier_write spans (the
        // per-tier bandwidth summary's input). Disabled, the construction
        // is untouched — no wrapper, no per-op tracing work.
        let trace = cfg.trace.clone();
        let tiers: Vec<TierRt> = shared_tiers
            .iter()
            .enumerate()
            .map(|(ti, t)| {
                let mut aio = t.aio.clone();
                // A tier that pinned its own engine keeps it; everything
                // left at Auto inherits the config-level choice (which is
                // itself Auto unless the run pinned one for A/B).
                if aio.engine == EngineKind::Auto {
                    aio.engine = cfg.io_engine;
                }
                let raw: Arc<dyn Backend> = if trace.is_enabled() {
                    aio.trace = trace.clone();
                    aio.trace_tier = ti as i32;
                    Arc::new(TracedBackend::new(
                        Arc::clone(&t.backend),
                        ti as i32,
                        trace.clone(),
                    ))
                } else {
                    Arc::clone(&t.backend)
                };
                // The health gate sits above tracing and below the I/O
                // engine: per-attempt accounting (a retry storm trips the
                // breaker faster) and rejections that never touch the
                // medium.
                let gated: Arc<dyn Backend> = match &t.health {
                    Some(h) => Arc::new(HealthGatedBackend::new(
                        Arc::clone(&raw),
                        Arc::clone(h),
                    )),
                    None => Arc::clone(&raw),
                };
                TierRt {
                    engine: AioEngine::new(gated, aio),
                    raw,
                    health: t.health.clone(),
                    lock: t.lock.clone(),
                    weight: t.weight,
                }
            })
            .collect();
        let weights: Vec<f64> = match &cfg.tier_ratio {
            Some(r) => r.clone(),
            None => tiers.iter().map(|t| t.weight).collect(),
        };
        let mut planner =
            AdaptivePlanner::new(weights.clone(), cfg.bandwidth_alpha, cfg.max_migrations_per_iter);
        planner.attach_trace(&cfg.trace);
        let m = initial.len();
        let assignment = assign_subgroups(m, &weights);
        let subgroup_lens: Vec<usize> = initial.iter().map(SubgroupState::len).collect();
        let plan = FramePlan::new(cfg.host_frames, cfg.pipeline_depth, cfg.cache_retention);

        // One staging buffer holds any subgroup's full serialized state.
        // Capacity covers the steady-state held set — retained residents
        // plus the prefetch window — with headroom for the subgroup being
        // updated and flushes still in flight on the I/O workers (which
        // never acquire, so a blocked `acquire` always unblocks when a
        // flush completes).
        let buffer_bytes = subgroup_lens.iter().copied().max().unwrap_or(1).max(1) * 12;
        let pool_capacity = plan.retain_frames + 2 * plan.pipeline_frames + 2;
        let state_pool =
            PinnedPool::new_traced(pool_capacity, buffer_bytes, "state", cfg.trace.clone());

        let ntiers = tiers.len();
        let mut engine = MlpFuncEngine {
            state_pool,
            accum: mlp_optim::accum::GradAccumulator::new(&subgroup_lens),
            plan,
            placement: assignment.iter().copied().map(Placement::Tier).collect(),
            resident: Vec::new(),
            subgroup_lens,
            tiers,
            cfg,
            optimizer,
            worker_id,
            step: 0,
            iter: 0,
            inv_loss_scale: 1.0,
            grad_clip_max_norm: None,
            in_progress: None,
            planner,
            io_snapshot: vec![(0, 0.0, 0); ntiers],
            migrations_done: 0,
            quarantined: vec![false; ntiers],
            drains_done: 0,
        };

        // Initial population: synchronous writes (not part of any measured
        // iteration).
        let mut handles = Vec::new();
        for (idx, state) in initial.iter().enumerate() {
            let tier = assignment[idx];
            let _g = engine.tiers[tier].lock.acquire(engine.worker_id);
            handles.push(
                engine.tiers[tier]
                    .engine
                    .submit_write(&engine.key(idx), state.to_buffer().into_bytes()),
            );
        }
        for h in handles {
            h.wait()?;
        }
        // The population writes above are not part of any measured
        // iteration; reset the counter snapshot so the first planner feed
        // observes only training I/O.
        engine.refresh_io_snapshot();
        Ok(engine)
    }

    /// Sets the inverse loss scale applied to gradients before the update.
    pub fn set_inv_loss_scale(&mut self, inv: f32) {
        self.inv_loss_scale = inv;
    }

    /// Enables global gradient-norm clipping at `max_norm` (the one
    /// cross-subgroup coupling; the norm is computed from the host
    /// FP16 accumulation buffers before the pipeline starts, so subgroup
    /// order independence is preserved).
    pub fn set_grad_clip(&mut self, max_norm: Option<f64>) {
        self.grad_clip_max_norm = max_norm;
    }

    /// The configured optimizer.
    pub fn optimizer(&self) -> &OptimizerConfig {
        &self.optimizer
    }

    /// Number of subgroups.
    pub fn num_subgroups(&self) -> usize {
        self.subgroup_lens.len()
    }

    /// Completed update phases.
    pub fn iterations_done(&self) -> u64 {
        self.iter
    }

    fn key(&self, idx: usize) -> String {
        format!("w{}/sub{}", self.worker_id, idx)
    }

    /// Accumulates one backward micro-step's FP16 gradients (one slice of
    /// bits per subgroup, in subgroup-id order). Gradients stay in host
    /// memory in FP16 — nothing touches storage (the "Skip Gradients"
    /// principle).
    pub fn accumulate_gradients(&mut self, grads: &[Vec<u16>]) {
        assert_eq!(
            grads.len(),
            self.subgroup_lens.len(),
            "gradient set mismatch"
        );
        for (idx, g) in grads.iter().enumerate() {
            self.accum.accumulate(idx, g);
        }
        self.accum.end_micro_step();
    }

    /// Runs one update phase: fetch → delayed-upscale → optimizer step →
    /// flush or retain, in the configured subgroup order with lookahead
    /// prefetching. Returns the new FP16 parameters per subgroup id.
    ///
    /// With [`EngineConfig::fused_update`] (the default) each subgroup is
    /// fetched into a pooled staging buffer, updated in place by the
    /// single-pass fused kernel, and flushed from the same buffer; the
    /// legacy multi-pass path (deserialize → upscale → step → downscale →
    /// re-serialize over owned allocations) is kept for A/B benchmarking.
    ///
    /// # Failure semantics
    ///
    /// An I/O error (after the per-tier retry policy gave up) unwinds the
    /// phase cleanly: every in-flight operation is drained, staging
    /// buffers return to the pool, failed flushes reclaim their payload
    /// back into the host cache, and the error is returned typed — no
    /// panic, no hang. The engine stays re-drivable: calling `update`
    /// again re-drives the *same* iteration (gradients are still
    /// accumulated; subgroups already updated are skipped), producing the
    /// exact result of an iteration that never failed.
    pub fn update(&mut self) -> io::Result<UpdateOutcome> {
        // Quarantine-and-drain runs first, even ahead of a re-drive:
        // evacuation moves bytes, it never mutates them, so a replayed
        // iteration stays bit-identical — and the re-drive may *need*
        // the evacuation, because the failed flush target is often the
        // very tier that just got quarantined.
        self.drain_quarantined()?;
        // Bounded durable-copy migration runs strictly at an iteration
        // boundary: only when starting a fresh iteration (a pending
        // re-drive must replay against unchanged placements to stay
        // bit-identical to an iteration that never failed).
        if self.in_progress.is_none()
            && self.cfg.adaptive_bandwidth
            && self.cfg.max_migrations_per_iter > 0
        {
            self.run_migrations()?;
        }
        let m = self.subgroup_lens.len();
        let order = self.cfg.order.order(self.iter, m);
        let weights: Vec<f64> = match &self.cfg.tier_ratio {
            Some(r) => r.clone(),
            // Closed loop (§3.3): re-split this iteration's flush writes
            // on the live estimates instead of construction-time weights.
            None if self.cfg.adaptive_bandwidth => self.planner.estimates().to_vec(),
            None => self.tiers.iter().map(|t| t.weight).collect(),
        };
        // Eq. 1 proportions over the surviving tiers (a quarantined
        // tier's target is 0, so the deficit picker never selects it);
        // actual flush count depends on cache hits.
        let flush_targets = allocate_counts_excluding(m.max(1), &weights, &self.quarantined);

        // Fresh iteration vs re-drive of a failed one: the step advances
        // once per iteration, and the resume bitmap records which
        // subgroups already carry this step's update.
        let mut progress = match self.in_progress.take() {
            Some(p) => p,
            None => {
                self.step += 1;
                IterProgress {
                    updated: vec![false; m],
                }
            }
        };

        // Global gradient-norm clipping folds into the inverse loss scale
        // for this update. The accumulator is untouched until the phase
        // succeeds, so a re-drive recomputes the identical scale.
        let inv_scale = match self.grad_clip_max_norm {
            None => self.inv_loss_scale,
            Some(max_norm) => {
                let sq: f64 = (0..m)
                    .map(|idx| fp16_grad_sq_norm(self.accum.grads(idx), self.inv_loss_scale))
                    .sum();
                self.inv_loss_scale * grad_clip_factor(sq, max_norm)
            }
        };
        let mut outcome = UpdateOutcome {
            fp16_params: vec![Vec::new(); m],
            cache_hits: 0,
            fetches: 0,
            flushes: 0,
        };

        let phase_start = self.cfg.trace.now_ns();
        let result = if self.cfg.fused_update {
            self.run_update_fused(&order, &flush_targets, inv_scale, &mut outcome, &mut progress)
        } else {
            self.run_update_multipass(&order, &flush_targets, inv_scale, &mut outcome, &mut progress)
        };
        if self.cfg.trace.is_enabled() {
            // The whole update phase as one span; the per-subgroup I/O
            // and kernel spans nest underneath it on the timeline.
            self.cfg.trace.complete_span(
                Phase::Update,
                Attrs::NONE,
                phase_start,
                self.cfg.trace.now_ns(),
            );
        }
        match result {
            Ok(()) => {
                self.accum.reset();
                if self.cfg.adaptive_bandwidth {
                    // Feed the observed per-tier transfer and retry rates
                    // back into the estimator and fold the EMA, closing
                    // the §3.3 loop for the next iteration's split.
                    self.feed_planner();
                    self.planner.end_iteration();
                }
                self.iter += 1;
                Ok(outcome)
            }
            Err(e) => {
                self.in_progress = Some(progress);
                Err(e)
            }
        }
    }

    /// Whether a failed update phase is awaiting a re-drive.
    pub fn update_in_progress(&self) -> bool {
        self.in_progress.is_some()
    }

    /// Eq. 1 deficit-based flush tier choice.
    fn pick_flush_tier(flush_targets: &[usize], flush_done: &[usize]) -> usize {
        (0..flush_targets.len())
            .filter(|&t| flush_targets[t] > 0)
            .min_by(|&a, &b| {
                let fa = flush_done[a] as f64 / flush_targets[a] as f64;
                let fb = flush_done[b] as f64 / flush_targets[b] as f64;
                fa.total_cmp(&fb).then(a.cmp(&b))
            })
            .unwrap_or(0)
    }

    /// A failed flush hands its payload back through
    /// [`OpHandle::wait_flush`]; keep the subgroup host-resident so the
    /// (possibly only) copy of its updated state survives for the
    /// re-driven iteration. Only a backend panic loses the payload — then
    /// the subgroup falls back to its last durable copy and its resume
    /// bit is cleared so the re-drive re-applies the gradient.
    fn reclaim_failed_flush(
        &mut self,
        fidx: usize,
        payload: Option<ReclaimedWrite>,
        progress: &mut IterProgress,
    ) {
        let n = self.subgroup_lens[fidx];
        match payload {
            Some(ReclaimedWrite::Pooled(buf)) => {
                self.placement[fidx] = Placement::Host;
                self.resident.push((fidx, Resident::Pooled { buf, n }));
            }
            Some(ReclaimedWrite::Bytes(bytes)) => {
                let step = if progress.updated[fidx] {
                    self.step
                } else {
                    self.step.saturating_sub(1)
                };
                self.placement[fidx] = Placement::Host;
                self.resident
                    .push((fidx, Resident::Owned(SubgroupState::from_bytes(&bytes, step))));
            }
            None => {
                progress.updated[fidx] = false;
            }
        }
    }

    /// Drains every operation still in flight after a pass, successful or
    /// not: pending reads settle (their staging buffers recycle), and
    /// flushes settle with failed ones reclaiming their payload into the
    /// host cache. Returns the first error encountered, preferring the
    /// pass's own.
    fn drain_inflight(
        &mut self,
        pass: io::Result<()>,
        pending: VecDeque<(usize, Option<OpHandle>)>,
        inflight_flush: HashMap<usize, OpHandle>,
        progress: &mut IterProgress,
    ) -> io::Result<()> {
        let mut first_err = pass.err();
        for (_, handle) in pending {
            if let Some(h) = handle {
                match h.wait_pooled() {
                    Ok(_) => {} // buffer recycles on drop
                    Err(e) => {
                        first_err.get_or_insert(e);
                    }
                }
            }
        }
        for (fidx, h) in inflight_flush {
            if let Err((e, payload)) = h.wait_flush() {
                self.reclaim_failed_flush(fidx, payload, progress);
                first_err.get_or_insert(e);
            }
        }
        match first_err {
            None => Ok(()),
            Some(e) => Err(e),
        }
    }

    /// The fused zero-copy update loop: pooled reads fetch serialized
    /// state straight into recycled staging buffers, the fused kernel
    /// (unscale + moment update + step + FP16 emission, one sweep) mutates
    /// them in place, and retention/flush reuse the very same buffer. The
    /// hot loop performs no per-subgroup heap allocation for state.
    fn run_update_fused(
        &mut self,
        order: &[usize],
        flush_targets: &[usize],
        inv_scale: f32,
        outcome: &mut UpdateOutcome,
        progress: &mut IterProgress,
    ) -> io::Result<()> {
        // Lookahead prefetch window and in-flight flushes live in the
        // driver so that, pass outcome aside, everything submitted is
        // drained before returning — nothing races a re-driven iteration
        // and no staging buffer stays checked out.
        let mut pending: VecDeque<(usize, Option<OpHandle>)> = VecDeque::new();
        let mut inflight_flush: HashMap<usize, OpHandle> = HashMap::new();
        let pass = self.fused_pass(
            order,
            flush_targets,
            inv_scale,
            outcome,
            progress,
            &mut pending,
            &mut inflight_flush,
        );
        self.drain_inflight(pass, pending, inflight_flush, progress)
    }

    #[allow(clippy::too_many_arguments)]
    fn fused_pass(
        &mut self,
        order: &[usize],
        flush_targets: &[usize],
        inv_scale: f32,
        outcome: &mut UpdateOutcome,
        progress: &mut IterProgress,
        pending: &mut VecDeque<(usize, Option<OpHandle>)>,
        inflight_flush: &mut HashMap<usize, OpHandle>,
    ) -> io::Result<()> {
        let m = order.len();
        let retain_capacity = self.plan.retain_frames;
        let depth = self.plan.pipeline_frames;
        let mut flush_done = vec![0usize; self.tiers.len()];
        let mut next_to_submit = 0usize;

        for _ in 0..m {
            // Top up the prefetch window: keep up to `pipeline_depth`
            // reads in flight.
            while next_to_submit < m && pending.len() < depth {
                let idx = order[next_to_submit];
                next_to_submit += 1;
                if self.resident.iter().any(|(i, _)| *i == idx) {
                    pending.push_back((idx, None));
                } else {
                    let Placement::Tier(t) = self.placement[idx] else {
                        return Err(invariant_violation(format!(
                            "subgroup {idx} is neither host-resident nor placed on a tier"
                        )));
                    };
                    // Write-after-evict fence: a read of a subgroup whose
                    // flush is still in flight could overtake the write on
                    // another I/O worker and fetch stale state. On fence
                    // failure the payload is reclaimed host-side and the
                    // iteration unwinds.
                    if let Some(h) = inflight_flush.remove(&idx) {
                        if let Err((e, payload)) = h.wait_flush() {
                            self.reclaim_failed_flush(idx, payload, progress);
                            return Err(e);
                        }
                    }
                    let n = self.subgroup_lens[idx];
                    let buf = self.state_pool.acquire();
                    let handle = {
                        let _g = if self.cfg.tier_exclusive_locking {
                            Some(self.tiers[t].lock.acquire(self.worker_id))
                        } else {
                            None
                        };
                        self.tiers[t]
                            .engine
                            .submit_read_pooled(&self.key(idx), buf, n * 12)
                    };
                    pending.push_back((idx, Some(handle)));
                }
            }

            let Some((idx, handle)) = pending.pop_front() else {
                return Err(invariant_violation(
                    "prefetch window empty with subgroups still unprocessed".into(),
                ));
            };
            let n = self.subgroup_lens[idx];
            let mut res = match handle {
                None => {
                    outcome.cache_hits += 1;
                    let pos = self
                        .resident
                        .iter()
                        .position(|(i, _)| *i == idx)
                        .ok_or_else(|| {
                            invariant_violation(format!(
                                "subgroup {idx} marked host-resident but absent from the residency table"
                            ))
                        })?;
                    self.resident.remove(pos).1
                }
                Some(h) => {
                    outcome.fetches += 1;
                    let (buf, got) = h.wait_pooled()?;
                    if got != n * 12 {
                        return Err(io::Error::new(
                            io::ErrorKind::InvalidData,
                            format!(
                                "short state read for subgroup {idx}: got {got} of {} bytes",
                                n * 12
                            ),
                        ));
                    }
                    Resident::Pooled { buf, n }
                }
            };

            let mut fp16 = vec![0u16; n];
            if progress.updated[idx] {
                // Re-driven iteration: this subgroup already carries the
                // update — re-emit its FP16 image without touching state.
                match &res {
                    Resident::Pooled { buf, n } => convert::downscale_par(buf.as_f32(*n), &mut fp16),
                    Resident::Owned(st) => fp16 = st.fp16_params(),
                }
            } else {
                // Single fused pass over the staging buffer: FP16 unscale
                // + moment update + parameter step + FP16 emission.
                match &mut res {
                    Resident::Pooled { buf, n } => {
                        let mut view = SubgroupStateMut::from_buffer(buf.buffer_mut(), *n);
                        view.apply_update_fused_traced(
                            &self.cfg.trace,
                            idx as i64,
                            &self.optimizer,
                            self.step,
                            self.accum.grads(idx),
                            inv_scale,
                            &mut fp16,
                        );
                    }
                    Resident::Owned(st) => {
                        let mut view = SubgroupStateMut {
                            params: &mut st.params,
                            momentum: &mut st.momentum,
                            variance: &mut st.variance,
                        };
                        view.apply_update_fused_traced(
                            &self.cfg.trace,
                            idx as i64,
                            &self.optimizer,
                            self.step,
                            self.accum.grads(idx),
                            inv_scale,
                            &mut fp16,
                        );
                        st.step = self.step;
                    }
                }
                progress.updated[idx] = true;
            }
            outcome.fp16_params[idx] = fp16;

            // LRU retention; evict least-recently-updated subgroups while
            // over budget (reclaimed flush payloads of a failed iteration
            // can leave more than one excess resident). The evicted
            // buffer is flushed as-is.
            let mut to_flush: Vec<(usize, Resident)> = Vec::new();
            if retain_capacity > 0 {
                self.placement[idx] = Placement::Host;
                self.resident.push((idx, res));
                while self.resident.len() > retain_capacity {
                    to_flush.push(self.resident.remove(0));
                }
            } else {
                to_flush.push((idx, res));
            }
            for (fidx, fres) in to_flush {
                let tier = Self::pick_flush_tier(flush_targets, &flush_done);
                flush_done[tier] += 1;
                self.placement[fidx] = Placement::Tier(tier);
                let handle = {
                    let _g = if self.cfg.tier_exclusive_locking {
                        Some(self.tiers[tier].lock.acquire(self.worker_id))
                    } else {
                        None
                    };
                    match fres {
                        // Flush straight from the staging buffer; it
                        // returns to the pool when the write completes.
                        Resident::Pooled { buf, n } => self.tiers[tier]
                            .engine
                            .submit_write_pooled(&self.key(fidx), buf, n * 12),
                        Resident::Owned(st) => self.tiers[tier]
                            .engine
                            .submit_write(&self.key(fidx), st.to_buffer().into_bytes()),
                    }
                };
                inflight_flush.insert(fidx, handle);
                outcome.flushes += 1;
            }
        }

        // The final flush barrier is the driver's unconditional drain.
        Ok(())
    }

    /// The legacy multi-pass update loop: every fetch deserializes into an
    /// owned [`SubgroupState`], gradients are upscaled into a scratch
    /// FP32 vector, the optimizer sweeps params/moments, parameters are
    /// downscaled in another sweep, and flushes re-serialize. Kept behind
    /// `fused_update: false` for A/B benchmarking.
    fn run_update_multipass(
        &mut self,
        order: &[usize],
        flush_targets: &[usize],
        inv_scale: f32,
        outcome: &mut UpdateOutcome,
        progress: &mut IterProgress,
    ) -> io::Result<()> {
        let mut pending: VecDeque<(usize, Option<OpHandle>)> = VecDeque::new();
        let mut inflight_flush: HashMap<usize, OpHandle> = HashMap::new();
        let pass = self.multipass_pass(
            order,
            flush_targets,
            inv_scale,
            outcome,
            progress,
            &mut pending,
            &mut inflight_flush,
        );
        // Plain-read handles drain through `wait_pooled`-free paths: the
        // generic drain only recycles pooled buffers for pooled ops, and
        // settles every flush.
        self.drain_inflight_multipass(pass, pending, inflight_flush, progress)
    }

    /// Multipass twin of [`MlpFuncEngine::drain_inflight`] (pending
    /// handles are plain reads, not pooled ones).
    fn drain_inflight_multipass(
        &mut self,
        pass: io::Result<()>,
        pending: VecDeque<(usize, Option<OpHandle>)>,
        inflight_flush: HashMap<usize, OpHandle>,
        progress: &mut IterProgress,
    ) -> io::Result<()> {
        let mut first_err = pass.err();
        for (_, handle) in pending {
            if let Some(h) = handle {
                if let Err(e) = h.wait() {
                    first_err.get_or_insert(e);
                }
            }
        }
        for (fidx, h) in inflight_flush {
            if let Err((e, payload)) = h.wait_flush() {
                self.reclaim_failed_flush(fidx, payload, progress);
                first_err.get_or_insert(e);
            }
        }
        match first_err {
            None => Ok(()),
            Some(e) => Err(e),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn multipass_pass(
        &mut self,
        order: &[usize],
        flush_targets: &[usize],
        inv_scale: f32,
        outcome: &mut UpdateOutcome,
        progress: &mut IterProgress,
        pending: &mut VecDeque<(usize, Option<OpHandle>)>,
        inflight_flush: &mut HashMap<usize, OpHandle>,
    ) -> io::Result<()> {
        let m = order.len();
        let retain_capacity = self.plan.retain_frames;
        let depth = self.plan.pipeline_frames;
        let mut flush_done = vec![0usize; self.tiers.len()];
        let mut next_to_submit = 0usize;

        for _ in 0..m {
            // Top up the prefetch window.
            while next_to_submit < m && pending.len() < depth {
                let idx = order[next_to_submit];
                next_to_submit += 1;
                if self.resident.iter().any(|(i, _)| *i == idx) {
                    pending.push_back((idx, None));
                } else {
                    let Placement::Tier(t) = self.placement[idx] else {
                        return Err(invariant_violation(format!(
                            "subgroup {idx} is neither host-resident nor placed on a tier"
                        )));
                    };
                    if let Some(h) = inflight_flush.remove(&idx) {
                        // Write-after-evict fence; reclaim on failure.
                        if let Err((e, payload)) = h.wait_flush() {
                            self.reclaim_failed_flush(idx, payload, progress);
                            return Err(e);
                        }
                    }
                    let handle = {
                        // Tier lock held across submission (the transfer
                        // itself is exercised exclusively in the simulated
                        // engine; see module docs).
                        let _g = if self.cfg.tier_exclusive_locking {
                            Some(self.tiers[t].lock.acquire(self.worker_id))
                        } else {
                            None
                        };
                        self.tiers[t].engine.submit_read(&self.key(idx))
                    };
                    pending.push_back((idx, Some(handle)));
                }
            }

            let Some((idx, handle)) = pending.pop_front() else {
                return Err(invariant_violation(
                    "prefetch window empty with subgroups still unprocessed".into(),
                ));
            };
            let n = self.subgroup_lens[idx];
            // Content step: subgroups already updated by a failed attempt
            // of this iteration carry `self.step`; everything else still
            // carries the previous iteration's state.
            let base_step = if progress.updated[idx] {
                self.step
            } else {
                self.step.saturating_sub(1)
            };
            let mut state = match handle {
                None => {
                    outcome.cache_hits += 1;
                    let pos = self
                        .resident
                        .iter()
                        .position(|(i, _)| *i == idx)
                        .ok_or_else(|| {
                            invariant_violation(format!(
                                "subgroup {idx} marked host-resident but absent from the residency table"
                            ))
                        })?;
                    match self.resident.remove(pos).1 {
                        Resident::Owned(st) => st,
                        Resident::Pooled { buf, n } => {
                            SubgroupState::from_bytes(&buf.as_bytes()[..n * 12], base_step)
                        }
                    }
                }
                Some(h) => {
                    outcome.fetches += 1;
                    let bytes = h.wait()?.ok_or_else(|| {
                        io::Error::new(
                            io::ErrorKind::InvalidData,
                            format!("read of subgroup {idx} returned no payload"),
                        )
                    })?;
                    if bytes.len() != n * 12 {
                        return Err(io::Error::new(
                            io::ErrorKind::InvalidData,
                            format!(
                                "short state read for subgroup {idx}: got {} of {} bytes",
                                bytes.len(),
                                n * 12
                            ),
                        ));
                    }
                    SubgroupState::from_bytes(&bytes, base_step)
                }
            };

            // Delayed in-place mixed-precision conversion + optimizer
            // step; a re-driven iteration skips subgroups that already
            // carry the update and only re-emits their FP16 image.
            if !progress.updated[idx] {
                state.apply_update_fp16_opt(&self.optimizer, self.accum.grads(idx), inv_scale);
                progress.updated[idx] = true;
            }
            outcome.fp16_params[idx] = state.fp16_params();

            // LRU retention (mirrors the simulated engine): keep the
            // updated subgroup resident; evict least-recently-updated
            // ones while over budget (reclaimed flush payloads of a
            // failed iteration can leave more than one excess resident).
            let mut to_flush: Vec<(usize, SubgroupState)> = Vec::new();
            if retain_capacity > 0 {
                self.placement[idx] = Placement::Host;
                self.resident.push((idx, Resident::Owned(state)));
                while self.resident.len() > retain_capacity {
                    let (fidx, fres) = self.resident.remove(0);
                    let fstate = match fres {
                        Resident::Owned(st) => st,
                        Resident::Pooled { buf, n } => {
                            SubgroupState::from_bytes(&buf.as_bytes()[..n * 12], self.step)
                        }
                    };
                    to_flush.push((fidx, fstate));
                }
            } else {
                to_flush.push((idx, state));
            }
            for (fidx, fstate) in to_flush {
                let tier = Self::pick_flush_tier(flush_targets, &flush_done);
                flush_done[tier] += 1;
                self.placement[fidx] = Placement::Tier(tier);
                let handle = {
                    let _g = if self.cfg.tier_exclusive_locking {
                        Some(self.tiers[tier].lock.acquire(self.worker_id))
                    } else {
                        None
                    };
                    self.tiers[tier]
                        .engine
                        .submit_write(&self.key(fidx), fstate.to_buffer().into_bytes())
                };
                inflight_flush.insert(fidx, handle);
                outcome.flushes += 1;
            }
        }

        // The final flush barrier is the driver's unconditional drain.
        Ok(())
    }

    /// Staging-buffer pool statistics for the fused pipeline:
    /// `(lifetime acquisitions, high-water mark, capacity)`. A long
    /// training run shows acquisitions far exceeding the (constant)
    /// high-water mark — the proof that state buffers are recycled rather
    /// than reallocated per subgroup.
    pub fn state_pool_stats(&self) -> (u64, usize, usize) {
        (
            self.state_pool.acquires(),
            self.state_pool.high_water(),
            self.state_pool.capacity(),
        )
    }

    /// Staging buffers currently checked out of the state pool. In steady
    /// state (no update in flight) this equals the number of pooled
    /// host-resident subgroups — anything beyond that is a leak.
    pub fn state_pool_outstanding(&self) -> usize {
        self.state_pool.outstanding()
    }

    /// Host-resident subgroup count.
    pub fn resident_count(&self) -> usize {
        self.resident.len()
    }

    /// Records the I/O each tier performed since the last feed into the
    /// planner's bandwidth estimator: deltas of the cumulative
    /// bytes-moved / busy-seconds / retry counters kept by the tier
    /// [`AioEngine`]s (the real-bytes analogue of the simulated engine's
    /// per-transfer timings).
    fn feed_planner(&mut self) {
        for t in 0..self.tiers.len() {
            let (r, w) = self.tiers[t].engine.bytes_moved();
            let bytes = r + w;
            let busy = self.tiers[t].engine.busy_seconds();
            let retries = self.tiers[t].engine.retries();
            let (pb, pbusy, pr) = self.io_snapshot[t];
            let dbytes = bytes.saturating_sub(pb);
            let dbusy = busy - pbusy;
            let dretries = retries.saturating_sub(pr);
            if dbytes > 0 && dbusy > 0.0 {
                self.planner.record(t, dbytes, dbusy);
            }
            if dretries > 0 {
                self.planner.record_retries(t, dretries);
            }
            self.io_snapshot[t] = (bytes, busy, retries);
        }
    }

    /// Re-bases the planner-feed snapshot on the tiers' current counters,
    /// discarding any I/O performed since the last feed.
    fn refresh_io_snapshot(&mut self) {
        for t in 0..self.tiers.len() {
            let (r, w) = self.tiers[t].engine.bytes_moved();
            self.io_snapshot[t] = (
                r + w,
                self.tiers[t].engine.busy_seconds(),
                self.tiers[t].engine.retries(),
            );
        }
    }

    /// Executes the planner's bounded migration plan: moves up to
    /// `max_migrations_per_iter` durable subgroup copies toward the
    /// current Eq. 1 split. Host-resident subgroups are never touched
    /// (the cache-hit sequence is unchanged) and each step keeps a
    /// durable copy live at every instant: read the source copy, write
    /// the destination and wait for it, and only then retire the source.
    fn run_migrations(&mut self) -> io::Result<()> {
        let placements: Vec<Option<usize>> = self
            .placement
            .iter()
            .map(|p| match p {
                Placement::Tier(t) => Some(*t),
                Placement::Host => None,
            })
            .collect();
        let steps = self.planner.plan_migrations(&placements);
        if self.cfg.trace.is_enabled() {
            self.cfg.trace.instant(
                Phase::Replan,
                Attrs {
                    bytes: steps.len() as u64,
                    ..Attrs::NONE
                },
                self.cfg.trace.now_ns(),
            );
        }
        for step in steps {
            let key = self.key(step.subgroup);
            let started = self.cfg.trace.now_ns();
            let data = {
                let _g = self.tiers[step.from].lock.acquire(self.worker_id);
                self.tiers[step.from]
                    .engine
                    .submit_read(&key)
                    .wait()?
                    .ok_or_else(|| {
                        io::Error::new(
                            io::ErrorKind::InvalidData,
                            format!(
                                "migration read of subgroup {} returned no payload",
                                step.subgroup
                            ),
                        )
                    })?
            };
            let bytes = data.len() as u64;
            {
                let _g = self.tiers[step.to].lock.acquire(self.worker_id);
                self.tiers[step.to].engine.submit_write(&key, data).wait()?;
            }
            // The destination copy is durable; the source is now garbage.
            self.placement[step.subgroup] = Placement::Tier(step.to);
            {
                // A failed delete leaves a stale source copy behind — a
                // space leak, not a correctness problem (the key is never
                // read from the old tier again) — so it does not fail the
                // iteration; the engine's op_errors counter records it.
                let _g = self.tiers[step.from].lock.acquire(self.worker_id);
                let _ = self.tiers[step.from].engine.submit_delete(&key).wait();
            }
            self.migrations_done += 1;
            if self.cfg.trace.is_enabled() {
                self.cfg.trace.complete_span(
                    Phase::Migrate,
                    Attrs {
                        tier: step.to as i32,
                        subgroup: step.subgroup as i64,
                        bytes,
                        ..Attrs::NONE
                    },
                    started,
                    self.cfg.trace.now_ns(),
                );
            }
        }
        Ok(())
    }

    /// Quarantine-and-drain (DESIGN.md §15): notices breakers that have
    /// latched [`mlp_storage::BreakerState::Quarantined`] since the last
    /// check, excludes those tiers from every future placement decision,
    /// and evacuates their durable subgroup copies to the surviving
    /// tiers — read the source copy through the *ungated* backend (the
    /// breaker refuses normal traffic, but salvage reads go under it),
    /// write the destination through its gated engine and wait, update
    /// the placement, and only then best-effort-delete the source.
    ///
    /// Idempotent and resumable: a failure mid-drain leaves the
    /// exclusion latched and the unmoved copies still pointing at the
    /// quarantined tier, so the next call re-plans exactly the
    /// remainder. With every tier quarantined there is no survivor to
    /// drain to and training cannot continue: a typed error, not a
    /// panic.
    fn drain_quarantined(&mut self) -> io::Result<()> {
        for t in 0..self.tiers.len() {
            if !self.quarantined[t]
                && self.tiers[t]
                    .health
                    .as_ref()
                    .is_some_and(|h| h.is_quarantined())
            {
                self.quarantined[t] = true;
                self.planner.exclude_tier(t);
                if self.cfg.trace.is_enabled() {
                    self.cfg.trace.instant(
                        Phase::Quarantine,
                        Attrs {
                            tier: t as i32,
                            ..Attrs::NONE
                        },
                        self.cfg.trace.now_ns(),
                    );
                }
            }
        }
        if !self.quarantined.iter().any(|&q| q) {
            return Ok(());
        }
        if self.planner.surviving_tiers() == 0 {
            return Err(io::Error::new(
                io::ErrorKind::Other,
                "every storage tier is quarantined; no surviving tier to drain to",
            ));
        }
        let placements: Vec<Option<usize>> = self
            .placement
            .iter()
            .map(|p| match p {
                Placement::Tier(t) => Some(*t),
                Placement::Host => None,
            })
            .collect();
        for step in self.planner.plan_drain(&placements) {
            let key = self.key(step.subgroup);
            let started = self.cfg.trace.now_ns();
            let data = {
                let _g = self.tiers[step.from].lock.acquire(self.worker_id);
                self.tiers[step.from].raw.read(&key)?
            };
            let bytes = data.len() as u64;
            {
                let _g = self.tiers[step.to].lock.acquire(self.worker_id);
                self.tiers[step.to].engine.submit_write(&key, data).wait()?;
            }
            // The survivor copy is durable; the source sits on a dead
            // tier and its deletion is purely cosmetic — best-effort.
            self.placement[step.subgroup] = Placement::Tier(step.to);
            {
                let _g = self.tiers[step.from].lock.acquire(self.worker_id);
                let _ = self.tiers[step.from].raw.delete(&key);
            }
            self.drains_done += 1;
            if self.cfg.trace.is_enabled() {
                self.cfg.trace.complete_span(
                    Phase::Drain,
                    Attrs {
                        tier: step.to as i32,
                        subgroup: step.subgroup as i64,
                        bytes,
                        ..Attrs::NONE
                    },
                    started,
                    self.cfg.trace.now_ns(),
                );
            }
        }
        Ok(())
    }

    /// Tier indices currently quarantined (excluded from placement).
    pub fn quarantined_tiers(&self) -> Vec<usize> {
        (0..self.quarantined.len())
            .filter(|&t| self.quarantined[t])
            .collect()
    }

    /// Durable copies evacuated off quarantined tiers so far.
    pub fn drains_done(&self) -> u64 {
        self.drains_done
    }

    /// Live per-tier bandwidth estimates (bytes/second, or the
    /// construction-time weights until the first adaptive fold).
    pub fn bandwidth_estimates(&self) -> Vec<f64> {
        self.planner.estimates().to_vec()
    }

    /// Re-plans the adaptive planner has completed (estimator folds, one
    /// per adaptive iteration).
    pub fn planner_replans(&self) -> u64 {
        self.planner.replans()
    }

    /// Durable-copy migrations executed between tiers so far.
    pub fn migrations_done(&self) -> u64 {
        self.migrations_done
    }

    /// Transient-error re-attempts performed by the retry layer, summed
    /// across all tier I/O engines.
    pub fn io_retries(&self) -> u64 {
        self.tiers.iter().map(|t| t.engine.retries()).sum()
    }

    /// Operations that ultimately failed (after retries), summed across
    /// all tier I/O engines.
    pub fn io_errors(&self) -> u64 {
        self.tiers.iter().map(|t| t.engine.op_errors()).sum()
    }

    /// Gathers the FP32 master parameters of every subgroup (reads through
    /// the storage tiers; used for verification and checkpointing).
    pub fn master_params(&self) -> io::Result<Vec<Vec<f32>>> {
        let mut out = Vec::with_capacity(self.subgroup_lens.len());
        for idx in 0..self.subgroup_lens.len() {
            match self.placement[idx] {
                Placement::Host => out.push(
                    self.resident
                        .iter()
                        .find(|(i, _)| *i == idx)
                        .ok_or_else(|| {
                            invariant_violation(format!(
                                "subgroup {idx} marked host-resident but absent from the residency table"
                            ))
                        })?
                        .1
                        .params_vec(),
                ),
                Placement::Tier(t) => {
                    let bytes = self
                        .tiers[t]
                        .engine
                        .submit_read(&self.key(idx))
                        .wait()?
                        .ok_or_else(|| {
                            io::Error::new(
                                io::ErrorKind::InvalidData,
                                format!("read of subgroup {idx} returned no payload"),
                            )
                        })?;
                    out.push(SubgroupState::from_bytes(&bytes, self.step).params);
                }
            }
        }
        Ok(out)
    }

    /// Writes a checkpoint of this worker's optimizer state to `target`.
    ///
    /// Host-resident subgroups are copied; subgroups already sitting on a
    /// third-level tier are *pre-staged* (§3.3) and only referenced,
    /// unless `materialize` forces a copy (producing a checkpoint that
    /// stays valid after further training rewrites the tiers).
    pub fn checkpoint(
        &self,
        target: &dyn mlp_storage::Backend,
        tag: &str,
        materialize: bool,
    ) -> io::Result<(CheckpointManifest, CheckpointStats)> {
        let mut stats = CheckpointStats::default();
        let mut subgroups = Vec::with_capacity(self.subgroup_lens.len());
        for idx in 0..self.subgroup_lens.len() {
            let key = CheckpointManifest::subgroup_key(tag, self.worker_id, idx);
            match self.placement[idx] {
                Placement::Host => {
                    let bytes = self
                        .resident
                        .iter()
                        .find(|(i, _)| *i == idx)
                        .ok_or_else(|| {
                            invariant_violation(format!(
                                "subgroup {idx} marked host-resident but absent from the residency table"
                            ))
                        })?
                        .1
                        .state_bytes();
                    stats.copied_bytes += bytes.len() as u64;
                    target.write(&key, &bytes)?;
                    subgroups.push(SubgroupLocation::Target { key });
                }
                Placement::Tier(t) => {
                    let tier_key = self.key(idx);
                    if materialize {
                        let bytes = self
                            .tiers[t]
                            .engine
                            .submit_read(&tier_key)
                            .wait()?
                            .ok_or_else(|| {
                                io::Error::new(
                                    io::ErrorKind::InvalidData,
                                    format!("read of subgroup {idx} returned no payload"),
                                )
                            })?;
                        stats.copied_bytes += bytes.len() as u64;
                        target.write(&key, &bytes)?;
                        subgroups.push(SubgroupLocation::Target { key });
                    } else {
                        stats.prestaged_bytes += self.subgroup_lens[idx] as u64 * 12;
                        subgroups.push(SubgroupLocation::Prestaged {
                            tier: t,
                            key: tier_key,
                        });
                    }
                }
            }
        }
        let manifest = CheckpointManifest {
            tag: tag.to_string(),
            worker_id: self.worker_id,
            step: self.step,
            iter: self.iter,
            subgroups,
        };
        target.write(
            &CheckpointManifest::manifest_key(tag, self.worker_id),
            &manifest.to_bytes(),
        )?;
        Ok((manifest, stats))
    }

    /// Starts an asynchronous two-hop checkpoint through `pipe`: host-
    /// resident subgroups are submitted to the staging tier (the writes
    /// run on the I/O engine's workers while training continues),
    /// tier-resident subgroups are referenced in place (§3.3 pre-staging),
    /// and subgroups whose object-store upload is still current at this
    /// optimizer step are skipped entirely (incremental checkpointing).
    ///
    /// The returned [`PendingCheckpoint`] must be settled with
    /// [`CheckpointPipeline::drain`], which trickles the staged bytes to
    /// the object store, verifies, publishes the manifest, and prunes.
    ///
    /// [`CheckpointPipeline::drain`]: crate::checkpoint::CheckpointPipeline::drain
    pub fn start_checkpoint(
        &self,
        pipe: &crate::checkpoint::CheckpointPipeline,
        tag: &str,
    ) -> io::Result<crate::checkpoint::PendingCheckpoint> {
        use crate::checkpoint::{PendingCheckpoint, PendingEntry};
        let started_ns = self.cfg.trace.now_ns();
        let mut entries = Vec::with_capacity(self.subgroup_lens.len());
        let mut stats = CheckpointStats::default();
        for idx in 0..self.subgroup_lens.len() {
            match self.placement[idx] {
                Placement::Host => {
                    if let Some(key) = pipe.reusable_upload(idx, self.step) {
                        stats.prestaged_bytes += self.subgroup_lens[idx] as u64 * 12;
                        entries.push(PendingEntry::Reused { idx, key });
                        continue;
                    }
                    let bytes = self
                        .resident
                        .iter()
                        .find(|(i, _)| *i == idx)
                        .ok_or_else(|| {
                            invariant_violation(format!(
                                "subgroup {idx} marked host-resident but absent from the residency table"
                            ))
                        })?
                        .1
                        .state_bytes();
                    let len = bytes.len() as u64;
                    stats.copied_bytes += len;
                    let staging_key =
                        format!("ckptstage/{tag}/w{}/sub{idx}", self.worker_id);
                    let handle = pipe.submit_flush(&staging_key, bytes);
                    entries.push(PendingEntry::Flushing {
                        idx,
                        staging_key,
                        bytes: len,
                        handle,
                    });
                }
                Placement::Tier(t) => {
                    stats.prestaged_bytes += self.subgroup_lens[idx] as u64 * 12;
                    entries.push(PendingEntry::Prestaged {
                        idx,
                        tier: t,
                        key: self.key(idx),
                    });
                }
            }
        }
        Ok(PendingCheckpoint {
            tag: tag.to_string(),
            worker_id: self.worker_id,
            step: self.step,
            iter: self.iter,
            entries,
            stats,
            started_ns,
        })
    }

    /// Rebuilds a worker engine from a checkpoint written by
    /// [`MlpFuncEngine::checkpoint`]. `shared_tiers` must be the same tier
    /// set (pre-staged references are resolved against it).
    pub fn restore(
        cfg: EngineConfig,
        optimizer: impl Into<OptimizerConfig>,
        shared_tiers: &[SharedTier],
        worker_id: usize,
        target: &dyn mlp_storage::Backend,
        tag: &str,
    ) -> io::Result<Self> {
        let body = target.read(&CheckpointManifest::manifest_key(tag, worker_id))?;
        let manifest = CheckpointManifest::from_bytes(&body)?;
        let mut states = Vec::with_capacity(manifest.subgroups.len());
        for loc in &manifest.subgroups {
            let bytes = match loc {
                SubgroupLocation::Target { key } => target.read(key)?,
                SubgroupLocation::Prestaged { tier, key } => {
                    shared_tiers[*tier].backend.read(key)?
                }
            };
            states.push(SubgroupState::from_bytes(&bytes, manifest.step));
        }
        let mut engine = MlpFuncEngine::new(cfg, optimizer, shared_tiers, worker_id, states)?;
        engine.step = manifest.step;
        engine.iter = manifest.iter;
        Ok(engine)
    }

    /// Where each subgroup's state lives right now (Fig. 10, functional
    /// mode).
    pub fn tier_distribution(&self) -> TierDistribution {
        let mut dist = TierDistribution {
            host_bytes: 0,
            tier_bytes: vec![0; self.tiers.len()],
        };
        for (idx, p) in self.placement.iter().enumerate() {
            let bytes = self.subgroup_lens[idx] as u64 * 12;
            match p {
                Placement::Host => dist.host_bytes += bytes,
                Placement::Tier(t) => dist.tier_bytes[*t] += bytes,
            }
        }
        dist
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlp_optim::AdamConfig;
    use mlp_storage::MemBackend;
    use mlp_tensor::F16;

    fn tiers(n: usize) -> Vec<SharedTier> {
        (0..n)
            .map(|i| {
                SharedTier::new(
                    Arc::new(MemBackend::new(format!("mem{i}"))) as Arc<dyn Backend>,
                    (n - i) as f64, // descending weights, e.g. 2:1
                )
            })
            .collect()
    }

    fn init_states(subgroups: usize, len: usize) -> Vec<SubgroupState> {
        (0..subgroups)
            .map(|s| SubgroupState::new((0..len).map(|i| ((s * len + i) as f32).sin()).collect()))
            .collect()
    }

    fn grads_for(subgroups: usize, len: usize, seed: f32) -> Vec<Vec<u16>> {
        (0..subgroups)
            .map(|s| {
                (0..len)
                    .map(|i| {
                        F16::from_f32(((s * len + i) as f32 * 0.01 + seed).cos() * 0.1).to_bits()
                    })
                    .collect()
            })
            .collect()
    }

    /// Reference: plain in-memory mixed-precision Adam over the same
    /// subgroups.
    fn reference_update(states: &mut [SubgroupState], adam: &AdamConfig, grads: &[Vec<u16>]) {
        for (st, g) in states.iter_mut().zip(grads) {
            st.apply_update_fp16(adam, g, 1.0);
        }
    }

    #[test]
    fn offloaded_training_matches_in_memory_reference() {
        let adam = AdamConfig::default();
        let mut reference = init_states(6, 40);
        let mut engine = MlpFuncEngine::new(
            EngineConfig::mlp_offload().with_host_frames(5),
            adam,
            &tiers(2),
            0,
            init_states(6, 40),
        )
        .unwrap();

        for it in 0..4 {
            let grads = grads_for(6, 40, it as f32);
            reference_update(&mut reference, &adam, &grads);
            engine.accumulate_gradients(&grads);
            engine.update().unwrap();
        }

        let got = engine.master_params().unwrap();
        for (idx, (g, r)) in got.iter().zip(&reference).enumerate() {
            assert_eq!(g, &r.params, "subgroup {idx} diverged");
        }
    }

    #[test]
    fn order_and_caching_do_not_change_results() {
        let adam = AdamConfig::default();
        let mut results = Vec::new();
        for (order, frames) in [
            (crate::policy::ordering::OrderPolicy::Ascending, 3),
            (crate::policy::ordering::OrderPolicy::Alternating, 3),
            (crate::policy::ordering::OrderPolicy::Alternating, 6),
            (crate::policy::ordering::OrderPolicy::Descending, 10),
        ] {
            let mut cfg = EngineConfig::mlp_offload().with_host_frames(frames);
            cfg.order = order;
            let mut engine =
                MlpFuncEngine::new(cfg, adam, &tiers(2), 0, init_states(5, 32)).unwrap();
            for it in 0..3 {
                engine.accumulate_gradients(&grads_for(5, 32, it as f32));
                engine.update().unwrap();
            }
            results.push(engine.master_params().unwrap());
        }
        for r in &results[1..] {
            assert_eq!(r, &results[0], "subgroup order/caching changed the math");
        }
    }

    #[test]
    fn adaptive_migration_is_bit_identical_to_the_static_plan() {
        let adam = AdamConfig::default();
        // Static twin: fixed 2:1 weights, no re-planning.
        let mut fixed = MlpFuncEngine::new(
            EngineConfig::mlp_offload().with_host_frames(3),
            adam,
            &tiers(2),
            0,
            init_states(10, 24),
        )
        .unwrap();
        // Adaptive twin over deliberately mis-weighted tiers (8:1 while
        // both backends are equally fast memory): the live estimates
        // converge toward the real 1:1 split and the planner migrates
        // durable copies off the over-loaded tier.
        let mut shared = tiers(2);
        shared[0].weight = 8.0;
        shared[1].weight = 1.0;
        let trace = mlp_trace::TraceSink::enabled();
        let cfg = EngineConfig::mlp_offload()
            .with_host_frames(3)
            .with_adaptive_replan(4)
            .with_trace(trace.clone());
        let mut adaptive = MlpFuncEngine::new(cfg, adam, &shared, 0, init_states(10, 24)).unwrap();

        for it in 0..6 {
            let grads = grads_for(10, 24, it as f32);
            fixed.accumulate_gradients(&grads);
            adaptive.accumulate_gradients(&grads);
            let a = fixed.update().unwrap();
            let b = adaptive.update().unwrap();
            assert_eq!(
                a.cache_hits, b.cache_hits,
                "iter {it}: migration broke the cache-hit guarantee"
            );
            assert_eq!(a.fp16_params, b.fp16_params, "iter {it}: results diverged");
        }
        assert_eq!(
            fixed.master_params().unwrap(),
            adaptive.master_params().unwrap(),
            "adaptive re-planning changed the math"
        );
        assert!(adaptive.planner_replans() >= 6, "planner never folded");
        assert!(
            adaptive.migrations_done() > 0,
            "skewed initial placement should trigger at least one migration"
        );

        // Planner decisions are exported as trace events: one replan
        // instant per adaptive iteration boundary (bytes = steps
        // scheduled), one migrate span per executed step.
        let events = trace.events();
        assert!(
            events.iter().any(|e| e.phase == Phase::Replan),
            "no replan events exported"
        );
        let migrate_spans = events.iter().filter(|e| e.phase == Phase::Migrate).count();
        assert_eq!(migrate_spans as u64, adaptive.migrations_done());
    }

    #[test]
    fn tier_split_does_not_change_results() {
        let adam = AdamConfig::default();
        let mut results = Vec::new();
        for n_tiers in [1usize, 2, 3] {
            let mut engine = MlpFuncEngine::new(
                EngineConfig::mlp_offload(),
                adam,
                &tiers(n_tiers),
                0,
                init_states(7, 16),
            )
            .unwrap();
            for it in 0..2 {
                engine.accumulate_gradients(&grads_for(7, 16, it as f32));
                engine.update().unwrap();
            }
            results.push(engine.master_params().unwrap());
        }
        for r in &results[1..] {
            assert_eq!(r, &results[0]);
        }
    }

    #[test]
    fn cache_hits_appear_from_second_iteration() {
        let adam = AdamConfig::default();
        let mut engine = MlpFuncEngine::new(
            EngineConfig::mlp_offload().with_host_frames(3 + 2),
            adam,
            &tiers(1),
            0,
            init_states(6, 8),
        )
        .unwrap();
        engine.accumulate_gradients(&grads_for(6, 8, 0.0));
        let o0 = engine.update().unwrap();
        assert_eq!(o0.cache_hits, 0);
        engine.accumulate_gradients(&grads_for(6, 8, 1.0));
        let o1 = engine.update().unwrap();
        assert_eq!(o1.cache_hits, 2, "retained tail reused after order flip");
        assert_eq!(o1.fetches, 4);
    }

    #[test]
    fn gradient_accumulation_sums_micro_steps() {
        let adam = AdamConfig::default();
        // Two micro-steps of g vs one micro-step of 2g must agree (values
        // chosen exactly representable in FP16).
        let g1: Vec<Vec<u16>> = vec![vec![F16::from_f32(0.25).to_bits(); 8]];
        let g2: Vec<Vec<u16>> = vec![vec![F16::from_f32(0.5).to_bits(); 8]];

        let mut a = MlpFuncEngine::new(
            EngineConfig::mlp_offload(),
            adam,
            &tiers(1),
            0,
            init_states(1, 8),
        )
        .unwrap();
        a.accumulate_gradients(&g1);
        a.accumulate_gradients(&g1);
        a.update().unwrap();

        let mut b = MlpFuncEngine::new(
            EngineConfig::mlp_offload(),
            adam,
            &tiers(1),
            0,
            init_states(1, 8),
        )
        .unwrap();
        b.accumulate_gradients(&g2);
        b.update().unwrap();

        assert_eq!(a.master_params().unwrap(), b.master_params().unwrap());
    }

    #[test]
    fn inv_loss_scale_is_applied() {
        let adam = AdamConfig::default();
        let g_scaled: Vec<Vec<u16>> = vec![vec![F16::from_f32(1.0).to_bits(); 4]];
        let g_plain: Vec<Vec<u16>> = vec![vec![F16::from_f32(0.5).to_bits(); 4]];

        let mut a = MlpFuncEngine::new(
            EngineConfig::mlp_offload(),
            adam,
            &tiers(1),
            0,
            init_states(1, 4),
        )
        .unwrap();
        a.set_inv_loss_scale(0.5);
        a.accumulate_gradients(&g_scaled);
        a.update().unwrap();

        let mut b = MlpFuncEngine::new(
            EngineConfig::mlp_offload(),
            adam,
            &tiers(1),
            0,
            init_states(1, 4),
        )
        .unwrap();
        b.accumulate_gradients(&g_plain);
        b.update().unwrap();

        assert_eq!(a.master_params().unwrap(), b.master_params().unwrap());
    }

    #[test]
    fn fused_path_is_bit_identical_to_multi_pass_path() {
        let adam = AdamConfig::default();
        let mut multi_cfg = EngineConfig::mlp_offload().with_host_frames(5);
        multi_cfg.fused_update = false;
        assert!(EngineConfig::mlp_offload().fused_update, "fused is default");
        let mut fused =
            MlpFuncEngine::new(EngineConfig::mlp_offload().with_host_frames(5), adam, &tiers(2), 0, init_states(6, 40))
                .unwrap();
        let mut multi = MlpFuncEngine::new(multi_cfg, adam, &tiers(2), 0, init_states(6, 40)).unwrap();

        for it in 0..4 {
            let grads = grads_for(6, 40, it as f32);
            fused.set_inv_loss_scale(0.25);
            multi.set_inv_loss_scale(0.25);
            fused.accumulate_gradients(&grads);
            multi.accumulate_gradients(&grads);
            let of = fused.update().unwrap();
            let om = multi.update().unwrap();
            assert_eq!(of.fp16_params, om.fp16_params, "iteration {it}");
            assert_eq!(of.cache_hits, om.cache_hits);
            assert_eq!(of.flushes, om.flushes);
        }
        assert_eq!(
            fused.master_params().unwrap(),
            multi.master_params().unwrap()
        );
    }

    #[test]
    fn fused_hot_loop_recycles_state_buffers_without_allocating() {
        let adam = AdamConfig::default();
        let subgroups = 12;
        let iters = 5u64;
        let mut engine = MlpFuncEngine::new(
            EngineConfig::mlp_offload().with_host_frames(5),
            adam,
            &tiers(2),
            0,
            init_states(subgroups, 16),
        )
        .unwrap();
        let mut fetched = 0u64;
        for it in 0..iters {
            engine.accumulate_gradients(&grads_for(subgroups, 16, it as f32));
            fetched += engine.update().unwrap().fetches as u64;
        }
        let (acquires, high_water, capacity) = engine.state_pool_stats();
        // Every fetch acquired a staging buffer from the pool...
        assert_eq!(acquires, fetched, "one pooled acquire per fetch");
        assert!(acquires > capacity as u64, "enough traffic to prove reuse");
        // ...while the working set never exceeded the fixed pool: the hot
        // fetch → fused-update → flush loop allocated zero state buffers.
        assert!(
            high_water <= capacity,
            "high water {high_water} within pool capacity {capacity}"
        );
        // Steady state: only the retained residents still hold buffers.
        assert_eq!(engine.state_pool.outstanding(), engine.resident.len());
    }

    #[test]
    fn checkpoint_round_trips_pooled_residents() {
        let adam = AdamConfig::default();
        let mut engine = MlpFuncEngine::new(
            EngineConfig::mlp_offload().with_host_frames(6),
            adam,
            &tiers(2),
            0,
            init_states(5, 24),
        )
        .unwrap();
        for it in 0..3 {
            engine.accumulate_gradients(&grads_for(5, 24, it as f32));
            engine.update().unwrap();
        }
        let target = MemBackend::new("ckpt");
        engine.checkpoint(&target, "t0", true).unwrap();
        let restored = MlpFuncEngine::restore(
            EngineConfig::mlp_offload().with_host_frames(6),
            adam,
            &tiers(2),
            0,
            &target,
            "t0",
        )
        .unwrap();
        assert_eq!(
            restored.master_params().unwrap(),
            engine.master_params().unwrap()
        );
    }

    #[test]
    fn permanent_fault_unwinds_cleanly_and_update_is_redrivable() {
        use mlp_storage::{classify, ErrorClass, FaultConfig, FaultInjectBackend};
        let adam = AdamConfig::default();
        for fused in [true, false] {
            // Twin engines: a fault-free reference, and one whose every
            // tier is wrapped in a (initially disarmed) fault injector
            // that fails every op permanently once armed.
            let faults: Vec<Arc<FaultInjectBackend>> = (0..2)
                .map(|i| {
                    let inject = FaultInjectBackend::new(
                        Arc::new(MemBackend::new(format!("mem{i}"))) as Arc<dyn Backend>,
                        FaultConfig::permanent(11, 1.0),
                    );
                    inject.set_armed(false);
                    Arc::new(inject)
                })
                .collect();
            let faulty_tiers: Vec<SharedTier> = faults
                .iter()
                .enumerate()
                .map(|(i, f)| {
                    SharedTier::new(Arc::clone(f) as Arc<dyn Backend>, (2 - i) as f64)
                })
                .collect();
            // 6 host frames over pipeline depth 3 → 3 retained residents,
            // so the failure exercises cache hits, fetches, and flush
            // reclamation at once.
            let mut cfg = EngineConfig::mlp_offload().with_host_frames(6);
            cfg.fused_update = fused;
            let mut reference =
                MlpFuncEngine::new(cfg.clone(), adam, &tiers(2), 0, init_states(6, 24)).unwrap();
            let mut engine =
                MlpFuncEngine::new(cfg, adam, &faulty_tiers, 0, init_states(6, 24)).unwrap();

            // Two clean iterations warm the host cache.
            for it in 0..2 {
                let grads = grads_for(6, 24, it as f32);
                reference.accumulate_gradients(&grads);
                reference.update().unwrap();
                engine.accumulate_gradients(&grads);
                engine.update().unwrap();
            }

            // The third iteration runs into permanently failing tiers: it
            // must surface a typed permanent error — no panic, no hang —
            // with every staging buffer back in the pool.
            let grads = grads_for(6, 24, 2.0);
            reference.accumulate_gradients(&grads);
            let want = reference.update().unwrap();
            engine.accumulate_gradients(&grads);
            for f in &faults {
                f.set_armed(true);
            }
            let err = engine.update().unwrap_err();
            assert_eq!(classify(&err), ErrorClass::Permanent, "fused={fused}: {err}");
            assert!(engine.update_in_progress());
            assert!(engine.io_errors() > 0);
            assert_eq!(
                engine.state_pool_outstanding(),
                engine
                    .resident
                    .iter()
                    .filter(|(_, r)| matches!(r, Resident::Pooled { .. }))
                    .count(),
                "fused={fused}: only resident subgroups may hold staging buffers"
            );

            // Heal the tiers and re-drive the same iteration: the result
            // must be bit-identical to the run that never failed.
            for f in &faults {
                f.set_armed(false);
            }
            let got = engine.update().unwrap();
            assert!(!engine.update_in_progress());
            assert_eq!(
                got.fp16_params, want.fp16_params,
                "fused={fused}: re-driven iteration diverged"
            );
            assert_eq!(
                engine.master_params().unwrap(),
                reference.master_params().unwrap(),
                "fused={fused}: master state diverged after re-drive"
            );
        }
    }

    #[test]
    fn quarantined_tier_drains_and_training_completes_without_it() {
        use mlp_storage::{
            classify, ErrorClass, FaultConfig, FaultInjectBackend, FaultOps, HealthConfig,
        };
        let adam = AdamConfig::default();
        for fused in [true, false] {
            // Reference: the identical run over only the surviving tier.
            // A small host cache keeps most durable copies on the tiers,
            // so the dying tier actually holds state worth draining.
            let mut cfg = EngineConfig::mlp_offload().with_host_frames(3);
            cfg.fused_update = fused;
            let mut reference =
                MlpFuncEngine::new(cfg.clone(), adam, &tiers(1), 0, init_states(6, 24)).unwrap();

            // Tier 0 dies for writes mid-run; reads keep working (the
            // salvage path). Hair-trigger breaker: one post-retry
            // failure latches quarantine.
            let inject = Arc::new(FaultInjectBackend::new(
                Arc::new(MemBackend::new("dying")) as Arc<dyn Backend>,
                FaultConfig::permanent(11, 1.0).with_ops(FaultOps::WritesOnly),
            ));
            inject.set_armed(false);
            let health = TierHealth::new("dying", HealthConfig::hair_trigger());
            let victim = SharedTier::new(Arc::clone(&inject) as Arc<dyn Backend>, 2.0)
                .with_health(Arc::clone(&health));
            let survivor = SharedTier::new(
                Arc::new(MemBackend::new("survivor")) as Arc<dyn Backend>,
                1.0,
            );
            let mut engine =
                MlpFuncEngine::new(cfg, adam, &[victim, survivor], 0, init_states(6, 24))
                    .unwrap();

            // Two clean iterations warm the cache and spread durable
            // copies across both tiers; then the tier dies mid-run.
            for it in 0..2 {
                let grads = grads_for(6, 24, it as f32);
                reference.accumulate_gradients(&grads);
                reference.update().unwrap();
                engine.accumulate_gradients(&grads);
                engine.update().unwrap();
            }
            let grads = grads_for(6, 24, 2.0);
            reference.accumulate_gradients(&grads);
            reference.update().unwrap();
            engine.accumulate_gradients(&grads);
            inject.set_armed(true);
            let err = engine.update().unwrap_err();
            assert_eq!(classify(&err), ErrorClass::Permanent, "fused={fused}: {err}");
            assert!(
                health.is_quarantined(),
                "fused={fused}: one write failure must latch the hair-trigger breaker"
            );

            // The re-drive notices the quarantine, evacuates every
            // durable copy off the dead tier, and completes the same
            // iteration — with the tier still failing every write.
            engine.update().unwrap();
            assert_eq!(engine.quarantined_tiers(), vec![0], "fused={fused}");
            assert!(engine.drains_done() > 0, "fused={fused}: nothing was drained");

            // Two more full iterations entirely without the tier.
            for it in 3..5 {
                let grads = grads_for(6, 24, it as f32);
                reference.accumulate_gradients(&grads);
                reference.update().unwrap();
                engine.accumulate_gradients(&grads);
                engine.update().unwrap();
            }
            assert!(
                engine.placement.iter().all(|p| *p != Placement::Tier(0)),
                "fused={fused}: a subgroup still lives on the quarantined tier"
            );
            assert_eq!(
                engine.master_params().unwrap(),
                reference.master_params().unwrap(),
                "fused={fused}: degraded run diverged from the run without the tier"
            );
        }
    }

    #[test]
    fn all_tiers_quarantined_surfaces_a_typed_error() {
        use mlp_storage::{FaultConfig, FaultInjectBackend, HealthConfig};
        let adam = AdamConfig::default();
        let inject = Arc::new(FaultInjectBackend::new(
            Arc::new(MemBackend::new("only")) as Arc<dyn Backend>,
            FaultConfig::permanent(7, 1.0),
        ));
        inject.set_armed(false);
        let health = TierHealth::new("only", HealthConfig::hair_trigger());
        let tier = SharedTier::new(Arc::clone(&inject) as Arc<dyn Backend>, 1.0)
            .with_health(Arc::clone(&health));
        let mut engine = MlpFuncEngine::new(
            EngineConfig::mlp_offload().with_host_frames(2),
            adam,
            &[tier],
            0,
            init_states(3, 8),
        )
        .unwrap();
        engine.accumulate_gradients(&grads_for(3, 8, 0.0));
        inject.set_armed(true);
        // The iteration fails on the dead tier and the breaker latches.
        assert!(engine.update().is_err());
        assert!(health.is_quarantined());
        // With no surviving tier to drain to, every subsequent update is
        // a typed error — never a panic, never a hang.
        let err = engine.update().unwrap_err();
        assert!(err.to_string().contains("quarantined"), "{err}");
        assert!(engine.update().is_err());
    }

    #[test]
    fn distribution_reflects_retention() {
        let adam = AdamConfig::default();
        let mut engine = MlpFuncEngine::new(
            EngineConfig::mlp_offload().with_host_frames(7),
            adam,
            &tiers(2),
            0,
            init_states(10, 4),
        )
        .unwrap();
        assert_eq!(engine.tier_distribution().host_bytes, 0);
        engine.accumulate_gradients(&grads_for(10, 4, 0.0));
        engine.update().unwrap();
        let dist = engine.tier_distribution();
        assert_eq!(dist.host_bytes, 4 * 4 * 12, "4 retained × 4 params × 12 B");
        assert!((dist.fractions().iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }
}
