//! The functional (real-bytes) MLP-Offload engine.
//!
//! Where [`crate::sim`] reproduces the paper's *performance*, this engine
//! validates its *correctness*: actual FP32 optimizer state moves through
//! actual storage backends via the asynchronous I/O layer, gradients
//! really are kept in FP16 host buffers and upscaled lazily, and the final
//! master parameters must be bit-identical to a never-offloaded reference
//! regardless of subgroup order, cache budget, or tier split.

pub mod engine;

pub use engine::{MlpFuncEngine, SharedTier, UpdateOutcome};
