//! Engine configuration, presets, and the ablation ladder.
//!
//! One configurable engine covers the whole spectrum the paper evaluates:
//! with every optimization off and a single tier it behaves like DeepSpeed
//! ZeRO-3 + DeepNVMe (Fig. 6 top); progressively enabling the three design
//! principles and multi-path I/O reproduces the Fig. 14/15 ablation and
//! ends at full MLP-Offload (Fig. 6 bottom).
//!
//! Mirroring §3.5 ("MLP-Offload can be enabled and configured via two JSON
//! key-value pairs in the DeepSpeed runtime configuration"), a config can
//! be parsed from a DeepSpeed-style JSON snippet, e.g.:
//!
//! ```json
//! { "mlp_offload": { "tiers": ["/local/nvme", "/lustre/run"], "ratio": "2:1" } }
//! ```

use mlp_aio::EngineKind;
use mlp_trace::TraceSink;
use serde::{Deserialize, Serialize};

use crate::policy::allocation::parse_ratio;
use crate::policy::ordering::OrderPolicy;

/// Full engine configuration.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct EngineConfig {
    /// Subgroup processing order per iteration.
    pub order: OrderPolicy,
    /// Whether surplus host frames retain subgroups across iterations
    /// ("Enable Caching").
    pub cache_retention: bool,
    /// Total host frames per worker (subgroup-sized pinned buffers). At
    /// least 3 are used for the pipeline regardless.
    pub host_frames: usize,
    /// In-flight pipeline depth (prefetch + update + flush).
    pub pipeline_depth: usize,
    /// Keep FP16 gradients in host memory and upscale during the update
    /// ("Skip Gradients" / delayed in-place conversion). When `false`,
    /// gradients are eagerly upscaled to FP32 during the backward pass and
    /// moved through storage like DeepSpeed does.
    pub skip_gradient_offload: bool,
    /// Node-level tier-exclusive locking ("Process Atomic R/W").
    pub tier_exclusive_locking: bool,
    /// Re-estimate tier bandwidths from observed transfers each iteration
    /// (§3.3 adaptation).
    pub adaptive_bandwidth: bool,
    /// EMA weight of new observations in the bandwidth estimator:
    /// `estimate ← (1-α)·estimate + α·observed` per iteration. A tier's
    /// first observation replaces the microbenchmark prior outright
    /// (warm start); from then on 0.5 reacts within a couple of
    /// iterations without letting a one-iteration blip (a scheduler
    /// hiccup, a single contended transfer) swing the estimate all the
    /// way to the raw observation; 1.0 is memoryless.
    /// Only meaningful with `adaptive_bandwidth`.
    #[serde(default = "default_bandwidth_alpha")]
    pub bandwidth_alpha: f64,
    /// Migration budget of the adaptive planner: how many subgroups'
    /// durable copies one iteration boundary may move between tiers to
    /// chase the live Eq. 1 split. 0 (the default, and both presets)
    /// disables migration — adaptive mode then only re-splits flush
    /// writes, exactly the pre-planner behaviour. Only meaningful with
    /// `adaptive_bandwidth`.
    #[serde(default)]
    pub max_migrations_per_iter: usize,
    /// Optional user-specified tier weights overriding measured bandwidths
    /// (the "2:1" split of §3.5). `None` uses measured bandwidths (Eq. 1).
    pub tier_ratio: Option<Vec<f64>>,
    /// Run the update phase through the single-pass fused kernel over a
    /// pooled zero-copy state buffer (unscale + moment update + step + FP16
    /// emission in one sweep). When `false`, the engine uses the legacy
    /// multi-pass path (upscale, step, downscale as separate sweeps over
    /// owned allocations) — kept for A/B benchmarking. This is an
    /// implementation-level optimization, not one of the paper's ablation
    /// principles, so both presets enable it.
    #[serde(default = "default_fused_update")]
    pub fused_update: bool,
    /// Let optimizer-state flushes started during the update phase drain
    /// lazily into the *next* iteration's forward/backward window instead
    /// of being awaited before the update returns (§3.4's lazy flushing,
    /// made visible on the timeline). Off in both presets so the
    /// reproduction numbers are unchanged; the `repro --trace` driver
    /// enables it for the MLP-Offload engine to demonstrate the Figure 5
    /// flush/backward overlap.
    #[serde(default)]
    pub deferred_flush_drain: bool,
    /// Observability sink (disabled by default = zero cost). Not part of
    /// the serialized configuration: a trace is a per-run artifact, not a
    /// preset. Disabled sinks compare equal, so config equality between
    /// presets still holds.
    #[serde(skip)]
    pub trace: TraceSink,
    /// I/O engine backend for every tier whose [`AioConfig`] leaves the
    /// choice at `Auto` (see [`EngineKind`] and the capability matrix in
    /// `mlp-aio`). Not serialized: like the trace sink, the engine is a
    /// property of the host the run lands on, not of the preset — `Auto`
    /// probes the kernel and filesystem at engine construction.
    ///
    /// [`AioConfig`]: mlp_aio::AioConfig
    #[serde(skip)]
    pub io_engine: EngineKind,
}

fn default_fused_update() -> bool {
    true
}

fn default_bandwidth_alpha() -> f64 {
    0.5
}

impl EngineConfig {
    /// The DeepSpeed ZeRO-3 + DeepNVMe baseline: sequential order, cache
    /// thrashing, eager FP32 gradient offload, uncoordinated tier access.
    /// Combine with a single (NVMe) tier.
    pub fn deepspeed_zero3() -> Self {
        EngineConfig {
            order: OrderPolicy::Ascending,
            cache_retention: false,
            host_frames: 3,
            pipeline_depth: 3,
            skip_gradient_offload: false,
            tier_exclusive_locking: false,
            adaptive_bandwidth: false,
            bandwidth_alpha: default_bandwidth_alpha(),
            max_migrations_per_iter: 0,
            tier_ratio: None,
            fused_update: true,
            deferred_flush_drain: false,
            trace: TraceSink::disabled(),
            io_engine: EngineKind::Auto,
        }
    }

    /// Full MLP-Offload: all four design principles on.
    pub fn mlp_offload() -> Self {
        EngineConfig {
            order: OrderPolicy::Alternating,
            cache_retention: true,
            host_frames: 3,
            pipeline_depth: 3,
            skip_gradient_offload: true,
            tier_exclusive_locking: true,
            adaptive_bandwidth: true,
            bandwidth_alpha: default_bandwidth_alpha(),
            max_migrations_per_iter: 0,
            tier_ratio: None,
            fused_update: true,
            deferred_flush_drain: false,
            trace: TraceSink::disabled(),
            io_engine: EngineKind::Auto,
        }
    }

    /// Attaches an observability sink (see [`mlp_trace`]); every engine
    /// built from this config records its phases and I/O through it.
    pub fn with_trace(mut self, trace: TraceSink) -> Self {
        self.trace = trace;
        self
    }

    /// Sets the host frame budget (from the memory estimator).
    pub fn with_host_frames(mut self, frames: usize) -> Self {
        self.host_frames = frames;
        self
    }

    /// Sets an explicit tier ratio (e.g. from `"2:1"`).
    pub fn with_tier_ratio(mut self, ratio: Vec<f64>) -> Self {
        self.tier_ratio = Some(ratio);
        self
    }

    /// Enables full adaptive re-planning: live bandwidth estimation plus
    /// a per-iteration-boundary budget of durable-copy migrations between
    /// tiers (0 keeps migration off; flush writes still re-split on the
    /// live estimates whenever `adaptive_bandwidth` is on).
    pub fn with_adaptive_replan(mut self, max_migrations_per_iter: usize) -> Self {
        self.adaptive_bandwidth = true;
        self.max_migrations_per_iter = max_migrations_per_iter;
        self
    }

    /// Pins the I/O engine backend for every tier that does not pin its
    /// own (tiers whose `AioConfig.engine` is already non-`Auto` keep
    /// their choice). The default, [`EngineKind::Auto`], probes the host
    /// at construction and is the right answer outside A/B comparisons.
    pub fn with_io_engine(mut self, kind: EngineKind) -> Self {
        self.io_engine = kind;
        self
    }

    /// Parses the §3.5 DeepSpeed-style JSON configuration. Returns the
    /// engine config plus the tier directory list.
    pub fn from_deepspeed_json(json: &str) -> Result<(Self, Vec<String>), String> {
        #[derive(Deserialize)]
        struct Root {
            mlp_offload: Section,
        }
        #[derive(Deserialize)]
        struct Section {
            tiers: Vec<String>,
            #[serde(default)]
            ratio: Option<String>,
        }
        let root: Root =
            serde_json::from_str(json).map_err(|e| format!("bad mlp_offload config: {e}"))?;
        if root.mlp_offload.tiers.is_empty() {
            return Err("mlp_offload.tiers must list at least one directory".into());
        }
        let mut cfg = EngineConfig::mlp_offload();
        if let Some(r) = &root.mlp_offload.ratio {
            let weights = parse_ratio(r)?;
            if weights.len() != root.mlp_offload.tiers.len() {
                return Err(format!(
                    "ratio {r:?} has {} components for {} tiers",
                    weights.len(),
                    root.mlp_offload.tiers.len()
                ));
            }
            cfg.tier_ratio = Some(weights);
        }
        Ok((cfg, root.mlp_offload.tiers))
    }
}

/// The Fig. 14/15 progressive-activation ladder. Each stage includes all
/// previous ones.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum AblationStage {
    /// DeepSpeed ZeRO-3 baseline.
    Baseline,
    /// + cache-friendly subgroup reordering.
    EnableCaching,
    /// + delayed in-place mixed-precision gradient conversion.
    SkipGradients,
    /// + tier-exclusive concurrency control (= full MLP-Offload when
    ///   multi-path tiers are configured).
    ProcessAtomicRw,
}

impl AblationStage {
    /// All stages in activation order.
    pub fn ladder() -> [AblationStage; 4] {
        [
            AblationStage::Baseline,
            AblationStage::EnableCaching,
            AblationStage::SkipGradients,
            AblationStage::ProcessAtomicRw,
        ]
    }

    /// The engine configuration with this stage's optimizations active.
    pub fn config(self) -> EngineConfig {
        let mut cfg = EngineConfig::deepspeed_zero3();
        if self >= AblationStage::EnableCaching {
            cfg.order = OrderPolicy::Alternating;
            cfg.cache_retention = true;
        }
        if self >= AblationStage::SkipGradients {
            cfg.skip_gradient_offload = true;
        }
        if self >= AblationStage::ProcessAtomicRw {
            cfg.tier_exclusive_locking = true;
            cfg.adaptive_bandwidth = true;
        }
        cfg
    }

    /// Display label matching the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            AblationStage::Baseline => "DeepSpeed ZeRO-3",
            AblationStage::EnableCaching => "+ Enable Caching",
            AblationStage::SkipGradients => "+ Skip Gradients",
            AblationStage::ProcessAtomicRw => "+ Process Atomic R/W",
        }
    }
}

impl PartialOrd for AblationStage {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for AblationStage {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (*self as u8).cmp(&(*other as u8))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_differ_in_all_four_principles() {
        let ds = EngineConfig::deepspeed_zero3();
        let mlp = EngineConfig::mlp_offload();
        assert_ne!(ds.order, mlp.order);
        assert!(!ds.cache_retention && mlp.cache_retention);
        assert!(!ds.skip_gradient_offload && mlp.skip_gradient_offload);
        assert!(!ds.tier_exclusive_locking && mlp.tier_exclusive_locking);
    }

    #[test]
    fn ablation_ladder_is_monotone() {
        let ladder = AblationStage::ladder();
        for w in ladder.windows(2) {
            assert!(w[0] < w[1]);
        }
        assert_eq!(ladder[0].config(), EngineConfig::deepspeed_zero3());
        let top = ladder[3].config();
        let mlp = EngineConfig::mlp_offload();
        assert_eq!(top, mlp);
    }

    #[test]
    fn json_config_parses_tiers_and_ratio() {
        let json =
            r#"{ "mlp_offload": { "tiers": ["/local/nvme", "/lustre/run"], "ratio": "2:1" } }"#;
        let (cfg, tiers) = EngineConfig::from_deepspeed_json(json).unwrap();
        assert_eq!(tiers, vec!["/local/nvme", "/lustre/run"]);
        assert_eq!(cfg.tier_ratio, Some(vec![2.0, 1.0]));
        assert!(cfg.skip_gradient_offload);
    }

    #[test]
    fn json_config_without_ratio_uses_measured_bandwidths() {
        let json = r#"{ "mlp_offload": { "tiers": ["/a"] } }"#;
        let (cfg, tiers) = EngineConfig::from_deepspeed_json(json).unwrap();
        assert_eq!(tiers.len(), 1);
        assert_eq!(cfg.tier_ratio, None);
    }

    #[test]
    fn json_config_rejects_mismatched_ratio() {
        let json = r#"{ "mlp_offload": { "tiers": ["/a", "/b", "/c"], "ratio": "2:1" } }"#;
        assert!(EngineConfig::from_deepspeed_json(json).is_err());
        let json = r#"{ "mlp_offload": { "tiers": [] } }"#;
        assert!(EngineConfig::from_deepspeed_json(json).is_err());
    }
}
