//! Host-cache frame planning.
//!
//! The host memory left after the runtime's reservations holds a fixed
//! number of subgroup *frames*. A minimum of [`MIN_PIPELINE_FRAMES`] keeps
//! the fetch → update → flush pipeline flowing (§4.1: "the previous
//! subgroup being lazily flushed, the current being updated, and the next
//! being prefetched"); everything above that can retain subgroups across
//! iterations for the cache-friendly reordering win.

/// Pipeline minimum: one flushing + one updating + one prefetching frame.
pub const MIN_PIPELINE_FRAMES: usize = 3;

/// How a worker's host frames are split between the pipeline working set
/// and the cross-iteration cache.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FramePlan {
    /// Total frames available to this worker.
    pub total_frames: usize,
    /// Frames reserved for in-flight pipeline stages.
    pub pipeline_frames: usize,
    /// Frames retaining subgroups across iterations.
    pub retain_frames: usize,
}

impl FramePlan {
    /// Plans `total_frames` (clamped up to the pipeline minimum) with
    /// `pipeline_depth` working frames. With caching disabled pass
    /// `retain = false` to devote everything to the pipeline.
    pub fn new(total_frames: usize, pipeline_depth: usize, retain: bool) -> Self {
        let pipeline_frames = pipeline_depth.max(MIN_PIPELINE_FRAMES);
        let total_frames = total_frames.max(pipeline_frames);
        let retain_frames = if retain {
            total_frames - pipeline_frames
        } else {
            0
        };
        FramePlan {
            total_frames,
            pipeline_frames,
            retain_frames,
        }
    }

    /// Which positions of an `m`-subgroup processing order are retained in
    /// host memory at iteration end: the final `retain_frames` positions
    /// (the tail, which the alternating order visits first next time).
    pub fn retained_positions(&self, m: usize) -> std::ops::Range<usize> {
        let keep = self.retain_frames.min(m);
        (m - keep)..m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimum_three_frames_enforced() {
        let plan = FramePlan::new(0, 0, true);
        assert_eq!(plan.pipeline_frames, 3);
        assert_eq!(plan.total_frames, 3);
        assert_eq!(plan.retain_frames, 0);
    }

    #[test]
    fn surplus_frames_become_cache() {
        let plan = FramePlan::new(10, 3, true);
        assert_eq!(plan.retain_frames, 7);
        assert_eq!(plan.retained_positions(100), 93..100);
    }

    #[test]
    fn retain_disabled_gives_zero_cache() {
        let plan = FramePlan::new(10, 3, false);
        assert_eq!(plan.retain_frames, 0);
        assert!(plan.retained_positions(100).is_empty());
    }

    #[test]
    fn small_shards_retain_at_most_everything() {
        let plan = FramePlan::new(50, 3, true);
        assert_eq!(plan.retained_positions(5), 0..5);
    }
}
