//! Online adaptive re-planning: the closed loop over §3.3.
//!
//! [`allocate_counts`] gives the Eq. 1 split for a *given* set of tier
//! bandwidths; the [`BandwidthEstimator`] tracks what those bandwidths
//! *actually are* from observed transfers. The [`AdaptivePlanner`] closes
//! the loop: every iteration it folds the observations, re-splits flush
//! writes across paths on the live estimates, and plans a bounded number
//! of durable-copy migrations so the *fetch* side of the pipeline also
//! converges to the new split (flushes re-place data one iteration after
//! an estimate shift; migrations move the copies that would otherwise
//! keep being fetched from a degraded path).
//!
//! Invariants the plan preserves by construction:
//!
//! * **Cache-hit guarantee** — only tier-resident durable copies are
//!   candidates; host-retained subgroups (the `OrderPolicy::Alternating`
//!   tail that becomes the next iteration's head) are never touched, so
//!   the residency set — and therefore the hit sequence — is unchanged.
//! * **Re-drive semantics** — a migration moves bytes, never mutates
//!   them, and engines only apply plans at iteration boundaries with no
//!   update in progress, so a re-driven iteration reads exactly the bytes
//!   the failed attempt would have read.
//! * **Determinism** — given the same placements and estimates the plan
//!   is identical: donors/receivers and the subgroups moved between them
//!   are selected with index-order tie-breaks, and the underlying
//!   rounding ([`allocate_counts`]) is itself deterministic under ties.

use mlp_trace::{Counter, Gauge, TraceSink};

use crate::policy::allocation::{allocate_counts_excluding, BandwidthEstimator};

/// One planned durable-copy move: subgroup `subgroup` relocates from tier
/// `from` to tier `to`. The engine executes it as read(from) → write(to)
/// → delete(from), in that order, so a durable copy exists at every step.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MigrationStep {
    /// Subgroup whose durable copy moves.
    pub subgroup: usize,
    /// Source tier index.
    pub from: usize,
    /// Destination tier index.
    pub to: usize,
}

/// Observability handles for planner decisions. Detached (free) until
/// [`AdaptivePlanner::attach_trace`] binds them to an enabled sink.
#[derive(Clone)]
struct PlannerMetrics {
    replans: Counter,
    migrations: Counter,
    drains: Counter,
    estimates: Vec<Gauge>,
}

impl PlannerMetrics {
    fn detached(ntiers: usize) -> Self {
        PlannerMetrics {
            replans: Counter::detached(),
            migrations: Counter::detached(),
            drains: Counter::detached(),
            estimates: (0..ntiers).map(|_| Gauge::detached()).collect(),
        }
    }
}

/// The mid-training re-planner: owns the bandwidth estimator, publishes
/// its decisions as `planner.*` metrics, and computes bounded migration
/// plans toward the current Eq. 1 split.
#[derive(Clone)]
pub struct AdaptivePlanner {
    estimator: BandwidthEstimator,
    max_migrations_per_iter: usize,
    metrics: PlannerMetrics,
    replans: u64,
    migrations_planned: u64,
    /// Tiers removed from planning (quarantined breakers, DESIGN.md §15):
    /// they receive no flush/migration placements and their durable
    /// copies are evacuated by [`AdaptivePlanner::plan_drain`].
    excluded: Vec<bool>,
}

impl std::fmt::Debug for AdaptivePlanner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AdaptivePlanner")
            .field("estimator", &self.estimator)
            .field("max_migrations_per_iter", &self.max_migrations_per_iter)
            .field("replans", &self.replans)
            .field("migrations_planned", &self.migrations_planned)
            .field("excluded", &self.excluded)
            .finish()
    }
}

impl AdaptivePlanner {
    /// Builds a planner starting from microbenchmark `initial` bandwidths.
    /// `alpha` is the estimator's EMA weight; `max_migrations_per_iter`
    /// bounds how many durable copies one iteration boundary may move
    /// (0 disables migration — the planner still re-splits flushes).
    pub fn new(initial: Vec<f64>, alpha: f64, max_migrations_per_iter: usize) -> Self {
        let ntiers = initial.len();
        AdaptivePlanner {
            estimator: BandwidthEstimator::new(initial, alpha),
            max_migrations_per_iter,
            metrics: PlannerMetrics::detached(ntiers),
            replans: 0,
            migrations_planned: 0,
            excluded: vec![false; ntiers],
        }
    }

    /// Binds the planner's decision metrics (`planner.replans`,
    /// `planner.migrations`, `planner.estimate.{tier}`,
    /// `planner.dropped_observations`) to `trace`'s registry. A no-op for
    /// disabled sinks (the handles stay detached and cost nothing).
    pub fn attach_trace(&mut self, trace: &TraceSink) {
        if !trace.is_enabled() {
            return;
        }
        self.metrics = PlannerMetrics {
            replans: trace.counter("planner.replans"),
            migrations: trace.counter("planner.migrations"),
            drains: trace.counter("planner.drains"),
            estimates: (0..self.estimator.num_tiers())
                .map(|t| trace.gauge(&format!("planner.estimate.{t}")))
                .collect(),
        };
        self.estimator
            .attach_dropped_counter(trace.counter("planner.dropped_observations"));
        self.publish_estimates();
    }

    /// The underlying bandwidth estimator.
    pub fn estimator(&self) -> &BandwidthEstimator {
        &self.estimator
    }

    /// Records one observed transfer against `tier` (see
    /// [`BandwidthEstimator::record`]).
    // lint:hot-root — fed from I/O completion paths every transfer
    pub fn record(&mut self, tier: usize, bytes: u64, secs: f64) {
        self.estimator.record(tier, bytes, secs);
    }

    /// Reports fault-layer retries against `tier` (see
    /// [`BandwidthEstimator::record_retries`]).
    pub fn record_retries(&mut self, tier: usize, retries: u64) {
        self.estimator.record_retries(tier, retries);
    }

    /// Current per-tier bandwidth estimates.
    pub fn estimates(&self) -> &[f64] {
        self.estimator.estimates()
    }

    /// Migration budget per iteration boundary.
    pub fn max_migrations_per_iter(&self) -> usize {
        self.max_migrations_per_iter
    }

    /// Removes `tier` from planning permanently: it is never again a
    /// flush or migration destination, and [`AdaptivePlanner::plan_drain`]
    /// evacuates whatever durable copies it still holds. Idempotent;
    /// out-of-range indices are ignored. There is deliberately no
    /// un-exclude — a quarantined breaker is latched (see
    /// `mlp_storage::health`), and readmitting a tier whose copies were
    /// drained would need a full re-balance, not a flag flip.
    pub fn exclude_tier(&mut self, tier: usize) {
        if let Some(e) = self.excluded.get_mut(tier) {
            *e = true;
        }
    }

    /// Per-tier exclusion mask (index-aligned with the tier set).
    pub fn excluded(&self) -> &[bool] {
        &self.excluded
    }

    /// Number of tiers still accepting placements.
    pub fn surviving_tiers(&self) -> usize {
        self.excluded.iter().filter(|&&e| !e).count()
    }

    /// Completed re-plans (estimator folds).
    pub fn replans(&self) -> u64 {
        self.replans
    }

    /// Total migration steps handed out so far.
    pub fn migrations_planned(&self) -> u64 {
        self.migrations_planned
    }

    /// Folds this iteration's observations into the estimates and
    /// publishes the new per-tier values — one "re-plan": the next
    /// iteration's flush split and migration plan both derive from the
    /// estimates this call produces.
    pub fn end_iteration(&mut self) {
        self.estimator.end_iteration();
        self.replans += 1;
        self.metrics.replans.inc();
        self.publish_estimates();
    }

    fn publish_estimates(&self) {
        for (t, g) in self.metrics.estimates.iter().enumerate() {
            if let Some(&e) = self.estimator.estimates().get(t) {
                g.set(e as u64);
            }
        }
    }

    /// Plans at most `max_migrations_per_iter` durable-copy moves that
    /// bring the per-tier counts toward the Eq. 1 split for the current
    /// estimates.
    ///
    /// `placements[i]` is subgroup `i`'s durable tier, or `None` when the
    /// subgroup is host-resident (retained in a cache frame) or otherwise
    /// unmovable (e.g. its eviction flush is still in flight); `None`
    /// entries are never selected. Each call plans moves from the most
    /// over-full tier to the most under-full one, lowest subgroup index
    /// first, until the counts are within the rounding tolerance of the
    /// target or the budget is spent.
    pub fn plan_migrations(&mut self, placements: &[Option<usize>]) -> Vec<MigrationStep> {
        let ntiers = self.estimator.num_tiers();
        if self.max_migrations_per_iter == 0 || ntiers < 2 || self.surviving_tiers() == 0 {
            return Vec::new();
        }
        let mut current: Vec<Option<usize>> = placements.to_vec();
        let mut counts = vec![0usize; ntiers];
        for p in current.iter().flatten() {
            if *p < ntiers {
                counts[*p] += 1;
            }
        }
        let durable: usize = counts.iter().sum();
        if durable == 0 {
            return Vec::new();
        }
        let targets =
            allocate_counts_excluding(durable, self.estimator.estimates(), &self.excluded);
        let mut steps = Vec::new();
        while steps.len() < self.max_migrations_per_iter {
            // Most over-full donor and most under-full receiver, ties
            // toward the lower tier index. Excluded tiers have target 0,
            // so a straggler copy on one is always the top donor and an
            // excluded tier is never a receiver.
            let donor = (0..ntiers)
                .filter(|&t| counts[t] > targets[t])
                .max_by(|&a, &b| (counts[a] - targets[a]).cmp(&(counts[b] - targets[b])).then(b.cmp(&a)));
            let recv = (0..ntiers)
                .filter(|&t| counts[t] < targets[t])
                .max_by(|&a, &b| (targets[a] - counts[a]).cmp(&(targets[b] - counts[b])).then(b.cmp(&a)));
            let (Some(from), Some(to)) = (donor, recv) else {
                break;
            };
            // Lowest-index movable subgroup currently on the donor.
            let Some(subgroup) = current
                .iter()
                .position(|p| *p == Some(from))
            else {
                break;
            };
            current[subgroup] = Some(to);
            counts[from] -= 1;
            counts[to] += 1;
            steps.push(MigrationStep { subgroup, from, to });
        }
        self.migrations_planned += steps.len() as u64;
        self.metrics.migrations.add(steps.len() as u64);
        steps
    }

    /// Plans the complete evacuation of every durable copy sitting on an
    /// [excluded](AdaptivePlanner::exclude_tier) tier — the *drain* half
    /// of quarantine-and-drain. Unlike [`AdaptivePlanner::plan_migrations`]
    /// the plan is **unbounded**: a quarantined tier's copies must all
    /// leave at this iteration boundary, because the next placement pass
    /// assumes nothing lives there any more.
    ///
    /// Destinations follow the Eq. 1 split over the surviving tiers
    /// (most-under-full first, index-order ties), so the drained copies
    /// land where the next re-plan would have put them. `None` placements
    /// (host-resident subgroups) are untouched, preserving the cache-hit
    /// guarantee. Returns an empty plan when nothing is excluded, nothing
    /// sits on an excluded tier, or no tier survives (the caller turns
    /// "no survivors" into a typed error before training continues).
    pub fn plan_drain(&mut self, placements: &[Option<usize>]) -> Vec<MigrationStep> {
        let ntiers = self.estimator.num_tiers();
        if !self.excluded.iter().any(|&e| e) || self.surviving_tiers() == 0 {
            return Vec::new();
        }
        let mut counts = vec![0usize; ntiers];
        for p in placements.iter().flatten() {
            if *p < ntiers {
                counts[*p] += 1;
            }
        }
        let durable: usize = counts.iter().sum();
        if durable == 0 {
            return Vec::new();
        }
        let targets =
            allocate_counts_excluding(durable, self.estimator.estimates(), &self.excluded);
        let mut steps = Vec::new();
        for (subgroup, p) in placements.iter().enumerate() {
            let Some(from) = *p else { continue };
            if from >= ntiers || !self.excluded[from] {
                continue;
            }
            // Deepest-deficit survivor; once every target is met
            // (rounding slack), least-loaded. Ties toward the lower index.
            let Some(to) = (0..ntiers).filter(|&t| !self.excluded[t]).min_by(|&a, &b| {
                let da = counts[a] as i64 - targets[a] as i64;
                let db = counts[b] as i64 - targets[b] as i64;
                da.cmp(&db).then(a.cmp(&b))
            }) else {
                break; // unreachable: surviving_tiers() > 0 above
            };
            counts[from] -= 1;
            counts[to] += 1;
            steps.push(MigrationStep { subgroup, from, to });
        }
        self.migrations_planned += steps.len() as u64;
        self.metrics.drains.add(steps.len() as u64);
        steps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::allocation::allocate_counts;
    use proptest::prelude::*;

    fn planner(bw: Vec<f64>, max: usize) -> AdaptivePlanner {
        AdaptivePlanner::new(bw, 0.5, max)
    }

    #[test]
    fn balanced_placement_plans_nothing() {
        let mut p = planner(vec![1.0, 1.0], 8);
        let placements: Vec<Option<usize>> =
            (0..10).map(|i| Some(i % 2)).collect();
        assert!(p.plan_migrations(&placements).is_empty());
        assert_eq!(p.migrations_planned(), 0);
    }

    #[test]
    fn skewed_placement_moves_toward_target_and_respects_budget() {
        // All 10 durable copies on tier 1, but tier 0 is 3x faster:
        // target is [8, 2] (allocate_counts(10, [3,1])), i.e. 8 moves
        // wanted — the budget caps it at 3 per boundary.
        let mut p = planner(vec![3.0, 1.0], 3);
        let placements: Vec<Option<usize>> = (0..10).map(|_| Some(1)).collect();
        let steps = p.plan_migrations(&placements);
        assert_eq!(steps.len(), 3);
        for (i, s) in steps.iter().enumerate() {
            assert_eq!((s.from, s.to), (1, 0));
            assert_eq!(s.subgroup, i, "lowest-index-first selection");
        }
        assert_eq!(p.migrations_planned(), 3);
    }

    #[test]
    fn host_resident_subgroups_are_never_moved() {
        // The Alternating cache-hit guarantee: retained (host) subgroups
        // stay untouched no matter how skewed the tier counts are.
        let mut p = planner(vec![10.0, 1.0], 16);
        let placements = vec![None, Some(1), None, Some(1), None];
        let steps = p.plan_migrations(&placements);
        assert!(!steps.is_empty());
        for s in &steps {
            assert!(placements[s.subgroup].is_some());
        }
    }

    #[test]
    fn drain_evacuates_every_copy_on_the_excluded_tier() {
        let mut p = planner(vec![2.0, 1.0, 1.0], 0); // budget irrelevant to drain
        p.exclude_tier(1);
        let placements = vec![Some(1), Some(0), None, Some(1), Some(2), Some(1)];
        let steps = p.plan_drain(&placements);
        assert_eq!(steps.len(), 3, "all three tier-1 copies must move");
        for s in &steps {
            assert_eq!(s.from, 1);
            assert_ne!(s.to, 1, "excluded tier can never receive");
        }
        // Deterministic: same inputs, same plan.
        let mut q = planner(vec![2.0, 1.0, 1.0], 0);
        q.exclude_tier(1);
        assert_eq!(q.plan_drain(&placements), steps);
        // Destinations follow the survivor split (2:1 over tiers 0 and 2
        // for 5 durable copies → targets [3, 0, 2]; tier 0 starts at 1,
        // tier 2 at 1 → deficits 2 and 1 → two to tier 0, one to tier 2).
        let to0 = steps.iter().filter(|s| s.to == 0).count();
        let to2 = steps.iter().filter(|s| s.to == 2).count();
        assert_eq!((to0, to2), (2, 1));
    }

    #[test]
    fn drain_is_a_no_op_without_exclusions_or_survivors() {
        let mut p = planner(vec![1.0, 1.0], 4);
        let placements = vec![Some(0), Some(1)];
        assert!(p.plan_drain(&placements).is_empty(), "nothing excluded");
        p.exclude_tier(0);
        p.exclude_tier(1);
        assert!(p.plan_drain(&placements).is_empty(), "no survivors");
        assert_eq!(p.surviving_tiers(), 0);
    }

    #[test]
    fn migrations_never_target_an_excluded_tier() {
        // Tier 1 is 10x "faster" by estimate but excluded: every planned
        // move must land on tier 0 or 2 regardless.
        let mut p = planner(vec![1.0, 10.0, 1.0], 16);
        p.exclude_tier(1);
        let placements: Vec<Option<usize>> = (0..9).map(|i| Some(i % 3)).collect();
        let steps = p.plan_migrations(&placements);
        assert!(!steps.is_empty(), "tier-1 copies must migrate out");
        for s in &steps {
            assert_eq!(s.from, 1, "only the excluded tier is over target");
            assert_ne!(s.to, 1);
        }
    }

    #[test]
    fn drain_metrics_flow_through_the_sink() {
        let trace = TraceSink::enabled();
        let mut p = planner(vec![1.0, 1.0], 0);
        p.attach_trace(&trace);
        p.exclude_tier(1);
        let steps = p.plan_drain(&[Some(1), Some(1), Some(0)]);
        assert_eq!(steps.len(), 2);
        let snap = trace.metrics_snapshot();
        assert_eq!(snap.counter("planner.drains"), Some(2));
        assert_eq!(p.migrations_planned(), 2);
    }

    #[test]
    fn zero_budget_disables_migration() {
        let mut p = planner(vec![10.0, 1.0], 0);
        let placements: Vec<Option<usize>> = (0..10).map(|_| Some(1)).collect();
        assert!(p.plan_migrations(&placements).is_empty());
    }

    #[test]
    fn plans_are_deterministic() {
        let placements: Vec<Option<usize>> =
            (0..20).map(|i| if i % 3 == 0 { None } else { Some(i % 2) }).collect();
        let run = || {
            let mut p = planner(vec![5.0, 2.0], 4);
            p.plan_migrations(&placements)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn replan_counts_and_metrics_flow_through_the_sink() {
        let trace = TraceSink::enabled();
        let mut p = planner(vec![2.0e9, 1.0e9], 2);
        p.attach_trace(&trace);
        p.record(1, 1_000_000_000, 10.0); // tier 1 crawls at 0.1 GB/s
        p.end_iteration();
        let placements: Vec<Option<usize>> = (0..6).map(|i| Some(i % 2)).collect();
        let steps = p.plan_migrations(&placements);
        assert!(!steps.is_empty(), "estimate shift must trigger moves");
        let snap = trace.metrics_snapshot();
        assert_eq!(snap.counter("planner.replans"), Some(1));
        assert_eq!(snap.counter("planner.migrations"), Some(steps.len() as u64));
    }

    proptest! {
        #[test]
        fn migration_plans_are_bounded_and_improve_balance(
            n in 1usize..40,
            ntiers in 2usize..5,
            budget in 0usize..10,
            seed in 0u64..1000,
        ) {
            let bw: Vec<f64> = (0..ntiers).map(|t| 1.0 + (t as f64) + (seed % 7) as f64).collect();
            let mut p = AdaptivePlanner::new(bw, 0.5, budget);
            // Pseudo-random placement: some host-resident, rest on tiers.
            let placements: Vec<Option<usize>> = (0..n)
                .map(|i| {
                    let r = (seed.wrapping_mul(6364136223846793005).wrapping_add(i as u64)) >> 33;
                    if r % 5 == 0 { None } else { Some((r as usize) % ntiers) }
                })
                .collect();
            let steps = p.plan_migrations(&placements);
            prop_assert!(steps.len() <= budget);

            let mut counts = vec![0usize; ntiers];
            for p in placements.iter().flatten() { counts[*p] += 1; }
            let durable: usize = counts.iter().sum();
            if durable == 0 {
                prop_assert!(steps.is_empty());
                return Ok(());
            }
            let targets = allocate_counts(durable, p.estimates());
            let imbalance = |c: &[usize]| -> usize {
                c.iter().zip(&targets).map(|(&c, &t)| c.abs_diff(t)).sum()
            };
            let before = imbalance(&counts);
            let mut moved = std::collections::HashSet::new();
            for s in &steps {
                // Valid, movable, distinct subgroups; real tier indices.
                prop_assert!(placements[s.subgroup].is_some());
                prop_assert!(moved.insert(s.subgroup), "subgroup moved twice");
                prop_assert!(s.from < ntiers && s.to < ntiers && s.from != s.to);
                counts[s.from] -= 1;
                counts[s.to] += 1;
            }
            let after = imbalance(&counts);
            prop_assert!(after <= before, "plan must not worsen balance");
            if before > 0 && budget > 0 {
                prop_assert!(after < before, "plan must make progress");
            }
        }
    }
}
