//! Subgroup-to-tier allocation: the §3.3 performance model.
//!
//! Equation 1: tier `i` with bandwidth `B_i` receives
//! `T_i = ⌈M·B_i / ΣB⌉` of the `M` subgroups, adjusted so `ΣT_i = M` —
//! parallel fetches and flushes across tiers then finish at roughly the
//! same time, so no single path straggles.
//!
//! Bandwidths start from microbenchmarks and are re-estimated from the
//! observed per-subgroup transfer rates after every iteration, adapting to
//! external load shifts on shared tiers (e.g. a busy PFS).

use mlp_trace::Counter;

/// Splits `m` subgroups across tiers proportionally to `bandwidths`
/// (Eq. 1, largest-remainder rounding so the counts sum to exactly `m`).
///
/// # Panics
///
/// Panics if `bandwidths` is empty or contains a non-positive value.
pub fn allocate_counts(m: usize, bandwidths: &[f64]) -> Vec<usize> {
    assert!(!bandwidths.is_empty(), "need at least one tier");
    assert!(
        bandwidths.iter().all(|&b| b > 0.0 && b.is_finite()),
        "bandwidths must be positive"
    );
    let total: f64 = bandwidths.iter().sum();
    let exact: Vec<f64> = bandwidths.iter().map(|b| m as f64 * b / total).collect();
    let mut counts: Vec<usize> = exact.iter().map(|&e| e.floor() as usize).collect();
    let mut assigned: usize = counts.iter().sum();
    // Hand remaining subgroups to the largest fractional remainders.
    // Remainders are materialized once so the comparator is a pure
    // lookup, and ties break toward the lower tier index: the rounding
    // must be a deterministic function of `(m, bandwidths)` because the
    // adaptive planner compares successive plans to decide migrations —
    // a tie resolved differently across calls would read as a bandwidth
    // shift and trigger spurious data movement.
    let rem: Vec<f64> = exact.iter().map(|&e| e - e.floor()).collect();
    let mut order: Vec<usize> = (0..bandwidths.len()).collect();
    order.sort_by(|&a, &b| rem[b].total_cmp(&rem[a]).then(a.cmp(&b)));
    let mut i = 0;
    while assigned < m {
        counts[order[i % order.len()]] += 1;
        assigned += 1;
        i += 1;
    }
    counts
}

/// [`allocate_counts`] with tiers masked out: the split is computed over
/// the surviving tiers only and mapped back to full-length counts, with
/// excluded tiers pinned at 0. The quarantine-and-drain path uses this —
/// a quarantined tier must receive no new placements, but its (stale)
/// bandwidth estimate is still part of the estimator's tier-indexed
/// state.
///
/// # Panics
///
/// Panics if every tier is excluded (callers surface "no surviving
/// tiers" as a typed error before planning) or if a surviving tier's
/// bandwidth is non-positive.
pub fn allocate_counts_excluding(m: usize, bandwidths: &[f64], excluded: &[bool]) -> Vec<usize> {
    assert_eq!(bandwidths.len(), excluded.len(), "mask/tier mismatch");
    let survivors: Vec<usize> = (0..bandwidths.len()).filter(|&t| !excluded[t]).collect();
    assert!(!survivors.is_empty(), "every tier is excluded");
    let sub: Vec<f64> = survivors.iter().map(|&t| bandwidths[t]).collect();
    let sub_counts = allocate_counts(m, &sub);
    let mut counts = vec![0usize; bandwidths.len()];
    for (&t, &c) in survivors.iter().zip(&sub_counts) {
        counts[t] = c;
    }
    counts
}

/// Assigns each of `m` subgroups a tier index, interleaving tiers so
/// consecutive subgroups use different I/O paths where possible (enabling
/// the parallel multi-path fetches of Fig. 6). The per-tier totals equal
/// [`allocate_counts`].
pub fn assign_subgroups(m: usize, bandwidths: &[f64]) -> Vec<usize> {
    let targets = allocate_counts(m, bandwidths);
    let mut placed = vec![0usize; targets.len()];
    let mut out = Vec::with_capacity(m);
    for _ in 0..m {
        // Weighted round-robin: pick the tier that has consumed the
        // smallest fraction of its target so far (ties → lower index).
        let tier = (0..targets.len())
            .filter(|&t| placed[t] < targets[t])
            .min_by(|&a, &b| {
                let fa = placed[a] as f64 / targets[a] as f64;
                let fb = placed[b] as f64 / targets[b] as f64;
                fa.total_cmp(&fb).then(a.cmp(&b))
            })
            // lint:allow(hot-path-panic): unreachable by construction —
            // `allocate_counts` returns counts summing to exactly `m`, and
            // the loop places exactly `m` subgroups, so an unsaturated
            // tier always exists; pure CPU-side planning, no I/O in flight
            .expect("targets sum to m");
        placed[tier] += 1;
        out.push(tier);
    }
    out
}

/// Adaptive per-tier bandwidth estimation (§3.3): a tier's first real
/// observation replaces the initial microbenchmark value outright (warm
/// start), after which observed per-iteration transfer rates blend in
/// through an exponential moving average. Retries reported by the fault
/// layer discount a tier's observed rate (a path that burns attempts on
/// transient faults is worth less than its raw throughput suggests).
#[derive(Clone)]
pub struct BandwidthEstimator {
    current: Vec<f64>,
    /// Tiers that have folded in at least one real observation. Until
    /// then `current` holds the microbenchmark prior, which can be
    /// systematically off in-engine (contention, per-op overheads), so
    /// the first observation replaces it outright instead of EMA-blending
    /// — the estimator converges in one iteration while later blips are
    /// still damped by `alpha`.
    seen: Vec<bool>,
    pending_bytes: Vec<f64>,
    pending_secs: Vec<f64>,
    pending_ops: Vec<f64>,
    pending_retries: Vec<f64>,
    alpha: f64,
    /// Observations against a tier index the estimator does not track.
    /// Counted instead of panicking: `record` sits on the I/O completion
    /// path, where a bad index from a mis-wired feedback source must not
    /// tear down a worker (hot-path panic-freedom rule).
    dropped: Counter,
}

impl std::fmt::Debug for BandwidthEstimator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BandwidthEstimator")
            .field("current", &self.current)
            .field("alpha", &self.alpha)
            .field("dropped", &self.dropped.get())
            .finish_non_exhaustive()
    }
}

impl BandwidthEstimator {
    /// Starts from microbenchmark bandwidths; `alpha` is the EMA weight of
    /// new observations (the paper adjusts after each iteration; 0.5 reacts
    /// within a couple of iterations without oscillating).
    pub fn new(initial: Vec<f64>, alpha: f64) -> Self {
        assert!((0.0..=1.0).contains(&alpha), "alpha in [0, 1]");
        assert!(
            initial.iter().all(|&b| b > 0.0 && b.is_finite()),
            "initial bandwidths must be positive"
        );
        let n = initial.len();
        BandwidthEstimator {
            current: initial,
            seen: vec![false; n],
            pending_bytes: vec![0.0; n],
            pending_secs: vec![0.0; n],
            pending_ops: vec![0.0; n],
            pending_retries: vec![0.0; n],
            alpha,
            dropped: Counter::detached(),
        }
    }

    /// Number of tiers tracked.
    pub fn num_tiers(&self) -> usize {
        self.current.len()
    }

    /// Routes out-of-range observation drops to `counter` (typically the
    /// sink's `planner.dropped_observations`) instead of the detached
    /// default, so a mis-wired feedback source is visible in metrics.
    pub fn attach_dropped_counter(&mut self, counter: Counter) {
        self.dropped = counter;
    }

    /// Observations ignored because their tier index was out of range.
    pub fn dropped_observations(&self) -> u64 {
        self.dropped.get()
    }

    /// Records one observed transfer (fetch or flush) against `tier`.
    ///
    /// An out-of-range `tier` is ignored and counted (see
    /// [`Self::attach_dropped_counter`]) rather than panicking: this is
    /// called from I/O completion paths.
    // lint:hot-root — fed from I/O completion paths every transfer
    // lint:allow(transitive-panic): tier is bounds-checked on entry and
    // every per-tier vec is constructed with the same length
    pub fn record(&mut self, tier: usize, bytes: u64, secs: f64) {
        if tier >= self.current.len() {
            self.dropped.inc();
            return;
        }
        if secs <= 0.0 || !secs.is_finite() {
            return;
        }
        self.pending_bytes[tier] += bytes as f64;
        self.pending_secs[tier] += secs;
        self.pending_ops[tier] += 1.0;
    }

    /// Reports `retries` fault-layer retry attempts against `tier` this
    /// iteration. Folded in at [`Self::end_iteration`] as a multiplicative
    /// discount `ops / (ops + retries)` on the observed bandwidth, so a
    /// flaky path sheds load beyond what its raw throughput loses.
    /// Out-of-range tiers are ignored and counted, like [`Self::record`].
    pub fn record_retries(&mut self, tier: usize, retries: u64) {
        if tier >= self.current.len() {
            self.dropped.inc();
            return;
        }
        self.pending_retries[tier] += retries as f64;
    }

    /// Folds the iteration's observations into the estimates (call once
    /// per iteration).
    pub fn end_iteration(&mut self) {
        for t in 0..self.current.len() {
            if self.pending_secs[t] > 0.0 {
                let mut observed = self.pending_bytes[t] / self.pending_secs[t];
                if self.pending_retries[t] > 0.0 && self.pending_ops[t] > 0.0 {
                    observed *=
                        self.pending_ops[t] / (self.pending_ops[t] + self.pending_retries[t]);
                }
                if observed.is_finite() && observed > 0.0 {
                    self.current[t] = if self.seen[t] {
                        (1.0 - self.alpha) * self.current[t] + self.alpha * observed
                    } else {
                        // Warm start: the first measurement supersedes the
                        // microbenchmark prior at full weight.
                        self.seen[t] = true;
                        observed
                    };
                }
            }
            self.pending_bytes[t] = 0.0;
            self.pending_secs[t] = 0.0;
            self.pending_ops[t] = 0.0;
            self.pending_retries[t] = 0.0;
        }
    }

    /// Current per-tier bandwidth estimates.
    pub fn estimates(&self) -> &[f64] {
        &self.current
    }
}

/// Parses a ratio string like `"2:1"` into relative weights, the
/// user-facing subgroup-distribution override of §3.5 ("a 2:1 split
/// between /local/ and /remote/").
pub fn parse_ratio(s: &str) -> Result<Vec<f64>, String> {
    let parts: Result<Vec<f64>, _> = s.split(':').map(|p| p.trim().parse::<f64>()).collect();
    match parts {
        Ok(v) if !v.is_empty() && v.iter().all(|&x| x > 0.0) => Ok(v),
        Ok(_) => Err(format!("ratio {s:?} must have positive components")),
        Err(e) => Err(format!("bad ratio {s:?}: {e}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn testbed1_split_is_two_to_one() {
        // NVMe 5.3, PFS 3.6 (min of r/w): 100 subgroups → ~60:40... the
        // paper reports a 2:1 *configured* split; Eq. 1 with raw min
        // bandwidths gives 60/40. With the write-bandwidth-dominant view
        // (5.3 vs 3.6) the fraction on NVMe is ~60%; with the paper's
        // configured 2:1 weights it is ~67%.
        let counts = allocate_counts(99, &[2.0, 1.0]);
        assert_eq!(counts, vec![66, 33]);
        let counts = allocate_counts(100, &[5.3, 3.6]);
        assert_eq!(counts.iter().sum::<usize>(), 100);
        assert!((58..=62).contains(&counts[0]), "{counts:?}");
    }

    #[test]
    fn single_tier_takes_everything() {
        assert_eq!(allocate_counts(7, &[4.2]), vec![7]);
    }

    #[test]
    fn zero_subgroups_allocates_zero() {
        assert_eq!(allocate_counts(0, &[1.0, 2.0]), vec![0, 0]);
    }

    #[test]
    fn excluded_tiers_receive_nothing_and_survivors_split_everything() {
        // Middle tier quarantined: its 2.0 weight drops out entirely and
        // the 3:1 survivor split covers all 8 subgroups.
        let counts = allocate_counts_excluding(8, &[3.0, 2.0, 1.0], &[false, true, false]);
        assert_eq!(counts, vec![6, 0, 2]);
        assert_eq!(counts.iter().sum::<usize>(), 8);
        // No exclusions degenerates to the plain split.
        assert_eq!(
            allocate_counts_excluding(8, &[3.0, 1.0], &[false, false]),
            allocate_counts(8, &[3.0, 1.0]),
        );
        // A dead tier's estimate may be garbage; it must not be inspected.
        let counts = allocate_counts_excluding(4, &[1.0, f64::NAN], &[false, true]);
        assert_eq!(counts, vec![4, 0]);
    }

    #[test]
    #[should_panic(expected = "every tier is excluded")]
    fn all_excluded_panics() {
        allocate_counts_excluding(4, &[1.0, 2.0], &[true, true]);
    }

    #[test]
    fn assignment_matches_counts_and_interleaves() {
        let bw = [2.0, 1.0];
        let assign = assign_subgroups(9, &bw);
        let counts = allocate_counts(9, &bw);
        for (t, &count) in counts.iter().enumerate() {
            assert_eq!(assign.iter().filter(|&&x| x == t).count(), count);
        }
        // 2:1 interleave: no run of tier 0 longer than 2 (no starving path).
        let mut run = 0;
        for &t in &assign {
            if t == 0 {
                run += 1;
                assert!(run <= 2, "tier 0 run too long in {assign:?}");
            } else {
                run = 0;
            }
        }
    }

    #[test]
    fn estimator_tracks_observed_drop() {
        let mut est = BandwidthEstimator::new(vec![5.3e9, 3.6e9], 0.5);
        // Warm start: the first measurement supersedes the prior outright.
        est.record(1, 36_000_000_000, 10.0);
        est.end_iteration();
        assert_eq!(est.estimates()[0], 5.3e9, "no observation → unchanged");
        assert_eq!(est.estimates()[1], 3.6e9, "first observation snaps");
        // PFS under external load delivers only 1.8 GB/s this iteration;
        // now the EMA damps the swing.
        est.record(1, 18_000_000_000, 10.0);
        est.end_iteration();
        let pfs = est.estimates()[1];
        assert!((2.6e9..2.8e9).contains(&pfs), "EMA midpoint, got {pfs}");
    }

    #[test]
    fn estimator_reallocation_shifts_subgroups() {
        let mut est = BandwidthEstimator::new(vec![5.0e9, 5.0e9], 1.0);
        let before = allocate_counts(100, est.estimates());
        assert_eq!(before, vec![50, 50]);
        est.record(1, 10_000_000_000, 10.0); // tier 1 down to 1 GB/s
        est.end_iteration();
        let after = allocate_counts(100, est.estimates());
        assert!(after[0] > 80, "fast tier absorbs load: {after:?}");
    }

    #[test]
    fn record_out_of_range_is_ignored_and_counted() {
        // Regression (PR 7): an out-of-range tier index used to panic via
        // unchecked `pending_bytes[tier]` on the I/O completion path.
        let mut est = BandwidthEstimator::new(vec![5.3e9, 3.6e9], 0.5);
        let counter = Counter::detached();
        est.attach_dropped_counter(counter.clone());
        est.record(7, 1_000_000, 1.0); // out of range: ignored, counted
        est.record_retries(7, 3);
        est.record(1, 18_000_000_000, 10.0);
        est.end_iteration();
        assert_eq!(est.dropped_observations(), 2);
        assert_eq!(counter.get(), 2);
        // The in-range observation still lands; estimates have no entry
        // for the bogus tier and tier 0 is untouched.
        assert_eq!(est.estimates().len(), 2);
        assert_eq!(est.estimates()[0], 5.3e9);
        assert!(est.estimates()[1] < 3.6e9);
    }

    #[test]
    fn retry_rate_discounts_observed_bandwidth() {
        let clean = {
            let mut est = BandwidthEstimator::new(vec![4.0e9], 1.0);
            est.record(0, 4_000_000_000, 1.0);
            est.end_iteration();
            est.estimates()[0]
        };
        let flaky = {
            let mut est = BandwidthEstimator::new(vec![4.0e9], 1.0);
            est.record(0, 4_000_000_000, 1.0); // same throughput...
            est.record_retries(0, 1); // ...but half the attempts failed
            est.end_iteration();
            est.estimates()[0]
        };
        assert_eq!(clean, 4.0e9);
        assert_eq!(flaky, 2.0e9, "1 op + 1 retry → ops/(ops+retries) = 1/2");
    }

    #[test]
    fn remainder_ties_break_toward_lower_tier_index() {
        // 3 subgroups over two equal tiers: exact shares 1.5 / 1.5; the
        // single leftover must deterministically land on tier 0.
        assert_eq!(allocate_counts(3, &[1.0, 1.0]), vec![2, 1]);
        // Four-way tie, two leftovers: lowest two indices win.
        assert_eq!(allocate_counts(6, &[1.0, 1.0, 1.0, 1.0]), vec![2, 2, 1, 1]);
    }

    #[test]
    fn ratio_parsing() {
        assert_eq!(parse_ratio("2:1").unwrap(), vec![2.0, 1.0]);
        assert_eq!(parse_ratio("1:1:1").unwrap(), vec![1.0, 1.0, 1.0]);
        assert!(parse_ratio("a:b").is_err());
        assert!(parse_ratio("0:1").is_err());
        assert!(parse_ratio("").is_err());
    }

    proptest! {
        #[test]
        fn counts_always_sum_to_m(
            m in 0usize..500,
            bw in proptest::collection::vec(0.1f64..100.0, 1..6),
        ) {
            let counts = allocate_counts(m, &bw);
            prop_assert_eq!(counts.iter().sum::<usize>(), m);
        }

        #[test]
        fn counts_are_proportional_within_one(
            m in 1usize..500,
            bw in proptest::collection::vec(0.1f64..100.0, 1..6),
        ) {
            let counts = allocate_counts(m, &bw);
            let total: f64 = bw.iter().sum();
            for (c, b) in counts.iter().zip(&bw) {
                let exact = m as f64 * b / total;
                prop_assert!((*c as f64 - exact).abs() <= 1.0 + 1e-9,
                    "count {c} vs exact {exact}");
            }
        }

        #[test]
        fn counts_are_stable_across_runs(
            m in 0usize..500,
            bw in proptest::collection::vec(0.1f64..100.0, 1..6),
        ) {
            // Largest-remainder rounding is a pure deterministic function
            // of its inputs — including under exact remainder ties.
            prop_assert_eq!(allocate_counts(m, &bw), allocate_counts(m, &bw));
        }

        #[test]
        fn counts_are_monotone_in_bandwidth(
            m in 0usize..500,
            bw in proptest::collection::vec(0.1f64..100.0, 2..6),
        ) {
            // A strictly faster tier never receives fewer subgroups than a
            // slower one (with index as the documented tie-break).
            let counts = allocate_counts(m, &bw);
            for i in 0..bw.len() {
                for j in 0..bw.len() {
                    if bw[i] > bw[j] {
                        prop_assert!(
                            counts[i] + 1 >= counts[j],
                            "bw {} > {} but counts {} < {} - 1",
                            bw[i], bw[j], counts[i], counts[j]
                        );
                        if bw[i] / bw[j] > 1.0 + 1e-9 {
                            prop_assert!(counts[i] >= counts[j]);
                        }
                    }
                }
            }
        }

        #[test]
        fn assignment_is_a_permutation_of_counts(
            m in 0usize..300,
            bw in proptest::collection::vec(0.1f64..100.0, 1..5),
        ) {
            let assign = assign_subgroups(m, &bw);
            let counts = allocate_counts(m, &bw);
            prop_assert_eq!(assign.len(), m);
            for (t, &c) in counts.iter().enumerate() {
                prop_assert_eq!(assign.iter().filter(|&&x| x == t).count(), c);
            }
        }
    }
}
