//! Pure decision logic shared by the simulated and functional engines:
//! where each subgroup lives ([`allocation`]), in what order subgroups are
//! updated ([`ordering`]), which stay cached in host memory ([`cache`]),
//! and how the plan adapts to observed bandwidth mid-training
//! ([`replan`]). Keeping these pure makes the contribution directly
//! property-testable, independent of any execution substrate.

pub mod allocation;
pub mod cache;
pub mod ordering;
pub mod replan;
