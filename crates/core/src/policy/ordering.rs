//! Cache-friendly subgroup update ordering (§3.2).
//!
//! Adam updates are embarrassingly parallel across subgroups, so the
//! processing order is free. MLP-Offload alternates between ascending and
//! descending id order: the subgroups left cached in host memory at the
//! end of one iteration (the tail of its order) are exactly the first
//! processed in the next, turning the baseline's cache thrashing into
//! guaranteed hits.

use serde::{Deserialize, Serialize};

/// How the update phase orders subgroup processing.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum OrderPolicy {
    /// Ascending ids every iteration (DeepSpeed ZeRO-3's sequential order —
    /// thrashes the host cache).
    Ascending,
    /// Alternate ascending/descending per iteration (MLP-Offload's
    /// "Enable Caching" optimization).
    Alternating,
    /// Descending ids every iteration (ablation reference).
    Descending,
}

impl OrderPolicy {
    /// The processing order of `m` subgroups in 0-based iteration `iter`.
    pub fn order(self, iter: u64, m: usize) -> Vec<usize> {
        match self {
            OrderPolicy::Ascending => (0..m).collect(),
            OrderPolicy::Descending => (0..m).rev().collect(),
            OrderPolicy::Alternating => {
                if iter.is_multiple_of(2) {
                    (0..m).collect()
                } else {
                    (0..m).rev().collect()
                }
            }
        }
    }

    /// Expected host-cache hits in iteration `iter` given `budget`
    /// subgroups are retained across iterations: the retained set is the
    /// tail of the previous order, which the current order visits first
    /// only when the direction flips.
    pub fn expected_hits(self, iter: u64, m: usize, budget: usize) -> usize {
        if iter == 0 {
            return 0; // cold start: nothing resident yet
        }
        let budget = budget.min(m);
        match self {
            // Tail of ascending order = highest ids; the next ascending
            // pass visits them last, after they were evicted to make room.
            OrderPolicy::Ascending | OrderPolicy::Descending => 0,
            OrderPolicy::Alternating => budget,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn ascending_is_identity() {
        assert_eq!(OrderPolicy::Ascending.order(0, 4), vec![0, 1, 2, 3]);
        assert_eq!(OrderPolicy::Ascending.order(1, 4), vec![0, 1, 2, 3]);
    }

    #[test]
    fn alternating_flips_every_iteration() {
        let p = OrderPolicy::Alternating;
        assert_eq!(p.order(0, 4), vec![0, 1, 2, 3]);
        assert_eq!(p.order(1, 4), vec![3, 2, 1, 0]);
        assert_eq!(p.order(2, 4), vec![0, 1, 2, 3]);
    }

    #[test]
    fn alternating_consecutive_orders_share_prefix_with_suffix() {
        // The paper's key property: tail(order_k) == head(order_{k+1}).
        let p = OrderPolicy::Alternating;
        let m = 10;
        for iter in 0..5u64 {
            let cur = p.order(iter, m);
            let next = p.order(iter + 1, m);
            let budget = 3;
            let tail: Vec<usize> = cur[m - budget..].iter().rev().copied().collect();
            assert_eq!(&next[..budget], &tail[..], "iter {iter}");
        }
    }

    #[test]
    fn expected_hits_alternating_vs_ascending() {
        assert_eq!(OrderPolicy::Alternating.expected_hits(0, 100, 20), 0);
        assert_eq!(OrderPolicy::Alternating.expected_hits(1, 100, 20), 20);
        assert_eq!(OrderPolicy::Ascending.expected_hits(1, 100, 20), 0);
        assert_eq!(OrderPolicy::Alternating.expected_hits(3, 10, 50), 10);
    }

    proptest! {
        #[test]
        fn order_is_always_a_permutation(
            iter in 0u64..10,
            m in 0usize..200,
        ) {
            for p in [OrderPolicy::Ascending, OrderPolicy::Alternating, OrderPolicy::Descending] {
                let mut o = p.order(iter, m);
                o.sort_unstable();
                prop_assert_eq!(o, (0..m).collect::<Vec<_>>());
            }
        }
    }
}
